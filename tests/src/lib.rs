//! Integration-test host crate. The tests live in `tests/tests/*.rs`; this
//! library target is intentionally empty.
