//! On-demand routing equivalence at the experiment level: every protocol
//! must produce bit-identical probe outcomes whether the scenario's
//! `Network` materializes routes eagerly (all-pairs `RoutingTables`, the
//! paper figures' setting) or lazily (`OnDemandRoutes`, LRU-cached SPF
//! rows computed per forwarding node).
//!
//! The provider-level proptests already check `next_hop`/`dist` agree on
//! every pair; this is the end-to-end net: if the lazy provider diverged
//! anywhere a kernel actually looks — including eviction and refill mid
//! run — deliveries, delays, or event counts would differ.

use hbh_experiments::protocols::{run_protocol, ProtocolKind};
use hbh_experiments::scenario::{build, ScenarioOptions, TopologyKind};
use hbh_proto_base::Timing;

fn assert_eager_equals_on_demand(topo: TopologyKind, group_size: usize, seed: u64, cache: usize) {
    let timing = Timing::default();
    let eager_sc = build(topo, group_size, seed, &timing, &ScenarioOptions::default());
    let lazy_opts = ScenarioOptions {
        route_cache: Some(cache),
        ..ScenarioOptions::default()
    };
    let lazy_sc = build(topo, group_size, seed, &timing, &lazy_opts);
    assert!(!eager_sc.network().is_on_demand());
    assert!(lazy_sc.network().is_on_demand());
    for kind in ProtocolKind::ALL {
        let eager = run_protocol(kind, &eager_sc, &timing);
        let lazy = run_protocol(kind, &lazy_sc, &timing);
        assert_eq!(
            eager,
            lazy,
            "{} diverged between eager and on-demand routing \
             ({} m={group_size} seed={seed} cache={cache})",
            kind.name(),
            topo.name(),
        );
        assert!(eager.complete(), "{} incomplete", kind.name());
    }
}

#[test]
fn on_demand_outcomes_match_eager_on_isp() {
    for seed in [1, 42, 0xC0FFEE] {
        assert_eager_equals_on_demand(TopologyKind::Isp, 8, seed, 64);
    }
}

#[test]
fn on_demand_outcomes_match_eager_under_eviction_pressure() {
    // A 4-row LRU on the 36-node ISP graph forces constant eviction and
    // recomputation while the kernels run; answers must not change.
    assert_eager_equals_on_demand(TopologyKind::Isp, 8, 7, 4);
}

#[test]
fn on_demand_outcomes_match_eager_on_rand50() {
    // One seed: rand50 is an order of magnitude slower in debug builds,
    // and the provider machinery is topology-agnostic.
    assert_eager_equals_on_demand(TopologyKind::Rand50, 10, 7, 32);
}
