//! Multi-channel operation: HBH's `<S, G>` identification means multiple
//! simultaneous channels — from the same or different sources — must keep
//! fully independent state and delivery (the address-allocation story of
//! §1/§3).

use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd, GroupAddr, Timing};
use hbh_sim_core::{Kernel, Network, Time};
use hbh_topo::graph::NodeId;
use hbh_topo::{costs, isp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn network(seed: u64) -> Network {
    let mut g = isp::isp_topology();
    costs::assign_paper_costs(&mut g, &mut StdRng::seed_from_u64(seed));
    Network::new(g)
}

#[test]
fn two_sources_two_channels_are_isolated() {
    let net = network(1);
    let s1 = NodeId(18); // host on router 0
    let s2 = NodeId(27); // host on router 9
    let ch1 = Channel::primary(s1);
    let ch2 = Channel::primary(s2);
    let timing = Timing::default();
    let mut k = Kernel::new(net, Hbh::new(timing), 1);
    k.command_at(s1, Cmd::StartSource(ch1), Time::ZERO);
    k.command_at(s2, Cmd::StartSource(ch2), Time::ZERO);

    // Disjoint receiver sets; one host (n30) subscribes to both.
    let g1 = [NodeId(20), NodeId(25), NodeId(30)];
    let g2 = [NodeId(22), NodeId(33), NodeId(30)];
    for (i, &r) in g1.iter().enumerate() {
        k.command_at(r, Cmd::Join(ch1), Time(i as u64 * 60));
    }
    for (i, &r) in g2.iter().enumerate() {
        k.command_at(r, Cmd::Join(ch2), Time(30 + i as u64 * 60));
    }
    k.run_until(Time(timing.convergence_horizon(500)));

    let t = k.now();
    k.command_at(s1, Cmd::SendData { ch: ch1, tag: 1 }, t);
    k.command_at(s2, Cmd::SendData { ch: ch2, tag: 2 }, t);
    k.run_until(t + 2000);

    let served1: HashSet<NodeId> = k.stats().deliveries_tagged(1).map(|d| d.node).collect();
    let served2: HashSet<NodeId> = k.stats().deliveries_tagged(2).map(|d| d.node).collect();
    assert_eq!(served1, g1.iter().copied().collect());
    assert_eq!(served2, g2.iter().copied().collect());
    assert_eq!(
        k.stats().deliveries_tagged(1).count(),
        3,
        "no duplicates on ch1"
    );
    assert_eq!(
        k.stats().deliveries_tagged(2).count(),
        3,
        "no duplicates on ch2"
    );
}

#[test]
fn same_source_different_groups_are_distinct_channels() {
    let net = network(2);
    let s = NodeId(18);
    let cha = Channel::new(s, GroupAddr(1));
    let chb = Channel::new(s, GroupAddr(2));
    let timing = Timing::default();
    let mut k = Kernel::new(net, Hbh::new(timing), 2);
    k.command_at(s, Cmd::StartSource(cha), Time::ZERO);
    k.command_at(s, Cmd::StartSource(chb), Time::ZERO);
    k.command_at(NodeId(21), Cmd::Join(cha), Time(0));
    k.command_at(NodeId(34), Cmd::Join(chb), Time(0));
    k.run_until(Time(timing.convergence_horizon(100)));

    let t = k.now();
    k.command_at(s, Cmd::SendData { ch: cha, tag: 1 }, t);
    k.run_until(t + 2000);
    let nodes: Vec<NodeId> = k.stats().deliveries_tagged(1).map(|d| d.node).collect();
    assert_eq!(nodes, vec![NodeId(21)], "group A data stays in group A");
}

#[test]
fn leaving_one_channel_keeps_the_other() {
    let net = network(3);
    let s = NodeId(18);
    let cha = Channel::new(s, GroupAddr(1));
    let chb = Channel::new(s, GroupAddr(2));
    let timing = Timing::default();
    let r = NodeId(26); // subscribes to both, leaves one
    let mut k = Kernel::new(net, Hbh::new(timing), 3);
    k.command_at(s, Cmd::StartSource(cha), Time::ZERO);
    k.command_at(s, Cmd::StartSource(chb), Time::ZERO);
    k.command_at(r, Cmd::Join(cha), Time(0));
    k.command_at(r, Cmd::Join(chb), Time(0));
    k.run_until(Time(1000));
    k.command_at(r, Cmd::Leave(cha), Time(1000));
    k.run_until(Time(1000 + 4 * timing.t2 + timing.convergence_horizon(0)));

    let t = k.now();
    k.command_at(s, Cmd::SendData { ch: cha, tag: 1 }, t);
    k.command_at(s, Cmd::SendData { ch: chb, tag: 2 }, t);
    k.run_until(t + 2000);
    assert_eq!(k.stats().deliveries_tagged(1).count(), 0, "left channel A");
    let nodes: Vec<NodeId> = k.stats().deliveries_tagged(2).map(|d| d.node).collect();
    assert_eq!(nodes, vec![r], "still member of channel B");
}
