//! "IP Multicast clouds as leaves" (§3): several receivers behind one
//! access router. The paper notes local IGMP aggregation doesn't change
//! tree cost at the backbone level; here we verify the backbone side of
//! that claim — the router-to-router tree is shared, and only the access
//! links multiply.

use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Kernel, Network, Time};
use hbh_topo::graph::{Graph, NodeId};

/// s(host) — a — b — c with three receivers on c and one on b.
fn leafy() -> (Graph, NodeId, Vec<NodeId>) {
    let mut g = Graph::new();
    let a = g.add_router();
    let b = g.add_router();
    let c = g.add_router();
    g.add_link(a, b, 2, 2);
    g.add_link(b, c, 3, 3);
    let s = g.add_host(a, 1, 1);
    let r1 = g.add_host(c, 1, 1);
    let r2 = g.add_host(c, 1, 1);
    let r3 = g.add_host(c, 1, 1);
    let r4 = g.add_host(b, 1, 1);
    (g, s, vec![r1, r2, r3, r4])
}

#[test]
fn co_located_receivers_share_the_backbone_tree() {
    let (g, s, receivers) = leafy();
    let timing = Timing::default();
    let ch = Channel::primary(s);
    let mut k = Kernel::new(Network::new(g), Hbh::new(timing), 7);
    k.command_at(s, Cmd::StartSource(ch), Time::ZERO);
    for (i, &r) in receivers.iter().enumerate() {
        k.command_at(r, Cmd::Join(ch), Time(i as u64 * 120));
    }
    k.run_until(Time(timing.convergence_horizon(500)));
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + 200);

    assert_eq!(k.stats().deliveries_tagged(1).count(), 4, "all four served");
    // Backbone: s→a, a→b, b→c each once; access: b→r4, c→r1..r3.
    let per_link = k.stats().data_copies_per_link(1);
    let backbone: u64 = per_link
        .iter()
        .filter(|(&(f, t), _)| k.network().graph().is_router(f) && k.network().graph().is_router(t))
        .map(|(_, &c)| c)
        .sum();
    assert_eq!(backbone, 2, "a→b and b→c exactly once each");
    assert_eq!(
        k.stats().data_copies_tagged(1),
        2 + 1 + 4,
        "backbone + s-access + 4 access links"
    );
}

#[test]
fn adding_a_co_located_receiver_costs_one_access_link() {
    let run = |n_on_c: usize| {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let c = g.add_router();
        g.add_link(a, b, 2, 2);
        g.add_link(b, c, 3, 3);
        let s = g.add_host(a, 1, 1);
        let receivers: Vec<NodeId> = (0..n_on_c).map(|_| g.add_host(c, 1, 1)).collect();
        let timing = Timing::default();
        let ch = Channel::primary(s);
        let mut k = Kernel::new(Network::new(g), Hbh::new(timing), 3);
        k.command_at(s, Cmd::StartSource(ch), Time::ZERO);
        for (i, &r) in receivers.iter().enumerate() {
            k.command_at(r, Cmd::Join(ch), Time(i as u64 * 100));
        }
        k.run_until(Time(timing.convergence_horizon(600)));
        let t = k.now();
        k.command_at(s, Cmd::SendData { ch, tag: 1 }, t);
        k.run_until(t + 200);
        assert_eq!(k.stats().deliveries_tagged(1).count(), n_on_c);
        k.stats().data_copies_tagged(1)
    };
    let c2 = run(2);
    let c3 = run(3);
    let c4 = run(4);
    assert_eq!(c3, c2 + 1, "one extra access copy per extra local receiver");
    assert_eq!(c4, c3 + 1);
}
