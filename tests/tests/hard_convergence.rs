//! Overlapping-fault convergence: fault sequences deliberately faster
//! than the repair machinery they disturb. The soft engine must converge
//! because refresh-and-decay is memoryless; the hard engine must converge
//! because every repair step is idempotent and re-triggerable — and
//! neither may leak timers while doing so.
//!
//! Two overlap shapes, each run against both HBH engines:
//!
//! * **re-crash mid-repair** — the victim router restarts and crashes
//!   again inside the previous repair window, so probes, give-ups and
//!   repair joins from round one are still in flight when round two
//!   starts;
//! * **fast link flap** — a tree link flaps with a period shorter than
//!   the tree (refresh) period, so no refresh round ever sees a stable
//!   topology until the flapping stops.

use hbh_proto::{Hbh, HbhHard};
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{FaultPlan, Kernel, Network, Protocol, Time};
use hbh_topo::graph::{Graph, NodeId};

/// Redundant diamond: cheap path a—b—{d,e}, expensive backup a—c—{d,e};
/// receivers h1 on d, h2 on e, innocent h3 on a. Crashing or cutting the
/// b side always leaves the c side available.
#[allow(clippy::type_complexity)]
fn diamond() -> (
    Graph,
    (NodeId, NodeId, NodeId),
    NodeId,
    (NodeId, NodeId, NodeId),
) {
    let mut g = Graph::new();
    let a = g.add_router();
    let b = g.add_router();
    let c = g.add_router();
    let d = g.add_router();
    let e = g.add_router();
    g.add_link(a, b, 1, 1);
    g.add_link(b, d, 1, 1);
    g.add_link(b, e, 1, 1);
    g.add_link(a, c, 3, 3);
    g.add_link(c, d, 3, 3);
    g.add_link(c, e, 3, 3);
    let s = g.add_host(a, 1, 1);
    let h1 = g.add_host(d, 1, 1);
    let h2 = g.add_host(e, 1, 1);
    let h3 = g.add_host(a, 1, 1);
    (g, (a, b, c), s, (h1, h2, h3))
}

/// Joins the three receivers, applies `plan`, runs far past the fault
/// window, then asserts full exactly-once delivery and that the timer
/// population has returned to the engine's steady heartbeat.
fn converges_after<P: Protocol<Command = Cmd>>(proto: P, plan: &FaultPlan, quiet_timers: usize) {
    let (g, _, s, (h1, h2, h3)) = diamond();
    let mut k = Kernel::new(Network::new(g), proto, 11);
    let ch = Channel::primary(s);
    k.command_at(h1, Cmd::Join(ch), Time(0));
    k.command_at(h2, Cmd::Join(ch), Time(100));
    k.command_at(h3, Cmd::Join(ch), Time(200));
    k.install_faults(plan);
    k.run_until(Time(20_000));

    k.command_at(s, Cmd::SendData { ch, tag: 7 }, Time(20_000));
    k.run_until(Time(20_400));
    let mut served: Vec<NodeId> = k.stats().deliveries_tagged(7).map(|d| d.node).collect();
    served.sort();
    let mut want = vec![h1, h2, h3];
    want.sort();
    assert_eq!(served, want, "every receiver exactly once after the storm");

    // No timer leak: what remains is the engine's steady-state heartbeat
    // (probes, deadman sweeps), not abandoned retransmission ladders. The
    // bound is per-engine because the hard engine legitimately keeps a
    // few periodic timers alive forever.
    assert!(
        k.pending_timer_count() <= quiet_timers,
        "timer leak: {} live timers after quiescence (allowed {})",
        k.pending_timer_count(),
        quiet_timers
    );
}

/// Re-crash the branching router while the repair from its first crash is
/// still in flight, twice over, with the final restart staying up.
fn recrash_plan(b: NodeId) -> FaultPlan {
    FaultPlan::new()
        .node_down(Time(3_000), b)
        .node_up(Time(3_120), b) // restart blank mid-detection
        .node_down(Time(3_200), b) // re-crash before anyone settles on it
        .node_up(Time(3_450), b)
        .node_down(Time(3_500), b) // once more, mid re-home
        .node_up(Time(4_000), b)
}

/// Flap the a—b tree link with a 60-unit period — shorter than the
/// 100-unit tree period, so soft refreshes and hard probes both straddle
/// flaps — then leave it up.
fn flap_plan(a: NodeId, b: NodeId) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for i in 0..10 {
        let t = 3_000 + i * 120;
        plan = plan.link_down(Time(t), a, b).link_up(Time(t + 60), a, b);
    }
    plan
}

#[test]
fn soft_engine_survives_recrash_mid_repair() {
    let (_, (_, b, _), _, _) = diamond();
    // Soft quiescence: every t1/t2 timer is refresh-driven; after the
    // storm the periodic refresh population is bounded by the node count
    // times the handful of timer classes the engine arms.
    converges_after(Hbh::new(Timing::default()), &recrash_plan(b), 64);
}

#[test]
fn hard_engine_survives_recrash_mid_repair() {
    let (_, (_, b, _), _, _) = diamond();
    // Hard steady state: one probe timer per probing node, one deadman
    // sweep per branching node, one in-flight retransmission timer per
    // outstanding probe — well under 32 on this topology.
    converges_after(HbhHard::new(Timing::default()), &recrash_plan(b), 32);
}

#[test]
fn soft_engine_survives_fast_link_flap() {
    let (_, (a, b, _), _, _) = diamond();
    converges_after(Hbh::new(Timing::default()), &flap_plan(a, b), 64);
}

#[test]
fn hard_engine_survives_fast_link_flap() {
    let (_, (a, b, _), _, _) = diamond();
    converges_after(HbhHard::new(Timing::default()), &flap_plan(a, b), 32);
}
