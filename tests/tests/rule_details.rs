//! Focused tests for individual processing rules that the larger scenarios
//! exercise only incidentally: HBH's stale-MCT replacement (rule 7) vs.
//! fresh-MCT promotion (rule 8), REUNITE's stale-flag recovery, and PIM's
//! upstream join suppression.

use hbh_pim::{Pim, PimMsg};
use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_reunite::Reunite;
use hbh_sim_core::trace::TraceKind;
use hbh_sim_core::{Kernel, Network, Time};
use hbh_topo::graph::{Graph, NodeId};

/// Line: s(host) — a — b — c, with two hosts r1, r2 on c.
fn line() -> (Network, NodeId, [NodeId; 3], [NodeId; 2]) {
    let mut g = Graph::new();
    let a = g.add_router();
    let b = g.add_router();
    let c = g.add_router();
    g.add_link(a, b, 1, 1);
    g.add_link(b, c, 1, 1);
    let s = g.add_host(a, 1, 1);
    let r1 = g.add_host(c, 1, 1);
    let r2 = g.add_host(c, 1, 1);
    (Network::new(g), s, [a, b, c], [r1, r2])
}

#[test]
fn hbh_rule7_stale_mct_is_replaced_without_promotion() {
    // r1 joins and leaves; while the path routers' MCTs are stale (t1 <
    // elapsed < t2), r2 joins. Rule 7: the stale MCT entry is replaced by
    // r2 — the router must NOT promote to a branching node.
    let (net, s, [a, b, _c], [r1, r2]) = line();
    let timing = Timing::default();
    let ch = Channel::primary(s);
    let mut k = Kernel::new(net, Hbh::new(timing), 1);
    k.command_at(s, Cmd::StartSource(ch), Time::ZERO);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.run_until(Time(400));
    k.command_at(r1, Cmd::Leave(ch), Time(400));
    // Timeline: r1's last join refresh lands ≈ t=400; S's (unmarked) r1
    // entry keeps receiving tree emissions until it *dies* at ≈ 400+t2
    // (stale-unmarked entries stay tree-eligible — the fusion-chain
    // healing rule), so the path MCTs are refreshed until then and their
    // stale window is ≈ (400 + t2 + t1, 400 + 2·t2). Join r2 inside it.
    let join_at = 400 + timing.t2 + timing.t1 + 40;
    k.command_at(r2, Cmd::Join(ch), Time(join_at));
    k.run_until(Time(join_at + 3 * timing.tree_period));
    // Neither transit router became branching: the stale r1 MCT was
    // replaced by r2 (or had decayed), not promoted.
    for router in [a, b] {
        assert!(
            !k.state(router).is_branching(ch),
            "router {router} wrongly promoted from a stale MCT"
        );
        if let Some(mct) = k.state(router).mct(ch) {
            assert_eq!(mct.node(), r2, "MCT should now track r2");
        }
    }
}

#[test]
fn hbh_rule8_fresh_mct_promotes() {
    // Contrast case: r2 joins while r1 is still active — the transit
    // routers see two live targets and must promote (rule 8).
    let (net, s, [a, _b, _c], [r1, r2]) = line();
    let timing = Timing::default();
    let ch = Channel::primary(s);
    let mut k = Kernel::new(net, Hbh::new(timing), 1);
    k.command_at(s, Cmd::StartSource(ch), Time::ZERO);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(300));
    k.run_until(Time(1500));
    assert!(
        k.state(a).is_branching(ch),
        "first router on the shared path should promote via rule 8"
    );
}

#[test]
fn reunite_recovers_from_stale_flag_on_rejoin() {
    // r1 (the dst) leaves long enough for marked trees to stale-flag the
    // downstream table, then rejoins before t2 kills its entries. The
    // refreshed dst entry makes S emit unmarked trees again, which must
    // clear the downstream stale flag and restore normal operation.
    let (net, s, [_a, _b, c], [r1, r2]) = line();
    let timing = Timing::default();
    let ch = Channel::primary(s);
    let mut k = Kernel::new(net, Reunite::new(timing), 1);
    k.command_at(s, Cmd::StartSource(ch), Time::ZERO);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(200)); // promotes c (MCT{r1} + join r2)
    k.run_until(Time(1000));
    assert!(k.state(c).is_branching(ch), "c is the branching node");

    k.command_at(r1, Cmd::Leave(ch), Time(1000));
    // Past t1: S's dst entry is stale, marked trees flag c's table.
    let stale_window = 1000 + timing.t1 + timing.tree_period;
    k.run_until(Time(stale_window));
    if let Some(mft) = k.state(c).mft(ch) {
        assert!(
            mft.is_stale_flagged() || mft.dst_is_stale(k.now()),
            "departure should have staled the branching table"
        );
    }
    // Rejoin before t2 destroys the entries, then wait out the full
    // reconfiguration: r2 transiently re-registers at S while c's table is
    // flagged, and that parallel entry takes one t2 to decay (REUNITE's
    // documented transitional duplication).
    k.command_at(r1, Cmd::Join(ch), Time(stale_window + 10));
    k.run_until(Time(stale_window + 10 + timing.t2 + 6 * timing.tree_period));

    // Both receivers served again, exactly once.
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + 200);
    let mut nodes: Vec<NodeId> = k.stats().deliveries_tagged(1).map(|d| d.node).collect();
    nodes.sort();
    assert_eq!(nodes, vec![r1, r2], "recovery must restore both receivers");
}

#[test]
fn pim_suppresses_upstream_join_amplification() {
    // Two receivers behind the same router refresh every period; the
    // router may forward at most ~2 joins per period upstream (one per
    // half-period), not one per received join.
    let (net, s, [_a, b, _c], [r1, r2]) = line();
    let timing = Timing::default();
    let ch = Channel::primary(s);
    let mut k = Kernel::new(net, Pim::source_specific(timing), 1);
    k.command_at(s, Cmd::StartSource(ch), Time::ZERO);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(7));
    k.run_until(Time(1000));
    k.enable_trace();
    let window = 10 * timing.join_period;
    let t = k.now();
    k.run_until(t + window);
    let upstream_joins = k
        .take_trace()
        .iter()
        .filter(|rec| {
            rec.node == b
                && matches!(
                    &rec.what,
                    TraceKind::Sent { pkt, .. }
                        if matches!(pkt.payload, PimMsg::Join { downstream, .. } if downstream == b)
                )
        })
        .count();
    let periods = (window / timing.join_period) as usize;
    assert!(
        upstream_joins <= 2 * periods + 2,
        "router b forwarded {upstream_joins} joins in {periods} periods (amplification)"
    );
    assert!(
        upstream_joins >= periods - 2,
        "suppression must not starve upstream refresh"
    );
}

#[test]
fn hbh_first_join_reaches_source_even_through_branching_nodes() {
    // The "initial join is never intercepted" rule: a new receiver whose
    // path crosses an existing branching node must still register at S
    // (visible as an S MFT entry for it, at least transiently).
    let (net, s, [a, _b, _c], [r1, r2]) = line();
    let timing = Timing::default();
    let ch = Channel::primary(s);
    let mut k = Kernel::new(net, Hbh::new(timing), 1);
    k.command_at(s, Cmd::StartSource(ch), Time::ZERO);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(250));
    // Immediately after r2's initial join arrives (path length 4), S must
    // hold an entry for r2 itself — not an aggregate.
    k.run_until(Time(280));
    let mft = k.state(s).mft(ch).expect("source table");
    assert!(
        mft.contains(r2, k.now()),
        "initial join must reach the source"
    );
    let _ = a;
}
