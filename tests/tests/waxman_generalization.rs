//! Generalization check: the paper's qualitative results must hold on a
//! topology family it never tested (Waxman geometric random graphs), not
//! just on the two topologies the evaluation was tuned on.

use hbh_experiments::figures::eval::{
    evaluate, hbh_advantage_over_reunite, health_violations, EvalConfig, Metric,
};
use hbh_experiments::protocols::ProtocolKind;
use hbh_experiments::runner::RunConfig;
use hbh_experiments::scenario::TopologyKind;

fn cfg(runs: usize, sizes: Vec<usize>) -> EvalConfig {
    let mut c = EvalConfig::from_run(&RunConfig::new().topo(TopologyKind::Waxman30).runs(runs));
    c.sizes = sizes;
    c
}

#[test]
fn waxman_everyone_served_and_converged() {
    let c = cfg(5, vec![6, 18]);
    let points = evaluate(&c);
    assert_eq!(health_violations(&c, &points), None);
}

#[test]
fn waxman_hbh_matches_pim_ss_cost_and_beats_reunite() {
    let c = cfg(8, vec![12]);
    let points = evaluate(&c);
    let idx = |k: ProtocolKind| c.protocols.iter().position(|&p| p == k).unwrap();
    let p = &points[0].per_protocol;
    let hbh_cost = p[idx(ProtocolKind::Hbh)].cost.mean();
    let ss_cost = p[idx(ProtocolKind::PimSs)].cost.mean();
    let reunite_cost = p[idx(ProtocolKind::Reunite)].cost.mean();
    assert!(
        (hbh_cost - ss_cost).abs() < 0.1 * ss_cost,
        "HBH {hbh_cost} should track PIM-SS {ss_cost} on Waxman too"
    );
    assert!(
        reunite_cost > hbh_cost,
        "REUNITE {reunite_cost} should exceed HBH {hbh_cost} on Waxman too"
    );
    let delay_adv = hbh_advantage_over_reunite(&c, &points, Metric::Delay).unwrap();
    assert!(
        delay_adv >= -1.0,
        "HBH must not lose on delay ({delay_adv}%)"
    );
}

#[test]
fn waxman_shared_tree_is_worst_on_delay() {
    // Waxman(30, 0.9, 0.3) is well-connected like rand50, so the paper's
    // rand50 expectation (detouring via the RP always hurts) should
    // transfer.
    let c = cfg(8, vec![12]);
    let points = evaluate(&c);
    let idx = |k: ProtocolKind| c.protocols.iter().position(|&p| p == k).unwrap();
    let p = &points[0].per_protocol;
    let sm = p[idx(ProtocolKind::PimSm)].delay.mean();
    for k in [
        ProtocolKind::PimSs,
        ProtocolKind::Reunite,
        ProtocolKind::Hbh,
    ] {
        assert!(
            sm >= p[idx(k)].delay.mean(),
            "PIM-SM ({sm}) should have the worst delay; {} is {}",
            k.name(),
            p[idx(k)].delay.mean()
        );
    }
}
