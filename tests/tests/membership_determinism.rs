//! Pinned-seed determinism of the membership flash-crowd study: the
//! outcome of every run must be bit-identical whether the sweep executes
//! sequentially or fans out across worker threads. This is the guarantee
//! that lets CI pin `HBH_THREADS=1` for stable timings without changing
//! any reported number.
//!
//! This file holds exactly one test on purpose: `HBH_THREADS` is
//! process-global, and Rust runs the tests of one binary concurrently —
//! a sibling test reading the variable mid-flip would race.

use hbh_experiments::membership::{
    build_membership_graph, build_membership_scenario, MembershipConfig, MembershipStudy,
};
use hbh_experiments::parallel::map_runs;
use hbh_experiments::protocols::{dispatch, ProtocolKind};
use hbh_proto_base::Workload;
use hbh_sim_core::Time;

/// Every observable of one run the membership report would consume:
/// expected, served, converged, settle latency, control copies, events,
/// interior max state bytes, access max state bytes.
type Observables = (usize, usize, bool, Option<u64>, u64, u64, usize, usize);

/// Runs the smoke flash crowd for four independent seeds under the
/// current `HBH_THREADS` setting.
fn flash_outcomes() -> Vec<Observables> {
    let cfg = MembershipConfig::smoke();
    let template = build_membership_graph(&cfg);
    map_runs(4, |run| {
        let w = Workload::flash_crowd(cfg.group_size, Time(0));
        let sc = build_membership_scenario(&cfg, &template, &w, run);
        let o = dispatch(ProtocolKind::HbhAgg, &sc, &cfg.timing, &MembershipStudy);
        (
            o.expected,
            o.served,
            o.converged,
            o.settle_latency,
            o.control_copies,
            o.events,
            o.interior_state_max,
            o.access_state_max,
        )
    })
}

#[test]
fn flash_crowd_outcomes_are_identical_across_thread_counts() {
    std::env::set_var("HBH_THREADS", "1");
    let sequential = flash_outcomes();
    std::env::set_var("HBH_THREADS", "4");
    let parallel = flash_outcomes();
    std::env::remove_var("HBH_THREADS");
    assert_eq!(
        sequential, parallel,
        "flash-crowd outcomes must not depend on the worker count"
    );
    // And the study itself must serve everyone on every draw.
    for (i, o) in sequential.iter().enumerate() {
        assert_eq!(o.0, o.1, "run {i}: served {}/{} receivers", o.1, o.0);
        assert!(o.2, "run {i} failed to converge");
    }
}
