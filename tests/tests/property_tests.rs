//! Property-based tests: the protocol invariants must hold on *arbitrary*
//! connected topologies with arbitrary asymmetric costs and arbitrary
//! receiver sets — not just the paper's scenarios.
//!
//! Strategy: proptest supplies a seed + shape parameters; the topology is
//! generated deterministically from them (G(n, p) rejected for
//! connectivity), so every failure is replayable from the proptest seed.

use hbh_pim::Pim;
use hbh_proto::Hbh;
use hbh_proto_base::workload::sample_receivers;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_reunite::Reunite;
use hbh_routing::RoutingTables;
use hbh_sim_core::{Kernel, Network, Protocol, Time};
use hbh_topo::graph::{Graph, NodeId};
use hbh_topo::{costs, random};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random connected router backbone with hosts and asymmetric costs.
fn arb_network(seed: u64, routers: usize, avg_degree: f64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = random::gnp_with_avg_degree(routers, avg_degree, &mut rng);
    costs::assign_paper_costs(&mut g, &mut rng);
    g
}

struct Run {
    source: NodeId,
    receivers: Vec<NodeId>,
    graph: Graph,
}

fn make_run(seed: u64, routers: usize, group: usize) -> Run {
    let graph = arb_network(seed, routers, 3.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
    let hosts: Vec<NodeId> = graph.hosts().collect();
    let source = hosts[0];
    let pool: Vec<NodeId> = hosts[1..].to_vec();
    let group = group.min(pool.len());
    let receivers = sample_receivers(&pool, group, &mut rng);
    Run {
        source,
        receivers,
        graph,
    }
}

/// Converges the protocol with all receivers joined, probes once, and
/// returns (delays, cost, drops ...) plus the kernel for inspection.
fn converge_and_probe<P: Protocol<Command = Cmd>>(
    proto: P,
    run: &Run,
    seed: u64,
) -> (Kernel<P>, Vec<(NodeId, u64)>, u64) {
    let timing = Timing::default();
    let ch = Channel::primary(run.source);
    let mut k = Kernel::new(Network::new(run.graph.clone()), proto, seed);
    k.command_at(run.source, Cmd::StartSource(ch), Time::ZERO);
    for (i, &r) in run.receivers.iter().enumerate() {
        k.command_at(r, Cmd::Join(ch), Time(i as u64 * 77));
    }
    k.run_until(Time(
        timing.convergence_horizon(run.receivers.len() as u64 * 77),
    ));
    // Quiesce.
    for _ in 0..8 {
        let before = k.stats().structural_changes;
        let until = k.now() + 2 * timing.t2;
        k.run_until(until);
        if k.stats().structural_changes == before {
            break;
        }
    }
    let t = k.now();
    k.command_at(run.source, Cmd::SendData { ch, tag: 9 }, t);
    k.run_until(t + 4000);
    let delays: Vec<(NodeId, u64)> = k
        .stats()
        .deliveries_tagged(9)
        .map(|d| (d.node, d.delay()))
        .collect();
    let cost = k.stats().data_copies_tagged(9);
    (k, delays, cost)
}

fn exactly_once(run: &Run, delays: &[(NodeId, u64)]) -> Result<(), TestCaseError> {
    let mut nodes: Vec<NodeId> = delays.iter().map(|(n, _)| *n).collect();
    nodes.sort();
    let mut expect = run.receivers.clone();
    expect.sort();
    prop_assert_eq!(nodes, expect, "every member exactly once");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// HBH delivers to every member exactly once, at exactly the unicast
    /// shortest-path delay, on arbitrary asymmetric topologies.
    #[test]
    fn hbh_exactly_once_on_shortest_paths(
        seed in 0u64..10_000,
        routers in 5usize..12,
        group in 1usize..6,
    ) {
        let run = make_run(seed, routers, group);
        let (_, delays, _) = converge_and_probe(Hbh::new(Timing::default()), &run, seed);
        exactly_once(&run, &delays)?;
        let tables = RoutingTables::compute(&run.graph);
        for (r, d) in &delays {
            prop_assert_eq!(Some(*d), tables.dist(run.source, *r),
                "receiver {} off its shortest path", r);
        }
    }

    /// REUNITE delivers exactly once (its paths may be longer, but never
    /// duplicated or lost).
    #[test]
    fn reunite_exactly_once(
        seed in 0u64..10_000,
        routers in 5usize..12,
        group in 1usize..6,
    ) {
        let run = make_run(seed, routers, group);
        let (k, delays, _) =
            converge_and_probe(Reunite::new(Timing::default()), &run, seed);
        exactly_once(&run, &delays)?;
        prop_assert_eq!(k.stats().drops, 0, "steady-state drops");
    }

    /// PIM-SS delivers exactly once with cost equal to the analytic
    /// reverse SPT's link count.
    #[test]
    fn pim_ss_exactly_once_at_reverse_spt_cost(
        seed in 0u64..10_000,
        routers in 5usize..12,
        group in 1usize..6,
    ) {
        let run = make_run(seed, routers, group);
        let (_, delays, cost) =
            converge_and_probe(Pim::source_specific(Timing::default()), &run, seed);
        exactly_once(&run, &delays)?;
        let tables = RoutingTables::compute(&run.graph);
        let tree = hbh_routing::paths::reverse_spt(&tables, run.source, &run.receivers);
        prop_assert_eq!(cost as usize, tree.cost());
    }

    /// HBH's average delay never exceeds REUNITE's on the same draw
    /// (HBH serves every receiver at the minimum possible delay).
    #[test]
    fn hbh_delay_dominates_reunite(
        seed in 0u64..10_000,
        routers in 6usize..12,
        group in 2usize..6,
    ) {
        let run = make_run(seed, routers, group);
        let (_, dh, _) = converge_and_probe(Hbh::new(Timing::default()), &run, seed);
        let (_, dr, _) = converge_and_probe(Reunite::new(Timing::default()), &run, seed);
        exactly_once(&run, &dh)?;
        exactly_once(&run, &dr)?;
        let sum = |d: &[(NodeId, u64)]| d.iter().map(|(_, x)| *x).sum::<u64>();
        prop_assert!(sum(&dh) <= sum(&dr),
            "HBH {:?} worse than REUNITE {:?}", dh, dr);
    }

    /// Full teardown: after every member leaves and soft state decays, no
    /// node retains any table, and a probe touches no link.
    #[test]
    fn hbh_teardown_leaves_no_state(
        seed in 0u64..10_000,
        routers in 5usize..10,
        group in 1usize..5,
    ) {
        let run = make_run(seed, routers, group);
        let timing = Timing::default();
        let ch = Channel::primary(run.source);
        let mut k =
            Kernel::new(Network::new(run.graph.clone()), Hbh::new(timing), seed);
        k.command_at(run.source, Cmd::StartSource(ch), Time::ZERO);
        for (i, &r) in run.receivers.iter().enumerate() {
            k.command_at(r, Cmd::Join(ch), Time(i as u64 * 50));
        }
        k.run_until(Time(timing.convergence_horizon(500)));
        let t = k.now();
        for &r in &run.receivers {
            k.command_at(r, Cmd::Leave(ch), t);
        }
        k.run_until(t + 6 * timing.t2 + 10 * timing.tree_period);
        for node in k.network().graph().nodes() {
            prop_assert!(k.state(node).mft(ch).is_none(), "MFT lingers at {}", node);
            prop_assert!(k.state(node).mct(ch).is_none(), "MCT lingers at {}", node);
        }
        let t = k.now();
        k.command_at(run.source, Cmd::SendData { ch, tag: 3 }, t);
        k.run_until(t + 1000);
        prop_assert_eq!(k.stats().data_copies_tagged(3), 0);
    }
}
