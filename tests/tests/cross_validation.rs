//! Cross-validation of the message-driven protocol engines against the
//! analytic tree constructions in `hbh-routing::paths`: the converged
//! engines must produce exactly the trees the theory predicts, on both
//! evaluation topologies, across seeds.

use hbh_experiments::protocols::{pick_rp, run_protocol, ProtocolKind};
use hbh_experiments::scenario::{build, Scenario, ScenarioOptions, TopologyKind};
use hbh_proto_base::Timing;
use hbh_routing::paths::{forward_spt, reverse_spt};
use hbh_routing::RoutingTables;

fn scenario(topo: TopologyKind, m: usize, seed: u64) -> (Scenario, Timing) {
    let timing = Timing::default();
    (
        build(topo, m, seed, &timing, &ScenarioOptions::default()),
        timing,
    )
}

#[test]
fn pim_ss_realizes_the_analytic_reverse_spt() {
    for (topo, m) in [(TopologyKind::Isp, 8), (TopologyKind::Rand50, 12)] {
        for seed in [21, 22] {
            let (sc, timing) = scenario(topo, m, seed);
            let o = run_protocol(ProtocolKind::PimSs, &sc, &timing);
            let tables = RoutingTables::compute(sc.graph());
            let tree = reverse_spt(&tables, sc.source, &sc.receivers);
            assert_eq!(
                o.cost as usize,
                tree.cost(),
                "{topo:?} seed {seed}: engine cost vs analytic link count"
            );
            for (&r, &d) in &o.delays {
                assert_eq!(
                    Some(d),
                    tree.delay_to(sc.graph(), r),
                    "{topo:?} receiver {r}"
                );
            }
        }
    }
}

#[test]
fn hbh_realizes_the_forward_spt_delays() {
    for (topo, m) in [(TopologyKind::Isp, 10), (TopologyKind::Rand50, 15)] {
        for seed in [31, 32] {
            let (sc, timing) = scenario(topo, m, seed);
            let o = run_protocol(ProtocolKind::Hbh, &sc, &timing);
            let tables = RoutingTables::compute(sc.graph());
            assert!(o.complete(), "{topo:?} seed {seed}");
            for (&r, &d) in &o.delays {
                assert_eq!(
                    Some(d),
                    tables.dist(sc.source, r),
                    "{topo:?} seed {seed}: receiver {r} off its shortest path"
                );
            }
        }
    }
}

#[test]
fn hbh_cost_is_bracketed_by_spt_and_unicast_star() {
    // Lower bound: the forward SPT's link count (cannot deliver on
    // shortest paths with fewer transmissions). Upper bound: one
    // independent unicast per receiver.
    for seed in [41, 42, 43] {
        let (sc, timing) = scenario(TopologyKind::Isp, 10, seed);
        let o = run_protocol(ProtocolKind::Hbh, &sc, &timing);
        let tables = RoutingTables::compute(sc.graph());
        let spt = forward_spt(&tables, sc.source, &sc.receivers);
        let star: usize = sc
            .receivers
            .iter()
            .map(|&r| tables.path(sc.source, r).unwrap().len() - 1)
            .sum();
        assert!(
            (o.cost as usize) >= spt.cost(),
            "seed {seed}: cost {} below SPT bound {}",
            o.cost,
            spt.cost()
        );
        assert!(
            (o.cost as usize) <= star,
            "seed {seed}: cost {} above unicast star {}",
            o.cost,
            star
        );
    }
}

#[test]
fn hbh_cost_is_usually_exactly_the_spt() {
    // With all routers multicast-capable the converged HBH tree should
    // realize the forward SPT with one copy per link in the vast majority
    // of draws (ties between equal-cost paths can cost an extra copy).
    let mut exact = 0;
    let total = 10;
    for seed in 0..total {
        let (sc, timing) = scenario(TopologyKind::Isp, 8, 100 + seed);
        let o = run_protocol(ProtocolKind::Hbh, &sc, &timing);
        let tables = RoutingTables::compute(sc.graph());
        let spt = forward_spt(&tables, sc.source, &sc.receivers);
        if o.cost as usize == spt.cost() {
            exact += 1;
        }
    }
    assert!(
        exact >= 8,
        "only {exact}/{total} runs realized the exact SPT"
    );
}

#[test]
fn pim_sm_delay_decomposes_through_the_rp() {
    for seed in [51, 52] {
        let (sc, timing) = scenario(TopologyKind::Isp, 8, seed);
        let rp = pick_rp(&sc);
        let o = run_protocol(ProtocolKind::PimSm, &sc, &timing);
        let tables = RoutingTables::compute(sc.graph());
        let shared = reverse_spt(&tables, rp, &sc.receivers);
        let register = tables.dist(sc.source, rp).unwrap();
        for (&r, &d) in &o.delays {
            assert_eq!(
                d,
                register + shared.delay_to(sc.graph(), r).unwrap(),
                "seed {seed}: receiver {r}: delay ≠ d(S,RP) + shared-tree delay"
            );
        }
        // Cost: register path hops + shared tree links.
        let register_hops = tables.path(sc.source, rp).unwrap().len() - 1;
        assert_eq!(
            o.cost as usize,
            register_hops + shared.cost(),
            "seed {seed}"
        );
    }
}

#[test]
fn reunite_cost_never_beats_pim_ss_by_more_than_ties() {
    // RPF guarantees one copy per link of the reverse SPT; REUNITE serves
    // the same receivers with unicast copies, so it can only match or
    // exceed that cost.
    for seed in [61, 62, 63] {
        let (sc, timing) = scenario(TopologyKind::Isp, 10, seed);
        let reunite = run_protocol(ProtocolKind::Reunite, &sc, &timing);
        let ss = run_protocol(ProtocolKind::PimSs, &sc, &timing);
        assert!(
            reunite.cost + 1 >= ss.cost,
            "seed {seed}: REUNITE {} vs PIM-SS {}",
            reunite.cost,
            ss.cost
        );
    }
}

#[test]
fn paired_runs_share_the_same_draw() {
    // The evaluation is paired: the same scenario object must give every
    // protocol identical receiver sets and identical unicast routing.
    let (sc, timing) = scenario(TopologyKind::Isp, 6, 71);
    let a = run_protocol(ProtocolKind::Hbh, &sc, &timing);
    let b = run_protocol(ProtocolKind::PimSs, &sc, &timing);
    let ra: Vec<_> = a.delays.keys().collect();
    let rb: Vec<_> = b.delays.keys().collect();
    assert_eq!(ra, rb, "same receivers served");
}
