//! Group-dynamics tests (DESIGN.md A4): Poisson join/leave churn against
//! the recursive-unicast protocols. After the churn ends and soft state
//! settles, the tree must serve exactly the *current* members on correct
//! paths — no zombies from departed receivers, no lost members.

use hbh_proto::Hbh;
use hbh_proto_base::membership::{churn_schedule, ChurnEvent};
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_reunite::Reunite;
use hbh_routing::RoutingTables;
use hbh_sim_core::{Kernel, Network, Protocol, Time};
use hbh_topo::graph::NodeId;
use hbh_topo::{costs, isp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Runs a churn trace against the protocol and probes after quiescence.
/// Returns (final members, served receivers, kernel drops).
fn churn_run<P: Protocol<Command = Cmd>>(
    proto: P,
    seed: u64,
) -> (HashSet<NodeId>, HashSet<NodeId>, u64) {
    let timing = Timing::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = isp::isp_topology();
    costs::assign_paper_costs(&mut g, &mut rng);
    let source = isp::SOURCE_HOST;
    let pool = isp::receiver_pool(&g);
    let horizon = 4000;
    let events = churn_schedule(&pool, 120.0, Time(0), horizon, &mut rng);

    let ch = Channel::primary(source);
    let mut k = Kernel::new(Network::new(g), proto, seed);
    k.command_at(source, Cmd::StartSource(ch), Time::ZERO);
    let mut members: HashSet<NodeId> = HashSet::new();
    for (t, ev) in &events {
        match ev {
            ChurnEvent::Join(n) => {
                members.insert(*n);
                k.command_at(*n, Cmd::Join(ch), *t);
            }
            ChurnEvent::Leave(n) => {
                members.remove(n);
                k.command_at(*n, Cmd::Leave(ch), *t);
            }
        }
    }
    // Let the churn play out and the soft state settle.
    k.run_until(Time(horizon + timing.convergence_horizon(0)));
    for _ in 0..8 {
        let before = k.stats().structural_changes;
        let until = k.now() + 2 * timing.t2;
        k.run_until(until);
        if k.stats().structural_changes == before {
            break;
        }
    }
    let t = k.now();
    k.command_at(source, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + 2000);
    let served: HashSet<NodeId> = k.stats().deliveries_tagged(1).map(|d| d.node).collect();
    let delivery_count = k.stats().deliveries_tagged(1).count();
    assert_eq!(
        delivery_count,
        served.len(),
        "duplicate delivery under churn"
    );
    (members, served, k.stats().drops)
}

#[test]
fn hbh_serves_exactly_the_survivors_after_churn() {
    for seed in [1, 2, 3] {
        let (members, served, _) = churn_run(Hbh::new(Timing::default()), seed);
        assert_eq!(served, members, "seed {seed}");
    }
}

#[test]
fn reunite_serves_exactly_the_survivors_after_churn() {
    for seed in [1, 2, 3] {
        let (members, served, _) = churn_run(Reunite::new(Timing::default()), seed);
        assert_eq!(served, members, "seed {seed}");
    }
}

#[test]
fn hbh_post_churn_paths_are_still_shortest() {
    let timing = Timing::default();
    let seed = 7;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = isp::isp_topology();
    costs::assign_paper_costs(&mut g, &mut rng);
    let tables = RoutingTables::compute(&g);
    let source = isp::SOURCE_HOST;
    let pool = isp::receiver_pool(&g);
    let events = churn_schedule(&pool, 150.0, Time(0), 3000, &mut rng);

    let ch = Channel::primary(source);
    let mut k = Kernel::new(Network::new(g), Hbh::new(timing), seed);
    k.command_at(source, Cmd::StartSource(ch), Time::ZERO);
    for (t, ev) in &events {
        match ev {
            ChurnEvent::Join(n) => k.command_at(*n, Cmd::Join(ch), *t),
            ChurnEvent::Leave(n) => k.command_at(*n, Cmd::Leave(ch), *t),
        }
    }
    k.run_until(Time(3000 + timing.convergence_horizon(0) + 4 * timing.t2));
    let t = k.now();
    k.command_at(source, Cmd::SendData { ch, tag: 2 }, t);
    k.run_until(t + 2000);
    for d in k.stats().deliveries_tagged(2) {
        assert_eq!(
            Some(d.delay()),
            tables.dist(source, d.node),
            "receiver {} off SPT after churn",
            d.node
        );
    }
}
