//! End-to-end reproduction of the paper's mechanism figures, comparing
//! REUNITE and HBH on the exact scenario topologies (E5–E7 of DESIGN.md):
//!
//! * Figure 1  — recursive unicast distribution on the symmetric tree;
//! * Figure 2  — REUNITE pins r2 to a non-shortest path, and r1's
//!   departure *changes r2's route* (the instability HBH avoids);
//! * Figure 5  — HBH builds the shortest-path tree on the same topology;
//! * Figure 3  — REUNITE puts two copies of each packet on the shared
//!   link R1→R6, HBH suppresses the duplicate via fusion.

use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_reunite::Reunite;
use hbh_sim_core::{Kernel, Network, Protocol, Time};
use hbh_topo::graph::{Graph, NodeId};
use hbh_topo::scenarios;

fn n(g: &Graph, label: &str) -> NodeId {
    g.node_by_label(label).unwrap()
}

fn settle_time() -> u64 {
    let t = Timing::default();
    t.convergence_horizon(1000) + 4 * t.t2
}

/// Drives joins at the given (label, time) schedule, converges, probes,
/// and returns per-receiver delays plus per-link copy counts.
fn run<P>(proto: P, g: Graph, joins: &[(&str, u64)]) -> (Kernel<P>, Channel, Vec<(NodeId, u64)>)
where
    P: Protocol<Command = Cmd>,
{
    let source = n(&g, "S");
    let ch = Channel::primary(source);
    let mut k = Kernel::new(Network::new(g), proto, 5);
    k.command_at(source, Cmd::StartSource(ch), Time::ZERO);
    for &(label, t) in joins {
        let r = n(k.network().graph(), label);
        k.command_at(r, Cmd::Join(ch), Time(t));
    }
    k.run_until(Time(settle_time()));
    let t = k.now();
    k.command_at(source, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + 500);
    let mut delays: Vec<(NodeId, u64)> = k
        .stats()
        .deliveries_tagged(1)
        .map(|d| (d.node, d.delay()))
        .collect();
    delays.sort();
    (k, ch, delays)
}

// --- Figure 1 ----------------------------------------------------------

#[test]
fn fig1_reunite_delivers_to_all_eight_receivers_once() {
    let g = scenarios::fig1();
    let joins: Vec<(String, u64)> = (1..=8).map(|i| (format!("r{i}"), i as u64 * 150)).collect();
    let joins_ref: Vec<(&str, u64)> = joins.iter().map(|(s, t)| (s.as_str(), *t)).collect();
    let (k, _, delays) = run(Reunite::new(Timing::default()), g, &joins_ref);
    assert_eq!(delays.len(), 8);
    assert_eq!(
        k.stats().data_copies_tagged(1),
        15,
        "one copy per tree link"
    );
}

#[test]
fn fig1_hbh_matches_reunite_on_symmetric_tree() {
    // On a tree topology with symmetric costs the two protocols must
    // produce identical cost and delays (there is only one possible tree).
    let joins: Vec<(String, u64)> = (1..=8).map(|i| (format!("r{i}"), i as u64 * 150)).collect();
    let joins_ref: Vec<(&str, u64)> = joins.iter().map(|(s, t)| (s.as_str(), *t)).collect();
    let (kr, _, dr) = run(
        Reunite::new(Timing::default()),
        scenarios::fig1(),
        &joins_ref,
    );
    let (kh, _, dh) = run(Hbh::new(Timing::default()), scenarios::fig1(), &joins_ref);
    assert_eq!(dr, dh, "identical delays on the unique tree");
    assert_eq!(
        kr.stats().data_copies_tagged(1),
        kh.stats().data_copies_tagged(1),
        "identical cost on the unique tree"
    );
}

#[test]
fn fig1_branching_nodes_hold_forwarding_state_leaves_none() {
    let g = scenarios::fig1();
    let joins: Vec<(String, u64)> = (1..=8).map(|i| (format!("r{i}"), i as u64 * 150)).collect();
    let joins_ref: Vec<(&str, u64)> = joins.iter().map(|(s, t)| (s.as_str(), *t)).collect();
    let (k, ch, _) = run(Hbh::new(Timing::default()), g, &joins_ref);
    let g = k.network().graph();
    // H6 and H7 fan out to three receivers each: they must be branching.
    for label in ["H6", "H7"] {
        let node = n(g, label);
        assert!(
            k.state(node).is_branching(ch),
            "{label} should be branching"
        );
        assert_eq!(
            k.state(node).mft(ch).unwrap().data_targets(k.now()).count(),
            3,
            "{label} fans out to its three receivers"
        );
    }
}

// --- Figure 2 (REUNITE) -------------------------------------------------

#[test]
fn fig2_reunite_pins_r2_to_the_tree_message_path() {
    // r1 joins first (at S), r2's join is captured at R3 → data for r2
    // follows S→R1→R3→r2 (delay 1+1+3 = 5) instead of the shortest path
    // S→R4→r2 (delay 2).
    let (_, _, delays) = run(
        Reunite::new(Timing::default()),
        scenarios::fig2(),
        &[("r1", 0), ("r2", 400)],
    );
    let g = scenarios::fig2();
    let (r1, r2) = (n(&g, "r1"), n(&g, "r2"));
    let find = |x: NodeId, d: &[(NodeId, u64)]| d.iter().find(|(n, _)| *n == x).unwrap().1;
    assert_eq!(find(r1, &delays), 3, "r1 on its shortest path");
    assert_eq!(find(r2, &delays), 5, "r2 pinned to the non-shortest branch");
}

#[test]
fn fig2_reunite_departure_of_r1_changes_r2s_route() {
    // The paper's stability complaint: when r1 leaves, the marked-tree
    // reconfiguration makes r2 re-join at S and its route flips to the
    // shortest path — a route change caused by *another* receiver.
    let g = scenarios::fig2();
    let source = n(&g, "S");
    let (r1, r2) = (n(&g, "r1"), n(&g, "r2"));
    let ch = Channel::primary(source);
    let timing = Timing::default();
    let mut k = Kernel::new(Network::new(g), Reunite::new(timing), 5);
    k.command_at(source, Cmd::StartSource(ch), Time::ZERO);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(400));
    k.run_until(Time(settle_time()));

    let t = k.now();
    k.command_at(source, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + 500);
    let before = k
        .stats()
        .deliveries_tagged(1)
        .find(|d| d.node == r2)
        .unwrap()
        .delay();
    assert_eq!(before, 5);

    k.command_at(r1, Cmd::Leave(ch), k.now());
    let quiet = k.now() + 6 * timing.t2 + 10 * timing.tree_period;
    k.run_until(quiet);
    let t = k.now();
    k.command_at(source, Cmd::SendData { ch, tag: 2 }, t);
    k.run_until(t + 500);
    let after: Vec<_> = k.stats().deliveries_tagged(2).collect();
    assert_eq!(after.len(), 1, "only r2 remains");
    assert_eq!(
        after[0].delay(),
        2,
        "r2 rerouted to the shortest path (Figure 2(d))"
    );
}

// --- Figure 5 (HBH on the same topology) ---------------------------------

#[test]
fn fig5_hbh_serves_everyone_on_shortest_paths_where_reunite_does_not() {
    let joins: [(&str, u64); 3] = [("r1", 0), ("r2", 400), ("r3", 800)];
    let (kh, _, dh) = run(Hbh::new(Timing::default()), scenarios::fig2(), &joins);
    let (_, _, dr) = run(Reunite::new(Timing::default()), scenarios::fig2(), &joins);
    let g = scenarios::fig2();
    let tables = hbh_routing::RoutingTables::compute(&g);
    let s = n(&g, "S");
    for (node, delay) in &dh {
        assert_eq!(
            Some(*delay),
            tables.dist(s, *node),
            "HBH receiver {node} off its shortest path"
        );
    }
    // REUNITE's average delay is strictly worse on this topology.
    let avg = |d: &[(NodeId, u64)]| d.iter().map(|(_, x)| x).sum::<u64>() as f64 / d.len() as f64;
    assert!(avg(&dr) > avg(&dh), "REUNITE {dr:?} vs HBH {dh:?}");
    let _ = kh;
}

// --- Figure 3 ------------------------------------------------------------

#[test]
fn fig3_reunite_duplicates_on_the_shared_link_hbh_does_not() {
    let joins: [(&str, u64); 2] = [("r1", 0), ("r2", 400)];
    let (kr, _, dr) = run(Reunite::new(Timing::default()), scenarios::fig3(), &joins);
    let (kh, _, dh) = run(Hbh::new(Timing::default()), scenarios::fig3(), &joins);
    assert_eq!(dr.len(), 2);
    assert_eq!(dh.len(), 2);

    let g = scenarios::fig3();
    let shared = (n(&g, "R1"), n(&g, "R6"));
    let reunite_copies = kr.stats().data_copies_per_link(1);
    let hbh_copies = kh.stats().data_copies_per_link(1);
    assert_eq!(
        reunite_copies[&shared], 2,
        "REUNITE: two copies of the same packet on R1→R6 (Figure 3)"
    );
    assert_eq!(
        hbh_copies[&shared], 1,
        "HBH: fusion suppresses the duplicate"
    );
    assert!(
        kh.stats().data_copies_tagged(1) < kr.stats().data_copies_tagged(1),
        "HBH tree strictly cheaper"
    );
}

#[test]
fn fig3_both_protocols_deliver_exactly_once_despite_duplication() {
    // REUNITE's duplicate copies burn bandwidth but must not double-deliver
    // (both copies are addressed to distinct receivers).
    let joins: [(&str, u64); 2] = [("r1", 0), ("r2", 400)];
    let (kr, _, dr) = run(Reunite::new(Timing::default()), scenarios::fig3(), &joins);
    assert_eq!(dr.len(), 2, "each receiver exactly once");
    assert_eq!(kr.stats().deliveries_tagged(1).count(), 2);
}
