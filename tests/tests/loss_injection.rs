//! Failure injection: soft-state protocols must converge and deliver even
//! when a substantial fraction of *control* packets is lost — the next
//! refresh cycle repairs whatever a lost join/tree/fusion left behind.
//! (The paper takes this robustness as given; these tests earn it.)

use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_reunite::Reunite;
use hbh_routing::RoutingTables;
use hbh_sim_core::{Kernel, LossModel, Network, Protocol, Time};
use hbh_topo::graph::NodeId;
use hbh_topo::{costs, isp};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Setup {
    net: Network,
    source: NodeId,
    receivers: Vec<NodeId>,
}

fn setup(seed: u64) -> Setup {
    let mut g = isp::isp_topology();
    costs::assign_paper_costs(&mut g, &mut StdRng::seed_from_u64(seed));
    Setup {
        net: Network::new(g),
        source: isp::SOURCE_HOST,
        receivers: vec![NodeId(21), NodeId(25), NodeId(29), NodeId(33)],
    }
}

/// Converge under loss, then probe over a *lossless* window (we are
/// testing control-plane robustness, not data loss — the probe itself
/// must not be eaten by the injector).
fn probe_under_control_loss<P: Protocol<Command = Cmd>>(
    proto: P,
    loss: f64,
    seed: u64,
) -> (usize, u64, usize) {
    let s = setup(seed);
    let timing = Timing::default();
    let ch = Channel::primary(s.source);
    let mut k = Kernel::new(s.net, proto, seed);
    k.set_loss(LossModel::control_only(loss));
    k.command_at(s.source, Cmd::StartSource(ch), Time::ZERO);
    for (i, &r) in s.receivers.iter().enumerate() {
        k.command_at(r, Cmd::Join(ch), Time(i as u64 * 100));
    }
    // Loss slows convergence: give it several extra refresh generations.
    k.run_until(Time(3 * timing.convergence_horizon(400)));
    k.set_loss(LossModel::default());
    // Settle any repair still in flight, then probe.
    let settle = k.now() + 2 * timing.t2;
    k.run_until(settle);
    let t = k.now();
    k.command_at(s.source, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + 2000);
    let served = k.stats().deliveries_tagged(1).count();
    let cost = k.stats().data_copies_tagged(1);
    (served, cost, s.receivers.len())
}

#[test]
fn hbh_survives_twenty_percent_control_loss() {
    for seed in [1, 2, 3] {
        let (served, _, expected) =
            probe_under_control_loss(Hbh::new(Timing::default()), 0.20, seed);
        assert_eq!(
            served, expected,
            "seed {seed}: receivers starved under loss"
        );
    }
}

#[test]
fn reunite_survives_twenty_percent_control_loss() {
    for seed in [1, 2, 3] {
        let (served, _, expected) =
            probe_under_control_loss(Reunite::new(Timing::default()), 0.20, seed);
        assert_eq!(
            served, expected,
            "seed {seed}: receivers starved under loss"
        );
    }
}

#[test]
fn pim_ss_survives_twenty_percent_control_loss() {
    for seed in [1, 2, 3] {
        let (served, _, expected) =
            probe_under_control_loss(hbh_pim::Pim::source_specific(Timing::default()), 0.20, seed);
        assert_eq!(
            served, expected,
            "seed {seed}: receivers starved under loss"
        );
    }
}

#[test]
fn hbh_paths_remain_shortest_after_lossy_convergence() {
    let s = setup(9);
    let timing = Timing::default();
    let ch = Channel::primary(s.source);
    let tables = RoutingTables::compute(&{
        let mut g = isp::isp_topology();
        costs::assign_paper_costs(&mut g, &mut StdRng::seed_from_u64(9));
        g
    });
    let mut k = Kernel::new(s.net, Hbh::new(timing), 9);
    k.set_loss(LossModel::control_only(0.15));
    k.command_at(s.source, Cmd::StartSource(ch), Time::ZERO);
    for (i, &r) in s.receivers.iter().enumerate() {
        k.command_at(r, Cmd::Join(ch), Time(i as u64 * 100));
    }
    k.run_until(Time(3 * timing.convergence_horizon(400)));
    k.set_loss(LossModel::default());
    let settle = k.now() + 2 * timing.t2;
    k.run_until(settle);
    let t = k.now();
    k.command_at(s.source, Cmd::SendData { ch, tag: 2 }, t);
    k.run_until(t + 2000);
    for d in k.stats().deliveries_tagged(2) {
        assert_eq!(
            Some(d.delay()),
            tables.dist(s.source, d.node),
            "receiver {} ended off-SPT after lossy convergence",
            d.node
        );
    }
}

#[test]
fn data_loss_is_injected_and_counted() {
    // Sanity: with 100% data loss nothing is delivered but transmissions
    // are still accounted (the copy occupied the link before dying).
    let s = setup(4);
    let timing = Timing::default();
    let ch = Channel::primary(s.source);
    let mut k = Kernel::new(s.net, Hbh::new(timing), 4);
    k.command_at(s.source, Cmd::StartSource(ch), Time::ZERO);
    k.command_at(s.receivers[0], Cmd::Join(ch), Time(0));
    k.run_until(Time(timing.convergence_horizon(100)));
    k.set_loss(LossModel {
        control: 0.0,
        data: 1.0,
    });
    let t = k.now();
    k.command_at(s.source, Cmd::SendData { ch, tag: 3 }, t);
    k.run_until(t + 1000);
    assert_eq!(k.stats().deliveries_tagged(3).count(), 0);
    assert!(
        k.stats().data_copies_tagged(3) > 0,
        "the first hop was transmitted"
    );
}
