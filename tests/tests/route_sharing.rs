//! Route-sharing equivalence: every protocol must produce bit-identical
//! probe outcomes whether its kernel runs over the scenario's shared
//! `Network` (one `Arc`'d routing computation reused by all four paired
//! kernels) or over a network rebuilt from scratch for that kernel alone.
//!
//! This is the safety net under the paired-run optimisation: routing
//! tables are pure functions of the cost draw, kernels never mutate them,
//! so sharing may not change a single delivery, delay, or counter.

use hbh_experiments::protocols::{run_protocol, run_protocol_isolated, ProtocolKind};
use hbh_experiments::scenario::{build, ScenarioOptions, TopologyKind};
use hbh_proto_base::Timing;

fn assert_shared_equals_isolated(topo: TopologyKind, group_size: usize, seed: u64) {
    let timing = Timing::default();
    let sc = build(topo, group_size, seed, &timing, &ScenarioOptions::default());
    for kind in ProtocolKind::ALL {
        let shared = run_protocol(kind, &sc, &timing);
        let isolated = run_protocol_isolated(kind, &sc, &timing);
        assert_eq!(
            shared,
            isolated,
            "{} diverged between shared and isolated networks ({} m={group_size} seed={seed})",
            kind.name(),
            topo.name(),
        );
        assert!(
            shared.complete(),
            "{} incomplete under sharing",
            kind.name()
        );
    }
}

#[test]
fn shared_network_outcomes_match_isolated_on_isp() {
    for seed in [1, 42, 0xC0FFEE] {
        assert_shared_equals_isolated(TopologyKind::Isp, 8, seed);
    }
}

#[test]
fn shared_network_outcomes_match_isolated_on_rand50() {
    // One seed: the 50-node topology is an order of magnitude slower in
    // debug builds, and the sharing machinery is topology-agnostic.
    assert_shared_equals_isolated(TopologyKind::Rand50, 10, 7);
}
