//! Self-stabilization under churn: after arbitrary joins, leaves and link
//! failures followed by quiescence, the HBH tree must be *indistinguishable*
//! from a tree built fresh on the surviving topology for the surviving
//! members — same served set, same delivery delays, same tree cost. Soft
//! state means history cannot leave a scar.
//!
//! Both halves are driven by the shared [`Script`] schedule type, and the
//! churn figure module is pinned by a fixed-seed regression test.

use hbh_proto::Hbh;
use hbh_proto_base::workload::sample_receivers;
use hbh_proto_base::{Channel, Cmd, Script, Timing};
use hbh_routing::RoutingTables;
use hbh_sim_core::{FaultEvent, Kernel, Network, Protocol, Time};
use hbh_topo::graph::{Graph, NodeId};
use hbh_topo::{costs, random};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn arb_network(seed: u64, routers: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = random::gnp_with_avg_degree(routers, 3.0, &mut rng);
    costs::assign_paper_costs(&mut g, &mut rng);
    g
}

/// Probes a quiesced kernel once and returns `(delay per receiver, cost)`.
fn probe<P: Protocol<Command = Cmd>>(
    k: &mut Kernel<P>,
    ch: Channel,
) -> (BTreeMap<NodeId, u64>, u64) {
    let t = k.now();
    k.command_at(ch.source, Cmd::SendData { ch, tag: 9 }, t);
    k.run_until(t + 4000);
    let delays = k
        .stats()
        .deliveries_tagged(9)
        .map(|d| (d.node, d.delay()))
        .collect();
    (delays, k.stats().data_copies_tagged(9))
}

/// Runs the kernel until no structural change happens for two full destroy
/// periods (the same quiescence loop the experiment runner uses).
fn quiesce<P: Protocol<Command = Cmd>>(k: &mut Kernel<P>, timing: &Timing) {
    for _ in 0..8 {
        let before = k.stats().structural_changes;
        let until = k.now() + 2 * timing.t2;
        k.run_until(until);
        if k.stats().structural_changes == before {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// The headline property: churn + quiescence ≡ fresh build on the
    /// surviving topology.
    #[test]
    fn healed_tree_equals_fresh_tree_on_surviving_topology(
        seed in 0u64..10_000,
        routers in 6usize..12,
        group in 2usize..6,
        leave_n in 0usize..3,
        fail_picks in prop::collection::vec(0usize..64, 0..3),
    ) {
        let timing = Timing::default();
        let graph = arb_network(seed, routers);
        let hosts: Vec<NodeId> = graph.hosts().collect();
        let source = hosts[0];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
        let receivers = sample_receivers(&hosts[1..], group.min(hosts.len() - 1), &mut rng);
        let leave_n = leave_n.min(receivers.len() - 1);
        let (leavers, survivors) = receivers.split_at(leave_n);

        // Pick link failures that keep every survivor reachable; a pick
        // that would cut a survivor off is simply not injected (soft state
        // heals partitions too, but then "the same tree" is undefined).
        let links = graph.undirected_links();
        let mut edge_down = vec![false; graph.directed_edge_count()];
        let mut failed_links = Vec::new();
        let no_node_down = vec![false; graph.node_count()];
        for pick in fail_picks {
            let (a, b, _, _) = links[pick % links.len()];
            let mut trial = edge_down.clone();
            for (x, y) in [(a, b), (b, a)] {
                let (eid, _) = graph.edge_entry(x, y).unwrap();
                trial[eid.index()] = true;
            }
            let t = RoutingTables::compute_avoiding(&graph, &no_node_down, &trial);
            let survivors_reachable = survivors
                .iter()
                .all(|&r| t.dist(source, r).is_some());
            if survivors_reachable && !failed_links.contains(&(a, b)) {
                edge_down = trial;
                failed_links.push((a, b));
            }
        }

        // The churn history, as one declarative script.
        let ch = Channel::primary(source);
        let join_window = receivers.len() as u64 * 60;
        let t_fail = join_window + 400;
        let t_leave = t_fail + 300;
        let mut script = Script::new().start_source(Time::ZERO, ch);
        for (i, &r) in receivers.iter().enumerate() {
            script = script.join(Time(i as u64 * 60), r, ch);
        }
        for (i, &(a, b)) in failed_links.iter().enumerate() {
            script = script.fail_link(Time(t_fail + i as u64 * 50), a, b);
        }
        for (i, &r) in leavers.iter().enumerate() {
            script = script.leave(Time(t_leave + i as u64 * 30), r, ch);
        }

        let mut churned = Kernel::new(Network::new(graph.clone()), Hbh::new(timing), seed);
        script.schedule(&mut churned);
        churned.run_until(Time(timing.convergence_horizon(script.duration().0)));
        quiesce(&mut churned, &timing);
        let (churned_delays, churned_cost) = probe(&mut churned, ch);

        // Fresh kernel on the surviving topology: same link-down routing
        // tables, only the survivors ever join.
        let tables = RoutingTables::compute_avoiding(&graph, &no_node_down, &edge_down);
        let net = Network::with_tables(graph.clone(), tables);
        let mut fresh = Kernel::new(net, Hbh::new(timing), seed);
        let mut fresh_script = Script::new().start_source(Time::ZERO, ch);
        for (i, &r) in survivors.iter().enumerate() {
            fresh_script = fresh_script.join(Time(i as u64 * 60), r, ch);
        }
        fresh_script.schedule(&mut fresh);
        fresh.run_until(Time(timing.convergence_horizon(fresh_script.duration().0)));
        quiesce(&mut fresh, &timing);
        let (fresh_delays, fresh_cost) = probe(&mut fresh, ch);

        let mut expect: Vec<NodeId> = survivors.to_vec();
        expect.sort();
        let served: Vec<NodeId> = churned_delays.keys().copied().collect();
        prop_assert_eq!(&served, &expect, "churned tree must serve exactly the survivors");
        prop_assert_eq!(&churned_delays, &fresh_delays,
            "healed tree delays differ from a fresh build (links failed: {:?})", failed_links);
        prop_assert_eq!(churned_cost, fresh_cost,
            "healed tree cost differs from a fresh build (links failed: {:?})", failed_links);
    }
}

/// A script is one schedule, not one backend: replaying it through
/// [`Script::schedule`] must be indistinguishable from issuing the same
/// commands and faults by hand.
#[test]
fn script_schedule_matches_manual_scheduling() {
    let timing = Timing::default();
    let graph = hbh_topo::scenarios::fig1();
    let n = |l: &str| graph.node_by_label(l).unwrap();
    let (s, h2, r1, r4) = (n("S"), n("H2"), n("r1"), n("r4"));
    let ch = Channel::primary(s);
    let script = Script::new()
        .start_source(Time::ZERO, ch)
        .join(Time(50), r1, ch)
        .join(Time(100), r4, ch)
        .send(Time(1500), ch, 1)
        .fail_node(Time(1600), h2)
        .send(Time(1700), ch, 2)
        .restore_node(Time(1900), h2)
        .send(Time(4000), ch, 3);
    let horizon = Time(timing.convergence_horizon(script.duration().0));

    let mut scripted = Kernel::new(Network::new(graph.clone()), Hbh::new(timing), 7);
    script.schedule(&mut scripted);
    scripted.run_until(horizon);

    let mut manual = Kernel::new(Network::new(graph.clone()), Hbh::new(timing), 7);
    manual.command_at(s, Cmd::StartSource(ch), Time::ZERO);
    manual.command_at(r1, Cmd::Join(ch), Time(50));
    manual.command_at(r4, Cmd::Join(ch), Time(100));
    manual.command_at(s, Cmd::SendData { ch, tag: 1 }, Time(1500));
    manual.schedule_fault(Time(1600), FaultEvent::NodeDown(h2));
    manual.command_at(s, Cmd::SendData { ch, tag: 2 }, Time(1700));
    manual.schedule_fault(Time(1900), FaultEvent::NodeUp(h2));
    manual.command_at(s, Cmd::SendData { ch, tag: 3 }, Time(4000));
    manual.run_until(horizon);

    for tag in [1, 2, 3] {
        let collect = |k: &Kernel<Hbh>| -> Vec<(NodeId, u64)> {
            k.stats()
                .deliveries_tagged(tag)
                .map(|d| (d.node, d.delay()))
                .collect()
        };
        assert_eq!(
            collect(&scripted),
            collect(&manual),
            "tag {tag} deliveries differ"
        );
        assert_eq!(
            scripted.stats().data_copies_tagged(tag),
            manual.stats().data_copies_tagged(tag)
        );
    }
    assert_eq!(scripted.stats().drops, manual.stats().drops);
    // The crash itself must have been visible: tag 2 misses r1.
    let served2: Vec<NodeId> = scripted
        .stats()
        .deliveries_tagged(2)
        .map(|d| d.node)
        .collect();
    assert!(!served2.contains(&r1), "r1 was served across a dead router");
    assert!(
        served2.contains(&r4),
        "innocent receiver r4 must keep receiving"
    );
}

/// Fixed-seed regression for the churn experiment: pins the repair
/// behaviour end to end (victim choice, probe cadence, bookkeeping). Any
/// change to these numbers is a behaviour change and must be deliberate.
#[test]
fn churn_experiment_pinned_seed_regression() {
    use hbh_experiments::figures::churn::{evaluate, ChurnConfig};
    use hbh_experiments::runner::RunConfig;

    let cfg = ChurnConfig::from_run(&RunConfig::new().runs(2).seed(1));
    let report = evaluate(&cfg);
    assert_eq!(report.skipped, 0);
    let [reunite, hbh, hard] = &report.points[..] else {
        panic!("expected the three churn arms");
    };
    for (name, p) in [("REUNITE", reunite), ("HBH", hbh), ("HBH-HARD", hard)] {
        assert_eq!(p.unrepaired, 0, "{name} failed to repair");
        assert_eq!(p.unrecovered, 0, "{name} failed to recover");
    }
    assert_eq!(
        hbh.perturbed.mean(),
        0.0,
        "HBH must not perturb innocent receivers"
    );
    // The hard variant's selling point, as a hard gate: event-driven
    // repair beats soft-state refresh-and-decay outright, without ever
    // touching a receiver the crash did not affect.
    assert!(
        hard.repair_latency.mean() < hbh.repair_latency.mean(),
        "HBH-HARD (mean {}) must repair strictly faster than soft HBH (mean {})",
        hard.repair_latency.mean(),
        hbh.repair_latency.mean()
    );
    assert_eq!(
        hard.perturbed.mean(),
        0.0,
        "HBH-HARD must not perturb innocent receivers"
    );
    assert!(
        hard.retransmits.mean() >= 0.0 && hbh.retransmits.mean() == 0.0,
        "only the reliable layer retransmits"
    );
    // Pinned means: deterministic across runs, threads and platforms.
    let pin = |s: &hbh_experiments::stats::Summary| (s.mean() * 1000.0).round();
    let snap = |points: &[hbh_experiments::figures::churn::ChurnPoint]| {
        let (reunite, hbh, hard) = (&points[0], &points[1], &points[2]);
        [
            pin(&reunite.repair_latency),
            pin(&reunite.lost),
            pin(&reunite.duplicates),
            pin(&reunite.perturbed),
            pin(&hbh.repair_latency),
            pin(&hbh.lost),
            pin(&hbh.duplicates),
            pin(&hard.repair_latency),
            pin(&hard.lost),
            pin(&hard.duplicates),
        ]
    };
    let snapshot = snap(&report.points);
    let again = evaluate(&cfg);
    assert_eq!(
        snapshot,
        snap(&again.points),
        "churn evaluation must be deterministic"
    );
    // The absolute values, pinned. Update deliberately if the protocol,
    // victim selection or probe cadence changes.
    assert_eq!(snapshot, CHURN_PIN, "pinned churn numbers drifted");
}

/// `(mean × 1000).round()` for REUNITE `[repair, lost, dup, perturbed]`,
/// HBH `[repair, lost, dup]`, then HBH-HARD `[repair, lost, dup]`, at ISP
/// topology, 2 runs, seed 1.
///
/// The HBH-HARD triple moved (150 → 250 repair, 5 → 9.5 lost) when probe
/// redirects were introduced: a probe answered `known = false` for a
/// *marked* entry now re-homes onto the named coverer instead of
/// rejoining. When that coverer is the node that just crashed, the child
/// pays one retransmission ladder to discover it before the hinted
/// rejoin — the price of making marked-entry probes convergent (the old
/// immediate rejoin unmarked the entry and oscillated forever against
/// the coverer's fusions whenever the coverer was alive).
const CHURN_PIN: [f64; 10] = [
    250000.0, 8500.0, 0.0, 0.0, 350000.0, 7500.0, 107000.0, 250000.0, 9500.0, 4000.0,
];
