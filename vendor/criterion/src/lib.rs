//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface the workspace's benches use
//! ([`Criterion`], [`Bencher`], [`criterion_group!`], [`criterion_main!`])
//! with a simple wall-clock measurement loop: each benchmark warms up
//! briefly, runs `sample_size` timed samples, and prints min/median/mean.
//! No plots, no statistical regression analysis, no saved baselines.

use std::time::{Duration, Instant};

/// Times closures handed to [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Benchmark driver; collects samples and prints a short report per bench.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (upstream default: 100).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints `min / median / mean` per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Calibrate roughly one sample's worth of iterations on ~50ms.
        let mut b = Bencher {
            samples: Vec::with_capacity(1),
            iters_per_sample: 1,
        };
        f(&mut b);
        let once = b
            .samples
            .first()
            .copied()
            .unwrap_or(Duration::from_nanos(1))
            .max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: iters,
        };
        f(&mut b);
        let mut samples = b.samples;
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{id:<40} min {min:>12.2?}  median {median:>12.2?}  mean {mean:>12.2?}  ({} samples x {iters} iters)",
            samples.len()
        );
        self
    }
}

/// Declares a group of benchmark functions plus the `Criterion` config to
/// run them with. Mirrors upstream's two syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point: runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    fn target(c: &mut Criterion) {
        c.bench_function("macro_target", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default().sample_size(2);
        targets = target
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        shim_group();
    }
}
