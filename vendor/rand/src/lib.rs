//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact API surface it consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] sampling methods
//! (`random::<T>()`, `random_range(..)`).
//!
//! The generator is **xoshiro256\*\*** seeded through SplitMix64 — a
//! well-studied, high-quality 256-bit PRNG (Blackman & Vigna). It is not
//! the upstream `StdRng` stream (ChaCha12), but every consumer in this
//! workspace treats the stream as an opaque deterministic function of the
//! seed, which this preserves: same seed ⇒ same stream, forever, on every
//! platform.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Re-export home of the standard generator, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic 256-bit PRNG (xoshiro256** under the hood).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The core generator: returns the next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

use rngs::StdRng;

/// Types that can be drawn uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types [`RngExt::random_range`] can sample.
pub trait UniformInt: Copy + PartialOrd {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 { self as u64 }
            #[inline]
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges acceptable to [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Inclusive `(lo, hi)` bounds; panics if empty.
    fn bounds(&self) -> (T, T);
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn bounds(&self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample empty range");
        (self.start, T::from_u64(self.end.to_u64() - 1))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn bounds(&self) -> (T, T) {
        assert!(self.start() <= self.end(), "cannot sample empty range");
        (*self.start(), *self.end())
    }
}

/// The sampling surface, mirroring `rand 0.10`'s `RngExt`.
pub trait RngExt {
    /// A uniform draw of `T` over its natural domain (`[0, 1)` for
    /// floats, the full bit-range for integers, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T;

    /// A uniform draw from `range` (half-open or inclusive).
    fn random_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        let (lo64, hi64) = (lo.to_u64(), hi.to_u64());
        let span = hi64 - lo64 + 1; // 0 means the full 2^64 span
        if span == 0 {
            return T::from_u64(self.next_u64());
        }
        // Debiased multiply-shift (Lemire); rejection keeps it exact.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return T::from_u64(lo64 + v % span);
            }
        }
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = r.random_range(3u32..=7);
            assert!((3..=7).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 7;
        }
        assert!(seen_lo && seen_hi, "uniform draw must reach both bounds");
        for _ in 0..1000 {
            let x = r.random_range(0usize..5);
            assert!(x < 5);
        }
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(12);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.random_range(5u32..5);
    }
}
