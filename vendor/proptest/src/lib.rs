//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`boxed`, integer-range and tuple
//! strategies, [`collection::vec`], [`Just`], [`prop_oneof!`],
//! `any::<T>()` (integers, `bool`, [`sample::Index`]), the `prop_assert*`
//! macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//! * **No shrinking.** A failing case panics with the case number and the
//!   assertion message; rerun with the same build to reproduce (sampling is
//!   a pure function of the test's name and case index).
//! * Sampling draws from the vendored deterministic `rand`, so the exact
//!   value sequence differs from upstream proptest — properties must hold
//!   for *all* inputs, so this changes coverage, not meaning.

#[doc(hidden)]
pub use rand as __rand;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod test_runner {
    use std::fmt;

    /// Per-`proptest!`-block configuration (struct-update syntax friendly).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; rejection sampling is not used.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
                max_global_rejects: 65536,
            }
        }
    }

    /// Failure raised by the `prop_assert*` macros; propagates via `?`
    /// through helpers returning `Result<(), TestCaseError>`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    use super::*;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree: `sample` draws a concrete
    /// value directly from the RNG.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!` arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between type-erased arms (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let arm = rng.random_range(0..self.0.len());
            self.0[arm].sample(rng)
        }
    }

    impl<T: rand::UniformInt + 'static> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T: rand::UniformInt + 'static> Strategy for RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// `any::<T>()` — the canonical strategy for `T`'s whole domain.
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// Types with a canonical `any` strategy.
    pub trait ArbitrarySample {
        fn arb_sample(rng: &mut StdRng) -> Self;
    }

    impl<T: ArbitrarySample> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arb_sample(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: ArbitrarySample>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl ArbitrarySample for $t {
                fn arb_sample(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitrarySample for bool {
        fn arb_sample(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitrarySample for crate::sample::Index {
        fn arb_sample(rng: &mut StdRng) -> Self {
            crate::sample::Index(rng.next_u64())
        }
    }
}

pub mod sample {
    /// A position drawn independently of any collection; resolved against a
    /// concrete length with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// The index this represents in a collection of `len` elements.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::*;

    /// `Option` strategy: `None` one time in four, else `Some` of the inner.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.next_u64() & 0b11 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// Generates `Option`s of the inner strategy's values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;
    use std::ops::Range;

    /// `Vec` strategy: length drawn from `size`, elements from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Deterministic per-test seed: FNV-1a over the test's full path.
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub fn __fresh_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Expands each `fn name(arg in strategy, ..) { body }` into a `#[test]`
/// that samples `config.cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let seed = $crate::__seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = $crate::__fresh_rng(seed);
            for __case in 0..config.cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name), __case + 1, config.cases, seed, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Like `assert!`, but fails the proptest case instead of panicking
/// directly (so helpers can propagate it with `?`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __a, __b
            )));
        }
    }};
}

/// Like `assert_ne!`, but fails the proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), __a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), __a
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of upstream's `prop` path alias (`prop::sample::Index`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(ok: bool) -> Result<(), TestCaseError> {
        prop_assert!(ok, "helper saw false");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0u8..=4, n in 1usize..6) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((1..6).contains(&n));
        }

        #[test]
        fn tuples_map_and_vec(v in crate::collection::vec((0u16..50, any::<bool>()), 0..8)) {
            prop_assert!(v.len() < 8);
            for (a, _flag) in v {
                prop_assert!(a < 50);
            }
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u32), 5u32..7, (9u32..10).prop_map(|v| v + 1)]) {
            prop_assert!(x == 1 || x == 5 || x == 6 || x == 10, "got {x}");
        }

        #[test]
        fn index_resolves(idx in any::<crate::sample::Index>(), len in 1usize..9) {
            prop_assert!(idx.index(len) < len);
        }

        #[test]
        fn question_mark_propagates(b in any::<bool>()) {
            helper(usize::from(b) < 2)?;
        }
    }

    #[test]
    fn failing_assert_reports_not_panics() {
        let run = || -> Result<(), TestCaseError> {
            prop_assert_eq!(1 + 1, 3, "math {} broke", "badly");
            Ok(())
        };
        let err = run().unwrap_err();
        assert!(err.0.contains("math badly broke"));
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::__seed_for("a::b"), crate::__seed_for("a::c"));
    }
}
