//! Renders the Figure-3 scenario as Graphviz: the topology, REUNITE's
//! data tree (with its duplicated link highlighted in red), and HBH's.
//!
//! ```text
//! cargo run -p hbh-examples --bin tree_dot > fig3.dot
//! dot -Tpng -O fig3.dot        # if graphviz is installed
//! ```

use hbh_experiments::datapath::DataTransits;
use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_reunite::Reunite;
use hbh_sim_core::{Kernel, Network, Protocol, Time};
use hbh_topo::{dot, scenarios};

fn probe_tree<P: Protocol<Command = Cmd>>(proto: P) -> DataTransits {
    let g = scenarios::fig3();
    let s = g.node_by_label("S").unwrap();
    let (r1, r2) = (
        g.node_by_label("r1").unwrap(),
        g.node_by_label("r2").unwrap(),
    );
    let timing = Timing::default();
    let ch = Channel::primary(s);
    let mut k = Kernel::new(Network::new(g), proto, 1);
    k.command_at(s, Cmd::StartSource(ch), Time::ZERO);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(400));
    k.run_until(Time(timing.convergence_horizon(400) + 4 * timing.t2));
    k.enable_trace();
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + 500);
    DataTransits::from_trace(&k.take_trace(), 1)
}

fn main() {
    let g = scenarios::fig3();
    println!("// --- Figure 3 topology (costs a→b / b→a) ---");
    println!("{}", dot::topology(&g));

    for (name, transits) in [
        ("REUNITE", probe_tree(Reunite::new(Timing::default()))),
        ("HBH", probe_tree(Hbh::new(Timing::default()))),
    ] {
        let links: Vec<_> = transits.links.iter().map(|(&l, &c)| (l, c)).collect();
        println!(
            "// --- {name} data tree ({} copies) ---",
            transits.total_copies()
        );
        println!("{}", dot::tree(&g, &links));
    }
}
