//! HBH on a real network: every node of the Figure-2 topology becomes a
//! thread with its own loopback UDP socket; the exact protocol code that
//! reproduces the paper's figures in the simulator builds its tree with
//! real datagrams and delivers real packets.
//!
//! ```text
//! cargo run -p hbh-examples --bin live_udp
//! ```

use hbh_live::{Cluster, LiveTiming};
use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd};
use hbh_topo::scenarios;
use std::time::Duration;

fn main() {
    let graph = scenarios::fig2();
    let n = |l: &str| graph.node_by_label(l).unwrap();
    let (s, r1, r2, r3) = (n("S"), n("r1"), n("r2"), n("r3"));
    let labels = graph.clone();

    let timing = LiveTiming::fast().0;
    let cluster = Cluster::launch(graph, || Hbh::new(timing)).expect("bind sockets");
    println!("nodes bound to loopback UDP:");
    let mut addrs: Vec<_> = cluster.addresses.iter().collect();
    addrs.sort_by_key(|(n, _)| **n);
    for (node, addr) in addrs {
        println!(
            "  {:>3} ({})  {addr}",
            node.to_string(),
            labels.label(*node).unwrap_or("-")
        );
    }

    let ch = Channel::primary(s);
    cluster.command(s, Cmd::StartSource(ch));
    for r in [r1, r2, r3] {
        cluster.command(r, Cmd::Join(ch));
        std::thread::sleep(Duration::from_millis(80));
    }
    println!("\nwaiting for the soft-state tree to converge…");
    std::thread::sleep(Duration::from_millis(timing.convergence_horizon(200)));

    println!("sending one data packet on {ch}:");
    cluster.command(s, Cmd::SendData { ch, tag: 1 });
    for d in cluster.wait_deliveries(3, Duration::from_secs(3)) {
        println!(
            "  delivered at {} ({})",
            d.node,
            labels.label(d.node).unwrap_or("-")
        );
    }
    cluster.shutdown();
    println!("\n(same engine, zero simulator involvement — see crates/live)");
}
