//! Example host crate. The runnable examples live in `examples/examples/`;
//! this library target is intentionally empty.
