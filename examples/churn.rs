//! Group dynamics: receivers join and leave in a Poisson process while
//! the source keeps probing; compare how much tree state HBH and REUNITE
//! rebuild (the quantified version of the paper's Figure 4 argument).
//!
//! ```text
//! cargo run -p hbh-examples --bin churn
//! ```

use hbh_proto::Hbh;
use hbh_proto_base::membership::{churn_schedule, ChurnEvent};
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_reunite::Reunite;
use hbh_sim_core::{Kernel, Network, Protocol, Time};
use hbh_topo::{costs, isp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run<P: Protocol<Command = Cmd>>(name: &str, proto: P, seed: u64) {
    let timing = Timing::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = isp::isp_topology();
    costs::assign_paper_costs(&mut g, &mut rng);
    let pool = isp::receiver_pool(&g);
    let source = isp::SOURCE_HOST;
    let ch = Channel::primary(source);

    let horizon = 6000;
    let events = churn_schedule(&pool, 100.0, Time(0), horizon, &mut rng);
    let joins = events
        .iter()
        .filter(|(_, e)| matches!(e, ChurnEvent::Join(_)))
        .count();
    let leaves = events.len() - joins;

    let mut k = Kernel::new(Network::new(g), proto, seed);
    k.command_at(source, Cmd::StartSource(ch), Time::ZERO);
    let mut members = std::collections::HashSet::new();
    for (t, ev) in &events {
        match ev {
            ChurnEvent::Join(n) => {
                members.insert(*n);
                k.command_at(*n, Cmd::Join(ch), *t);
            }
            ChurnEvent::Leave(n) => {
                members.remove(n);
                k.command_at(*n, Cmd::Leave(ch), *t);
            }
        }
    }
    k.run_until(Time(horizon));
    let churn_during = k.stats().structural_changes;
    k.run_until(Time(
        horizon + timing.convergence_horizon(0) + 4 * timing.t2,
    ));

    let t = k.now();
    k.command_at(source, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + 1500);
    let served = k.stats().deliveries_tagged(1).count();

    println!(
        "{name:<8}  {joins:>3} joins / {leaves:>3} leaves  →  {churn_during:>4} table changes \
         during churn; final members {}, served {served}",
        members.len()
    );
    assert_eq!(served, members.len(), "{name} lost or duplicated members");
}

fn main() {
    println!("Poisson churn on the ISP topology (mean inter-event gap 100 time units):\n");
    for seed in [3, 4, 5] {
        run("HBH", Hbh::new(Timing::default()), seed);
        run("REUNITE", Reunite::new(Timing::default()), seed);
        println!();
    }
    println!(
        "(table changes = structural MCT/MFT mutations across all routers — \n\
              the stability metric of the `stability` experiment binary)"
    );
}
