//! Quickstart: build a small network, open an HBH channel, join two
//! receivers, send data, and watch the recursive-unicast tree work.
//!
//! ```text
//! cargo run -p hbh-examples --bin quickstart
//! ```

use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::trace::TraceKind;
use hbh_sim_core::{Kernel, Network, PacketClass, Time};
use hbh_topo::graph::Graph;

fn main() {
    // 1. A topology: four routers in a diamond with asymmetric costs,
    //    the source host on `a`, receivers behind `c` and `d`.
    //
    //        s - a ══ b ── c - h1
    //             ╲       ╱
    //              ╲     d - h2
    //               ╲___╱
    let mut g = Graph::new();
    let a = g.add_router();
    let b = g.add_router();
    let c = g.add_router();
    let d = g.add_router();
    g.add_link(a, b, 1, 4); // cheap downstream, expensive upstream
    g.add_link(b, c, 2, 2);
    g.add_link(c, d, 1, 1);
    g.add_link(a, d, 3, 1); // receivers' joins prefer this way up
    let s = g.add_host(a, 1, 1);
    let h1 = g.add_host(c, 1, 1);
    let h2 = g.add_host(d, 1, 1);

    // 2. A kernel running the HBH protocol over that network.
    let timing = Timing::default();
    let net = Network::new(g);
    let mut kernel = Kernel::new(net, Hbh::new(timing), 42);
    kernel.enable_trace();

    // 3. The source opens channel <S, G>; receivers join over time.
    let channel = Channel::primary(s);
    println!("channel: {channel}");
    kernel.command_at(s, Cmd::StartSource(channel), Time::ZERO);
    kernel.command_at(h1, Cmd::Join(channel), Time(10));
    kernel.command_at(h2, Cmd::Join(channel), Time(250));

    // 4. Let the soft-state machinery converge, then send one packet.
    kernel.run_until(Time(timing.convergence_horizon(250)));
    let _ = kernel.take_trace(); // drop the (long) control-plane trace
    let now = kernel.now();
    kernel.command_at(
        s,
        Cmd::SendData {
            ch: channel,
            tag: 1,
        },
        now,
    );
    kernel.run_until(now + 100);

    // 5. Inspect what happened on the data plane.
    println!("\ndata plane:");
    for rec in kernel.take_trace() {
        match &rec.what {
            TraceKind::Sent { to, pkt } if pkt.class == PacketClass::Data => {
                println!(
                    "  t={:<4} {}  --->  {} (unicast dst {})",
                    rec.at, rec.node, to, pkt.dst
                );
            }
            TraceKind::Delivered { .. } => {
                println!("  t={:<4} {}  DELIVERED", rec.at, rec.node);
            }
            _ => {}
        }
    }

    println!("\nreceivers:");
    for dl in kernel.stats().deliveries_tagged(1) {
        let spt = kernel.network().dist(s, dl.node).unwrap();
        println!(
            "  {}: delay {} time units (unicast shortest path: {}) {}",
            dl.node,
            dl.delay(),
            spt,
            if dl.delay() == spt {
                "= SPT ✓"
            } else {
                "≠ SPT ✗"
            }
        );
    }
    println!(
        "\ntree cost: {} packet copies across links",
        kernel.stats().data_copies_tagged(1)
    );
    println!("branching routers:");
    for node in kernel.network().graph().nodes() {
        if kernel.state(node).is_branching(channel) {
            let targets: Vec<String> = kernel
                .state(node)
                .mft(channel)
                .unwrap()
                .data_targets(kernel.now())
                .map(|n| n.to_string())
                .collect();
            println!("  {node} forwards data to {targets:?}");
        }
    }
}
