//! Incremental deployment, the paper's headline motivation: most of the
//! network is *unicast-only*, yet the HBH channel works — branching
//! happens only at the multicast-capable routers, and everything else
//! forwards plain unicast packets.
//!
//! ```text
//! cargo run -p hbh-examples --bin unicast_clouds_demo
//! ```

use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Kernel, Network, Time};
use hbh_topo::graph::NodeId;
use hbh_topo::{costs, isp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut g = isp::isp_topology();
    costs::assign_paper_costs(&mut g, &mut rng);

    // Knock out 70% of routers: they become pure IP forwarders.
    let source_router = g.host_router(isp::SOURCE_HOST);
    let mut disabled = Vec::new();
    let routers: Vec<NodeId> = g.routers().filter(|&r| r != source_router).collect();
    for r in routers {
        if rng.random::<f64>() < 0.7 {
            g.set_mcast_capable(r, false);
            disabled.push(r);
        }
    }
    println!(
        "unicast-only routers ({} of 18): {disabled:?}\n",
        disabled.len()
    );

    let timing = Timing::default();
    let source = isp::SOURCE_HOST;
    let ch = Channel::primary(source);
    let receivers = [NodeId(20), NodeId(24), NodeId(28), NodeId(31), NodeId(35)];
    let mut k = Kernel::new(Network::new(g), Hbh::new(timing), 11);
    k.command_at(source, Cmd::StartSource(ch), Time::ZERO);
    for (i, &r) in receivers.iter().enumerate() {
        k.command_at(r, Cmd::Join(ch), Time(i as u64 * 80));
    }
    k.run_until(Time(timing.convergence_horizon(500)));

    let t = k.now();
    k.command_at(source, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + 1000);

    println!("deliveries:");
    for d in k.stats().deliveries_tagged(1) {
        println!("  {} at delay {}", d.node, d.delay());
    }
    assert_eq!(k.stats().deliveries_tagged(1).count(), receivers.len());

    println!("\nmulticast state ended up only on capable routers:");
    for node in k.network().graph().nodes() {
        let st = k.state(node);
        if st.is_branching(ch) {
            let fanout = st.mft(ch).unwrap().data_targets(k.now()).count();
            println!("  {node}: branching, fan-out {fanout}");
        } else if st.mct(ch).is_some() {
            println!("  {node}: control-plane (MCT) only");
        }
    }
    for &r in &disabled {
        assert!(
            !k.state(r).is_branching(ch) && k.state(r).mct(ch).is_none(),
            "unicast-only router {r} must hold no multicast state"
        );
    }
    println!(
        "\ntree cost: {} copies (more than the all-multicast optimum — the price \n\
         of displaced branching points, cf. the unicast_clouds ablation)",
        k.stats().data_copies_tagged(1)
    );
}
