//! One full evaluation run on the paper's ISP topology: the four
//! protocols serve the same randomly drawn group, and the paper's two
//! metrics are printed side by side — a single-sample preview of
//! Figures 7(a)/8(a).
//!
//! ```text
//! cargo run -p hbh-examples --bin isp_channel            # default draw
//! cargo run -p hbh-examples --bin isp_channel 16 9       # group size 16, seed 9
//! ```

use hbh_experiments::protocols::{run_protocol, ProtocolKind};
use hbh_experiments::scenario::{build, ScenarioOptions, TopologyKind};
use hbh_proto_base::Timing;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let group: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);

    let timing = Timing::default();
    let sc = build(
        TopologyKind::Isp,
        group,
        seed,
        &timing,
        &ScenarioOptions::default(),
    );
    println!(
        "ISP topology (Figure 6 reconstruction): source {} on router 0, {} receivers, seed {seed}",
        sc.source, group
    );
    println!("receivers: {:?}\n", sc.receivers);

    println!(
        "{:<10} {:>12} {:>16} {:>12} {:>10}",
        "protocol", "tree cost", "bandwidth", "avg delay", "converged"
    );
    for kind in ProtocolKind::ALL {
        let o = run_protocol(kind, &sc, &timing);
        assert!(o.complete(), "{} lost receivers", kind.name());
        println!(
            "{:<10} {:>12} {:>16} {:>12.2} {:>10}",
            kind.name(),
            o.cost,
            o.weighted_cost,
            o.avg_delay(),
            o.converged
        );
    }
    println!(
        "\n(cost = copies of one packet across links; bandwidth = copies × link cost;\n\
         delay = mean receiver delay in time units; single draw — run the `fig7`/`fig8`\n\
         binaries in hbh-experiments for the full averaged figures)"
    );
}
