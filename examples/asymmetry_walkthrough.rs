//! The paper's Figures 2/3/5, live: run REUNITE and HBH side by side on
//! the exact walk-through topologies and print what each protocol built.
//!
//! ```text
//! cargo run -p hbh-examples --bin asymmetry_walkthrough
//! ```

use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_reunite::Reunite;
use hbh_sim_core::{Kernel, Network, Protocol, Time};
use hbh_topo::graph::{Graph, NodeId};
use hbh_topo::scenarios;

fn n(g: &Graph, label: &str) -> NodeId {
    g.node_by_label(label).unwrap()
}

fn label(g: &Graph, node: NodeId) -> String {
    g.label(node)
        .map(str::to_owned)
        .unwrap_or_else(|| node.to_string())
}

fn probe<P: Protocol<Command = Cmd>>(
    proto: P,
    g: Graph,
    joins: &[(&str, u64)],
) -> (Kernel<P>, Vec<(String, u64, u64)>) {
    let timing = Timing::default();
    let s = n(&g, "S");
    let ch = Channel::primary(s);
    let mut k = Kernel::new(Network::new(g), proto, 1);
    k.command_at(s, Cmd::StartSource(ch), Time::ZERO);
    for &(l, t) in joins {
        let r = n(k.network().graph(), l);
        k.command_at(r, Cmd::Join(ch), Time(t));
    }
    k.run_until(Time(timing.convergence_horizon(1000) + 4 * timing.t2));
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + 500);
    let g = k.network().graph();
    let mut rows: Vec<(String, u64, u64)> = k
        .stats()
        .deliveries_tagged(1)
        .map(|d| {
            let spt = k.network().dist(s, d.node).unwrap();
            (label(g, d.node), d.delay(), spt)
        })
        .collect();
    rows.sort();
    (k, rows)
}

fn report<P: Protocol<Command = Cmd>>(name: &str, k: &Kernel<P>, rows: &[(String, u64, u64)]) {
    println!("  {name}:");
    for (r, delay, spt) in rows {
        println!(
            "    {r}: delay {delay:>2} (shortest possible {spt}) {}",
            if delay == spt {
                "✓ SPT"
            } else {
                "✗ detoured"
            }
        );
    }
    println!("    tree cost: {} copies", k.stats().data_copies_tagged(1));
    let dups: Vec<String> = k
        .stats()
        .data_copies_per_link(1)
        .iter()
        .filter(|(_, &c)| c > 1)
        .map(|(&(f, t), &c)| {
            format!(
                "{}→{} ×{}",
                label(k.network().graph(), f),
                label(k.network().graph(), t),
                c
            )
        })
        .collect();
    if dups.is_empty() {
        println!("    no duplicated links");
    } else {
        println!("    duplicated links: {}", dups.join(", "));
    }
}

fn main() {
    let timing = Timing::default();

    println!("=== Figure 2/5: asymmetric routes (r1, then r2, then r3 join) ===");
    println!("  unicast routes: S→r1 via R1,R3 but r1→S via R2,R1;");
    println!("                  S→r2 via R4     but r2→S via R3,R1.\n");
    let joins = [("r1", 0), ("r2", 400), ("r3", 800)];
    let (kr, rows) = probe(Reunite::new(timing), scenarios::fig2(), &joins);
    report(
        "REUNITE (pins r2 to the tree-message path — Figure 2)",
        &kr,
        &rows,
    );
    let (kh, rows) = probe(Hbh::new(timing), scenarios::fig2(), &joins);
    report(
        "HBH (fusion re-homes everyone onto the SPT — Figure 5)",
        &kh,
        &rows,
    );

    println!("\n=== Figure 3: shared downstream link R1→R6, joins bypass R6 ===\n");
    let joins = [("r1", 0), ("r2", 400)];
    let (kr, rows) = probe(Reunite::new(timing), scenarios::fig3(), &joins);
    report("REUNITE (two copies of every packet on R1→R6)", &kr, &rows);
    let (kh, rows) = probe(Hbh::new(timing), scenarios::fig3(), &joins);
    report("HBH (R6 elected as branching node via fusion)", &kh, &rows);

    let g = kh.network().graph();
    let ch = Channel::primary(n(g, "S"));
    println!("\n  HBH state at R1 (the splice point):");
    let r1 = n(g, "R1");
    if let Some(mft) = kh.state(r1).mft(ch) {
        let now = kh.now();
        for node in mft.live(now) {
            println!(
                "    {} — {}{}",
                label(g, node),
                if mft.is_marked(node, now) {
                    "marked (tree only)"
                } else {
                    "data"
                },
                if mft.is_stale(node, now) {
                    ", stale (fusion-installed)"
                } else {
                    ""
                }
            );
        }
    }
}
