//! Soft-state entries with the paper's two-timer lifecycle.
//!
//! Both HBH and REUNITE attach two timers to every table entry (§3.1):
//!
//! * when `t1` expires the entry becomes **stale**;
//! * when `t2` expires the entry is **destroyed**.
//!
//! Entries are kept alive by periodic refresh messages (joins or trees).
//! Rather than arming two kernel timers per entry — thousands of timers on
//! a large group — entries store their expiry *timestamps* and are
//! evaluated lazily against the current time, with a periodic per-node
//! sweep reaping dead entries. This is the standard implementation of
//! soft state and is observationally identical to real timers.
//!
//! HBH additionally **marks** entries (set by `fusion` processing): a
//! marked entry forwards `tree` messages but no data, whereas a *stale*
//! entry forwards data but no `tree` messages (Appendix A). The flag is
//! stored here; its interpretation stays in the protocol crates.

use crate::timing::Timing;
use hbh_sim_core::Time;

/// Lifecycle phase of a soft-state entry at a given instant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntryPhase {
    /// Refreshed recently; fully active.
    Fresh,
    /// `t1` expired: still present but signalling imminent removal.
    Stale,
    /// `t2` expired: to be reaped by the next sweep.
    Dead,
}

/// One soft-state table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SoftEntry {
    expires_t1: Time,
    expires_t2: Time,
    /// HBH mark (fusion rule 2): entry forwards tree messages, not data.
    pub marked: bool,
}

impl SoftEntry {
    /// A fresh entry created (or refreshed) at `now`.
    pub fn new(now: Time, timing: &Timing) -> Self {
        SoftEntry {
            expires_t1: now + timing.t1,
            expires_t2: now + timing.t2,
            marked: false,
        }
    }

    /// Full refresh: both timers restart. Clears staleness, keeps the mark
    /// (a marked entry refreshed by joins stays marked — Figure 5's `r1`
    /// entry at `H1`).
    pub fn refresh(&mut self, now: Time, timing: &Timing) {
        self.expires_t1 = now + timing.t1;
        self.expires_t2 = now + timing.t2;
    }

    /// Fusion rule (4): "Bp's t2 timer is refreshed …, but its t1 timer is
    /// kept expired". The entry stays alive and stale.
    pub fn refresh_t2_keep_stale(&mut self, now: Time, timing: &Timing) {
        self.expires_t1 = now;
        self.expires_t2 = now + timing.t2;
    }

    /// Fusion rule (3): "Bp's t1 timer is expired — Bp becomes stale".
    pub fn force_stale(&mut self, now: Time) {
        self.expires_t1 = now;
    }

    /// Phase at `now`. Expiry is inclusive: an entry whose timer is exactly
    /// due counts as expired (timers fire *at* their deadline).
    pub fn phase(&self, now: Time) -> EntryPhase {
        if now >= self.expires_t2 {
            EntryPhase::Dead
        } else if now >= self.expires_t1 {
            EntryPhase::Stale
        } else {
            EntryPhase::Fresh
        }
    }

    /// True before t1 expires.
    pub fn is_fresh(&self, now: Time) -> bool {
        self.phase(now) == EntryPhase::Fresh
    }

    /// True between t1 and t2 expiry.
    pub fn is_stale(&self, now: Time) -> bool {
        self.phase(now) == EntryPhase::Stale
    }

    /// True once t2 expires.
    pub fn is_dead(&self, now: Time) -> bool {
        self.phase(now) == EntryPhase::Dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> Timing {
        Timing {
            t1: 100,
            t2: 200,
            ..Timing::default()
        }
    }

    #[test]
    fn fresh_then_stale_then_dead() {
        let e = SoftEntry::new(Time(0), &timing());
        assert_eq!(e.phase(Time(0)), EntryPhase::Fresh);
        assert_eq!(e.phase(Time(99)), EntryPhase::Fresh);
        assert_eq!(e.phase(Time(100)), EntryPhase::Stale);
        assert_eq!(e.phase(Time(199)), EntryPhase::Stale);
        assert_eq!(e.phase(Time(200)), EntryPhase::Dead);
        assert_eq!(e.phase(Time(10_000)), EntryPhase::Dead);
    }

    #[test]
    fn refresh_restarts_both_timers() {
        let mut e = SoftEntry::new(Time(0), &timing());
        e.refresh(Time(90), &timing());
        assert!(e.is_fresh(Time(189)));
        assert!(e.is_stale(Time(190)));
        assert!(e.is_dead(Time(290)));
    }

    #[test]
    fn force_stale_expires_t1_only() {
        let mut e = SoftEntry::new(Time(0), &timing());
        e.force_stale(Time(10));
        assert!(e.is_stale(Time(10)));
        assert!(e.is_stale(Time(150)));
        assert!(e.is_dead(Time(200)), "t2 untouched");
    }

    #[test]
    fn refresh_t2_keep_stale_extends_life_not_freshness() {
        let mut e = SoftEntry::new(Time(0), &timing());
        e.force_stale(Time(10));
        e.refresh_t2_keep_stale(Time(150), &timing());
        assert!(e.is_stale(Time(150)));
        assert!(e.is_stale(Time(349)));
        assert!(e.is_dead(Time(350)));
    }

    #[test]
    fn refresh_keeps_the_mark() {
        let mut e = SoftEntry::new(Time(0), &timing());
        e.marked = true;
        e.refresh(Time(50), &timing());
        assert!(e.marked);
        assert!(e.is_fresh(Time(60)));
    }

    #[test]
    fn refresh_unstales() {
        let mut e = SoftEntry::new(Time(0), &timing());
        e.force_stale(Time(10));
        assert!(e.is_stale(Time(20)));
        e.refresh(Time(20), &timing());
        assert!(e.is_fresh(Time(20)));
    }
}
