//! One schedule, every backend: a time-ordered list of protocol commands
//! and fault events that drives the simulator kernel *and* the live UDP
//! cluster.
//!
//! Before this type existed, the kernel was scripted through ad-hoc
//! `command_at` sequences and the live cluster through its own method
//! calls, so "the same scenario on sim and sockets" was a claim, not a
//! property. A [`Script`] makes it a property: build the schedule once,
//! [`Script::schedule`] it onto a kernel, or hand it to
//! `hbh_live::Cluster::run_script` to replay it in wall-clock time on
//! real sockets (one simulated time unit = one millisecond there).
//!
//! Entries keep their *push* order among same-time entries, which is
//! exactly the kernel's tie-breaking rule (scheduling order = sequence
//! order), so a script replays identically however it is consumed.

use crate::channel::Channel;
use crate::command::Cmd;
use hbh_sim_core::fault::FaultEvent;
use hbh_sim_core::{Kernel, Protocol, Time};
use hbh_topo::graph::NodeId;

/// One scheduled step of a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScriptAction {
    /// Deliver an experiment command to a node (join/leave/send/…).
    Command(NodeId, Cmd),
    /// Inject a topology fault (link down/up, node crash/restart).
    Fault(FaultEvent),
}

/// A declarative scenario schedule: `(time, action)` pairs.
///
/// Built with the chaining constructors; consumed by
/// [`Script::schedule`] (simulation) or `Cluster::run_script` (live UDP).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Script {
    entries: Vec<(Time, ScriptAction)>,
}

impl Script {
    /// An empty script.
    pub fn new() -> Self {
        Script::default()
    }

    /// Appends an arbitrary command at `node`.
    pub fn cmd(mut self, at: Time, node: NodeId, cmd: Cmd) -> Self {
        self.entries.push((at, ScriptAction::Command(node, cmd)));
        self
    }

    /// Appends a fault event.
    pub fn fault(mut self, at: Time, ev: FaultEvent) -> Self {
        self.entries.push((at, ScriptAction::Fault(ev)));
        self
    }

    /// The source host of `ch` starts sourcing at `at`.
    pub fn start_source(self, at: Time, ch: Channel) -> Self {
        let src = ch.source;
        self.cmd(at, src, Cmd::StartSource(ch))
    }

    /// `node` joins `ch` at `at`.
    pub fn join(self, at: Time, node: NodeId, ch: Channel) -> Self {
        self.cmd(at, node, Cmd::Join(ch))
    }

    /// `node` leaves `ch` at `at`.
    pub fn leave(self, at: Time, node: NodeId, ch: Channel) -> Self {
        self.cmd(at, node, Cmd::Leave(ch))
    }

    /// The source injects a data packet tagged `tag` on `ch` at `at`.
    pub fn send(self, at: Time, ch: Channel, tag: u64) -> Self {
        let src = ch.source;
        self.cmd(at, src, Cmd::SendData { ch, tag })
    }

    /// Node `n` crashes at `at`.
    pub fn fail_node(self, at: Time, n: NodeId) -> Self {
        self.fault(at, FaultEvent::NodeDown(n))
    }

    /// Node `n` restarts at `at`.
    pub fn restore_node(self, at: Time, n: NodeId) -> Self {
        self.fault(at, FaultEvent::NodeUp(n))
    }

    /// The link `a — b` fails (both directions) at `at`.
    pub fn fail_link(self, at: Time, a: NodeId, b: NodeId) -> Self {
        self.fault(at, FaultEvent::LinkDown { a, b })
    }

    /// The link `a — b` is restored at `at`.
    pub fn restore_link(self, at: Time, a: NodeId, b: NodeId) -> Self {
        self.fault(at, FaultEvent::LinkUp { a, b })
    }

    /// The entries in push order (the tie-break order every backend uses).
    pub fn entries(&self) -> &[(Time, ScriptAction)] {
        &self.entries
    }

    /// The entries sorted by time, same-time entries keeping push order —
    /// the replay order for wall-clock backends.
    pub fn sorted_entries(&self) -> Vec<(Time, ScriptAction)> {
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|&(at, _)| at);
        sorted
    }

    /// The time of the last entry (`Time::ZERO` when empty).
    pub fn duration(&self) -> Time {
        self.entries
            .iter()
            .map(|&(at, _)| at)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// True if the script contains no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Schedules every entry onto a simulation kernel. Same-time entries
    /// keep their script order (the kernel's sequence-number tie-break).
    pub fn schedule<P>(&self, k: &mut Kernel<P>)
    where
        P: Protocol<Command = Cmd>,
    {
        for &(at, action) in &self.entries {
            match action {
                ScriptAction::Command(node, cmd) => k.command_at(node, cmd, at),
                ScriptAction::Fault(ev) => k.schedule_fault(at, ev),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_all_action_kinds() {
        let ch = Channel::primary(NodeId(9));
        let s = Script::new()
            .start_source(Time(0), ch)
            .join(Time(10), NodeId(3), ch)
            .send(Time(20), ch, 7)
            .fail_node(Time(30), NodeId(5))
            .fail_link(Time(30), NodeId(1), NodeId(2))
            .restore_node(Time(40), NodeId(5))
            .leave(Time(50), NodeId(3), ch);
        assert_eq!(s.entries().len(), 7);
        assert_eq!(s.duration(), Time(50));
        assert_eq!(
            s.entries()[0],
            (
                Time(0),
                ScriptAction::Command(NodeId(9), Cmd::StartSource(ch))
            )
        );
        assert_eq!(
            s.entries()[3],
            (
                Time(30),
                ScriptAction::Fault(FaultEvent::NodeDown(NodeId(5)))
            )
        );
        assert!(Script::new().is_empty());
        assert_eq!(Script::new().duration(), Time::ZERO);
    }

    #[test]
    fn sorted_entries_is_stable_on_ties() {
        let ch = Channel::primary(NodeId(0));
        let s = Script::new()
            .join(Time(20), NodeId(2), ch)
            .join(Time(10), NodeId(1), ch)
            .leave(Time(20), NodeId(3), ch);
        let sorted = s.sorted_entries();
        assert_eq!(sorted[0].0, Time(10));
        assert_eq!(
            sorted[1],
            (Time(20), ScriptAction::Command(NodeId(2), Cmd::Join(ch)))
        );
        assert_eq!(
            sorted[2],
            (Time(20), ScriptAction::Command(NodeId(3), Cmd::Leave(ch)))
        );
    }
}
