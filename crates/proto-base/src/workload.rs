//! Unified membership-workload construction.
//!
//! Before this module, each experiment composed its own membership: the
//! figure sweeps passed group-size/join-window pairs through
//! `scenario::build`, the scale sweeps re-derived the same sampling
//! inline, and anything fancier (multi-channel load, churn storms) was
//! hand-rolled per binary. A [`Workload`] describes the membership
//! pattern once — *who joins what, when* — and [`WorkloadGen::plan`]
//! turns it into a [`WorkloadPlan`]: a receiver set, a primary-channel
//! join schedule, and a [`Script`] of any further actions (extra
//! channels, zap switches), all drawn deterministically from a caller
//! seeded RNG.
//!
//! The paper's §4.1 workload is [`Workload::paper_figure`]; it consumes
//! the RNG in exactly the historical order (receiver sample, then join
//! schedule), so sweeps that migrate to it reproduce their outputs
//! byte for byte. The membership-scale workloads are
//! [`Workload::flash_crowd`] (a join storm inside one tree period),
//! [`Workload::zipf`] (channel popularity following a Zipf law) and
//! [`Workload::zapping`] (IPTV viewers hopping between channels).

use crate::channel::{Channel, GroupAddr};
use crate::script::Script;
use crate::timing::Timing;
use hbh_sim_core::Time;
use hbh_topo::graph::NodeId;
use rand::rngs::StdRng;
use rand::RngExt;

/// Samples `m` distinct receivers uniformly from `pool` (partial
/// Fisher–Yates; order is the sampling order).
///
/// # Panics
/// Panics if `m > pool.len()`.
pub fn sample_receivers(pool: &[NodeId], m: usize, rng: &mut StdRng) -> Vec<NodeId> {
    assert!(
        m <= pool.len(),
        "cannot sample {m} receivers from a pool of {}",
        pool.len()
    );
    let mut pool = pool.to_vec();
    for i in 0..m {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(m);
    pool
}

/// Assigns each receiver a join time uniform in `[start, start + window]`.
pub fn join_schedule(
    receivers: &[NodeId],
    start: Time,
    window: u64,
    rng: &mut StdRng,
) -> Vec<(NodeId, Time)> {
    receivers
        .iter()
        .map(|&r| (r, start + rng.random_range(0..=window)))
        .collect()
}

/// A fully drawn membership schedule, ready to wire into a kernel.
#[derive(Clone, Debug, Default)]
pub struct WorkloadPlan {
    /// Hosts expected to be members of the *primary* channel once the
    /// schedule has fully played out — the set a converged probe should
    /// reach.
    pub receivers: Vec<NodeId>,
    /// Primary-channel join commands `(host, time)`. Empty for fully
    /// script-driven workloads (zapping), whose joins live in `script`.
    pub join_times: Vec<(NodeId, Time)>,
    /// Window over which the initial joins spread (feeds the convergence
    /// horizon).
    pub join_window: u64,
    /// Everything beyond the primary-channel joins: extra channels'
    /// sources and joins, zap switches. Empty for single-channel
    /// join-only workloads.
    pub script: Script,
}

/// Membership-pattern generators: turn a description of *who joins what,
/// when* into a concrete [`WorkloadPlan`] over a host pool.
pub trait WorkloadGen {
    /// Draws the plan. `pool` is the candidate receiver set (the source
    /// host already excluded), `primary` the channel the standard probe
    /// machinery measures, `timing` supplies the period units, and all
    /// randomness comes from `rng` (so equal seeds give equal plans).
    fn plan(
        &self,
        pool: &[NodeId],
        primary: Channel,
        timing: &Timing,
        rng: &mut StdRng,
    ) -> WorkloadPlan;
}

#[derive(Clone, Debug)]
enum Kind {
    PaperFigure {
        group_size: usize,
    },
    FlashCrowd {
        receivers: usize,
        start: Time,
    },
    Zipf {
        receivers: usize,
        channels: u32,
        exponent: f64,
    },
    Zapping {
        viewers: usize,
        channels: u32,
        zaps: usize,
        exponent: f64,
    },
}

/// A declarative membership workload; build with the constructors, tune
/// with the chaining setters, realize with [`WorkloadGen::plan`].
#[derive(Clone, Debug)]
pub struct Workload {
    kind: Kind,
    /// Initial-join window, in join periods.
    window_periods: u64,
    /// Zapping dwell between switches, in join periods.
    dwell_periods: u64,
}

impl Workload {
    fn with_kind(kind: Kind) -> Self {
        Workload {
            kind,
            window_periods: 20,
            dwell_periods: 4,
        }
    }

    /// The paper's §4.1 workload: `group_size` receivers sampled
    /// uniformly, joins staggered over `window_periods` join periods.
    /// Consumes the RNG in the historical order (sample, then schedule),
    /// so existing sweeps migrate without changing a byte of output.
    pub fn paper_figure(group_size: usize, window_periods: u64) -> Self {
        let mut w = Workload::with_kind(Kind::PaperFigure { group_size });
        w.window_periods = window_periods;
        w
    }

    /// A flash-crowd storm: `receivers` hosts all join the primary
    /// channel within **one tree period** of `start` — the membership
    /// regime the ROADMAP's 10⁶-receiver milestone targets.
    pub fn flash_crowd(receivers: usize, start: Time) -> Self {
        Workload::with_kind(Kind::FlashCrowd { receivers, start })
    }

    /// Zipf channel popularity: `receivers` hosts each join exactly one
    /// of `channels` channels, channel rank `k` drawn with probability
    /// ∝ `1/k^exponent` (rank 1 is the primary channel). Joins stagger
    /// over the window.
    pub fn zipf(receivers: usize, channels: u32, exponent: f64) -> Self {
        assert!(channels >= 1 && exponent > 0.0);
        Workload::with_kind(Kind::Zipf {
            receivers,
            channels,
            exponent,
        })
    }

    /// IPTV zapping: `viewers` hosts tune into a Zipf-popular channel,
    /// then switch (`leave` + `join`) to a different channel `zaps`
    /// times, dwelling [`Workload::dwell`] join periods between
    /// switches. Requires at least two channels to switch between.
    pub fn zapping(viewers: usize, channels: u32, zaps: usize) -> Self {
        assert!(channels >= 2, "zapping needs at least two channels");
        Workload::with_kind(Kind::Zapping {
            viewers,
            channels,
            zaps,
            exponent: 1.0,
        })
    }

    /// Sets the initial-join window, in join periods.
    pub fn window(mut self, periods: u64) -> Self {
        self.window_periods = periods;
        self
    }

    /// Sets the zapping dwell between switches, in join periods.
    pub fn dwell(mut self, periods: u64) -> Self {
        self.dwell_periods = periods;
        self
    }
}

/// The `k`-th channel (1-based rank) of `primary`'s source. Rank 1 *is*
/// the primary channel.
fn ranked_channel(primary: Channel, rank: u32) -> Channel {
    if rank == 1 {
        primary
    } else {
        Channel::new(primary.source, GroupAddr(primary.group.0 + rank - 1))
    }
}

/// Cumulative Zipf distribution over ranks `1..=n` with the given
/// exponent (normalized; last entry is exactly 1.0).
fn zipf_cdf(n: u32, exponent: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = (1..=n)
        .map(|k| {
            acc += (k as f64).powf(-exponent);
            acc
        })
        .collect();
    for c in &mut cdf {
        *c /= acc;
    }
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    cdf
}

/// Draws a 1-based rank from the cumulative distribution.
fn zipf_draw(cdf: &[f64], rng: &mut StdRng) -> u32 {
    let u: f64 = rng.random();
    (cdf.partition_point(|&c| c < u) as u32 + 1).min(cdf.len() as u32)
}

impl WorkloadGen for Workload {
    fn plan(
        &self,
        pool: &[NodeId],
        primary: Channel,
        timing: &Timing,
        rng: &mut StdRng,
    ) -> WorkloadPlan {
        match self.kind {
            Kind::PaperFigure { group_size } => {
                let receivers = sample_receivers(pool, group_size, rng);
                let join_window = self.window_periods * timing.join_period;
                let join_times = join_schedule(&receivers, Time(0), join_window, rng);
                WorkloadPlan {
                    receivers,
                    join_times,
                    join_window,
                    script: Script::new(),
                }
            }
            Kind::FlashCrowd { receivers, start } => {
                let sampled = sample_receivers(pool, receivers, rng);
                let join_window = timing.tree_period;
                let join_times = join_schedule(&sampled, start, join_window, rng);
                WorkloadPlan {
                    receivers: sampled,
                    join_times,
                    join_window,
                    script: Script::new(),
                }
            }
            Kind::Zipf {
                receivers,
                channels,
                exponent,
            } => {
                let sampled = sample_receivers(pool, receivers, rng);
                let cdf = zipf_cdf(channels, exponent);
                let join_window = self.window_periods * timing.join_period;
                let mut primary_joins = Vec::new();
                let mut primary_members = Vec::new();
                let mut script = Script::new();
                let mut used = vec![false; channels as usize];
                let picks: Vec<(NodeId, u32, Time)> = sampled
                    .iter()
                    .map(|&h| {
                        let rank = zipf_draw(&cdf, rng);
                        let at = Time(rng.random_range(0..=join_window));
                        (h, rank, at)
                    })
                    .collect();
                for &(_, rank, _) in &picks {
                    used[(rank - 1) as usize] = true;
                }
                // Non-primary channels start their sources up front (the
                // primary's source is wired by the kernel builder).
                for rank in 2..=channels {
                    if used[(rank - 1) as usize] {
                        script = script.start_source(Time(0), ranked_channel(primary, rank));
                    }
                }
                for (h, rank, at) in picks {
                    if rank == 1 {
                        primary_members.push(h);
                        primary_joins.push((h, at));
                    } else {
                        script = script.join(at, h, ranked_channel(primary, rank));
                    }
                }
                WorkloadPlan {
                    receivers: primary_members,
                    join_times: primary_joins,
                    join_window,
                    script,
                }
            }
            Kind::Zapping {
                viewers,
                channels,
                zaps,
                exponent,
            } => {
                let sampled = sample_receivers(pool, viewers, rng);
                let cdf = zipf_cdf(channels, exponent);
                let join_window = self.window_periods * timing.join_period;
                let dwell = self.dwell_periods * timing.join_period;
                let mut script = Script::new();
                // Every channel may be visited; start all sources.
                for rank in 2..=channels {
                    script = script.start_source(Time(0), ranked_channel(primary, rank));
                }
                let mut final_primary = Vec::new();
                let mut last_action = 0u64;
                for &h in &sampled {
                    let mut rank = zipf_draw(&cdf, rng);
                    let mut t = rng.random_range(0..=join_window);
                    script = script.join(Time(t), h, ranked_channel(primary, rank));
                    for _ in 0..zaps {
                        let mut next = zipf_draw(&cdf, rng);
                        while next == rank {
                            next = zipf_draw(&cdf, rng);
                        }
                        t += dwell;
                        script = script.leave(Time(t), h, ranked_channel(primary, rank));
                        script = script.join(Time(t), h, ranked_channel(primary, next));
                        rank = next;
                    }
                    last_action = last_action.max(t);
                    if rank == 1 {
                        final_primary.push(h);
                    }
                }
                WorkloadPlan {
                    receivers: final_primary,
                    join_times: Vec::new(),
                    join_window: last_action,
                    script,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Cmd;
    use rand::SeedableRng;

    fn pool(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn primary() -> Channel {
        Channel::primary(NodeId(99))
    }

    #[test]
    fn sample_is_distinct_and_from_pool() {
        let p = pool(20);
        let s = sample_receivers(&p, 8, &mut rng(1));
        assert_eq!(s.len(), 8);
        let mut sorted = s.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "duplicates in sample");
        assert!(s.iter().all(|r| p.contains(r)));
    }

    #[test]
    fn sample_full_pool_is_permutation() {
        let p = pool(5);
        let mut s = sample_receivers(&p, 5, &mut rng(2));
        s.sort();
        assert_eq!(s, p);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Each of 10 hosts should appear ~500 times over 1000 draws of 5.
        let p = pool(10);
        let mut counts = [0u32; 10];
        let mut r = rng(4);
        for _ in 0..1000 {
            for n in sample_receivers(&p, 5, &mut r) {
                counts[n.0 as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((400..=600).contains(&c), "host {i} drawn {c} times");
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_rejected() {
        sample_receivers(&pool(3), 4, &mut rng(0));
    }

    #[test]
    fn join_schedule_within_window() {
        let p = pool(10);
        let sched = join_schedule(&p, Time(50), 200, &mut rng(5));
        assert_eq!(sched.len(), 10);
        for &(_, t) in &sched {
            assert!(t >= Time(50) && t <= Time(250));
        }
    }

    #[test]
    fn paper_figure_matches_historical_rng_order() {
        // The migration guarantee: the workload draws exactly what the
        // historical sample-then-schedule sequence drew.
        let p = pool(30);
        let t = Timing::default();
        let plan = Workload::paper_figure(8, 20).plan(&p, primary(), &t, &mut rng(7));
        let mut reference = rng(7);
        let receivers = sample_receivers(&p, 8, &mut reference);
        let join_times = join_schedule(&receivers, Time(0), 20 * t.join_period, &mut reference);
        assert_eq!(plan.receivers, receivers);
        assert_eq!(plan.join_times, join_times);
        assert_eq!(plan.join_window, 20 * t.join_period);
        assert!(plan.script.is_empty());
    }

    #[test]
    fn flash_crowd_fits_inside_one_tree_period() {
        let p = pool(500);
        let t = Timing::default();
        let plan = Workload::flash_crowd(400, Time(1000)).plan(&p, primary(), &t, &mut rng(3));
        assert_eq!(plan.receivers.len(), 400);
        assert_eq!(plan.join_window, t.tree_period);
        for &(_, at) in &plan.join_times {
            assert!(at >= Time(1000) && at <= Time(1000 + t.tree_period));
        }
        assert!(plan.script.is_empty());
    }

    #[test]
    fn zipf_prefers_low_ranks_and_scripts_other_channels() {
        let p = pool(400);
        let t = Timing::default();
        let plan = Workload::zipf(300, 10, 1.2).plan(&p, primary(), &t, &mut rng(11));
        let scripted_joins = plan
            .script
            .entries()
            .iter()
            .filter(|(_, a)| matches!(a, crate::script::ScriptAction::Command(_, Cmd::Join(_))))
            .count();
        assert_eq!(plan.receivers.len() + scripted_joins, 300);
        assert!(
            plan.receivers.len() > 300 / 10,
            "rank 1 must be the most popular channel ({} members)",
            plan.receivers.len()
        );
        assert_eq!(plan.receivers.len(), plan.join_times.len());
    }

    #[test]
    fn zapping_tracks_final_channel_membership() {
        let p = pool(100);
        let t = Timing::default();
        let plan = Workload::zapping(40, 5, 3)
            .dwell(2)
            .plan(&p, primary(), &t, &mut rng(13));
        assert!(plan.join_times.is_empty(), "zapping is fully script-driven");
        // Replay the script: the receivers field must equal the set of
        // viewers whose last action joined the primary channel.
        let mut member = std::collections::BTreeMap::new();
        for &(at, action) in plan.script.sorted_entries().iter() {
            if let crate::script::ScriptAction::Command(n, Cmd::Join(ch)) = action {
                member.insert(n, (at, ch));
            }
        }
        let mut on_primary: Vec<NodeId> = member
            .iter()
            .filter(|(_, &(_, ch))| ch == primary())
            .map(|(&n, _)| n)
            .collect();
        on_primary.sort();
        let mut got = plan.receivers.clone();
        got.sort();
        assert_eq!(got, on_primary);
    }

    #[test]
    fn plans_are_seed_deterministic() {
        let p = pool(200);
        let t = Timing::default();
        for w in [
            Workload::paper_figure(12, 20),
            Workload::flash_crowd(50, Time(0)),
            Workload::zipf(60, 6, 1.0),
            Workload::zapping(30, 4, 2),
        ] {
            let a = w.clone().plan(&p, primary(), &t, &mut rng(42));
            let b = w.plan(&p, primary(), &t, &mut rng(42));
            assert_eq!(a.receivers, b.receivers);
            assert_eq!(a.join_times, b.join_times);
            assert_eq!(a.script.entries(), b.script.entries());
        }
    }
}
