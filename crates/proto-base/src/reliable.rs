//! A reusable reliable-control-message layer: per-origin sequence numbers,
//! ACK bookkeeping, retransmission with capped exponential backoff, and
//! duplicate/reorder suppression.
//!
//! The layer is deliberately *passive*: it owns no clock and sends no
//! packets. An engine drives it from its own handlers — [`seal`] when
//! originating a message, [`observe`]/[`consume`] on arrival, [`on_ack`]
//! when an acknowledgement returns, and [`on_rtx`] when a retransmission
//! timer fires. That keeps it generic over the message plumbing: the same
//! state machine runs unchanged under the simulation kernel and the live
//! UDP node loop, and REUNITE/PIM can wrap their own control messages in
//! it without touching the transport.
//!
//! [`seal`]: ReliableState::seal
//! [`observe`]: ReliableState::observe
//! [`consume`]: ReliableState::consume
//! [`on_ack`]: ReliableState::on_ack
//! [`on_rtx`]: ReliableState::on_rtx

use hbh_sim_core::{FastMap, FastSet};
use hbh_topo::graph::NodeId;

/// Retransmission policy: initial timeout, backoff cap, and the attempt
/// budget after which the layer reports a give-up (the engine decides what
/// a give-up *means* — typically "neighbor declared down").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Initial retransmission timeout (time units of the host backend).
    pub rto: u64,
    /// Upper bound on the backed-off timeout.
    pub rto_cap: u64,
    /// Total transmissions (first send + retransmissions) before giving up.
    pub max_attempts: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            rto: 50,
            rto_cap: 200,
            max_attempts: 4,
        }
    }
}

impl ReliableConfig {
    /// Derives a policy from a protocol period: the timeout is half the
    /// period so a loss is noticed well before the next natural event,
    /// capped at two periods so a congested neighbor is not hammered.
    pub fn from_period(period: u64) -> Self {
        let rto = (period / 2).max(1);
        ReliableConfig {
            rto,
            rto_cap: (2 * period).max(rto),
            max_attempts: 4,
        }
    }

    /// The backed-off timeout for the next retransmission after `attempt`
    /// transmissions have already gone out: `min(rto << attempt, rto_cap)`.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shifted = self.rto.checked_shl(attempt).unwrap_or(self.rto_cap);
        shifted.min(self.rto_cap).max(1)
    }

    /// Worst-case time from first send to give-up: the sum of every
    /// backed-off timeout. This bounds failure-detection latency.
    pub fn detection_bound(&self) -> u64 {
        (0..self.max_attempts).map(|a| self.backoff(a)).sum()
    }
}

/// Counters exposed for experiments: how hard the layer worked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Messages originated (sequence numbers handed out).
    pub sealed: u64,
    /// Retransmissions sent.
    pub retransmits: u64,
    /// Messages abandoned after `max_attempts` transmissions.
    pub give_ups: u64,
    /// Sequenced messages consumed fresh (first delivery to the engine).
    pub consumed_fresh: u64,
    /// Duplicate arrivals suppressed (consumer re-ACKs, transit skips).
    pub dup_suppressed: u64,
    /// Acknowledgements accepted for an outstanding message.
    pub acked: u64,
}

impl ReliableStats {
    /// Field-wise sum, for aggregating across a kernel's node states.
    pub fn merge(&mut self, other: &ReliableStats) {
        self.sealed += other.sealed;
        self.retransmits += other.retransmits;
        self.give_ups += other.give_ups;
        self.consumed_fresh += other.consumed_fresh;
        self.dup_suppressed += other.dup_suppressed;
        self.acked += other.acked;
    }
}

/// An unacknowledged message: where it went, what it was, and how many
/// times it has been transmitted.
#[derive(Clone, Debug)]
pub struct Outstanding<M> {
    /// The consumer the message is addressed to.
    pub dst: NodeId,
    /// The engine-level payload, kept verbatim for retransmission.
    pub msg: M,
    /// Transmissions so far (1 right after [`ReliableState::seal`]).
    pub attempts: u32,
}

/// What the engine should do when a retransmission timer fires.
#[derive(Clone, Debug)]
pub enum RtxVerdict<M> {
    /// Send the payload again (same sequence number) and re-arm the timer
    /// after `delay`.
    Resend {
        /// Original destination.
        dst: NodeId,
        /// Payload to re-wrap and re-send.
        msg: M,
        /// Backed-off delay before the next retransmission check.
        delay: u64,
    },
    /// The attempt budget is exhausted; the message is abandoned and its
    /// destination should be treated as unresponsive.
    GiveUp {
        /// The destination that never acknowledged.
        dst: NodeId,
        /// The abandoned payload, for give-up-specific handling.
        msg: M,
    },
    /// The message was acknowledged (or wiped) before the timer fired.
    Stale,
}

/// Per-origin duplicate/reorder suppression window. Sequence numbers below
/// `floor` are summarily duplicates; the set holds everything seen at or
/// above it. The window is pruned so state stays bounded under arbitrarily
/// long sessions.
#[derive(Clone, Debug, Default)]
struct SeenWindow {
    seen: FastSet<u64>,
    floor: u64,
    max: u64,
}

/// Prune threshold for a [`SeenWindow`]: once the set holds this many
/// sequence numbers, everything more than `WINDOW_KEEP` behind the highest
/// seen is collapsed into the floor.
const WINDOW_PRUNE: usize = 4096;
const WINDOW_KEEP: u64 = 1024;

impl SeenWindow {
    /// Records `seq`; returns `true` if it was fresh.
    fn insert(&mut self, seq: u64) -> bool {
        if seq < self.floor || !self.seen.insert(seq) {
            return false;
        }
        self.max = self.max.max(seq);
        if self.seen.len() >= WINDOW_PRUNE {
            let floor = self.max.saturating_sub(WINDOW_KEEP);
            self.seen.retain(|&s| s >= floor);
            self.floor = floor;
        }
        true
    }
}

/// The per-node reliable-delivery state machine, generic over the engine's
/// control payload `M`.
#[derive(Clone, Debug)]
pub struct ReliableState<M> {
    next_seq: u64,
    outstanding: FastMap<u64, Outstanding<M>>,
    seen: FastMap<NodeId, SeenWindow>,
    /// Work counters, for experiment metrics.
    pub stats: ReliableStats,
}

impl<M> Default for ReliableState<M> {
    fn default() -> Self {
        ReliableState {
            next_seq: 0,
            outstanding: FastMap::default(),
            seen: FastMap::default(),
            stats: ReliableStats::default(),
        }
    }
}

impl<M: Clone> ReliableState<M> {
    /// Registers a new outgoing message for `dst` and returns the sequence
    /// number to stamp on it. The caller sends the packet and arms a
    /// retransmission timer for [`ReliableConfig::rto`].
    pub fn seal(&mut self, dst: NodeId, msg: M) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding.insert(
            seq,
            Outstanding {
                dst,
                msg,
                attempts: 1,
            },
        );
        self.stats.sealed += 1;
        seq
    }

    /// Accepts an acknowledgement: returns the settled message if `seq`
    /// was still outstanding (so the engine can cancel its timer and act
    /// on what was acknowledged), `None` for duplicate/stray ACKs.
    pub fn on_ack(&mut self, seq: u64) -> Option<Outstanding<M>> {
        let out = self.outstanding.remove(&seq);
        if out.is_some() {
            self.stats.acked += 1;
        }
        out
    }

    /// Records a sequenced message passing *through* this node. Returns
    /// `true` if it is fresh (first sighting from this origin), `false`
    /// for a duplicate — forward it either way, but only process the
    /// protocol rules on a fresh sighting.
    pub fn observe(&mut self, origin: NodeId, seq: u64) -> bool {
        let fresh = self.seen.entry(origin).or_default().insert(seq);
        if !fresh {
            self.stats.dup_suppressed += 1;
        }
        fresh
    }

    /// Records a sequenced message *consumed* at this node. Same dedup as
    /// [`observe`](Self::observe), but fresh deliveries are counted — the
    /// exactly-once ledger the lossy-link tests check. Always ACK, process
    /// only when this returns `true`.
    pub fn consume(&mut self, origin: NodeId, seq: u64) -> bool {
        let fresh = self.observe(origin, seq);
        if fresh {
            self.stats.consumed_fresh += 1;
        }
        fresh
    }

    /// Handles a retransmission-timer expiry for `seq`.
    pub fn on_rtx(&mut self, seq: u64, cfg: &ReliableConfig) -> RtxVerdict<M> {
        match self.outstanding.get_mut(&seq) {
            None => RtxVerdict::Stale,
            Some(out) if out.attempts >= cfg.max_attempts => {
                self.stats.give_ups += 1;
                let out = self.outstanding.remove(&seq).expect("checked above");
                RtxVerdict::GiveUp {
                    dst: out.dst,
                    msg: out.msg,
                }
            }
            Some(out) => {
                let delay = cfg.backoff(out.attempts);
                out.attempts += 1;
                self.stats.retransmits += 1;
                RtxVerdict::Resend {
                    dst: out.dst,
                    msg: out.msg.clone(),
                    delay,
                }
            }
        }
    }

    /// Unacknowledged messages currently awaiting an ACK or a verdict.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether any outstanding message is addressed to `dst`.
    pub fn has_outstanding_to(&self, dst: NodeId) -> bool {
        self.outstanding.values().any(|o| o.dst == dst)
    }

    /// Sequence numbers handed out so far (== sealed count).
    pub fn sealed(&self) -> u64 {
        self.next_seq
    }

    /// Approximate bytes of reliability bookkeeping this node carries:
    /// outstanding messages plus dedup windows. Counted into the hard
    /// engine's state-size metric so the soft/hard comparison charges the
    /// reliable layer honestly.
    pub fn state_bytes(&self) -> usize {
        let per_out = 8 + 4 + 4 + core::mem::size_of::<M>();
        let windows: usize = self.seen.values().map(|w| 16 + 8 * w.seen.len()).sum();
        self.outstanding.len() * per_out + windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn seal_ack_settles_exactly_once() {
        let mut r: ReliableState<&str> = ReliableState::default();
        let s0 = r.seal(n(2), "join");
        let s1 = r.seal(n(3), "tree");
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(r.outstanding(), 2);
        let settled = r.on_ack(s0).unwrap();
        assert_eq!((settled.dst, settled.msg), (n(2), "join"));
        assert!(r.on_ack(s0).is_none(), "duplicate ACK must be inert");
        assert_eq!(r.outstanding(), 1);
        assert_eq!(r.stats.acked, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = ReliableConfig {
            rto: 50,
            rto_cap: 300,
            max_attempts: 6,
        };
        let delays: Vec<u64> = (0..6).map(|a| cfg.backoff(a)).collect();
        assert_eq!(delays, vec![50, 100, 200, 300, 300, 300]);
        assert_eq!(cfg.detection_bound(), 50 + 100 + 200 + 300 + 300 + 300);
        // Absurd attempt counts must not overflow the shift.
        assert_eq!(cfg.backoff(200), 300);
    }

    #[test]
    fn rtx_resends_with_backoff_then_gives_up() {
        let cfg = ReliableConfig {
            rto: 10,
            rto_cap: 40,
            max_attempts: 3,
        };
        let mut r: ReliableState<&str> = ReliableState::default();
        let seq = r.seal(n(9), "probe");
        let RtxVerdict::Resend { dst, delay, .. } = r.on_rtx(seq, &cfg) else {
            panic!("first expiry must resend");
        };
        assert_eq!((dst, delay), (n(9), 20));
        let RtxVerdict::Resend { delay, .. } = r.on_rtx(seq, &cfg) else {
            panic!("second expiry must resend");
        };
        assert_eq!(delay, 40);
        let RtxVerdict::GiveUp { dst, msg } = r.on_rtx(seq, &cfg) else {
            panic!("attempt budget exhausted: must give up");
        };
        assert_eq!((dst, msg), (n(9), "probe"));
        assert!(matches!(r.on_rtx(seq, &cfg), RtxVerdict::Stale));
        assert_eq!(r.stats.retransmits, 2);
        assert_eq!(r.stats.give_ups, 1);
        assert_eq!(r.outstanding(), 0);
    }

    #[test]
    fn ack_races_rtx_timer_to_stale() {
        let cfg = ReliableConfig::default();
        let mut r: ReliableState<&str> = ReliableState::default();
        let seq = r.seal(n(4), "x");
        r.on_ack(seq).unwrap();
        assert!(matches!(r.on_rtx(seq, &cfg), RtxVerdict::Stale));
    }

    #[test]
    fn dedup_is_per_origin_and_counts() {
        let mut r: ReliableState<()> = ReliableState::default();
        assert!(r.consume(n(1), 0));
        assert!(!r.consume(n(1), 0), "same (origin, seq) is a duplicate");
        assert!(r.consume(n(2), 0), "seq spaces are per origin");
        assert!(r.observe(n(1), 5), "reordered-ahead seq is fresh");
        assert!(r.consume(n(1), 3), "reordered-behind seq is still fresh");
        assert_eq!(r.stats.consumed_fresh, 3);
        assert_eq!(r.stats.dup_suppressed, 1);
    }

    #[test]
    fn seen_window_prunes_but_stays_correct_near_the_top() {
        let mut r: ReliableState<()> = ReliableState::default();
        for seq in 0..(WINDOW_PRUNE as u64 + 10) {
            assert!(r.observe(n(1), seq));
        }
        // Recent history survives the prune...
        assert!(!r.observe(n(1), WINDOW_PRUNE as u64 + 9));
        assert!(!r.observe(n(1), WINDOW_PRUNE as u64 - WINDOW_KEEP / 2));
        // ...and anything below the floor is treated as a duplicate.
        assert!(!r.observe(n(1), 0));
        let bytes = r.state_bytes();
        assert!(bytes > 0 && bytes < 64 * 1024, "window must stay bounded");
    }

    #[test]
    fn from_period_bounds_detection_latency() {
        let cfg = ReliableConfig::from_period(100);
        assert_eq!(cfg.rto, 50);
        assert_eq!(cfg.rto_cap, 200);
        // Detection completes within a handful of periods.
        assert!(cfg.detection_bound() <= 6 * 100);
    }
}
