//! The experiment-side command vocabulary.
//!
//! Every protocol instantiates its kernel with this command type, so the
//! experiment runner can drive HBH, REUNITE and the PIM variants through
//! one interface: start a source, join/leave receivers, inject a tagged
//! data probe.

use crate::channel::Channel;

/// A command scheduled at a node by the experiment driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmd {
    /// The node starts sourcing `ch` (must be `ch.source`). For protocols
    /// with periodic source behaviour (HBH/REUNITE tree messages, PIM-SM
    /// register path) this arms the source agent.
    StartSource(Channel),
    /// The node's receiver agent subscribes to `ch` and starts its
    /// periodic joins.
    Join(Channel),
    /// The receiver agent unsubscribes: it simply *stops sending joins*
    /// (the paper's leave semantics — soft state does the rest).
    Leave(Channel),
    /// The source injects one data packet on `ch`, tagged `tag` for
    /// accounting. Must be scheduled at `ch.source`.
    SendData {
        /// The channel to send on.
        ch: Channel,
        /// Accounting tag attributed to this packet's copies.
        tag: u64,
    },
}

impl Cmd {
    /// The channel this command concerns.
    pub fn channel(&self) -> Channel {
        match *self {
            Cmd::StartSource(ch) | Cmd::Join(ch) | Cmd::Leave(ch) => ch,
            Cmd::SendData { ch, .. } => ch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbh_topo::graph::NodeId;

    #[test]
    fn channel_accessor_covers_all_variants() {
        let ch = Channel::primary(NodeId(1));
        for cmd in [
            Cmd::StartSource(ch),
            Cmd::Join(ch),
            Cmd::Leave(ch),
            Cmd::SendData { ch, tag: 3 },
        ] {
            assert_eq!(cmd.channel(), ch);
        }
    }
}
