#![warn(missing_docs)]

//! # hbh-proto-base — building blocks shared by all four protocols
//!
//! HBH, REUNITE, PIM-SM and PIM-SS share a surprising amount of machinery:
//! the `<S, G>` channel abstraction, soft state with a stale timer `t1` and
//! a destruction timer `t2`, periodic refresh messages, and the same
//! experiment-side command vocabulary (start source / join / leave / send
//! data). This crate holds those pieces so each protocol crate contains
//! only what is genuinely protocol-specific: its message set and its
//! message-processing rules.
//!
//! * [`channel`] — `<S, G>` channel identifiers (EXPRESS-style: unicast
//!   source plus class-D group in the SSM `232/8` range);
//! * [`softstate`] — the t1/t2 soft-state entry lifecycle, timestamp-based
//!   (entries are refreshed by messages and reaped lazily, the standard
//!   soft-state implementation technique);
//! * [`command`] — the common experiment command set, the `Command` type of
//!   every protocol's kernel instantiation;
//! * [`timing`] — refresh periods and timer durations (the paper does not
//!   publish NS parameter values; the defaults here are derived from the
//!   topology scale and documented);
//! * [`membership`] — receiver-set sampling and join/leave schedules (the
//!   paper's "variable number of randomly chosen receivers", plus the
//!   Poisson churn used by the group-dynamics ablation);
//! * [`script`] — the unified scenario schedule (commands + fault events
//!   at times) consumed by both the simulation kernel and the live UDP
//!   cluster, so one scenario definition drives every backend;
//! * [`workload`] — declarative membership workloads ([`Workload`]):
//!   the paper's §4.1 figure workload plus the flash-crowd, Zipf and
//!   IPTV-zapping patterns used by the membership-scale benchmarks, all
//!   realized as receiver sets, join schedules and [`Script`]s.

pub mod channel;
pub mod command;
pub mod inventory;
pub mod membership;
pub mod reliable;
pub mod script;
pub mod softstate;
pub mod timing;
pub mod workload;

pub use channel::{Channel, GroupAddr};
pub use command::Cmd;
pub use inventory::StateInventory;
pub use reliable::{Outstanding, ReliableConfig, ReliableState, ReliableStats, RtxVerdict};
pub use script::{Script, ScriptAction};
pub use softstate::{EntryPhase, SoftEntry};
pub use timing::Timing;
pub use workload::{Workload, WorkloadGen, WorkloadPlan};
