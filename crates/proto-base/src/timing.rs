//! Protocol timing parameters.
//!
//! The paper describes the timer *structure* (periodic joins from
//! receivers, periodic trees from the source, per-entry t1/t2) but — as is
//! usual for NS studies — does not publish the constants. The defaults
//! here are scaled to the experiment topologies:
//!
//! * the largest one-way path in any experiment is well under 100 time
//!   units (≤ ~10 hops × cost ≤ 10), so a refresh `period` of 100 keeps
//!   every refresh round-trip inside one period;
//! * `t1 = 2.6 × period` tolerates two lost/interleaved refresh rounds
//!   before an entry goes stale (the 0.6 slack keeps a refresh that lands
//!   exactly on a period boundary from racing its own expiry);
//! * `t2 = 2 × t1` gives the paper's two-stage decay: stale long enough
//!   for reconfiguration to happen (Figure 2's walk-through), then gone.
//!
//! The steady-state *tree shapes* the paper measures are insensitive to
//! these constants (they only change how fast convergence happens); the
//! timer-sensitivity ablation (`DESIGN.md` A3) varies them explicitly.

/// Timer and period configuration shared by all protocols.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timing {
    /// Period between two `join` refreshes from a receiver.
    pub join_period: u64,
    /// Period between two `tree` refreshes from the source.
    pub tree_period: u64,
    /// Entry staleness timeout (from last refresh).
    pub t1: u64,
    /// Entry destruction timeout (from last refresh).
    pub t2: u64,
}

impl Default for Timing {
    fn default() -> Self {
        let period = 100;
        let t1 = period * 26 / 10;
        Timing {
            join_period: period,
            tree_period: period,
            t1,
            t2: 2 * t1,
        }
    }
}

impl Timing {
    /// How long an experiment should run for a group of `n` receivers to
    /// be safely converged: every receiver has joined, fusions have
    /// propagated, superseded entries have died (one full t2), plus slack.
    ///
    /// Convergence is *verified* by the experiment runner (quiescence of
    /// structural changes), this is only the horizon it waits within.
    pub fn convergence_horizon(&self, join_window: u64) -> u64 {
        join_window + 4 * self.t2 + 10 * self.join_period.max(self.tree_period)
    }

    /// Sanity-checks the invariants the protocols rely on.
    pub fn validate(&self) {
        assert!(
            self.join_period > 0 && self.tree_period > 0,
            "periods must be positive"
        );
        assert!(
            self.t1 > self.join_period && self.t1 > self.tree_period,
            "t1 must exceed the refresh periods or entries flap"
        );
        assert!(self.t2 > self.t1, "t2 must exceed t1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        Timing::default().validate();
    }

    #[test]
    fn defaults_have_paper_structure() {
        let t = Timing::default();
        assert!(t.t1 > 2 * t.join_period, "survives two lost refresh rounds");
        assert_eq!(t.t2, 2 * t.t1);
    }

    #[test]
    #[should_panic(expected = "t1 must exceed")]
    fn flappy_t1_rejected() {
        Timing {
            join_period: 100,
            tree_period: 100,
            t1: 50,
            t2: 100,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "t2 must exceed t1")]
    fn inverted_t2_rejected() {
        Timing {
            join_period: 10,
            tree_period: 10,
            t1: 50,
            t2: 50,
        }
        .validate();
    }

    #[test]
    fn horizon_covers_join_window_and_decay() {
        let t = Timing::default();
        let h = t.convergence_horizon(500);
        assert!(h >= 500 + 4 * t.t2);
    }
}
