//! The `<S, G>` channel abstraction.
//!
//! HBH identifies a multicast conversation by the pair `<S, G>`: `S` is the
//! unicast address of the source and `G` a class-D group address allocated
//! by the source (§3 of the paper). Concatenating the two solves multicast
//! address allocation (the unicast address is globally unique) while
//! remaining compatible with IP Multicast — unlike REUNITE's `<S, P>` port
//! pairs, which abandon class-D addressing entirely.
//!
//! In the simulator, node ids play the role of unicast addresses (the
//! mapping is 1:1 and lossless); group addresses live in their own type so
//! the two spaces cannot be confused, and render in the source-specific
//! multicast range `232/8` the way a deployed HBH would allocate them.

use hbh_topo::graph::NodeId;
use std::fmt;

/// A class-D (multicast) group address allocated by a source.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupAddr(pub u32);

impl GroupAddr {
    /// Size of the per-source group space we format into `232/8`.
    const HOST_SPACE: u32 = 1 << 24;
}

impl fmt::Display for GroupAddr {
    /// Renders inside the SSM range: `232.x.y.z`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0 % Self::HOST_SPACE;
        write!(
            f,
            "232.{}.{}.{}",
            (v >> 16) & 0xff,
            (v >> 8) & 0xff,
            v & 0xff
        )
    }
}

impl fmt::Debug for GroupAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A source-specific multicast channel `<S, G>`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// Unicast address of the source (the node the source agent runs on).
    pub source: NodeId,
    /// Group address allocated by that source.
    pub group: GroupAddr,
}

impl Channel {
    /// The channel `<source, group>`.
    pub fn new(source: NodeId, group: GroupAddr) -> Self {
        Channel { source, group }
    }

    /// The conventional "first" channel of a source, used by experiments
    /// that need exactly one group.
    pub fn primary(source: NodeId) -> Self {
        Channel {
            source,
            group: GroupAddr(1),
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.source, self.group)
    }
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_addr_formats_in_ssm_range() {
        assert_eq!(GroupAddr(1).to_string(), "232.0.0.1");
        assert_eq!(GroupAddr(0x01_02_03).to_string(), "232.1.2.3");
    }

    #[test]
    fn group_addr_wraps_host_space() {
        assert_eq!(
            GroupAddr(GroupAddr::HOST_SPACE + 5).to_string(),
            "232.0.0.5"
        );
    }

    #[test]
    fn channel_identity_is_source_and_group() {
        let a = Channel::new(NodeId(3), GroupAddr(1));
        let b = Channel::new(NodeId(3), GroupAddr(1));
        let c = Channel::new(NodeId(4), GroupAddr(1));
        let d = Channel::new(NodeId(3), GroupAddr(2));
        assert_eq!(a, b);
        assert_ne!(
            a, c,
            "same group under different sources is a different channel"
        );
        assert_ne!(a, d);
    }

    #[test]
    fn channel_displays_as_pair() {
        assert_eq!(Channel::primary(NodeId(18)).to_string(), "<n18, 232.0.0.1>");
    }

    #[test]
    fn debug_matches_display() {
        let ch = Channel::primary(NodeId(2));
        assert_eq!(format!("{ch:?}"), ch.to_string());
    }
}
