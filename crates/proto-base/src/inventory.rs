//! State-inventory introspection, used by the state-size experiment.
//!
//! REUNITE's founding observation (§2.1 of the HBH paper) is that classic
//! multicast keeps *forwarding* state at every on-tree router although
//! only the minority — the branching nodes — need it. Each protocol's
//! node state reports how many forwarding-plane and control-plane-only
//! entries it holds for a channel, so the experiment can compare the
//! protocols' state footprints directly.

use crate::channel::Channel;

/// Per-node protocol-state accounting.
pub trait StateInventory {
    /// Entries consulted by the data plane for `ch` (MFT entries, PIM
    /// oifs). Zero means this node forwards `ch`'s data as plain unicast.
    fn forwarding_entries(&self, ch: Channel) -> usize;

    /// Control-plane-only entries for `ch` (MCT entries). PIM has none —
    /// all its per-group state is forwarding state.
    fn control_entries(&self, ch: Channel) -> usize;
}
