//! State-inventory introspection, used by the state-size experiment.
//!
//! REUNITE's founding observation (§2.1 of the HBH paper) is that classic
//! multicast keeps *forwarding* state at every on-tree router although
//! only the minority — the branching nodes — need it. Each protocol's
//! node state reports how many forwarding-plane and control-plane-only
//! entries it holds for a channel, so the experiment can compare the
//! protocols' state footprints directly.

use crate::channel::Channel;
use crate::reliable::ReliableStats;

/// Per-node protocol-state accounting.
pub trait StateInventory {
    /// Entries consulted by the data plane for `ch` (MFT entries, PIM
    /// oifs). Zero means this node forwards `ch`'s data as plain unicast.
    fn forwarding_entries(&self, ch: Channel) -> usize;

    /// Control-plane-only entries for `ch` (MCT entries). PIM has none —
    /// all its per-group state is forwarding state.
    fn control_entries(&self, ch: Channel) -> usize;

    /// Approximate bytes of per-channel protocol state, for footprint
    /// comparisons across engines with different entry shapes. The
    /// default charges a forwarding entry as a node id plus timers and
    /// cover set headroom, and a control entry as a node id plus timer —
    /// engines with heavier entries (e.g. reliability bookkeeping)
    /// override this.
    fn state_bytes(&self, ch: Channel) -> usize {
        24 * self.forwarding_entries(ch) + 12 * self.control_entries(ch)
    }

    /// Reliable-control-layer counters, when this engine runs one.
    /// Engines without a reliable layer report `None`; experiments then
    /// score them zero retransmissions by construction.
    fn reliable_stats(&self) -> Option<ReliableStats> {
        None
    }
}
