//! Group-membership workloads.
//!
//! The paper's evaluation (§4.1): *"A variable number of randomly chosen
//! receivers join the channel"* — receivers are sampled uniformly without
//! replacement from the per-router host pool, for each group size, 500
//! independent runs. The sampling and scheduling primitives now live in
//! [`crate::workload`] behind the [`crate::Workload`] builder; the
//! functions here are deprecated shims kept for one release.
//! [`churn_schedule`] (the Poisson join/leave process of the
//! group-dynamics ablation, `DESIGN.md` A4) still lives here.

use hbh_sim_core::Time;
use hbh_topo::graph::NodeId;
use rand::rngs::StdRng;
use rand::RngExt;

/// Samples `m` distinct receivers uniformly from `pool` (partial
/// Fisher–Yates; order is the sampling order).
///
/// # Panics
/// Panics if `m > pool.len()`.
#[deprecated(
    since = "0.2.0",
    note = "moved to `workload::sample_receivers`; prefer building a `Workload`"
)]
pub fn sample_receivers(pool: &[NodeId], m: usize, rng: &mut StdRng) -> Vec<NodeId> {
    crate::workload::sample_receivers(pool, m, rng)
}

/// Assigns each receiver a join time uniform in `[start, start + window]`.
#[deprecated(
    since = "0.2.0",
    note = "moved to `workload::join_schedule`; prefer building a `Workload`"
)]
pub fn join_schedule(
    receivers: &[NodeId],
    start: Time,
    window: u64,
    rng: &mut StdRng,
) -> Vec<(NodeId, Time)> {
    crate::workload::join_schedule(receivers, start, window, rng)
}

/// A membership-change event for the churn ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The host subscribes.
    Join(NodeId),
    /// The host unsubscribes.
    Leave(NodeId),
}

/// Generates a Poisson churn process over `horizon`: events arrive with
/// exponential inter-arrival times of mean `mean_gap`; each event toggles
/// a uniformly chosen host between member and non-member.
///
/// Returns `(time, event)` pairs in time order. The initial membership is
/// empty; a `Leave` is only ever emitted for a current member.
pub fn churn_schedule(
    pool: &[NodeId],
    mean_gap: f64,
    start: Time,
    horizon: u64,
    rng: &mut StdRng,
) -> Vec<(Time, ChurnEvent)> {
    assert!(!pool.is_empty() && mean_gap > 0.0);
    let mut member = vec![false; pool.len()];
    let mut events = Vec::new();
    let mut t = start.0 as f64;
    let end = start.0 + horizon;
    loop {
        // Exponential inter-arrival via inverse CDF; clamp u away from 0.
        let u: f64 = rng.random::<f64>().max(1e-12);
        t += -u.ln() * mean_gap;
        if t as u64 > end {
            break;
        }
        let i = rng.random_range(0..pool.len());
        member[i] = !member[i];
        let ev = if member[i] {
            ChurnEvent::Join(pool[i])
        } else {
            ChurnEvent::Leave(pool[i])
        };
        events.push((Time(t as u64), ev));
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pool(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    #[allow(deprecated)]
    fn shims_delegate_to_workload() {
        // Same seed through the shim and the moved function must agree —
        // the deprecation must not perturb any existing RNG stream.
        let p = pool(20);
        let via_shim = sample_receivers(&p, 7, &mut rng(3));
        let direct = crate::workload::sample_receivers(&p, 7, &mut rng(3));
        assert_eq!(via_shim, direct);
        let a = join_schedule(&via_shim, Time(50), 200, &mut rng(5));
        let b = crate::workload::join_schedule(&direct, Time(50), 200, &mut rng(5));
        assert_eq!(a, b);
    }

    #[test]
    fn churn_alternates_join_leave_per_node() {
        let p = pool(4);
        let events = churn_schedule(&p, 10.0, Time(0), 10_000, &mut rng(6));
        assert!(!events.is_empty());
        let mut member = std::collections::HashSet::new();
        for (_, ev) in &events {
            match ev {
                ChurnEvent::Join(n) => assert!(member.insert(*n), "joined while member"),
                ChurnEvent::Leave(n) => assert!(member.remove(n), "left while not member"),
            }
        }
    }

    #[test]
    fn churn_is_time_ordered_and_bounded() {
        let p = pool(4);
        let events = churn_schedule(&p, 5.0, Time(100), 1000, &mut rng(7));
        let mut prev = Time(0);
        for &(t, _) in &events {
            assert!(t >= prev);
            assert!(t.0 <= 1100);
            prev = t;
        }
    }
}
