//! Group-membership workloads.
//!
//! The paper's evaluation (§4.1): *"A variable number of randomly chosen
//! receivers join the channel"* — receivers are sampled uniformly without
//! replacement from the per-router host pool, for each group size, 500
//! independent runs. [`sample_receivers`] implements the sampling;
//! [`join_schedule`] staggers the joins over a window (simultaneous joins
//! would be an unrealistic lock-step special case); [`churn_schedule`]
//! generates the Poisson join/leave process used by the group-dynamics
//! ablation (`DESIGN.md` A4).

use hbh_sim_core::Time;
use hbh_topo::graph::NodeId;
use rand::rngs::StdRng;
use rand::RngExt;

/// Samples `m` distinct receivers uniformly from `pool` (partial
/// Fisher–Yates; order is the sampling order).
///
/// # Panics
/// Panics if `m > pool.len()`.
pub fn sample_receivers(pool: &[NodeId], m: usize, rng: &mut StdRng) -> Vec<NodeId> {
    assert!(
        m <= pool.len(),
        "cannot sample {m} receivers from a pool of {}",
        pool.len()
    );
    let mut pool = pool.to_vec();
    for i in 0..m {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(m);
    pool
}

/// Assigns each receiver a join time uniform in `[start, start + window]`.
pub fn join_schedule(
    receivers: &[NodeId],
    start: Time,
    window: u64,
    rng: &mut StdRng,
) -> Vec<(NodeId, Time)> {
    receivers
        .iter()
        .map(|&r| (r, start + rng.random_range(0..=window)))
        .collect()
}

/// A membership-change event for the churn ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The host subscribes.
    Join(NodeId),
    /// The host unsubscribes.
    Leave(NodeId),
}

/// Generates a Poisson churn process over `horizon`: events arrive with
/// exponential inter-arrival times of mean `mean_gap`; each event toggles
/// a uniformly chosen host between member and non-member.
///
/// Returns `(time, event)` pairs in time order. The initial membership is
/// empty; a `Leave` is only ever emitted for a current member.
pub fn churn_schedule(
    pool: &[NodeId],
    mean_gap: f64,
    start: Time,
    horizon: u64,
    rng: &mut StdRng,
) -> Vec<(Time, ChurnEvent)> {
    assert!(!pool.is_empty() && mean_gap > 0.0);
    let mut member = vec![false; pool.len()];
    let mut events = Vec::new();
    let mut t = start.0 as f64;
    let end = start.0 + horizon;
    loop {
        // Exponential inter-arrival via inverse CDF; clamp u away from 0.
        let u: f64 = rng.random::<f64>().max(1e-12);
        t += -u.ln() * mean_gap;
        if t as u64 > end {
            break;
        }
        let i = rng.random_range(0..pool.len());
        member[i] = !member[i];
        let ev = if member[i] {
            ChurnEvent::Join(pool[i])
        } else {
            ChurnEvent::Leave(pool[i])
        };
        events.push((Time(t as u64), ev));
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pool(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sample_is_distinct_and_from_pool() {
        let p = pool(20);
        let s = sample_receivers(&p, 8, &mut rng(1));
        assert_eq!(s.len(), 8);
        let mut sorted = s.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "duplicates in sample");
        assert!(s.iter().all(|r| p.contains(r)));
    }

    #[test]
    fn sample_full_pool_is_permutation() {
        let p = pool(5);
        let mut s = sample_receivers(&p, 5, &mut rng(2));
        s.sort();
        assert_eq!(s, p);
    }

    #[test]
    fn sample_is_seed_deterministic() {
        let p = pool(20);
        assert_eq!(
            sample_receivers(&p, 7, &mut rng(3)),
            sample_receivers(&p, 7, &mut rng(3))
        );
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Each of 10 hosts should appear ~500 times over 1000 draws of 5.
        let p = pool(10);
        let mut counts = [0u32; 10];
        let mut r = rng(4);
        for _ in 0..1000 {
            for n in sample_receivers(&p, 5, &mut r) {
                counts[n.0 as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((400..=600).contains(&c), "host {i} drawn {c} times");
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_rejected() {
        sample_receivers(&pool(3), 4, &mut rng(0));
    }

    #[test]
    fn join_schedule_within_window() {
        let p = pool(10);
        let sched = join_schedule(&p, Time(50), 200, &mut rng(5));
        assert_eq!(sched.len(), 10);
        for &(_, t) in &sched {
            assert!(t >= Time(50) && t <= Time(250));
        }
    }

    #[test]
    fn churn_alternates_join_leave_per_node() {
        let p = pool(4);
        let events = churn_schedule(&p, 10.0, Time(0), 10_000, &mut rng(6));
        assert!(!events.is_empty());
        let mut member = std::collections::HashSet::new();
        for (_, ev) in &events {
            match ev {
                ChurnEvent::Join(n) => assert!(member.insert(*n), "joined while member"),
                ChurnEvent::Leave(n) => assert!(member.remove(n), "left while not member"),
            }
        }
    }

    #[test]
    fn churn_is_time_ordered_and_bounded() {
        let p = pool(4);
        let events = churn_schedule(&p, 5.0, Time(100), 1000, &mut rng(7));
        let mut prev = Time(0);
        for &(t, _) in &events {
            assert!(t >= prev);
            assert!(t.0 <= 1100);
            prev = t;
        }
    }
}
