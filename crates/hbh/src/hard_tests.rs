//! Behavioural tests for the hard-state HBH engine: same tree shapes as
//! the soft engine on the paper topologies, plus the hard-state-specific
//! properties — quiescence without refresh traffic, event-driven crash
//! repair, deadman child reaping, and the reliable layer's exactly-once
//! ledger under heavy Bernoulli loss.

use crate::hard::HbhHard;
use hbh_proto_base::reliable::ReliableConfig;
use hbh_proto_base::{Channel, Cmd, StateInventory, Timing};
use hbh_sim_core::{FaultPlan, Kernel, Network, Time};
use hbh_topo::graph::{Graph, NodeId};
use hbh_topo::scenarios;

fn kernel_on(g: Graph) -> Kernel<HbhHard> {
    Kernel::new(Network::new(g), HbhHard::new(Timing::default()), 11)
}

fn n(k: &Kernel<HbhHard>, label: &str) -> NodeId {
    k.network().graph().node_by_label(label).unwrap()
}

/// Simple symmetric line: s(host) - a - b - c - h (all unit costs).
fn line() -> (Kernel<HbhHard>, NodeId, Vec<NodeId>, NodeId) {
    let mut g = Graph::new();
    let a = g.add_router();
    let b = g.add_router();
    let c = g.add_router();
    g.add_link(a, b, 1, 1);
    g.add_link(b, c, 1, 1);
    let s = g.add_host(a, 1, 1);
    let h = g.add_host(c, 1, 1);
    (kernel_on(g), s, vec![a, b, c], h)
}

/// Redundant diamond with a third, independently homed receiver:
/// `s—a`, then a cheap path `a—b—{d,e}` and an expensive backup
/// `a—c—{d,e}`; receivers h1 on d, h2 on e (both initially served through
/// the branching router b) and the "innocent" h3 directly on a.
#[allow(clippy::type_complexity)]
fn diamond() -> (
    Kernel<HbhHard>,
    NodeId,                   // s
    (NodeId, NodeId, NodeId), // a, b, c
    (NodeId, NodeId, NodeId), // h1, h2, h3
) {
    let mut g = Graph::new();
    let a = g.add_router();
    let b = g.add_router();
    let c = g.add_router();
    let d = g.add_router();
    let e = g.add_router();
    g.add_link(a, b, 1, 1);
    g.add_link(b, d, 1, 1);
    g.add_link(b, e, 1, 1);
    g.add_link(a, c, 3, 3);
    g.add_link(c, d, 3, 3);
    g.add_link(c, e, 3, 3);
    let s = g.add_host(a, 1, 1);
    let h1 = g.add_host(d, 1, 1);
    let h2 = g.add_host(e, 1, 1);
    let h3 = g.add_host(a, 1, 1);
    (kernel_on(g), s, (a, b, c), (h1, h2, h3))
}

#[test]
fn single_receiver_joins_and_gets_data() {
    let (mut k, s, routers, h) = line();
    let ch = Channel::primary(s);
    k.command_at(h, Cmd::Join(ch), Time(0));
    k.run_until(Time(600));
    let mft = k.state(s).mft(ch).expect("source MFT");
    assert!(mft.contains(h));
    for &r in &routers {
        let st = k.state(r);
        assert!(
            st.mct(ch) == Some(h) || st.is_branching(ch),
            "router {r} has no tree state"
        );
    }
    assert_eq!(k.state(h).parent(ch), Some(s), "receiver homed at source");
    k.command_at(s, Cmd::SendData { ch, tag: 1 }, Time(600));
    k.run_until(Time(700));
    let d: Vec<_> = k.stats().deliveries_tagged(1).collect();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].delay(), k.network().dist(s, h).unwrap());
}

#[test]
fn fig5_builds_shortest_path_tree_under_asymmetry() {
    // The hard engine must build the same Figure-5 shortest-path tree as
    // the soft engine — the state model changes, the tree must not.
    let mut k = kernel_on(scenarios::fig2());
    let (s, r1, r2, r3) = (n(&k, "S"), n(&k, "r1"), n(&k, "r2"), n(&k, "r3"));
    let ch = Channel::primary(s);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(300));
    k.command_at(r3, Cmd::Join(ch), Time(600));
    k.run_until(Time(6000));
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 9 }, t);
    k.run_until(t + 100);
    let deliveries: Vec<_> = k.stats().deliveries_tagged(9).collect();
    assert_eq!(deliveries.len(), 3, "all three receivers served");
    for d in deliveries {
        let spt = k.network().dist(s, d.node).unwrap();
        assert_eq!(
            d.delay(),
            spt,
            "receiver {} not on its shortest path",
            d.node
        );
    }
}

#[test]
fn fig3_fusion_suppresses_duplicate_copies() {
    let mut k = kernel_on(scenarios::fig3());
    let (s, r1n, r6) = (n(&k, "S"), n(&k, "R1"), n(&k, "R6"));
    let (r1, r2) = (n(&k, "r1"), n(&k, "r2"));
    let ch = Channel::primary(s);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(300));
    k.run_until(Time(6000));
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 3 }, t);
    k.run_until(t + 100);

    assert_eq!(k.stats().deliveries_tagged(3).count(), 2);
    let per_link = k.stats().data_copies_per_link(3);
    for (link, copies) in &per_link {
        assert_eq!(*copies, 1, "duplicate copy on {link:?}");
    }
    assert_eq!(
        per_link[&(r1n, r6)],
        1,
        "exactly one copy on the shared link"
    );
    // Structure: R6 branches to both receivers.
    let r6_mft = k.state(r6).mft(ch).expect("R6 branching");
    let mut targets: Vec<NodeId> = r6_mft.data_targets().collect();
    targets.sort();
    assert_eq!(targets, vec![r1, r2]);
}

#[test]
fn quiescent_tree_emits_no_tree_or_join_traffic() {
    // The hard-state claim: once converged, the only control traffic is
    // the probe/ACK heartbeat — no structural churn, no refresh storms.
    let mut k = kernel_on(scenarios::fig2());
    let s = n(&k, "S");
    let ch = Channel::primary(s);
    for (i, label) in ["r1", "r2", "r3"].iter().enumerate() {
        let r = n(&k, label);
        k.command_at(r, Cmd::Join(ch), Time(i as u64 * 200));
    }
    k.run_until(Time(5000));
    let settled_changes = k.stats().structural_changes;
    let settled_control = k.stats().control_copies();
    k.run_until(Time(15000));
    assert_eq!(
        k.stats().structural_changes,
        settled_changes,
        "structure still churning after convergence"
    );
    // The heartbeat is bounded: per probe period each prober emits one
    // probe and receives one ACK, each crossing a handful of links.
    let window = 15000 - 5000;
    let periods = window / k.protocol().probe_period;
    let heartbeat = k.stats().control_copies() - settled_control;
    assert!(heartbeat > 0, "probing must be active");
    assert!(
        heartbeat <= periods * 64,
        "control traffic beyond a plausible heartbeat: {heartbeat}"
    );
    assert_eq!(k.stats().drops, 0);
}

#[test]
fn full_departure_tears_down_all_state_and_timers() {
    let mut k = kernel_on(scenarios::fig2());
    let s = n(&k, "S");
    let receivers = [n(&k, "r1"), n(&k, "r2"), n(&k, "r3")];
    let ch = Channel::primary(s);
    for (i, &r) in receivers.iter().enumerate() {
        k.command_at(r, Cmd::Join(ch), Time(i as u64 * 200));
    }
    k.run_until(Time(4000));
    for &r in &receivers {
        k.command_at(r, Cmd::Leave(ch), Time(4000));
    }
    k.run_until(Time(10000));
    for node in k.network().graph().nodes() {
        assert!(k.state(node).mft(ch).is_none(), "MFT lingers at {node}");
        assert!(k.state(node).mct(ch).is_none(), "MCT lingers at {node}");
    }
    assert_eq!(
        k.pending_timer_count(),
        0,
        "timers must drain with the state"
    );
    for node in k.network().graph().nodes() {
        let rel = k.state(node).reliable();
        assert_eq!(rel.outstanding(), 0, "unsettled message at {node}");
    }
}

#[test]
fn branching_crash_repairs_subtree_without_touching_innocents() {
    let (mut k, s, (a, b, _c), (h1, h2, h3)) = diamond();
    let ch = Channel::primary(s);
    k.command_at(h1, Cmd::Join(ch), Time(0));
    k.command_at(h2, Cmd::Join(ch), Time(100));
    k.command_at(h3, Cmd::Join(ch), Time(200));
    k.run_until(Time(2000));
    k.command_at(s, Cmd::SendData { ch, tag: 1 }, Time(2000));
    k.run_until(Time(2100));
    let before: Vec<_> = k.stats().deliveries_tagged(1).collect();
    assert_eq!(before.len(), 3, "all three served before the crash");
    let h3_delay = before.iter().find(|d| d.node == h3).unwrap().delay();

    k.install_faults(&FaultPlan::new().node_down(Time(2200), b));
    k.run_until(Time(4000));

    // The subtree behind b re-homed through a (the interception point of
    // the repair joins); the innocent h3 was never perturbed.
    assert!(
        !k.state(a).mft(ch).expect("a branches").contains(b),
        "dead branching node must be purged at a"
    );
    k.command_at(s, Cmd::SendData { ch, tag: 2 }, Time(4000));
    k.run_until(Time(4200));
    let after: Vec<_> = k.stats().deliveries_tagged(2).collect();
    let mut nodes: Vec<NodeId> = after.iter().map(|d| d.node).collect();
    nodes.sort();
    let mut want = vec![h1, h2, h3];
    want.sort();
    assert_eq!(nodes, want, "every receiver exactly once after repair");
    assert_eq!(
        after.iter().find(|d| d.node == h3).unwrap().delay(),
        h3_delay,
        "innocent receiver's route changed"
    );
}

#[test]
fn blank_restarted_parent_is_detected_and_bypassed() {
    // b crashes and restarts blank before the probe ladder gives up: the
    // probers get `known = false` ACKs and re-home, and a's deadman reaps
    // the silent child — repair without any give-up.
    let (mut k, s, (a, b, _c), (h1, h2, _h3)) = diamond();
    let ch = Channel::primary(s);
    k.command_at(h1, Cmd::Join(ch), Time(0));
    k.command_at(h2, Cmd::Join(ch), Time(100));
    k.run_until(Time(2000));
    k.install_faults(
        &FaultPlan::new()
            .node_down(Time(2200), b)
            .node_up(Time(2220), b),
    );
    k.run_until(Time(4500));
    // b may legitimately be re-elected as the branching node once the
    // receivers re-home (their trees transit it again) — what matters is
    // that the blank incarnation was detected and the tree rebuilt around
    // live state: every receiver served, exactly once, with no lingering
    // retransmission ladders.
    assert!(k.state(a).mft(ch).is_some(), "a still branches for s");
    k.command_at(s, Cmd::SendData { ch, tag: 5 }, Time(4500));
    k.run_until(Time(4700));
    let mut nodes: Vec<NodeId> = k.stats().deliveries_tagged(5).map(|d| d.node).collect();
    nodes.sort();
    let mut want = vec![h1, h2];
    want.sort();
    assert_eq!(nodes, want, "both receivers exactly once after re-home");
}

#[test]
fn lossy_link_delivers_every_control_message_exactly_once() {
    // Acceptance scenario: ≥20% Bernoulli loss on the transit link, a
    // retransmission budget deep enough that nothing is abandoned, and
    // the ledger must balance — every sealed control message consumed
    // exactly once, duplicates suppressed, nothing outstanding.
    let mut g = Graph::new();
    let a = g.add_router();
    let b = g.add_router();
    g.add_link(a, b, 1, 1);
    let s = g.add_host(a, 1, 1);
    let h = g.add_host(b, 1, 1);
    let proto = HbhHard::with_reliable(
        Timing::default(),
        100,
        ReliableConfig {
            rto: 50,
            rto_cap: 100,
            max_attempts: 16,
        },
    );
    let mut k = Kernel::new(Network::new(g), proto, 11);
    k.install_faults(&FaultPlan::new().with_link_loss(a, b, 0.25));
    let ch = Channel::primary(s);
    k.command_at(h, Cmd::Join(ch), Time(0));
    k.run_until(Time(3000));
    assert!(
        k.state(s).mft(ch).is_some_and(|m| m.contains(h)),
        "join must get through the lossy link"
    );
    k.command_at(h, Cmd::Leave(ch), Time(3000));
    k.run_until(Time(12000));

    let mut sealed = 0;
    let mut consumed = 0;
    let mut retransmits = 0;
    let mut give_ups = 0;
    let mut dups = 0;
    for node in k.network().graph().nodes() {
        let rel = k.state(node).reliable();
        assert_eq!(rel.outstanding(), 0, "message still unsettled at {node}");
        let st = rel.stats;
        sealed += st.sealed;
        consumed += st.consumed_fresh;
        retransmits += st.retransmits;
        give_ups += st.give_ups;
        dups += st.dup_suppressed;
    }
    assert_eq!(give_ups, 0, "budget must cover 25% loss");
    assert_eq!(
        consumed, sealed,
        "each control message consumed exactly once"
    );
    assert!(
        retransmits > 0,
        "loss must actually exercise retransmission"
    );
    assert!(dups >= 1, "a lost ACK must produce a suppressed duplicate");
    assert_eq!(k.pending_timer_count(), 0, "timers drained after teardown");
}

#[test]
fn state_inventory_reports_hard_entries_and_reliable_stats() {
    let (mut k, s, routers, h) = line();
    let ch = Channel::primary(s);
    k.command_at(h, Cmd::Join(ch), Time(0));
    k.run_until(Time(600));
    let src = k.state(s);
    assert_eq!(src.forwarding_entries(ch), 1);
    assert!(src.state_bytes(ch) > 0);
    let stats = src.reliable_stats().expect("hard engine reports stats");
    assert!(stats.sealed > 0, "source sealed at least one tree message");
    let mid = k.state(routers[1]);
    assert_eq!(mid.forwarding_entries(ch), 0);
    assert_eq!(mid.control_entries(ch), 1, "MCT only at transit routers");
}

#[test]
fn determinism_across_identical_runs() {
    let run = || {
        let mut k = kernel_on(scenarios::fig2());
        let s = n(&k, "S");
        let ch = Channel::primary(s);
        for (i, label) in ["r1", "r2", "r3"].iter().enumerate() {
            let r = n(&k, label);
            k.command_at(r, Cmd::Join(ch), Time(i as u64 * 250));
        }
        k.run_until(Time(5000));
        k.command_at(s, Cmd::SendData { ch, tag: 1 }, Time(5000));
        k.run_until(Time(5200));
        (
            k.stats().data_copies_tagged(1),
            k.stats().deliveries.clone(),
            k.stats().structural_changes,
        )
    };
    assert_eq!(run(), run());
}
