//! The hard-state HBH variant: the soft engine's tree-construction rules
//! (join interception, branching-point discovery, fusion) re-derived on
//! top of the reliable control layer of `hbh_proto_base::reliable`.
//!
//! Where the soft engine re-asserts everything every refresh period and
//! lets t1/t2 decay repair damage, this engine keeps **hard** MCT/MFT
//! state: every control message is sequenced, acknowledged and
//! retransmitted with capped exponential backoff, so a table entry exists
//! exactly until an explicit event removes it. Repairs are event-driven:
//!
//! * **Failure detection.** Every node probes its *parent* (the node that
//!   currently serves it data — learned from the self-addressed tree
//!   messages) every `probe_period`. A probe whose retransmission budget
//!   is exhausted declares the parent down; the prober purges it locally
//!   and immediately re-joins toward the source, carrying the failed node
//!   as a hint so every router on the join path (and the source) purges
//!   it too and un-marks any entries the dead node was covering.
//! * **Graceful degradation.** On a merely lossy link, duplicates are
//!   suppressed per `(origin, seq)` and retransmissions back off toward
//!   `rto_cap`; a spurious give-up only costs a re-join that converges
//!   back to the same tree — the cadence degrades to soft-state-style
//!   probing rather than oscillating.
//! * **Bidirectional liveness from one probe stream.** The same probes
//!   feed a *deadman* check on the serving side: a branching node expects
//!   each directly-served child to probe it, and a child silent for longer
//!   than the probe period plus the full retransmission ladder is removed
//!   (its covered entries are un-marked and re-served directly). Parent
//!   death is thus caught by the children's give-ups and child death by
//!   the parent's deadman — no extra message types.
//! * **No periodic refresh.** Tree messages are emitted only when a
//!   table changes (a new entry, an un-marked entry, a promoted branching
//!   node), so a quiescent tree exchanges only probes and ACKs.
//!
//! The per-message rules intentionally mirror the soft engine's Figure 9
//! structure — same interception rule, same rule-8 promotion, same
//! nested-fusion disambiguation — so that differences measured by the
//! churn experiment are attributable to the state model, not to a
//! different tree shape.

use crate::bits::{reach_fixpoint, Mask, Seed};
use hbh_proto_base::reliable::{ReliableConfig, ReliableState, RtxVerdict};
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Ctx, Packet, Protocol, Time};
use hbh_sim_core::{FastMap, FastSet};
use hbh_topo::graph::NodeId;

/// Reliable control payloads: the sequenced half of [`HardMsg`]. These are
/// what the reliable layer stores for retransmission, so they carry no
/// sequence numbers themselves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HardCtl {
    /// `join(S, R)` toward the source; intercepted like the soft join.
    /// `failed` carries a detected-dead node so every router on the join
    /// path purges it (the "re-join with a hint" repair).
    Join {
        /// The channel being joined.
        ch: Channel,
        /// The joining entity (receiver or branching router).
        who: NodeId,
        /// A neighbor `who` has declared down, if this is a repair join.
        failed: Option<NodeId>,
    },
    /// Explicit departure of `who` (hard state has no decay to rely on).
    /// Unlike joins, leaves are NOT intercepted: under asymmetric routing
    /// the up-path may miss the router actually serving `who`, and a
    /// swallowed leave would strand marked entries upstream. Every hop on
    /// the way removes its `who` state and forwards; the source consumes.
    Leave {
        /// The channel being left.
        ch: Channel,
        /// The departing entity.
        who: NodeId,
    },
    /// Downstream teardown, sent by the source toward a departed `who`
    /// along the *data* path: clears tree state (MCT entries, stale MFT
    /// rows) that the up-path leave could not reach when unicast routing
    /// is asymmetric. Consumed (and simply acknowledged) by `who`.
    Prune {
        /// The channel concerned.
        ch: Channel,
        /// The departed node whose tree state is being retired.
        who: NodeId,
    },
    /// `tree(S, R)` toward `target`, emitted only on table changes.
    Tree {
        /// The channel concerned.
        ch: Channel,
        /// The node this tree message is addressed to.
        target: NodeId,
    },
    /// `fusion(S, R₁…Rₙ)` from `from`, addressed to the emitter whose
    /// tree messages it answers.
    Fusion {
        /// The channel concerned.
        ch: Channel,
        /// The candidate branching node announcing itself.
        from: NodeId,
        /// Every node of the sender's MFT.
        nodes: Vec<NodeId>,
    },
    /// Parent-liveness probe from `who`; the consumer ACKs with `known`
    /// reporting whether it still serves `who` data.
    Probe {
        /// The channel concerned.
        ch: Channel,
        /// The probing child.
        who: NodeId,
    },
}

impl HardCtl {
    /// The channel this control message belongs to.
    pub fn channel(&self) -> Channel {
        match self {
            HardCtl::Join { ch, .. }
            | HardCtl::Leave { ch, .. }
            | HardCtl::Prune { ch, .. }
            | HardCtl::Tree { ch, .. }
            | HardCtl::Fusion { ch, .. }
            | HardCtl::Probe { ch, .. } => *ch,
        }
    }
}

/// Hard-HBH packet payloads: sequenced control, ACKs, and channel data
/// (data stays unreliable — the tree, not the transport, is what's hard).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HardMsg {
    /// A sequenced control message from `origin`.
    Ctl {
        /// The node that sealed this message (owns the sequence space).
        origin: NodeId,
        /// Sequence number within `origin`'s space.
        seq: u64,
        /// The control payload.
        ctl: HardCtl,
    },
    /// Acknowledgement for `(origin, seq)`, sent by the node that consumed
    /// the message (possibly an interceptor, not the addressee).
    Ack {
        /// The origin being acknowledged (the packet's destination).
        origin: NodeId,
        /// The sequence number being acknowledged.
        seq: u64,
        /// The node that consumed the message.
        by: NodeId,
        /// For probes: does the consumer still serve the prober data?
        /// `false` tells the prober its parent lost the serving state
        /// (e.g. rebooted blank) and it must re-join immediately.
        known: bool,
        /// For probes answered `known = false` because the prober's entry
        /// is *marked*: the covering node this consumer believes actually
        /// serves the prober. The prober re-homes there directly instead
        /// of rejoining — hard state has no decay, so the rejoin path
        /// (intercept → unmark → coverer re-marks by fusion) would
        /// oscillate forever.
        server: Option<NodeId>,
    },
    /// Channel data, addressed to the next branching node (or receiver).
    Data {
        /// The channel the payload belongs to.
        ch: Channel,
    },
}

/// Node-local timers of the hard engine.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum HardTimer {
    /// Retransmission check for one sealed sequence number.
    Rtx(u64),
    /// Periodic parent-liveness probe.
    Probe(Channel),
    /// Periodic deadman sweep over directly-served children (branching
    /// nodes and the source): a child whose probes stopped is declared
    /// dead and its covered entries are re-served.
    ChildCheck(Channel),
    /// Retry a given-up join after a cool-down (source unreachable).
    Rejoin(Channel),
}

/// One hard MFT row: no timers, no phases — just the mark and the fusion
/// coverage claim (see the nested-fusion note in [`crate::tables`]).
#[derive(Clone, Debug)]
struct HardEntry {
    node: NodeId,
    marked: bool,
    covers: Vec<NodeId>,
}

/// Hard Multicast Forwarding Table: insertion-ordered entries that live
/// until explicitly removed. Marked entries forward no data; they are
/// served through a covering branching node.
#[derive(Clone, Debug, Default)]
pub struct HardMft {
    entries: Vec<HardEntry>,
}

impl HardMft {
    fn get(&self, n: NodeId) -> Option<&HardEntry> {
        self.entries.iter().find(|e| e.node == n)
    }

    fn get_mut(&mut self, n: NodeId) -> Option<&mut HardEntry> {
        self.entries.iter_mut().find(|e| e.node == n)
    }

    /// Is `n` in the table?
    pub fn contains(&self, n: NodeId) -> bool {
        self.get(n).is_some()
    }

    /// Is `n` present and marked (served through a coverer)?
    pub fn is_marked(&self, n: NodeId) -> bool {
        self.get(n).is_some_and(|e| e.marked)
    }

    /// Inserts `n` unmarked; returns `true` if it was absent.
    pub fn insert(&mut self, n: NodeId) -> bool {
        if self.contains(n) {
            return false;
        }
        self.entries.push(HardEntry {
            node: n,
            marked: false,
            covers: Vec::new(),
        });
        true
    }

    /// Removes `n`; returns `true` if it was present.
    pub fn remove(&mut self, n: NodeId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.node != n);
        before != self.entries.len()
    }

    /// Marks `n`; returns `true` if newly marked.
    pub fn mark(&mut self, n: NodeId) -> bool {
        match self.get_mut(n) {
            Some(e) if !e.marked => {
                e.marked = true;
                true
            }
            _ => false,
        }
    }

    /// Clears `n`'s mark; returns `true` if it was marked.
    pub fn unmark(&mut self, n: NodeId) -> bool {
        match self.get_mut(n) {
            Some(e) if e.marked => {
                e.marked = false;
                true
            }
            _ => false,
        }
    }

    /// Same least fixpoint as the soft table's `data_reachable`, minus
    /// liveness phases: bit `i` set iff `entries[i]` currently receives
    /// data through this table (directly if unmarked, else through a
    /// reachable coverer chain).
    fn data_reachable(&self) -> Mask {
        reach_fixpoint(
            self.entries.len(),
            |i| {
                if self.entries[i].marked {
                    Seed::Pending
                } else {
                    Seed::Reach
                }
            },
            |j, i| {
                let covers = &self.entries[j].covers;
                !covers.is_empty() && covers.contains(&self.entries[i].node)
            },
        )
    }

    /// Does a data-reachable entry other than `n` claim `n` in its
    /// coverage — i.e. is `n`'s mark still backed by a working server?
    pub fn served_by_other(&self, n: NodeId) -> bool {
        self.server_of(n).is_some()
    }

    /// The data-reachable entry (other than `n`) whose coverage claims
    /// `n`, if any — the node this table believes actually serves `n`.
    /// Probe redirects hand this to a prober whose entry is marked.
    pub fn server_of(&self, n: NodeId) -> Option<NodeId> {
        if !self
            .entries
            .iter()
            .any(|e| e.node != n && e.covers.contains(&n))
        {
            return None;
        }
        let reach = self.data_reachable();
        self.entries.iter().enumerate().find_map(|(i, e)| {
            (reach.test(i) && e.node != n && e.covers.contains(&n)).then_some(e.node)
        })
    }

    /// Is `nodes` contained in the coverage of a data-reachable entry
    /// other than `sender`? (Nested-fusion disambiguation, as in the soft
    /// table.)
    pub fn covered_by_other(&self, nodes: &[NodeId], sender: NodeId) -> bool {
        if !self.entries.iter().any(|e| {
            e.node != sender && !e.covers.is_empty() && nodes.iter().all(|n| e.covers.contains(n))
        }) {
            return false;
        }
        let reach = self.data_reachable();
        self.entries.iter().enumerate().any(|(i, e)| {
            reach.test(i)
                && e.node != sender
                && !e.covers.is_empty()
                && nodes.iter().all(|n| e.covers.contains(n))
        })
    }

    /// Installs/updates the fusion sender `bp` claiming `covers`, marking
    /// narrower senders it subsumes. Returns `true` on any change.
    pub fn install_fusion_sender(&mut self, bp: NodeId, covers: &[NodeId]) -> bool {
        let mut changed = false;
        for e in &mut self.entries {
            if e.node != bp
                && !e.covers.is_empty()
                && !e.marked
                && e.covers.iter().all(|n| covers.contains(n))
            {
                e.marked = true;
                changed = true;
            }
        }
        if let Some(e) = self.get_mut(bp) {
            if e.covers != covers {
                e.covers.clear();
                e.covers.extend_from_slice(covers);
                changed = true;
            }
            return changed;
        }
        self.entries.push(HardEntry {
            node: bp,
            marked: false,
            covers: covers.to_vec(),
        });
        true
    }

    /// Un-marks every entry whose coverer chain no longer delivers data;
    /// returns the newly un-marked nodes (they need a tree message — they
    /// are served directly again). Earlier un-marks can restore a later
    /// entry's chain, so each entry is re-checked against the current
    /// table.
    pub fn unmark_orphans(&mut self) -> Vec<NodeId> {
        let marked: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|e| e.marked)
            .map(|e| e.node)
            .collect();
        let mut orphans = Vec::new();
        for n in marked {
            if !self.served_by_other(n) {
                self.unmark(n);
                orphans.push(n);
            }
        }
        orphans
    }

    /// Data fan-out set: unmarked entries (also the tree fan-out set —
    /// hard trees mean "I serve you", so only direct children get them).
    pub fn data_targets(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().filter(|e| !e.marked).map(|e| e.node)
    }

    /// All entries (fusion payloads).
    pub fn live(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.node)
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate byte footprint: per entry a node id, the mark, and the
    /// coverage claim.
    pub fn approx_bytes(&self) -> usize {
        self.entries.iter().map(|e| 5 + 4 * e.covers.len()).sum()
    }
}

/// The hard-state HBH protocol (configuration; per-node state in
/// [`HardNodeState`]).
#[derive(Clone, Debug)]
pub struct HbhHard {
    /// Shared timing base (kept so scenarios schedule both variants with
    /// the same constants; only `tree_period` is consulted, to derive the
    /// probe cadence).
    pub timing: Timing,
    /// Parent-liveness probe period.
    pub probe_period: u64,
    /// Retransmission policy for all sequenced control messages.
    pub reliable: ReliableConfig,
}

impl HbhHard {
    /// A hard-HBH instance derived from the soft variant's timing: probes
    /// run at half the tree period and the retransmission budget is sized
    /// so failure detection completes within three tree periods — well
    /// under the soft engine's t2 decay.
    pub fn new(timing: Timing) -> Self {
        timing.validate();
        let probe_period = (timing.tree_period / 2).max(1);
        // The RTO only needs to cover a probe's one-hop round trip (link
        // delays are single digits at the experiment scale), not the probe
        // cadence — a tight ladder is what buys sub-soft-state repair:
        // worst-case detection is one probe period for the next probe to
        // come due plus `detection_bound` (rto + capped backoff) for the
        // ladder to exhaust, comfortably inside soft state's t2 decay.
        let reliable = ReliableConfig {
            rto: (timing.tree_period / 4).max(1),
            rto_cap: (timing.tree_period / 2).max(1),
            max_attempts: 3,
        };
        HbhHard {
            timing,
            probe_period,
            reliable,
        }
    }

    /// Full control over the probe cadence and retransmission policy
    /// (lossy-link tests crank `max_attempts` up so every message survives
    /// heavy Bernoulli loss).
    pub fn with_reliable(timing: Timing, probe_period: u64, reliable: ReliableConfig) -> Self {
        timing.validate();
        assert!(probe_period > 0 && reliable.rto > 0 && reliable.max_attempts > 0);
        HbhHard {
            timing,
            probe_period,
            reliable,
        }
    }
}

/// Per-node hard-HBH state.
#[derive(Default)]
pub struct HardNodeState {
    /// Non-branching tree routers: the single node whose tree messages
    /// flow through here (no timers — replaced or removed by events).
    mct: FastMap<Channel, NodeId>,
    mft: FastMap<Channel, HardMft>,
    /// Receiver-agent subscriptions.
    member: FastSet<Channel>,
    /// The node currently serving us data (learned from self-addressed
    /// tree messages and join ACKs); the probe target.
    parent: FastMap<Channel, NodeId>,
    /// Channels with an armed probe timer.
    probe_armed: FastSet<Channel>,
    /// Channels with a probe currently awaiting its ACK (one in flight at
    /// a time keeps give-up semantics crisp).
    probe_inflight: FastSet<Channel>,
    /// Channels with a self-prune leave in flight (suppresses one leave
    /// per stray data packet).
    pruning: FastSet<Channel>,
    /// Per channel: the redirect targets followed since the last
    /// `known = true` confirmation. Coverage nests, so a probe redirect
    /// may legitimately chain several hops down to the true server; the
    /// trail detects a *repeated* target — mutually inconsistent claims
    /// chasing the node in circles — and drops to the join path instead.
    redirect_trail: FastMap<Channel, Vec<NodeId>>,
    /// Last probe heard from each directly-served child (deadman input).
    /// A missing key means "not yet expected" — the sweep stamps it with
    /// the current time on first sight, granting a full grace period.
    child_seen: FastMap<(Channel, NodeId), Time>,
    /// Channels with an armed child-check sweep.
    check_armed: FastSet<Channel>,
    /// The reliable-delivery state machine for [`HardCtl`] messages.
    rel: ReliableState<HardCtl>,
}

impl HardNodeState {
    /// This node's MCT entry for `ch`, if any.
    pub fn mct(&self, ch: Channel) -> Option<NodeId> {
        self.mct.get(&ch).copied()
    }

    /// This node's MFT for `ch`, if any.
    pub fn mft(&self, ch: Channel) -> Option<&HardMft> {
        self.mft.get(&ch)
    }

    /// Is this node's receiver agent subscribed to `ch`?
    pub fn is_member(&self, ch: Channel) -> bool {
        self.member.contains(&ch)
    }

    /// Is this node currently a branching node for `ch`?
    pub fn is_branching(&self, ch: Channel) -> bool {
        self.mft.contains_key(&ch)
    }

    /// The node currently serving this one data for `ch`.
    pub fn parent(&self, ch: Channel) -> Option<NodeId> {
        self.parent.get(&ch).copied()
    }

    /// The reliable-layer state (tests inspect its ledger).
    pub fn reliable(&self) -> &ReliableState<HardCtl> {
        &self.rel
    }
}

impl hbh_proto_base::StateInventory for HardNodeState {
    fn forwarding_entries(&self, ch: Channel) -> usize {
        self.mft.get(&ch).map_or(0, |m| m.len())
    }

    fn control_entries(&self, ch: Channel) -> usize {
        usize::from(self.mct.contains_key(&ch)) + usize::from(self.parent.contains_key(&ch))
    }

    fn state_bytes(&self, ch: Channel) -> usize {
        // Charge the real entry shapes plus the reliable layer's
        // bookkeeping (channel-agnostic, but the studies run one channel),
        // so the soft/hard footprint comparison is honest.
        let mft = self.mft.get(&ch).map_or(0, |m| m.approx_bytes());
        mft + 8 * self.control_entries(ch) + self.rel.state_bytes()
    }

    fn reliable_stats(&self) -> Option<hbh_proto_base::ReliableStats> {
        Some(self.rel.stats)
    }
}

type XCtx<'a> = Ctx<'a, HardMsg, HardTimer>;

impl HbhHard {
    /// Seals `ctl` for `dst`, sends it, and arms its retransmission timer.
    fn send_ctl(&self, st: &mut HardNodeState, dst: NodeId, ctl: HardCtl, ctx: &mut XCtx<'_>) {
        if dst == ctx.node {
            return;
        }
        let seq = st.rel.seal(dst, ctl.clone());
        let pkt = Packet::control(
            ctx.node,
            dst,
            HardMsg::Ctl {
                origin: ctx.node,
                seq,
                ctl,
            },
        );
        ctx.send(pkt);
        ctx.set_timer(HardTimer::Rtx(seq), self.reliable.rto);
    }

    fn send_ack(
        &self,
        origin: NodeId,
        seq: u64,
        known: bool,
        server: Option<NodeId>,
        ctx: &mut XCtx<'_>,
    ) {
        if origin == ctx.node {
            return;
        }
        let pkt = Packet::control(
            ctx.node,
            origin,
            HardMsg::Ack {
                origin,
                seq,
                by: ctx.node,
                known,
                server,
            },
        );
        ctx.send(pkt);
    }

    /// Emits a tree message to each listed node: "you are served by me".
    fn fan_trees(
        &self,
        st: &mut HardNodeState,
        ch: Channel,
        targets: &[NodeId],
        ctx: &mut XCtx<'_>,
    ) {
        for &t in targets {
            if t != ctx.node {
                self.send_ctl(st, t, HardCtl::Tree { ch, target: t }, ctx);
            }
        }
    }

    /// Silence horizon after which a directly-served child is declared
    /// dead: one probe period for the next probe to become due, the full
    /// retransmission ladder for it to get through, and one more period
    /// of slack so a merely lossy child is never reaped spuriously.
    fn deadman(&self) -> u64 {
        2 * self.probe_period + self.reliable.detection_bound()
    }

    /// Arms the periodic deadman sweep at a node that just became a
    /// branching node (or the source).
    fn arm_child_check(&self, st: &mut HardNodeState, ch: Channel, ctx: &mut XCtx<'_>) {
        if st.check_armed.insert(ch) {
            ctx.set_timer(HardTimer::ChildCheck(ch), self.probe_period);
        }
    }

    fn arm_probe(&self, st: &mut HardNodeState, ch: Channel, ctx: &mut XCtx<'_>) {
        if ch.source == ctx.node {
            return;
        }
        if st.probe_armed.insert(ch) {
            ctx.set_timer(HardTimer::Probe(ch), self.probe_period);
        }
    }

    fn disarm_probe(&self, st: &mut HardNodeState, ch: Channel, ctx: &mut XCtx<'_>) {
        st.probe_inflight.remove(&ch);
        st.redirect_trail.remove(&ch);
        if st.probe_armed.remove(&ch) {
            ctx.cancel_timer(&HardTimer::Probe(ch));
        }
    }

    /// Adopts `parent` as this node's data server and starts probing it.
    fn learn_parent(
        &self,
        st: &mut HardNodeState,
        ch: Channel,
        parent: NodeId,
        ctx: &mut XCtx<'_>,
    ) {
        if parent == ctx.node {
            return;
        }
        st.parent.insert(ch, parent);
        self.arm_probe(st, ch, ctx);
    }

    /// Removes `node` from the MFT, un-marks entries its coverage was
    /// keeping marked, fans trees to them, and — if the table empties —
    /// stops being a branching node (telling upstream so).
    ///
    /// `prune` sends a [`HardCtl::Prune`] toward the removed node so the
    /// routers on its *data* path retire their MCT/MFT state too: under
    /// asymmetric unicast routing the up-path leave never visits them.
    /// Pass `prune = false` for death-driven removals — a dead node is
    /// not worth messaging, and its data path is repaired by the repair
    /// joins of its survivors instead.
    fn remove_from_mft(
        &self,
        st: &mut HardNodeState,
        ch: Channel,
        node: NodeId,
        prune: bool,
        ctx: &mut XCtx<'_>,
    ) {
        let Some(mft) = st.mft.get_mut(&ch) else {
            return;
        };
        if !mft.remove(node) {
            return;
        }
        ctx.structural_change();
        if prune && node != ctx.node {
            self.send_ctl(st, node, HardCtl::Prune { ch, who: node }, ctx);
        }
        let mft = st.mft.get_mut(&ch).expect("entry still present");
        let orphans = mft.unmark_orphans();
        if mft.is_empty() {
            st.mft.remove(&ch);
            if !st.member.contains(&ch) {
                st.parent.remove(&ch);
                self.disarm_probe(st, ch, ctx);
                if ctx.node != ch.source {
                    self.send_ctl(st, ch.source, HardCtl::Leave { ch, who: ctx.node }, ctx);
                }
            }
        } else if !orphans.is_empty() {
            ctx.structural_change();
            self.fan_trees(st, ch, &orphans, ctx);
        }
    }

    /// Purges a detected-dead node from every local table.
    fn purge_node(&self, st: &mut HardNodeState, ch: Channel, dead: NodeId, ctx: &mut XCtx<'_>) {
        if st.mct.get(&ch) == Some(&dead) {
            st.mct.remove(&ch);
            ctx.structural_change();
        }
        self.remove_from_mft(st, ch, dead, false, ctx);
        if st.parent.get(&ch) == Some(&dead) {
            st.parent.remove(&ch);
        }
    }

    /// Sends a (repair) join toward the source if this node still wants
    /// data for `ch` — as a member, or on behalf of its MFT subtree.
    fn rejoin(
        &self,
        st: &mut HardNodeState,
        ch: Channel,
        failed: Option<NodeId>,
        ctx: &mut XCtx<'_>,
    ) {
        if ch.source == ctx.node {
            return;
        }
        if !(st.member.contains(&ch) || st.mft.contains_key(&ch)) {
            return;
        }
        self.send_ctl(
            st,
            ch.source,
            HardCtl::Join {
                ch,
                who: ctx.node,
                failed,
            },
            ctx,
        );
    }

    /// A probe's retransmission budget ran out: the parent is declared
    /// down, purged locally, and a repair join carries the hint upstream.
    fn parent_down(&self, st: &mut HardNodeState, ch: Channel, dead: NodeId, ctx: &mut XCtx<'_>) {
        self.purge_node(st, ch, dead, ctx);
        self.rejoin(st, ch, Some(dead), ctx);
    }

    // --- consumers -------------------------------------------------------

    fn join_at_source(
        &self,
        st: &mut HardNodeState,
        ch: Channel,
        who: NodeId,
        failed: Option<NodeId>,
        ctx: &mut XCtx<'_>,
    ) {
        if let Some(dead) = failed {
            if dead != who {
                self.purge_node(st, ch, dead, ctx);
            }
        }
        let mft = st.mft.entry(ch).or_default();
        let mut fan = Vec::new();
        if mft.insert(who) {
            ctx.structural_change();
            fan.push(who);
        } else if mft.unmark(who) {
            // Trust the joiner: a hard-state join is only ever sent by a
            // node whose service broke, and the coverage claim backing the
            // mark cannot be validated locally — serve directly and let a
            // live coverer re-assert itself by fusion.
            ctx.structural_change();
            fan.push(who);
        }
        self.fan_trees(st, ch, &fan, ctx);
        self.arm_child_check(st, ch, ctx);
    }

    /// Join interception (the soft rule 3): the first router whose MFT
    /// holds `who` consumes the join. Re-validates `who`'s mark like the
    /// soft engine's join-time repair; no upstream join is needed — this
    /// router's own parent probes cover the upstream liveness.
    fn join_intercepted(
        &self,
        st: &mut HardNodeState,
        ch: Channel,
        who: NodeId,
        failed: Option<NodeId>,
        ctx: &mut XCtx<'_>,
    ) {
        if let Some(dead) = failed {
            if dead != who {
                self.purge_node(st, ch, dead, ctx);
            }
        }
        let Some(mft) = st.mft.get_mut(&ch) else {
            return;
        };
        // Trust the joiner (see `join_at_source`): unmark unconditionally.
        if mft.unmark(who) {
            ctx.structural_change();
            self.fan_trees(st, ch, &[who], ctx);
        }
    }

    fn tree_at_target(
        &self,
        st: &mut HardNodeState,
        ch: Channel,
        emitter: NodeId,
        ctx: &mut XCtx<'_>,
    ) {
        let is_host = ctx.net().graph().is_host(ctx.node);
        if is_host && !st.member.contains(&ch) {
            // Stale server state points at a departed receiver: prune.
            if st.pruning.insert(ch) {
                self.send_ctl(st, ch.source, HardCtl::Leave { ch, who: ctx.node }, ctx);
            }
            return;
        }
        self.learn_parent(st, ch, emitter, ctx);
    }

    fn tree_in_transit(
        &self,
        st: &mut HardNodeState,
        ch: Channel,
        target: NodeId,
        emitter: NodeId,
        ctx: &mut XCtx<'_>,
    ) {
        if let Some(mft) = st.mft.get_mut(&ch) {
            // Rules (2)/(3): adopt a new target, and ALWAYS announce the
            // coverage upstream. The transit itself proves the emitter
            // believes it serves `target`, so even for a known target the
            // fusion must be re-sent — it is the only hard-state mechanism
            // that stops an upstream node from serving our subtree in
            // parallel (soft state gets this for free from periodic
            // refresh fusions).
            let fresh = mft.insert(target);
            if fresh {
                ctx.structural_change();
            }
            let nodes: Vec<NodeId> = mft.live().collect();
            self.send_ctl(
                st,
                emitter,
                HardCtl::Fusion {
                    ch,
                    from: ctx.node,
                    nodes,
                },
                ctx,
            );
            if fresh {
                self.fan_trees(st, ch, &[target], ctx);
            }
            // A branching node without an upstream liveness contract is a
            // deadman casualty waiting to happen; the transit proves the
            // emitter serves us.
            if ctx.node != ch.source && !st.parent.contains_key(&ch) {
                self.learn_parent(st, ch, emitter, ctx);
            }
            return;
        }
        match st.mct.get(&ch).copied() {
            // Rule (4): first contact with this channel ⇒ create the MCT.
            None => {
                st.mct.insert(ch, target);
                ctx.structural_change();
            }
            // Rules (5)/(6): same node ⇒ nothing to refresh.
            Some(first) if first == target => {}
            // Rule (8): two targets flow through this router ⇒ become a
            // branching node and announce it upstream. (Rule (7)'s stale
            // overwrite has no hard-state analogue: an MCT entry is either
            // current or already purged.)
            Some(first) => {
                st.mct.remove(&ch);
                let mut mft = HardMft::default();
                mft.insert(first);
                mft.insert(target);
                st.mft.insert(ch, mft);
                ctx.structural_change();
                self.send_ctl(
                    st,
                    emitter,
                    HardCtl::Fusion {
                        ch,
                        from: ctx.node,
                        nodes: vec![first, target],
                    },
                    ctx,
                );
                self.fan_trees(st, ch, &[first, target], ctx);
                self.arm_child_check(st, ch, ctx);
                // A passively elected branching node must probe upstream
                // like any other child, or the emitter's deadman reaps it
                // and the branch oscillates (reap → re-fan → re-elect).
                if ctx.node != ch.source {
                    self.learn_parent(st, ch, emitter, ctx);
                }
            }
        }
    }

    fn fusion_at_node(
        &self,
        st: &mut HardNodeState,
        ch: Channel,
        from: NodeId,
        nodes: &[NodeId],
        ctx: &mut XCtx<'_>,
    ) {
        let Some(mft) = st.mft.get_mut(&ch) else {
            return; // not a branching node (state purged mid-flight)
        };
        let relevant: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|&n| n != from && mft.contains(n))
            .collect();
        if relevant.is_empty() {
            return; // stale fusion that outlived the entries it names
        }
        if mft.covered_by_other(nodes, from) {
            return; // nested-fusion disambiguation: already served deeper
        }
        let mut changed = false;
        for n in relevant {
            changed |= mft.mark(n);
        }
        let had_from = mft.contains(from);
        let was_marked = mft.is_marked(from);
        changed |= mft.install_fusion_sender(from, nodes);
        // The accepted sender must itself be data-eligible, unless a
        // reachable chain already serves it (coverage nests).
        if mft.is_marked(from) && !mft.served_by_other(from) {
            mft.unmark(from);
            changed = true;
        }
        let serve_from = !had_from || (was_marked && !mft.is_marked(from));
        if changed {
            ctx.structural_change();
        }
        if serve_from {
            self.fan_trees(st, ch, &[from], ctx);
        }
    }

    /// A leave reaching its final consumer — the source. Everything on
    /// the up-path already cleaned itself in transit; the source removes
    /// its own entry and prunes the departed node's *data* path, which
    /// the up-path may never have visited (asymmetric routing).
    fn leave_at_node(&self, st: &mut HardNodeState, ch: Channel, who: NodeId, ctx: &mut XCtx<'_>) {
        self.remove_from_mft(st, ch, who, true, ctx);
    }

    /// Consumes a sequenced control message addressed to (or intercepted
    /// at) this node: dedup, process on fresh, always ACK.
    fn consume_ctl(
        &self,
        st: &mut HardNodeState,
        origin: NodeId,
        seq: u64,
        ctl: HardCtl,
        ctx: &mut XCtx<'_>,
    ) {
        let fresh = st.rel.consume(origin, seq);
        let mut server = None;
        let known = match &ctl {
            // `known` reports "I serve you data": present and unmarked. A
            // marked entry honestly answers `false` — the mark means a
            // deeper coverer serves the prober, so a probe landing here
            // says the prober missed (or lost the race against stale
            // in-flight trees for) its handoff. The ACK names that
            // coverer so the prober re-homes there directly: sending it
            // back through the join path would *unmark* it here ("trust
            // the joiner") only for the coverer's next fusion to re-mark
            // it, and with no soft-state decay to break the tie the
            // probe/rejoin cycle would spin forever. Every probe, fresh
            // or retransmitted, feeds the deadman stamp.
            HardCtl::Probe { ch, who } => {
                let mft = st.mft.get(ch);
                let serving = mft.is_some_and(|m| m.contains(*who) && !m.is_marked(*who));
                if serving {
                    st.child_seen.insert((*ch, *who), ctx.now());
                } else if let Some(m) = mft {
                    if m.is_marked(*who) {
                        server = m.server_of(*who);
                    }
                }
                serving
            }
            _ => true,
        };
        if fresh {
            match ctl {
                HardCtl::Join { ch, who, failed } => {
                    if ctx.node == ch.source {
                        self.join_at_source(st, ch, who, failed, ctx);
                    } else {
                        self.join_intercepted(st, ch, who, failed, ctx);
                    }
                }
                HardCtl::Leave { ch, who } => self.leave_at_node(st, ch, who, ctx),
                // A prune landing on its addressee is pure acknowledgement
                // territory — the work happened at the routers in transit.
                HardCtl::Prune { .. } => {}
                HardCtl::Tree { ch, .. } => self.tree_at_target(st, ch, origin, ctx),
                HardCtl::Fusion { ch, from, nodes } => {
                    self.fusion_at_node(st, ch, from, &nodes, ctx)
                }
                HardCtl::Probe { .. } => {}
            }
        }
        self.send_ack(origin, seq, known, server, ctx);
    }

    /// Handles a sequenced control message not addressed to this node:
    /// transit processing (tree rules, join purge hints), interception
    /// (joins/leaves for owned entries), else forward.
    fn transit_ctl(
        &self,
        st: &mut HardNodeState,
        pkt: Packet<HardMsg>,
        origin: NodeId,
        seq: u64,
        ctx: &mut XCtx<'_>,
    ) {
        let HardMsg::Ctl { ref ctl, .. } = pkt.payload else {
            unreachable!("caller matched Ctl");
        };
        match ctl {
            HardCtl::Join { ch, who, failed } => {
                let (ch, who, failed) = (*ch, *who, *failed);
                // Interception rule (3): the first router holding `who`
                // consumes the join (the kernel only hands routers
                // self-addressed or forwardable packets, so a host never
                // gets here).
                if st.mft.get(&ch).is_some_and(|m| m.contains(who)) {
                    self.consume_ctl(st, origin, seq, HardCtl::Join { ch, who, failed }, ctx);
                    return;
                }
                // Not ours: spread the purge hint while forwarding.
                if st.rel.observe(origin, seq) {
                    if let Some(dead) = failed {
                        self.purge_node(st, ch, dead, ctx);
                    }
                }
                ctx.forward(pkt);
            }
            HardCtl::Leave { ch, who } => {
                let (ch, who) = (*ch, *who);
                // Leaves are deliberately NOT intercepted. Hard state never
                // decays, so every router that ever recorded `who` — the
                // direct server, upstream nodes holding it *marked*, MCT
                // entries on the way — must hear the departure, or the
                // stale entry later resurrects the branch (an unmark
                // cascade fans trees to a ghost). Each hop on the up-path
                // cleans its own tables once and forwards; the source
                // consumes and handles the down-path.
                if st.rel.observe(origin, seq) {
                    if st.mct.get(&ch) == Some(&who) {
                        st.mct.remove(&ch);
                        ctx.structural_change();
                    }
                    self.remove_from_mft(st, ch, who, false, ctx);
                }
                ctx.forward(pkt);
            }
            HardCtl::Prune { ch, who } => {
                let (ch, who) = (*ch, *who);
                // Source-issued down-path teardown: retire tree state for
                // the departed node along its data path, the half of the
                // route an asymmetric up-path leave cannot reach.
                if st.rel.observe(origin, seq) {
                    if st.mct.get(&ch) == Some(&who) {
                        st.mct.remove(&ch);
                        ctx.structural_change();
                    }
                    self.remove_from_mft(st, ch, who, false, ctx);
                }
                ctx.forward(pkt);
            }
            HardCtl::Tree { ch, target } => {
                let (ch, target) = (*ch, *target);
                // Process the branching rules once per (origin, seq);
                // forward regardless (a retransmission must still reach
                // its target even though we already adopted it).
                if st.rel.observe(origin, seq) {
                    self.tree_in_transit(st, ch, target, origin, ctx);
                }
                ctx.forward(pkt);
            }
            // Fusions and probes are consumer-addressed point-to-point.
            HardCtl::Fusion { .. } | HardCtl::Probe { .. } => ctx.forward(pkt),
        }
    }

    /// An ACK settled one of our outstanding messages.
    fn ack_at_origin(
        &self,
        st: &mut HardNodeState,
        seq: u64,
        by: NodeId,
        known: bool,
        server: Option<NodeId>,
        ctx: &mut XCtx<'_>,
    ) {
        let Some(out) = st.rel.on_ack(seq) else {
            return; // duplicate or stray
        };
        ctx.cancel_timer(&HardTimer::Rtx(seq));
        match out.msg {
            HardCtl::Probe { ch, .. } => {
                st.probe_inflight.remove(&ch);
                if known {
                    st.redirect_trail.remove(&ch);
                } else {
                    // The parent answers but no longer serves us directly.
                    if st.parent.get(&ch) == Some(&out.dst) {
                        st.parent.remove(&ch);
                    }
                    // It may have named the coverer backing our mark:
                    // re-home there and probe it next period. Coverage
                    // nests, so the redirect can chain several hops down
                    // to the true server; a *repeated* target means
                    // inconsistent claims are chasing us in a circle, and
                    // no hint at all means the parent genuinely lost us
                    // (e.g. a restarted blank router) — both drop to the
                    // join path.
                    let follow = server.filter(|&srv| {
                        srv != ctx.node
                            && !st
                                .redirect_trail
                                .get(&ch)
                                .is_some_and(|trail| trail.contains(&srv))
                    });
                    match follow {
                        Some(srv) => {
                            st.redirect_trail.entry(ch).or_default().push(srv);
                            self.learn_parent(st, ch, srv, ctx);
                            // Walk the chain at round-trip speed: probe
                            // the new parent now rather than waiting out
                            // a probe period per hop, so a redirect onto
                            // a stale claim is detected (and repaired)
                            // almost as fast as a direct rejoin.
                            if st.probe_inflight.insert(ch) {
                                self.send_ctl(st, srv, HardCtl::Probe { ch, who: ctx.node }, ctx);
                            }
                        }
                        None => {
                            st.redirect_trail.remove(&ch);
                            self.rejoin(st, ch, None, ctx);
                        }
                    }
                }
            }
            HardCtl::Join { ch, .. } => {
                st.redirect_trail.remove(&ch);
                // Whoever consumed the join serves us until a tree message
                // says otherwise.
                self.learn_parent(st, ch, by, ctx);
                // A branching node re-homing after repair must re-assert
                // its coverage, or the new parent would serve its subtree
                // directly alongside it (duplicate copies).
                if let Some(mft) = st.mft.get(&ch) {
                    if !mft.is_empty() {
                        let nodes: Vec<NodeId> = mft.live().collect();
                        self.send_ctl(
                            st,
                            by,
                            HardCtl::Fusion {
                                ch,
                                from: ctx.node,
                                nodes,
                            },
                            ctx,
                        );
                    }
                }
            }
            HardCtl::Leave { ch, .. } => {
                st.pruning.remove(&ch);
            }
            HardCtl::Tree { .. } | HardCtl::Fusion { .. } | HardCtl::Prune { .. } => {}
        }
    }

    /// A sealed message ran out of retransmissions.
    fn give_up(&self, st: &mut HardNodeState, dst: NodeId, msg: HardCtl, ctx: &mut XCtx<'_>) {
        match msg {
            HardCtl::Probe { ch, .. } => {
                st.probe_inflight.remove(&ch);
                self.parent_down(st, ch, dst, ctx);
            }
            HardCtl::Join { ch, .. } => {
                // Source unreachable: degrade to periodic re-join attempts
                // at the probe cadence until the topology heals.
                ctx.set_timer(HardTimer::Rejoin(ch), self.probe_period);
            }
            HardCtl::Tree { ch, target } => {
                // A child that never ACKs across the whole backoff ladder
                // is gone; drop it so the table reflects reality.
                self.remove_from_mft(st, ch, target, false, ctx);
            }
            HardCtl::Leave { ch, .. } => {
                st.pruning.remove(&ch);
            }
            HardCtl::Fusion { .. } | HardCtl::Prune { .. } => {
                // The emitter / prune target vanished; its own children
                // will re-join and rebuild any coverage worth having.
            }
        }
    }

    fn data_at_router(
        &self,
        st: &mut HardNodeState,
        pkt: &Packet<HardMsg>,
        ch: Channel,
        ctx: &mut XCtx<'_>,
    ) {
        let Some(mft) = st.mft.get(&ch) else {
            // Data addressed to a router with no table: upstream state is
            // stale (e.g. we rebooted blank). Tell it to stop.
            if ctx.node != ch.source && st.pruning.insert(ch) {
                self.send_ctl(st, ch.source, HardCtl::Leave { ch, who: ctx.node }, ctx);
            }
            return;
        };
        let targets: Vec<NodeId> = mft.data_targets().collect();
        for t in targets {
            ctx.send(pkt.copy_to(t));
        }
    }
}

impl Protocol for HbhHard {
    type Msg = HardMsg;
    type Timer = HardTimer;
    type Command = Cmd;
    type NodeState = HardNodeState;

    fn on_packet(&self, state: &mut HardNodeState, pkt: Packet<HardMsg>, ctx: &mut XCtx<'_>) {
        let here = ctx.node;
        match &pkt.payload {
            HardMsg::Data { ch } => {
                let ch = *ch;
                if pkt.dst == here {
                    if ctx.net().graph().is_host(here) {
                        if state.member.contains(&ch) {
                            ctx.deliver(&pkt);
                        } else if state.pruning.insert(ch) {
                            // Departed receiver still being served: prune.
                            self.send_ctl(state, ch.source, HardCtl::Leave { ch, who: here }, ctx);
                        }
                    } else {
                        self.data_at_router(state, &pkt, ch, ctx);
                    }
                } else {
                    ctx.forward(pkt);
                }
            }
            HardMsg::Ack {
                seq,
                by,
                known,
                server,
                ..
            } => {
                if pkt.dst != here {
                    ctx.forward(pkt);
                    return;
                }
                let (seq, by, known, server) = (*seq, *by, *known, *server);
                self.ack_at_origin(state, seq, by, known, server, ctx);
            }
            HardMsg::Ctl { origin, seq, .. } => {
                let (origin, seq) = (*origin, *seq);
                if pkt.dst == here {
                    let HardMsg::Ctl { ctl, .. } = pkt.payload else {
                        unreachable!("arm matched above");
                    };
                    self.consume_ctl(state, origin, seq, ctl, ctx);
                } else {
                    self.transit_ctl(state, pkt, origin, seq, ctx);
                }
            }
        }
    }

    fn on_timer(&self, state: &mut HardNodeState, timer: HardTimer, ctx: &mut XCtx<'_>) {
        match timer {
            HardTimer::Rtx(seq) => match state.rel.on_rtx(seq, &self.reliable) {
                RtxVerdict::Resend { dst, msg, delay } => {
                    let pkt = Packet::control(
                        ctx.node,
                        dst,
                        HardMsg::Ctl {
                            origin: ctx.node,
                            seq,
                            ctl: msg,
                        },
                    );
                    ctx.send(pkt);
                    ctx.set_timer(HardTimer::Rtx(seq), delay);
                }
                RtxVerdict::GiveUp { dst, msg } => self.give_up(state, dst, msg, ctx),
                RtxVerdict::Stale => {}
            },
            HardTimer::Probe(ch) => {
                let wants = state.member.contains(&ch) || state.mft.contains_key(&ch);
                if !wants || ch.source == ctx.node {
                    state.probe_armed.remove(&ch);
                    state.probe_inflight.remove(&ch);
                    return;
                }
                if let Some(&parent) = state.parent.get(&ch) {
                    if state.probe_inflight.insert(ch) {
                        self.send_ctl(state, parent, HardCtl::Probe { ch, who: ctx.node }, ctx);
                    }
                }
                ctx.set_timer(HardTimer::Probe(ch), self.probe_period);
            }
            HardTimer::ChildCheck(ch) => {
                let Some(mft) = state.mft.get(&ch) else {
                    state.check_armed.remove(&ch);
                    state.child_seen.retain(|&(c, _), _| c != ch);
                    return;
                };
                let now = ctx.now();
                let horizon = self.deadman();
                let direct: Vec<NodeId> = mft.data_targets().collect();
                let mut dead = Vec::new();
                for child in &direct {
                    match state.child_seen.get(&(ch, *child)) {
                        Some(seen) if now.0.saturating_sub(seen.0) > horizon => {
                            dead.push(*child);
                        }
                        Some(_) => {}
                        // First sweep since this child became directly
                        // served: start its grace period now.
                        None => {
                            state.child_seen.insert((ch, *child), now);
                        }
                    }
                }
                for d in dead {
                    state.child_seen.remove(&(ch, d));
                    self.remove_from_mft(state, ch, d, false, ctx);
                }
                ctx.set_timer(HardTimer::ChildCheck(ch), self.probe_period);
            }
            HardTimer::Rejoin(ch) => {
                if state.parent.contains_key(&ch) {
                    return; // re-homed while the cool-down ran
                }
                self.rejoin(state, ch, None, ctx);
            }
        }
    }

    fn on_command(&self, state: &mut HardNodeState, cmd: Cmd, ctx: &mut XCtx<'_>) {
        match cmd {
            Cmd::StartSource(_) => {
                // Like the soft engine: sources are armed lazily by joins.
            }
            Cmd::Join(ch) => {
                if state.member.insert(ch) {
                    self.send_ctl(
                        state,
                        ch.source,
                        HardCtl::Join {
                            ch,
                            who: ctx.node,
                            failed: None,
                        },
                        ctx,
                    );
                    self.arm_probe(state, ch, ctx);
                }
            }
            Cmd::Leave(ch) => {
                if state.member.remove(&ch) {
                    state.parent.remove(&ch);
                    self.disarm_probe(state, ch, ctx);
                    self.send_ctl(state, ch.source, HardCtl::Leave { ch, who: ctx.node }, ctx);
                }
            }
            Cmd::SendData { ch, tag } => {
                assert_eq!(ctx.node, ch.source, "SendData must run at the source");
                let Some(mft) = state.mft.get(&ch) else {
                    return; // no receivers
                };
                let now = ctx.now();
                let targets: Vec<NodeId> = mft.data_targets().collect();
                for t in targets {
                    let pkt = Packet::data(ctx.node, t, tag, now, HardMsg::Data { ch });
                    ctx.send(pkt);
                }
            }
        }
    }
}
