//! Behavioural tests for the HBH engine, including the paper's Figure 5
//! (shortest-path tree under asymmetric routing) and Figure 3 (duplicate
//! suppression through fusion) scenarios on their exact topologies.

use crate::engine::Hbh;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Kernel, Network, Time};
use hbh_topo::graph::{Graph, NodeId};
use hbh_topo::scenarios;

fn kernel_on(g: Graph) -> Kernel<Hbh> {
    Kernel::new(Network::new(g), Hbh::new(Timing::default()), 11)
}

fn n(k: &Kernel<Hbh>, label: &str) -> NodeId {
    k.network().graph().node_by_label(label).unwrap()
}

/// Settled horizon: join window + several t2 decays.
fn settle(k: &mut Kernel<Hbh>, until: u64) {
    k.run_until(Time(until));
}

/// Simple symmetric line: s(host) - a - b - c - h (all unit costs).
fn line() -> (Kernel<Hbh>, NodeId, Vec<NodeId>, NodeId) {
    let mut g = Graph::new();
    let a = g.add_router();
    let b = g.add_router();
    let c = g.add_router();
    g.add_link(a, b, 1, 1);
    g.add_link(b, c, 1, 1);
    let s = g.add_host(a, 1, 1);
    let h = g.add_host(c, 1, 1);
    (kernel_on(g), s, vec![a, b, c], h)
}

#[test]
fn single_receiver_joins_at_source() {
    let (mut k, s, routers, h) = line();
    let ch = Channel::primary(s);
    k.command_at(h, Cmd::Join(ch), Time(0));
    settle(&mut k, 600);
    let mft = k.state(s).mft(ch).expect("source MFT");
    assert!(mft.contains(h, k.now()));
    // Downstream routers hold MCT state for h.
    for &r in &routers {
        let st = k.state(r);
        assert!(
            st.mct(ch).is_some_and(|m| m.node() == h) || st.is_branching(ch),
            "router {r} has no tree state"
        );
    }
}

#[test]
fn single_receiver_gets_data_at_unicast_distance() {
    let (mut k, s, _, h) = line();
    let ch = Channel::primary(s);
    k.command_at(h, Cmd::Join(ch), Time(0));
    settle(&mut k, 600);
    k.command_at(s, Cmd::SendData { ch, tag: 1 }, Time(600));
    k.run_until(Time(700));
    let d: Vec<_> = k.stats().deliveries_tagged(1).collect();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].delay(), k.network().dist(s, h).unwrap());
}

#[test]
fn fig5_builds_shortest_path_tree_under_asymmetry() {
    // The central claim (§3.1, Figure 5): on the Figure-2 topology where
    // REUNITE pins r2 to a non-shortest path, HBH connects every receiver
    // through the true shortest path from S.
    let mut k = kernel_on(scenarios::fig2());
    let (s, r1, r2, r3) = (n(&k, "S"), n(&k, "r1"), n(&k, "r2"), n(&k, "r3"));
    let ch = Channel::primary(s);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(300));
    k.command_at(r3, Cmd::Join(ch), Time(600));
    settle(&mut k, 6000);
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 9 }, t);
    k.run_until(t + 100);
    let deliveries: Vec<_> = k.stats().deliveries_tagged(9).collect();
    assert_eq!(deliveries.len(), 3, "all three receivers served");
    for d in deliveries {
        let spt = k.network().dist(s, d.node).unwrap();
        assert_eq!(
            d.delay(),
            spt,
            "receiver {} not on its shortest path",
            d.node
        );
    }
}

#[test]
fn fig5_converged_structure_matches_walkthrough() {
    // Final structure of Figure 5(d): S forwards data to H1 (= R1), H1 to
    // H3 (= R3), H3 to r1 and r3; r2 is served directly via R4.
    let mut k = kernel_on(scenarios::fig2());
    let (s, h1, h3) = (n(&k, "S"), n(&k, "R1"), n(&k, "R3"));
    let (r1, r2, r3) = (n(&k, "r1"), n(&k, "r2"), n(&k, "r3"));
    let ch = Channel::primary(s);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(300));
    k.command_at(r3, Cmd::Join(ch), Time(600));
    settle(&mut k, 6000);
    let now = k.now();

    let s_mft = k.state(s).mft(ch).expect("source MFT");
    let s_data: Vec<NodeId> = s_mft.data_targets(now).collect();
    assert!(s_data.contains(&h1), "S forwards to H1: {s_data:?}");
    assert!(
        s_data.contains(&r2),
        "r2 stays joined at S (its SPT is disjoint)"
    );
    assert!(
        !s_data.contains(&r1) && !s_data.contains(&r3),
        "r1/r3 re-homed below"
    );

    let h1_mft = k.state(h1).mft(ch).expect("H1 branching");
    let h1_data: Vec<NodeId> = h1_mft.data_targets(now).collect();
    assert_eq!(h1_data, vec![h3], "H1 forwards only to H3");
    assert!(
        h1_mft.is_marked(r1, now),
        "r1 kept as a marked (tree-only) entry at H1"
    );

    let h3_mft = k.state(h3).mft(ch).expect("H3 branching");
    let mut h3_data: Vec<NodeId> = h3_mft.data_targets(now).collect();
    h3_data.sort();
    assert_eq!(h3_data, vec![r1, r3], "H3 duplicates to the receivers");
}

#[test]
fn fig3_fusion_suppresses_duplicate_copies() {
    // Figure 3: REUNITE puts two copies on R1→R6; HBH's fusion makes R6
    // the branching node and every link carries exactly one copy.
    let mut k = kernel_on(scenarios::fig3());
    let (s, r1n, r6) = (n(&k, "S"), n(&k, "R1"), n(&k, "R6"));
    let (r1, r2) = (n(&k, "r1"), n(&k, "r2"));
    let ch = Channel::primary(s);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(300));
    settle(&mut k, 6000);
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 3 }, t);
    k.run_until(t + 100);

    assert_eq!(k.stats().deliveries_tagged(3).count(), 2);
    let per_link = k.stats().data_copies_per_link(3);
    for (link, copies) in &per_link {
        assert_eq!(*copies, 1, "duplicate copy on {link:?}");
    }
    assert_eq!(
        per_link[&(r1n, r6)],
        1,
        "exactly one copy on the shared link"
    );
    // Structure: R6 is the branching node; R1 holds it as a stale
    // (data-only) entry and the receivers as marked (tree-only) entries.
    let now = k.now();
    let r6_mft = k.state(r6).mft(ch).expect("R6 branching");
    let mut targets: Vec<NodeId> = r6_mft.data_targets(now).collect();
    targets.sort();
    assert_eq!(targets, vec![r1, r2]);
    let r1_mft = k.state(r1n).mft(ch).expect("R1 has the splice entry");
    assert_eq!(r1_mft.data_targets(now).collect::<Vec<_>>(), vec![r6]);
    assert!(r1_mft.is_marked(r1, now) && r1_mft.is_marked(r2, now));
    assert!(
        r1_mft.is_stale(r6, now),
        "fusion sender held stale (data-only)"
    );
}

#[test]
fn fig3_delays_are_shortest_path() {
    let mut k = kernel_on(scenarios::fig3());
    let s = n(&k, "S");
    let (r1, r2) = (n(&k, "r1"), n(&k, "r2"));
    let ch = Channel::primary(s);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Join(ch), Time(300));
    settle(&mut k, 6000);
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 4 }, t);
    k.run_until(t + 100);
    for d in k.stats().deliveries_tagged(4) {
        assert_eq!(d.delay(), k.network().dist(s, d.node).unwrap());
    }
}

#[test]
fn departure_does_not_touch_other_receivers_route() {
    // §3's stability claim, on the Figure-2 topology: r3 leaving must not
    // change r1's delivery path (REUNITE's Figure-2 reconfiguration
    // changes r2's route when r1 leaves; integration tests cover that
    // side).
    let mut k = kernel_on(scenarios::fig2());
    let s = n(&k, "S");
    let (r1, r3) = (n(&k, "r1"), n(&k, "r3"));
    let ch = Channel::primary(s);
    k.command_at(r1, Cmd::Join(ch), Time(0));
    k.command_at(r3, Cmd::Join(ch), Time(300));
    settle(&mut k, 5000);
    let t1 = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 10 }, t1);
    k.run_until(t1 + 100);
    let before = k
        .stats()
        .deliveries_tagged(10)
        .find(|d| d.node == r1)
        .unwrap()
        .delay();

    k.command_at(r3, Cmd::Leave(ch), k.now());
    let timing = Timing::default();
    let quiet = k.now() + 4 * timing.t2 + 10 * timing.tree_period;
    k.run_until(quiet);
    let t2 = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 11 }, t2);
    k.run_until(t2 + 100);
    let after: Vec<_> = k.stats().deliveries_tagged(11).collect();
    assert_eq!(after.len(), 1, "only r1 remains");
    assert_eq!(after[0].node, r1);
    assert_eq!(after[0].delay(), before, "survivor's route unchanged");
}

#[test]
fn full_departure_tears_down_all_state() {
    let mut k = kernel_on(scenarios::fig2());
    let s = n(&k, "S");
    let receivers = [n(&k, "r1"), n(&k, "r2"), n(&k, "r3")];
    let ch = Channel::primary(s);
    for (i, &r) in receivers.iter().enumerate() {
        k.command_at(r, Cmd::Join(ch), Time(i as u64 * 200));
    }
    settle(&mut k, 4000);
    for &r in &receivers {
        k.command_at(r, Cmd::Leave(ch), Time(4000));
    }
    let timing = Timing::default();
    settle(&mut k, 4000 + 5 * timing.t2 + 10 * timing.tree_period);
    for node in k.network().graph().nodes() {
        assert!(k.state(node).mft(ch).is_none(), "MFT lingers at {node}");
        assert!(k.state(node).mct(ch).is_none(), "MCT lingers at {node}");
    }
}

#[test]
fn rejoin_after_teardown_rebuilds_spt() {
    let mut k = kernel_on(scenarios::fig2());
    let s = n(&k, "S");
    let r2 = n(&k, "r2");
    let ch = Channel::primary(s);
    k.command_at(r2, Cmd::Join(ch), Time(0));
    k.command_at(r2, Cmd::Leave(ch), Time(500));
    let timing = Timing::default();
    let again = 500 + 5 * timing.t2;
    k.command_at(r2, Cmd::Join(ch), Time(again));
    settle(&mut k, again + 1500);
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 12 }, t);
    k.run_until(t + 100);
    let d: Vec<_> = k.stats().deliveries_tagged(12).collect();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].delay(), k.network().dist(s, r2).unwrap());
}

#[test]
fn unicast_only_router_is_crossed_transparently() {
    // Make the mid-line router unicast-only: it can no longer hold state,
    // but data still reaches the receiver as plain unicast (the protocol's
    // raison d'être).
    let mut g = Graph::new();
    let a = g.add_router();
    let b = g.add_router();
    let c = g.add_router();
    g.add_link(a, b, 1, 1);
    g.add_link(b, c, 1, 1);
    g.set_mcast_capable(b, false);
    let s = g.add_host(a, 1, 1);
    let h1 = g.add_host(c, 1, 1);
    let h2 = g.add_host(c, 1, 1);
    let mut k = kernel_on(g);
    let ch = Channel::primary(s);
    k.command_at(h1, Cmd::Join(ch), Time(0));
    k.command_at(h2, Cmd::Join(ch), Time(200));
    settle(&mut k, 4000);
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 13 }, t);
    k.run_until(t + 100);
    let mut nodes: Vec<NodeId> = k.stats().deliveries_tagged(13).map(|d| d.node).collect();
    nodes.sort();
    assert_eq!(nodes, vec![h1, h2]);
    // b held no protocol state.
    assert!(k.state(b).mct(ch).is_none() && k.state(b).mft(ch).is_none());
    // c branches for both receivers; the a→b→c legs carry one copy each.
    let per_link = k.stats().data_copies_per_link(13);
    assert_eq!(per_link[&(a, b)], 1);
    assert_eq!(per_link[&(b, c)], 1);
}

#[test]
fn no_drops_and_no_duplicate_deliveries_in_steady_state() {
    let mut k = kernel_on(scenarios::fig2());
    let s = n(&k, "S");
    let receivers = [n(&k, "r1"), n(&k, "r2"), n(&k, "r3")];
    let ch = Channel::primary(s);
    for (i, &r) in receivers.iter().enumerate() {
        k.command_at(r, Cmd::Join(ch), Time(i as u64 * 137));
    }
    settle(&mut k, 8000);
    assert_eq!(k.stats().drops, 0);
    for probe in 0..3u64 {
        let t = k.now();
        k.command_at(
            s,
            Cmd::SendData {
                ch,
                tag: 100 + probe,
            },
            t,
        );
        k.run_until(t + 120);
        assert_eq!(
            k.stats().deliveries_tagged(100 + probe).count(),
            3,
            "probe {probe}: every receiver exactly once"
        );
    }
}

#[test]
fn determinism_across_identical_runs() {
    let run = || {
        let mut k = kernel_on(scenarios::fig2());
        let s = n(&k, "S");
        let ch = Channel::primary(s);
        for (i, label) in ["r1", "r2", "r3"].iter().enumerate() {
            let r = n(&k, label);
            k.command_at(r, Cmd::Join(ch), Time(i as u64 * 250));
        }
        settle(&mut k, 5000);
        k.command_at(s, Cmd::SendData { ch, tag: 1 }, Time(5000));
        k.run_until(Time(5200));
        (
            k.stats().data_copies_tagged(1),
            k.stats().deliveries.clone(),
            k.stats().structural_changes,
        )
    };
    assert_eq!(run(), run());
}

/// Line s(host) - a - b - c with `hosts` receivers attached to c, running
/// the HBH-AGG variant.
fn agg_line(hosts: usize) -> (Kernel<Hbh>, NodeId, NodeId, Vec<NodeId>) {
    let mut g = Graph::new();
    let a = g.add_router();
    let b = g.add_router();
    let c = g.add_router();
    g.add_link(a, b, 1, 1);
    g.add_link(b, c, 1, 1);
    let s = g.add_host(a, 1, 1);
    let hs: Vec<NodeId> = (0..hosts).map(|_| g.add_host(c, 1, 1)).collect();
    let k = Kernel::new(Network::new(g), Hbh::aggregated(Timing::default()), 11);
    (k, s, c, hs)
}

#[test]
fn aggregation_absorbs_host_joins_at_access_router() {
    let (mut k, s, c, hs) = agg_line(5);
    let ch = Channel::primary(s);
    for (i, &h) in hs.iter().enumerate() {
        k.command_at(h, Cmd::Join(ch), Time(i as u64 * 30));
    }
    settle(&mut k, 2000);
    let now = k.now();
    // Upstream state is O(access routers): the source sees one receiver —
    // the access router — however many hosts sit behind it.
    let s_mft = k.state(s).mft(ch).expect("source MFT");
    assert!(s_mft.contains(c, now), "access router joined on behalf");
    for &h in &hs {
        assert!(!s_mft.contains(h, now), "host join leaked past access");
    }
    assert_eq!(s_mft.len(), 1);
    let local = k.state(c).local_members(ch).expect("local member table");
    assert_eq!(local.len(), 5);
    // Data reaches every host at its unicast shortest-path distance.
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 21 }, t);
    k.run_until(t + 100);
    let mut nodes: Vec<NodeId> = k.stats().deliveries_tagged(21).map(|d| d.node).collect();
    nodes.sort();
    let mut want = hs.clone();
    want.sort();
    assert_eq!(nodes, want);
    for d in k.stats().deliveries_tagged(21) {
        assert_eq!(d.delay(), k.network().dist(s, d.node).unwrap());
    }
}

#[test]
fn aggregated_leave_decays_locally_and_tears_down() {
    let (mut k, s, c, hs) = agg_line(3);
    let ch = Channel::primary(s);
    for &h in &hs {
        k.command_at(h, Cmd::Join(ch), Time(0));
    }
    settle(&mut k, 2000);
    let timing = Timing::default();
    // One host leaves: its local entry expires after t2, others unaffected.
    k.command_at(hs[0], Cmd::Leave(ch), Time(2000));
    settle(&mut k, 2000 + 3 * timing.t2);
    let local = k.state(c).local_members(ch).expect("table still live");
    assert_eq!(local.len(), 2, "departed member reaped");
    let t = k.now();
    k.command_at(s, Cmd::SendData { ch, tag: 22 }, t);
    k.run_until(t + 100);
    let mut nodes: Vec<NodeId> = k.stats().deliveries_tagged(22).map(|d| d.node).collect();
    nodes.sort();
    let mut want = vec![hs[1], hs[2]];
    want.sort();
    assert_eq!(nodes, want);
    // Everyone leaves: local table dropped, upstream soft state decays.
    for &h in &hs[1..] {
        let t = k.now();
        k.command_at(h, Cmd::Leave(ch), t);
    }
    let quiet = k.now() + 5 * timing.t2 + 10 * timing.tree_period;
    k.run_until(quiet);
    assert!(
        k.state(c).local_members(ch).is_none(),
        "local table lingers"
    );
    assert!(k.state(s).mft(ch).is_none(), "source MFT lingers");
}

#[test]
fn second_channel_from_same_source_is_independent() {
    let (mut k, s, _, h) = line();
    let ch1 = Channel::new(s, hbh_proto_base::GroupAddr(1));
    let ch2 = Channel::new(s, hbh_proto_base::GroupAddr(2));
    k.command_at(h, Cmd::Join(ch1), Time(0));
    settle(&mut k, 800);
    k.command_at(s, Cmd::SendData { ch: ch2, tag: 5 }, Time(800));
    k.run_until(Time(900));
    assert_eq!(
        k.stats().deliveries_tagged(5).count(),
        0,
        "no receivers on ch2"
    );
    k.command_at(s, Cmd::SendData { ch: ch1, tag: 6 }, Time(900));
    k.run_until(Time(1000));
    assert_eq!(k.stats().deliveries_tagged(6).count(), 1);
}
