#![warn(missing_docs)]

//! # hbh-proto — the Hop-By-Hop multicast routing protocol
//!
//! The paper's primary contribution (Costa, Fdida, Duarte — SIGCOMM 2001).
//! HBH distributes multicast data over **recursive unicast trees** like
//! REUNITE, but redesigns the tree-construction machinery so that it
//!
//! * identifies channels by `<S, G>` (class-D compatible, see
//!   `hbh_proto_base::channel`),
//! * builds true **shortest-path trees** even when unicast routing is
//!   asymmetric (Figure 5 vs REUNITE's Figure 2),
//! * suppresses the duplicate packet copies REUNITE can place on shared
//!   links (Figure 3), and
//! * keeps member departures from perturbing other receivers' routes
//!   (Figure 4): forwarding entries live at the branching node *nearest
//!   the receiver*, and data at a branching node is addressed to the node
//!   itself, not to a receiver.
//!
//! ## State
//!
//! * `MCT<S>` at non-branching tree routers: a **single** soft entry
//!   recording the node whose `tree` messages flow through here.
//! * `MFT<S>` at branching routers (and the source): one soft entry per
//!   downstream node (receiver or next branching router). Entries can be
//!   **stale** (t1 expired: still forwards data, no longer emits `tree`
//!   messages) or **marked** (set by `fusion`: emits `tree` messages but
//!   forwards no data) — the two flags are how a newly discovered
//!   branching point is spliced into the data path without ever
//!   interrupting delivery.
//!
//! ## Messages
//!
//! * `join(S, R)` — receiver → source, periodic; intercepted by a
//!   branching node holding an `R` entry, which then joins upstream
//!   itself. A receiver's *first* join is never intercepted, so new
//!   receivers always join at the source first and are re-homed by the
//!   fusion mechanism afterwards.
//! * `tree(S, R)` — source → receivers, periodic; installs/refreshes MCT
//!   state and triggers branching-point discovery.
//! * `fusion(S, R₁…Rₙ)` — sent upstream by a router that sees tree
//!   messages for several targets flow through it: "I can be their
//!   branching node". The upstream MFT marks those entries (tree-only)
//!   and installs the fusion sender stale (data-only), which reroutes the
//!   data plane through the new branching node in one step.
//!
//! The full Appendix-A rule set is implemented in [`engine`] with the rule
//! numbers of the paper's Figure 9 cited inline.

pub(crate) mod bits;
pub mod coverage;
pub mod engine;
pub mod hard;
pub mod messages;
pub mod tables;

pub use coverage::{Bloom, CoverageSummary, SummaryStats};
pub use engine::{Hbh, HbhNodeState};
pub use hard::{HardCtl, HardMft, HardMsg, HardNodeState, HardTimer, HbhHard};
pub use messages::{HbhMsg, HbhTimer};
pub use tables::{HbhMct, HbhMft};

#[cfg(test)]
#[path = "engine_tests.rs"]
mod engine_tests;

#[cfg(test)]
#[path = "hard_tests.rs"]
mod hard_tests;

#[cfg(test)]
#[path = "table_proptests.rs"]
mod table_proptests;
