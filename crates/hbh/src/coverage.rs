//! Compact downstream-coverage summaries: a bloom-filter fast path with
//! an exact, verified fallback.
//!
//! Two structures share the bloom machinery:
//!
//! * [`Bloom`] — an 8-byte, 2-hash filter over node ids. A negative
//!   answer is definitive ("this id was never inserted"); a positive one
//!   only means *maybe*. [`crate::tables::HbhMft`] keeps one over the
//!   union of its entries' coverage claims so the hot
//!   `served_by_other`/`covered_by_other` paths can skip both the linear
//!   claim scan and the [`crate::bits::Mask`] reachability fixpoint when
//!   nobody claims the node at all (the common case at routers with no
//!   fusion activity). On a positive the exact machinery still runs — the
//!   filter can change cost, never answers.
//! * [`CoverageSummary`] — the aggregated local-member table of the
//!   HBH-AGG access router: the exact membership (sorted ids with
//!   last-refresh stamps) fronted by a bloom. Membership probes consult
//!   the bloom first and *verify* every positive against the sorted list,
//!   counting how often the filter lied ([`SummaryStats`]) — the verified
//!   false-positive escape hatch that keeps the summary exact while the
//!   fast path stays O(1).

use hbh_sim_core::Time;
use hbh_topo::graph::NodeId;

/// Filter size in bits (8 bytes, as in the dsr-bloom exemplar).
const BLOOM_BITS: u32 = 64;
/// Independent hash probes per id.
const BLOOM_K: u32 = 2;

/// An 8-byte, 2-hash bloom filter over node ids.
///
/// `maybe_contains` returning `false` is definitive; `true` is only
/// probable. There is no removal — callers rebuild (see
/// [`Bloom::clear`]) when the underlying set shrinks, and tolerate a
/// superset in between.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bloom {
    bits: u64,
}

impl Bloom {
    /// Derives the `BLOOM_K` bit indices for `n` by iterating an LCG
    /// seeded from the id, taking the high bits of each step.
    fn probes(n: NodeId) -> [u32; BLOOM_K as usize] {
        let mut x = (n.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut idx = [0u32; BLOOM_K as usize];
        for slot in &mut idx {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            *slot = (x >> 58) as u32 % BLOOM_BITS;
        }
        idx
    }

    /// Inserts `n` into the filter.
    pub fn insert(&mut self, n: NodeId) {
        for i in Self::probes(n) {
            self.bits |= 1 << i;
        }
    }

    /// `false` means `n` was definitely never inserted; `true` means it
    /// may have been.
    pub fn maybe_contains(&self, n: NodeId) -> bool {
        Self::probes(n).iter().all(|&i| self.bits & (1 << i) != 0)
    }

    /// Empties the filter (for a rebuild after removals).
    pub fn clear(&mut self) {
        self.bits = 0;
    }

    /// True if nothing was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }
}

/// Counters for the bloom fast path of a [`CoverageSummary`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Probes the bloom answered negatively (exact check skipped).
    pub negatives: u64,
    /// Bloom positives the exact list confirmed.
    pub verified: u64,
    /// Bloom positives the exact list refuted — the escape hatch fired.
    pub false_positives: u64,
}

/// The aggregated local-member table of an HBH-AGG access router: one
/// `(member, last refresh)` row per directly attached receiver, kept
/// sorted by node id for deterministic enumeration, with a [`Bloom`]
/// fast path in front of membership probes.
///
/// Soft-state semantics match the rest of HBH: a member is live until
/// `ttl` (the caller passes `Timing::t2`) elapses since its last
/// refresh, and [`CoverageSummary::reap`] drops expired rows.
#[derive(Clone, Debug, Default)]
pub struct CoverageSummary {
    /// Exact membership, sorted by node id.
    members: Vec<(NodeId, Time)>,
    bloom: Bloom,
    stats: SummaryStats,
}

impl CoverageSummary {
    /// An empty summary.
    pub fn new() -> Self {
        CoverageSummary::default()
    }

    /// Records a join/refresh from `n` at `now`. Returns `true` if `n`
    /// is a new member.
    ///
    /// The bloom screens the common cases: a negative skips the binary
    /// search entirely (definitely new), a positive is verified against
    /// the sorted list — and counted as a false positive when the list
    /// disagrees.
    pub fn refresh(&mut self, n: NodeId, now: Time) -> bool {
        if !self.bloom.maybe_contains(n) {
            self.stats.negatives += 1;
            let at = self.members.partition_point(|&(m, _)| m < n);
            self.members.insert(at, (n, now));
            self.bloom.insert(n);
            return true;
        }
        match self.members.binary_search_by_key(&n, |&(m, _)| m) {
            Ok(i) => {
                self.stats.verified += 1;
                self.members[i].1 = now;
                false
            }
            Err(at) => {
                self.stats.false_positives += 1;
                self.members.insert(at, (n, now));
                self.bloom.insert(n);
                true
            }
        }
    }

    /// Is `n` currently a member (regardless of freshness)? Bloom fast
    /// path, exact verify, counters updated.
    pub fn contains(&mut self, n: NodeId) -> bool {
        if !self.bloom.maybe_contains(n) {
            self.stats.negatives += 1;
            return false;
        }
        match self.members.binary_search_by_key(&n, |&(m, _)| m) {
            Ok(_) => {
                self.stats.verified += 1;
                true
            }
            Err(_) => {
                self.stats.false_positives += 1;
                false
            }
        }
    }

    /// Drops members whose last refresh is `ttl` or more ago and
    /// rebuilds the bloom. Returns how many were dropped.
    pub fn reap(&mut self, now: Time, ttl: u64) -> usize {
        let before = self.members.len();
        self.members.retain(|&(_, at)| at.0 + ttl > now.0);
        let dropped = before - self.members.len();
        if dropped > 0 {
            self.bloom.clear();
            for &(m, _) in &self.members {
                self.bloom.insert(m);
            }
        }
        dropped
    }

    /// Members still within `ttl` of their last refresh, in id order.
    pub fn live(&self, now: Time, ttl: u64) -> impl Iterator<Item = NodeId> + '_ {
        self.members
            .iter()
            .filter(move |&&(_, at)| at.0 + ttl > now.0)
            .map(|&(m, _)| m)
    }

    /// Member count (expired-but-unreaped included).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the summary holds no members at all.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Fast-path counters.
    pub fn stats(&self) -> SummaryStats {
        self.stats
    }

    /// Approximate state footprint: a node id plus timer per member
    /// (matching [`hbh_proto_base::StateInventory`]'s control-entry
    /// weight) plus the 8-byte bloom.
    pub fn state_bytes(&self) -> usize {
        12 * self.members.len() + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_negative_is_definitive() {
        let mut b = Bloom::default();
        assert!(b.is_empty());
        for i in 0..50 {
            b.insert(NodeId(i));
        }
        for i in 0..50 {
            assert!(b.maybe_contains(NodeId(i)), "no false negatives");
        }
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn bloom_has_false_positives_at_saturation() {
        // With 64 bits and 2 hashes, a few hundred inserts saturate the
        // filter — every probe answers "maybe". That is exactly why the
        // exact fallback exists; this test pins the failure mode the
        // escape hatch defends against.
        let mut b = Bloom::default();
        for i in 0..300 {
            b.insert(NodeId(i));
        }
        assert!(b.maybe_contains(NodeId(100_000)));
    }

    #[test]
    fn refresh_inserts_sorted_and_refreshes_in_place() {
        let mut s = CoverageSummary::new();
        assert!(s.refresh(NodeId(5), Time(0)));
        assert!(s.refresh(NodeId(2), Time(1)));
        assert!(s.refresh(NodeId(9), Time(2)));
        assert!(!s.refresh(NodeId(5), Time(3)), "existing member refreshed");
        assert_eq!(
            s.live(Time(3), 100).collect::<Vec<_>>(),
            vec![NodeId(2), NodeId(5), NodeId(9)],
            "enumeration is id-sorted"
        );
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn reap_expires_by_ttl_and_rebuilds_bloom() {
        let mut s = CoverageSummary::new();
        s.refresh(NodeId(1), Time(0));
        s.refresh(NodeId(2), Time(50));
        assert_eq!(s.live(Time(100), 100).collect::<Vec<_>>(), vec![NodeId(2)]);
        assert_eq!(s.reap(Time(100), 100), 1);
        assert_eq!(s.len(), 1);
        // Rebuilt bloom no longer claims the reaped member (1 and 2 hash
        // to disjoint bit sets for these constants), so the probe takes
        // the negative fast path again.
        let negs = s.stats().negatives;
        assert!(!s.contains(NodeId(1)));
        assert_eq!(s.stats().negatives, negs + 1);
    }

    #[test]
    fn false_positive_escape_hatch_is_counted() {
        let mut s = CoverageSummary::new();
        // Saturate the bloom so absent-member probes must take the exact
        // fallback.
        for i in 0..300 {
            s.refresh(NodeId(i), Time(0));
        }
        assert!(!s.contains(NodeId(100_000)), "exact check wins");
        assert!(
            s.stats().false_positives > 0,
            "saturated bloom lied and was caught"
        );
        assert!(s.contains(NodeId(150)));
        assert!(s.stats().verified > 0);
    }

    #[test]
    fn state_bytes_tracks_members() {
        let mut s = CoverageSummary::new();
        assert_eq!(s.state_bytes(), 8);
        s.refresh(NodeId(1), Time(0));
        s.refresh(NodeId(2), Time(0));
        assert_eq!(s.state_bytes(), 32);
    }
}
