//! Arbitrary-width bitmasks and the shared coverage-reach fixpoint.
//!
//! The soft ([`crate::tables`]) and hard ([`crate::hard`]) forwarding
//! tables both need the same least fixpoint: which entries currently
//! receive data, where a marked entry is reachable only through a chain
//! of coverers bottoming out at a directly served one. The original
//! implementation ran on a stack `u128`, which capped tables at 128
//! entries — comfortable at the paper's group sizes (≤45) but not at the
//! internet-scale sweeps, where hundreds of receivers can funnel through
//! one access router. [`Mask`] lifts the cap; the word vector is a few
//! machine words for ordinary tables, and the fixpoint only runs after
//! the callers' coverage fast paths have already found live fusion state,
//! so the allocations sit off the common path.

/// A growable bitmask over entry indices `0..len`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Mask {
    words: Vec<u64>,
}

impl Mask {
    pub fn zeros(len: usize) -> Self {
        Mask {
            words: vec![0; len.div_ceil(64)],
        }
    }

    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub fn test(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub fn or_assign(&mut self, other: &Mask) {
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    pub fn and_not(&mut self, other: &Mask) {
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Indices of set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * 64;
            std::iter::from_fn({
                let mut w = w;
                move || {
                    if w == 0 {
                        return None;
                    }
                    let i = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(base + i)
                }
            })
        })
    }
}

/// How an entry seeds the reach fixpoint.
pub(crate) enum Seed {
    /// Not participating (dead entry).
    Skip,
    /// Directly served: data fans out to it from this table.
    Reach,
    /// Marked: reachable only if a reachable entry's coverage claims it.
    Pending,
}

/// Least fixpoint of coverage reachability over `len` entries. `seed`
/// classifies each entry; `claims(j, i)` answers whether entry `j`'s
/// coverage set claims entry `i`'s node. Frontier propagation: only
/// entries that became reachable in the previous round can newly claim a
/// pending one, so each round scans the frontier instead of the whole
/// table. Coverage chains can nest — B3 serves B2 serves B1 — which is
/// why one hop is not enough.
pub(crate) fn reach_fixpoint(
    len: usize,
    seed: impl Fn(usize) -> Seed,
    claims: impl Fn(usize, usize) -> bool,
) -> Mask {
    let mut reach = Mask::zeros(len);
    let mut pending = Mask::zeros(len);
    for i in 0..len {
        match seed(i) {
            Seed::Skip => {}
            Seed::Reach => reach.set(i),
            Seed::Pending => pending.set(i),
        }
    }
    if pending.is_zero() {
        // Nothing marked: the seed set is already the fixpoint.
        return reach;
    }
    let mut frontier = reach.clone();
    loop {
        let mut newly = Mask::zeros(len);
        for j in frontier.ones() {
            for i in pending.ones() {
                if !newly.test(i) && claims(j, i) {
                    newly.set(i);
                }
            }
        }
        if newly.is_zero() {
            return reach;
        }
        reach.or_assign(&newly);
        pending.and_not(&newly);
        if pending.is_zero() {
            return reach;
        }
        frontier = newly;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_over_128_entries() {
        let mut m = Mask::zeros(300);
        for i in [0, 63, 64, 127, 128, 255, 299] {
            m.set(i);
        }
        assert!(m.test(128) && m.test(299) && !m.test(129));
        assert_eq!(
            m.ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 255, 299]
        );
    }

    #[test]
    fn fixpoint_follows_nested_chains() {
        // 0 direct; 1 covered by 0; 2 covered by 1; 3 orphaned.
        let reach = reach_fixpoint(
            4,
            |i| if i == 0 { Seed::Reach } else { Seed::Pending },
            |j, i| matches!((j, i), (0, 1) | (1, 2)),
        );
        assert!(reach.test(0) && reach.test(1) && reach.test(2));
        assert!(!reach.test(3));
    }

    #[test]
    fn fixpoint_scales_past_the_old_cap() {
        // A 200-entry chain: i covered by i-1, rooted at 0.
        let reach = reach_fixpoint(
            200,
            |i| if i == 0 { Seed::Reach } else { Seed::Pending },
            |j, i| i == j + 1,
        );
        assert_eq!(reach.ones().count(), 200);
    }
}
