//! Property-based tests of the MFT's flag algebra: arbitrary operation
//! sequences must preserve the invariants the engine relies on.

use crate::tables::HbhMft;
use hbh_proto_base::Timing;
use hbh_sim_core::Time;
use hbh_topo::graph::NodeId;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Refresh(u8),
    Mark(u8),
    Fusion { bp: u8, covers: Vec<u8> },
    Reap,
    Advance(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(Op::Refresh),
        (0u8..8).prop_map(Op::Mark),
        ((0u8..8), proptest::collection::vec(0u8..8, 0..4))
            .prop_map(|(bp, covers)| Op::Fusion { bp, covers }),
        Just(Op::Reap),
        (1u16..400).prop_map(Op::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn mft_invariants_under_arbitrary_ops(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let timing = Timing::default();
        let mut mft = HbhMft::default();
        let mut now = Time::ZERO;
        for op in ops {
            match op {
                Op::Refresh(n) => {
                    mft.refresh_or_insert(NodeId(n.into()), now, &timing);
                }
                Op::Mark(n) => {
                    mft.mark(NodeId(n.into()), now);
                }
                Op::Fusion { bp, covers } => {
                    let covers: Vec<NodeId> =
                        covers.into_iter().map(|c| NodeId(c.into())).collect();
                    mft.install_fusion_sender(NodeId(bp.into()), &covers, now, &timing);
                }
                Op::Reap => {
                    mft.reap(now);
                }
                Op::Advance(dt) => now += u64::from(dt),
            }

            // Invariant 1: fan-out sets only contain live members.
            for n in mft.data_targets(now).chain(mft.tree_targets(now)) {
                prop_assert!(mft.contains(n, now), "{n} in fan-out but not live");
            }
            // Invariant 2: data and tree sets respect the flag table —
            // marked ⇒ no data; (stale ∧ marked) ⇒ no tree.
            for n in mft.data_targets(now) {
                prop_assert!(!mft.is_marked(n, now), "marked {n} got data");
            }
            for n in mft.tree_targets(now) {
                prop_assert!(
                    !(mft.is_marked(n, now) && mft.is_stale(n, now)),
                    "marked+stale {n} got tree"
                );
            }
            // Invariant 3: a live node appears exactly once.
            let mut live: Vec<NodeId> = mft.live(now).collect();
            let before = live.len();
            live.sort();
            live.dedup();
            prop_assert_eq!(live.len(), before, "duplicate live entry");
        }
    }

    /// An entry untouched for t2 is gone; one refreshed within t1 stays
    /// fully active, whatever happened before.
    #[test]
    fn decay_is_exact(ops in proptest::collection::vec(op_strategy(), 0..30)) {
        let timing = Timing::default();
        let mut mft = HbhMft::default();
        let mut now = Time::ZERO;
        for op in ops {
            match op {
                Op::Refresh(n) => { mft.refresh_or_insert(NodeId(n.into()), now, &timing); }
                Op::Mark(n) => { mft.mark(NodeId(n.into()), now); }
                Op::Fusion { bp, covers } => {
                    let covers: Vec<NodeId> =
                        covers.into_iter().map(|c| NodeId(c.into())).collect();
                    mft.install_fusion_sender(NodeId(bp.into()), &covers, now, &timing);
                }
                Op::Reap => { mft.reap(now); }
                Op::Advance(dt) => now += u64::from(dt),
            }
        }
        // Pin one entry now; everything about it is then fully predictable.
        let probe = NodeId(99);
        mft.refresh_or_insert(probe, now, &timing);
        prop_assert!(mft.contains(probe, now + (timing.t1 - 1)));
        prop_assert!(!mft.is_stale(probe, now + (timing.t1 - 1)));
        prop_assert!(mft.is_stale(probe, now + timing.t1));
        prop_assert!(!mft.contains(probe, now + timing.t2));
    }
}
