//! The HBH protocol engine: the message-processing rules of Appendix A
//! (Figure 9), with rule numbers cited inline.

use crate::coverage::CoverageSummary;
use crate::messages::{HbhMsg, HbhTimer};
use crate::tables::{HbhMct, HbhMft};
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Ctx, Packet, Protocol};
use hbh_sim_core::{FastMap, FastSet};
use hbh_topo::graph::NodeId;

/// The HBH protocol (configuration; per-node state in [`HbhNodeState`]).
#[derive(Clone, Debug)]
pub struct Hbh {
    /// Refresh periods and soft-state timers.
    pub timing: Timing,
    /// Membership aggregation at access routers (the HBH-AGG variant):
    /// joins from directly attached hosts are absorbed into a per-channel
    /// [`CoverageSummary`] and the access router joins the channel once on
    /// their behalf, so upstream per-channel state is O(access routers),
    /// not O(receivers). Off by default — `Hbh::new` behaves exactly as
    /// the paper's protocol.
    pub aggregate: bool,
}

impl Hbh {
    /// An HBH instance with the given (validated) timing.
    pub fn new(timing: Timing) -> Self {
        timing.validate();
        Hbh {
            timing,
            aggregate: false,
        }
    }

    /// An HBH instance with membership aggregation at access routers
    /// (HBH-AGG). Protocol rules are otherwise identical to [`Hbh::new`].
    pub fn aggregated(timing: Timing) -> Self {
        let mut hbh = Hbh::new(timing);
        hbh.aggregate = true;
        hbh
    }
}

/// Per-node HBH state.
#[derive(Default)]
pub struct HbhNodeState {
    mct: FastMap<Channel, HbhMct>,
    mft: FastMap<Channel, HbhMft>,
    /// Receiver-agent subscriptions.
    member: FastSet<Channel>,
    /// Channels whose source tree timer is armed (source node only).
    tree_armed: FastSet<Channel>,
    /// Channels with an armed router sweep.
    sweep_armed: FastSet<Channel>,
    /// Aggregated local receivers per channel (HBH-AGG access routers
    /// only; always empty when aggregation is off).
    local: FastMap<Channel, CoverageSummary>,
}

impl HbhNodeState {
    /// This node's MCT for `ch`, if any.
    pub fn mct(&self, ch: Channel) -> Option<&HbhMct> {
        self.mct.get(&ch)
    }

    /// This node's MFT for `ch`, if any.
    pub fn mft(&self, ch: Channel) -> Option<&HbhMft> {
        self.mft.get(&ch)
    }

    /// Is this node's receiver agent subscribed to `ch`?
    pub fn is_member(&self, ch: Channel) -> bool {
        self.member.contains(&ch)
    }

    /// Is this node currently a branching node for `ch`?
    pub fn is_branching(&self, ch: Channel) -> bool {
        self.mft.contains_key(&ch)
    }

    /// This access router's aggregated local members for `ch`, if any
    /// (HBH-AGG only).
    pub fn local_members(&self, ch: Channel) -> Option<&CoverageSummary> {
        self.local.get(&ch)
    }
}

impl hbh_proto_base::StateInventory for HbhNodeState {
    fn forwarding_entries(&self, ch: Channel) -> usize {
        self.mft.get(&ch).map_or(0, |m| m.len())
    }

    fn control_entries(&self, ch: Channel) -> usize {
        usize::from(self.mct.contains_key(&ch))
    }

    fn state_bytes(&self, ch: Channel) -> usize {
        // The default weights, plus the aggregated local-member summary —
        // HBH-AGG must not hide the state it keeps at access routers.
        24 * self.forwarding_entries(ch)
            + 12 * self.control_entries(ch)
            + self.local.get(&ch).map_or(0, |l| l.state_bytes())
    }
}

type HCtx<'a> = Ctx<'a, HbhMsg, HbhTimer>;

impl Hbh {
    fn arm_sweep(&self, state: &mut HbhNodeState, ch: Channel, ctx: &mut HCtx<'_>) {
        if state.sweep_armed.insert(ch) {
            ctx.set_timer(HbhTimer::Sweep(ch), self.timing.tree_period);
        }
    }

    /// Emits `fusion(S, …)` upstream, listing every live MFT node ("the
    /// fusion messages produced by B contain all the nodes that B
    /// maintains in its MFT").
    ///
    /// The fusion is addressed to `to` — the node that *emitted* the
    /// transiting tree message that triggered it (`pkt.src`). That node is
    /// the one currently responsible for serving the listed targets and
    /// therefore the one whose MFT must mark them and adopt the sender;
    /// addressing the fusion by unicast toward `S` instead would let
    /// asymmetric reverse paths bypass it (Figure 9(b)'s "addressed to B"
    /// check implies the message has a specific upstream addressee).
    fn send_fusion(&self, mft: &HbhMft, ch: Channel, to: NodeId, ctx: &mut HCtx<'_>) {
        let nodes: Vec<NodeId> = mft.live(ctx.now()).collect();
        debug_assert!(!nodes.is_empty());
        if to == ctx.node {
            return; // the trigger was our own emission looping back
        }
        let pkt = Packet::control(
            ctx.node,
            to,
            HbhMsg::Fusion {
                ch,
                from: ctx.node,
                nodes,
            },
        );
        ctx.send(pkt);
    }

    fn send_tree(&self, ch: Channel, target: NodeId, ctx: &mut HCtx<'_>) {
        let pkt = Packet::control(ctx.node, target, HbhMsg::Tree { ch, target });
        ctx.send(pkt);
    }

    fn send_join(&self, ch: Channel, who: NodeId, initial: bool, ctx: &mut HCtx<'_>) {
        if ch.source == ctx.node {
            return;
        }
        let pkt = Packet::control(ctx.node, ch.source, HbhMsg::Join { ch, who, initial });
        ctx.send(pkt);
    }

    // --- join (Figure 9(a)) --------------------------------------------

    /// Join-time mark repair (spec completion, `DESIGN.md` §5): a marked
    /// entry is only serviceable while some live unmarked fusion sender
    /// claims it in its coverage. If that sender decays — its own tables
    /// lost to control loss, say — the mark would starve the subtree
    /// *forever*, because the very joins that keep the marked entry alive
    /// are intercepted right here and never reach anyone who could help.
    /// The periodic join therefore re-validates the coverage and clears an
    /// orphaned mark, restoring direct service; a later fusion from a
    /// recovered branching node simply re-marks it.
    fn repair_orphaned_mark(&self, mft: &mut HbhMft, who: NodeId, ctx: &mut HCtx<'_>) {
        let now = ctx.now();
        if mft.is_marked(who, now) && !mft.served_by_other(who, now) {
            mft.unmark(who, now);
            ctx.structural_change();
        }
    }

    fn join_at_source(
        &self,
        state: &mut HbhNodeState,
        ch: Channel,
        who: NodeId,
        ctx: &mut HCtx<'_>,
    ) {
        let now = ctx.now();
        let mft = state.mft.entry(ch).or_default();
        self.repair_orphaned_mark(mft, who, ctx);
        if mft.refresh_or_insert(who, now, &self.timing) {
            ctx.structural_change();
        }
        if state.tree_armed.insert(ch) {
            ctx.set_timer(HbhTimer::TreeRefresh(ch), self.timing.tree_period);
        }
    }

    fn join_at_router(
        &self,
        state: &mut HbhNodeState,
        pkt: Packet<HbhMsg>,
        ch: Channel,
        who: NodeId,
        initial: bool,
        ctx: &mut HCtx<'_>,
    ) {
        let now = ctx.now();
        // "The first join issued by a receiver is never intercepted."
        if initial {
            ctx.forward(pkt); // rules (1)/(2) collapse to forwarding
            return;
        }
        match state.mft.get_mut(&ch) {
            // Rule (3): R ∈ MFT ⇒ intercept, refresh, join upstream
            // ourselves ("a branching router joins the group itself at
            // the next upstream branching router").
            Some(mft) if mft.contains(who, now) => {
                self.repair_orphaned_mark(mft, who, ctx);
                mft.refresh_or_insert(who, now, &self.timing);
                self.send_join(ch, ctx.node, false, ctx);
            }
            // Rules (1)/(2): no MFT, or R not in it ⇒ forward unchanged.
            _ => ctx.forward(pkt),
        }
    }

    // --- membership aggregation (HBH-AGG) ------------------------------

    /// Absorbs a join from a directly attached host into the per-channel
    /// local-member summary. The access router is the channel's receiver
    /// of record: the *first* local member triggers the router's own
    /// (never-intercepted) initial join, which builds the upstream tree
    /// once; every later local join — initial or refresh — only touches
    /// the O(1) summary. Per-period refreshes upstream are coalesced into
    /// a single join by the [`HbhTimer::AggFlush`] tick.
    fn join_at_access(
        &self,
        state: &mut HbhNodeState,
        ch: Channel,
        who: NodeId,
        ctx: &mut HCtx<'_>,
    ) {
        let now = ctx.now();
        let local = state.local.entry(ch).or_default();
        let first = local.is_empty();
        if local.refresh(who, now) {
            ctx.structural_change();
        }
        if first {
            self.send_join(ch, ctx.node, true, ctx);
            ctx.set_timer(HbhTimer::AggFlush(ch), self.timing.join_period);
        }
    }

    /// Fans a data packet addressed to this access router out to every
    /// live aggregated local member (on top of the normal MFT fan-out).
    fn deliver_local(
        &self,
        state: &HbhNodeState,
        pkt: &Packet<HbhMsg>,
        ch: Channel,
        ctx: &mut HCtx<'_>,
    ) {
        let now = ctx.now();
        let Some(local) = state.local.get(&ch) else {
            return;
        };
        for h in local.live(now, self.timing.t2) {
            ctx.send(pkt.copy_to(h));
        }
    }

    /// Periodic aggregation tick: decay the local summary, then refresh
    /// the upstream join on behalf of all surviving members with one
    /// message. When the last member has expired the channel's local
    /// state is dropped and the upstream entry decays on its own.
    fn agg_flush(&self, state: &mut HbhNodeState, ch: Channel, ctx: &mut HCtx<'_>) {
        let now = ctx.now();
        let Some(local) = state.local.get_mut(&ch) else {
            return;
        };
        if local.reap(now, self.timing.t2) > 0 {
            ctx.structural_change();
        }
        if local.is_empty() {
            state.local.remove(&ch);
        } else {
            self.send_join(ch, ctx.node, false, ctx);
            ctx.set_timer(HbhTimer::AggFlush(ch), self.timing.join_period);
        }
    }

    // --- tree (Figure 9(c)) --------------------------------------------

    fn tree_self_addressed(&self, state: &mut HbhNodeState, ch: Channel, ctx: &mut HCtx<'_>) {
        // Rule (1): a branching node discards the tree message addressed
        // to itself and fans a tree message out to each (tree-eligible)
        // MFT node.
        let now = ctx.now();
        let Some(mft) = state.mft.get(&ch) else {
            return; // table decayed; nothing to refresh
        };
        for t in mft.tree_targets(now) {
            self.send_tree(ch, t, ctx);
        }
    }

    fn tree_in_transit(
        &self,
        state: &mut HbhNodeState,
        pkt: Packet<HbhMsg>,
        ch: Channel,
        target: NodeId,
        ctx: &mut HCtx<'_>,
    ) {
        let now = ctx.now();
        let emitter = pkt.src;
        if let Some(mft) = state.mft.get_mut(&ch) {
            // Rules (2)/(3): a branching node seeing a transit tree for a
            // new/known target adopts/refreshes it and tells the tree's
            // emitter (via fusion) that it is the branching point for
            // these nodes.
            if mft.refresh_or_insert(target, now, &self.timing) {
                ctx.structural_change(); // rule (2): new node adopted
            }
            let mft = state.mft.get(&ch).expect("just touched");
            self.send_fusion(mft, ch, emitter, ctx);
            ctx.forward(pkt);
            return;
        }
        match state.mct.get_mut(&ch) {
            // Rule (4): first contact with this channel ⇒ create the MCT.
            None => {
                state.mct.insert(ch, HbhMct::new(target, now, &self.timing));
                ctx.structural_change();
                self.arm_sweep(state, ch, ctx);
            }
            Some(mct) => {
                if mct.is_dead(now) || mct.node() == target {
                    if mct.is_dead(now) {
                        // Equivalent of rule (7) once t2 ran out.
                        mct.replace(target, now, &self.timing);
                        ctx.structural_change();
                    } else {
                        // Rules (5)/(6): same node ⇒ plain refresh.
                        mct.refresh(now, &self.timing);
                    }
                } else if mct.is_stale(now) {
                    // Rule (7): a stale MCT is overwritten, not promoted.
                    mct.replace(target, now, &self.timing);
                    ctx.structural_change();
                } else {
                    // Rule (8): two live targets flow through this router ⇒
                    // become a branching node and announce it upstream.
                    let first = mct.node();
                    state.mct.remove(&ch);
                    let mut mft = HbhMft::default();
                    mft.refresh_or_insert(first, now, &self.timing);
                    mft.refresh_or_insert(target, now, &self.timing);
                    state.mft.insert(ch, mft);
                    ctx.structural_change();
                    self.arm_sweep(state, ch, ctx);
                    let mft = state.mft.get(&ch).expect("just inserted");
                    self.send_fusion(mft, ch, emitter, ctx);
                }
            }
        }
        ctx.forward(pkt);
    }

    // --- fusion (Figure 9(b)) ------------------------------------------

    /// Handles a fusion addressed to this node (rule (1)'s transit
    /// forwarding happens in `on_packet`, which gets to move the packet
    /// on unchanged without cloning its node list).
    fn fusion_at_node(
        &self,
        state: &mut HbhNodeState,
        ch: Channel,
        bp: NodeId,
        nodes: &[NodeId],
        ctx: &mut HCtx<'_>,
    ) {
        let now = ctx.now();
        // Rule (2)–(4): we emitted the tree messages that triggered this
        // fusion, so the listed nodes should be our entries.
        let Some(mft) = state.mft.get_mut(&ch) else {
            return; // table decayed while the fusion was in flight
        };
        let relevant: Vec<NodeId> = mft.intersect(nodes, now).collect();
        if relevant.is_empty() {
            return; // stale fusion that outlived the entries it names
        }
        // Nested-fusion disambiguation (see tables.rs module docs): a
        // fusion whose claim is contained in an already-installed sender's
        // coverage is ignored — its subtree is served through that broader
        // branching node.
        if mft.covered_by_other(nodes, bp, now) {
            return; // consumed, deliberately without effect
        }
        // Rule (2): mark the listed entries — they will keep receiving
        // tree messages but no data.
        for n in relevant {
            if mft.mark(n, now) {
                ctx.structural_change();
            }
        }
        // Accepting the claim makes `bp` the data server for the listed
        // nodes, so its own entry must be data-eligible — unless some
        // data-reachable sender claims `bp` itself (coverage chains nest,
        // so the claimant may in turn be marked-but-served), in which case
        // data reaches `bp` transitively and the mark stands. Without
        // this, a sender that was marked while its state decayed (control
        // loss) re-marks its
        // targets every refresh period yet never receives data: permanent
        // starvation of the whole subtree.
        self.repair_orphaned_mark(mft, bp, ctx);
        // Rules (3)/(4): install Bp stale (data-only), or refresh its t2
        // keeping t1 expired; subsume narrower senders.
        if mft.install_fusion_sender(bp, nodes, now, &self.timing) {
            ctx.structural_change();
        }
    }

    // --- data -----------------------------------------------------------

    fn data_self_addressed(
        &self,
        state: &mut HbhNodeState,
        pkt: &Packet<HbhMsg>,
        ch: Channel,
        ctx: &mut HCtx<'_>,
    ) {
        // A branching node receives data addressed to itself and produces
        // one modified copy per data-eligible MFT node (§3: "each data
        // packet received by a branching node produces n+1 modified packet
        // copies" — n downstream copies here, the +1 being the upstream
        // packet that was addressed to us).
        let now = ctx.now();
        let Some(mft) = state.mft.get(&ch) else {
            return; // decayed table: the upstream sender will soon notice
        };
        for t in mft.data_targets(now) {
            ctx.send(pkt.copy_to(t));
        }
    }

    // --- source ----------------------------------------------------------

    fn source_tree_tick(&self, state: &mut HbhNodeState, ch: Channel, ctx: &mut HCtx<'_>) {
        let now = ctx.now();
        let Some(mft) = state.mft.get_mut(&ch) else {
            state.tree_armed.remove(&ch);
            return;
        };
        if mft.reap(now) > 0 {
            ctx.structural_change();
        }
        if mft.is_empty() {
            state.mft.remove(&ch);
            state.tree_armed.remove(&ch);
            ctx.structural_change();
            return;
        }
        for t in mft.tree_targets(now) {
            self.send_tree(ch, t, ctx);
        }
        ctx.set_timer(HbhTimer::TreeRefresh(ch), self.timing.tree_period);
    }

    fn source_send_data(
        &self,
        state: &mut HbhNodeState,
        ch: Channel,
        tag: u64,
        ctx: &mut HCtx<'_>,
    ) {
        let now = ctx.now();
        let Some(mft) = state.mft.get(&ch) else {
            return; // no receivers
        };
        for t in mft.data_targets(now) {
            let pkt = Packet::data(ctx.node, t, tag, now, HbhMsg::Data { ch });
            ctx.send(pkt);
        }
    }
}

impl Protocol for Hbh {
    type Msg = HbhMsg;
    type Timer = HbhTimer;
    type Command = Cmd;
    type NodeState = HbhNodeState;

    fn on_packet(&self, state: &mut HbhNodeState, pkt: Packet<HbhMsg>, ctx: &mut HCtx<'_>) {
        let here = ctx.node;
        let is_host = ctx.net().graph().is_host(here);
        // Match by reference and copy out the small fields: cloning the
        // payload here would heap-copy every transiting fusion's node
        // list just to forward the packet unchanged.
        match &pkt.payload {
            HbhMsg::Join { ch, who, initial } => {
                let (ch, who, initial) = (*ch, *who, *initial);
                if pkt.dst == here {
                    debug_assert_eq!(here, ch.source, "joins are addressed to the source");
                    self.join_at_source(state, ch, who, ctx);
                } else if self.aggregate
                    && !is_host
                    && who != ch.source
                    && ctx.net().graph().is_host(who)
                    && ctx.net().graph().host_router(who) == here
                {
                    // HBH-AGG: a join from one of our own hosts is
                    // absorbed here, at its first hop.
                    self.join_at_access(state, ch, who, ctx);
                } else {
                    self.join_at_router(state, pkt, ch, who, initial, ctx);
                }
            }
            HbhMsg::Tree { ch, target } => {
                let (ch, target) = (*ch, *target);
                debug_assert_eq!(
                    pkt.dst, target,
                    "tree messages are addressed to their target"
                );
                if pkt.dst == here {
                    if is_host {
                        // Receiver end: consume (liveness indication only).
                    } else {
                        self.tree_self_addressed(state, ch, ctx);
                    }
                } else {
                    self.tree_in_transit(state, pkt, ch, target, ctx);
                }
            }
            HbhMsg::Fusion { .. } => {
                if pkt.dst != here {
                    // Rule (1): not addressed to us ⇒ forward upstream.
                    ctx.forward(pkt);
                } else {
                    let HbhMsg::Fusion { ch, from, nodes } = pkt.payload else {
                        unreachable!("arm matched above")
                    };
                    self.fusion_at_node(state, ch, from, &nodes, ctx);
                }
            }
            HbhMsg::Data { ch } => {
                let ch = *ch;
                if pkt.dst == here {
                    if is_host {
                        if state.member.contains(&ch) {
                            ctx.deliver(&pkt);
                        }
                    } else {
                        self.data_self_addressed(state, &pkt, ch, ctx);
                        if self.aggregate {
                            self.deliver_local(state, &pkt, ch, ctx);
                        }
                    }
                } else {
                    ctx.forward(pkt);
                }
            }
        }
    }

    fn on_timer(&self, state: &mut HbhNodeState, timer: HbhTimer, ctx: &mut HCtx<'_>) {
        match timer {
            HbhTimer::JoinRefresh(ch) => {
                if state.member.contains(&ch) {
                    self.send_join(ch, ctx.node, false, ctx);
                    ctx.set_timer(HbhTimer::JoinRefresh(ch), self.timing.join_period);
                }
            }
            HbhTimer::TreeRefresh(ch) => self.source_tree_tick(state, ch, ctx),
            HbhTimer::AggFlush(ch) => self.agg_flush(state, ch, ctx),
            HbhTimer::Sweep(ch) => {
                let now = ctx.now();
                let mut reaped = 0;
                let mut keep = false;
                if let Some(mct) = state.mct.get(&ch) {
                    if mct.is_dead(now) {
                        state.mct.remove(&ch);
                        reaped += 1;
                    } else {
                        keep = true;
                    }
                }
                if let Some(mft) = state.mft.get_mut(&ch) {
                    reaped += mft.reap(now);
                    if mft.is_empty() {
                        state.mft.remove(&ch);
                        reaped += 1;
                    } else {
                        keep = true;
                    }
                }
                if reaped > 0 {
                    ctx.structural_change();
                }
                if keep {
                    ctx.set_timer(HbhTimer::Sweep(ch), self.timing.tree_period);
                } else {
                    state.sweep_armed.remove(&ch);
                }
            }
        }
    }

    fn on_command(&self, state: &mut HbhNodeState, cmd: Cmd, ctx: &mut HCtx<'_>) {
        match cmd {
            Cmd::StartSource(_) => {
                // HBH sources are armed lazily by the first join.
            }
            Cmd::Join(ch) => {
                if state.member.insert(ch) {
                    // First join: flagged, never intercepted.
                    self.send_join(ch, ctx.node, true, ctx);
                    ctx.set_timer(HbhTimer::JoinRefresh(ch), self.timing.join_period);
                }
            }
            Cmd::Leave(ch) => {
                if state.member.remove(&ch) {
                    ctx.cancel_timer(&HbhTimer::JoinRefresh(ch));
                }
            }
            Cmd::SendData { ch, tag } => {
                assert_eq!(ctx.node, ch.source, "SendData must run at the source");
                self.source_send_data(state, ch, tag, ctx);
            }
        }
    }
}
