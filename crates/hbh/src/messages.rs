//! HBH wire messages and node timers.

use hbh_proto_base::Channel;
use hbh_topo::graph::NodeId;

/// HBH packet payloads (the three control messages of §3.1 plus channel
/// data).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HbhMsg {
    /// `join(S, R)`: unicast toward the source. `who` is the joining
    /// entity — a receiver, or a branching router joining on behalf of its
    /// subtree. `initial` flags a receiver's very first join, which is
    /// never intercepted ("the first join issued by a receiver is never
    /// intercepted, reaching the source" — §3.1).
    Join {
        /// The channel being joined.
        ch: Channel,
        /// The joining entity (receiver or branching router).
        who: NodeId,
        /// Set on a receiver's very first join (never intercepted).
        initial: bool,
    },
    /// `tree(S, R)`: unicast toward `target`, periodically multicast by
    /// the source and fanned out at branching nodes; refreshes the tree's
    /// soft state and drives branching-point discovery.
    Tree {
        /// The channel being refreshed.
        ch: Channel,
        /// The node this tree message is addressed to.
        target: NodeId,
    },
    /// `fusion(S, R₁…Rₙ)` from `from`: sent toward the source; processed
    /// by the first upstream branching node holding any of `nodes`.
    Fusion {
        /// The channel concerned.
        ch: Channel,
        /// The candidate branching node announcing itself.
        from: NodeId,
        /// Every live MFT node of the sender.
        nodes: Vec<NodeId>,
    },
    /// Channel data, addressed to the next branching node (or receiver).
    Data {
        /// The channel the payload belongs to.
        ch: Channel,
    },
}

impl HbhMsg {
    /// The channel this message belongs to.
    pub fn channel(&self) -> Channel {
        match self {
            HbhMsg::Join { ch, .. }
            | HbhMsg::Tree { ch, .. }
            | HbhMsg::Fusion { ch, .. }
            | HbhMsg::Data { ch } => *ch,
        }
    }
}

/// Node-local timers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum HbhTimer {
    /// Receiver agent: periodic `join` refresh.
    JoinRefresh(Channel),
    /// Source agent: periodic `tree` emission + source-table sweep.
    TreeRefresh(Channel),
    /// Router: reap dead MCT/MFT state.
    Sweep(Channel),
    /// Access router (HBH-AGG only): decay the aggregated local-member
    /// table and refresh the channel's upstream join on behalf of every
    /// live local receiver with a single message.
    AggFlush(Channel),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_accessor_covers_variants() {
        let ch = Channel::primary(NodeId(3));
        assert_eq!(HbhMsg::Data { ch }.channel(), ch);
        assert_eq!(
            HbhMsg::Join {
                ch,
                who: NodeId(1),
                initial: true
            }
            .channel(),
            ch
        );
        assert_eq!(
            HbhMsg::Tree {
                ch,
                target: NodeId(1)
            }
            .channel(),
            ch
        );
        assert_eq!(
            HbhMsg::Fusion {
                ch,
                from: NodeId(1),
                nodes: vec![NodeId(2)]
            }
            .channel(),
            ch
        );
    }
}
