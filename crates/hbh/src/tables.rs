//! HBH's per-channel tables.
//!
//! Compared to REUNITE's tables (see `hbh-reunite::tables`):
//!
//! * the MCT holds a **single** entry ("MCT<S> has one single entry" —
//!   §3.1);
//! * the MFT has **no `dst`** — data arriving at a branching node is
//!   addressed to the node itself — and its entries carry the **marked**
//!   flag used by the fusion mechanism.
//!
//! Entry semantics at time `now` (Appendix A, with the tree-eligibility
//! completion marked `*` — see the note on [`HbhMft::tree_targets`]):
//!
//! | phase  | marked | forwards data | receives `tree` emissions |
//! |--------|--------|---------------|---------------------------|
//! | fresh  | no     | ✓             | ✓                         |
//! | fresh  | yes    | ✗             | ✓                         |
//! | stale  | no     | ✓             | ✓ `*` (paper says ✗)      |
//! | stale  | yes    | ✗             | ✗                         |
//! | dead   | —      | ✗             | ✗                         |

//! ### Nested-fusion disambiguation (implementation decision)
//!
//! Appendix A does not say what happens when *two* branching nodes on the
//! same downstream path both send fusions for overlapping target sets and
//! asymmetric routing makes the deeper node's fusion bypass the shallower
//! one: naively the upstream MFT would install **both** as data targets
//! and the shared receivers would get duplicate copies. Because all
//! fusion senders covering a given target sit on that target's single
//! forward path, their coverage sets are totally ordered by inclusion, so
//! the resolution is unambiguous: each MFT entry remembers the target set
//! its sender last claimed (`covers`), a fusion whose set is contained in
//! a live entry's coverage is ignored, and installing a broader fusion
//! marks the senders it subsumes. `DESIGN.md` §5 records this as the one
//! place we had to complete the paper's specification.

use crate::bits::{reach_fixpoint, Mask, Seed};
use crate::coverage::Bloom;
use hbh_proto_base::{EntryPhase, SoftEntry, Timing};
use hbh_sim_core::Time;
use hbh_topo::graph::NodeId;

/// Single-entry Multicast Control Table.
#[derive(Clone, Copy, Debug)]
pub struct HbhMct {
    node: NodeId,
    entry: SoftEntry,
}

impl HbhMct {
    /// A fresh MCT tracking `node`, created at `now`.
    pub fn new(node: NodeId, now: Time, timing: &Timing) -> Self {
        HbhMct {
            node,
            entry: SoftEntry::new(now, timing),
        }
    }

    /// The node whose tree messages flow through here.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Full refresh of the single entry.
    pub fn refresh(&mut self, now: Time, timing: &Timing) {
        self.entry.refresh(now, timing);
    }

    /// Replaces the entry (rule 7: a *stale* MCT is overwritten by the next
    /// tree message instead of promoting the router to a branching node).
    pub fn replace(&mut self, node: NodeId, now: Time, timing: &Timing) {
        self.node = node;
        self.entry = SoftEntry::new(now, timing);
    }

    /// Lifecycle phase at `now`.
    pub fn phase(&self, now: Time) -> EntryPhase {
        self.entry.phase(now)
    }

    /// True while t1 has expired but t2 has not.
    pub fn is_stale(&self, now: Time) -> bool {
        self.entry.is_stale(now)
    }

    /// True once t2 has expired.
    pub fn is_dead(&self, now: Time) -> bool {
        self.entry.is_dead(now)
    }
}

/// One MFT row: the downstream node, its soft entry, and — for fusion
/// senders — the target set claimed by its last accepted fusion.
#[derive(Clone, Debug)]
struct MftEntry {
    node: NodeId,
    entry: SoftEntry,
    /// Targets this node's last fusion claimed (empty for plain
    /// receivers/joiners). See the nested-fusion note in the module docs.
    covers: Vec<NodeId>,
}

/// Multicast Forwarding Table: per-downstream-node soft entries with the
/// marked flag. Insertion-ordered for deterministic fan-out.
#[derive(Clone, Debug, Default)]
pub struct HbhMft {
    entries: Vec<MftEntry>,
    /// May-claim summary: a bloom over every node id appearing in any
    /// entry's `covers` set. A negative answer proves the node is
    /// unclaimed, letting [`HbhMft::served_by_other`] and
    /// [`HbhMft::covered_by_other`] skip both their linear claim scan
    /// and the reachability fixpoint; a positive falls through to the
    /// exact checks (the verified false-positive escape hatch). Bits go
    /// stale when a claim shrinks or an entry dies — a safe superset —
    /// and [`HbhMft::reap`] rebuilds the filter when entries drop.
    claims: Bloom,
}

impl HbhMft {
    /// Live-entry lookup (dead entries are treated as absent everywhere).
    fn get(&self, n: NodeId, now: Time) -> Option<&MftEntry> {
        self.entries
            .iter()
            .find(|e| e.node == n && !e.entry.is_dead(now))
    }

    fn get_mut(&mut self, n: NodeId, now: Time) -> Option<&mut MftEntry> {
        self.entries
            .iter_mut()
            .find(|e| e.node == n && !e.entry.is_dead(now))
    }

    /// Is `n` a (live) member of the table?
    pub fn contains(&self, n: NodeId, now: Time) -> bool {
        self.get(n, now).is_some()
    }

    /// True if `n` is live and marked (tree-only).
    pub fn is_marked(&self, n: NodeId, now: Time) -> bool {
        self.get(n, now).is_some_and(|e| e.entry.marked)
    }

    /// True if `n` is live and stale (t1 expired).
    pub fn is_stale(&self, n: NodeId, now: Time) -> bool {
        self.get(n, now).is_some_and(|e| e.entry.is_stale(now))
    }

    /// Full refresh of `n` (join interception / rule 3 of tree
    /// processing); inserts fresh and unmarked if absent. Returns `true`
    /// if the entry is new.
    pub fn refresh_or_insert(&mut self, n: NodeId, now: Time, timing: &Timing) -> bool {
        if let Some(e) = self.get_mut(n, now) {
            e.entry.refresh(now, timing);
            return false;
        }
        self.purge(n);
        self.entries.push(MftEntry {
            node: n,
            entry: SoftEntry::new(now, timing),
            covers: Vec::new(),
        });
        true
    }

    /// Marks `n` (fusion rule 2). Timers are untouched: a marked entry
    /// survives only as long as something (joins, fusions via transit
    /// trees) keeps refreshing it. Returns `true` if newly marked.
    pub fn mark(&mut self, n: NodeId, now: Time) -> bool {
        match self.get_mut(n, now) {
            Some(e) if !e.entry.marked => {
                e.entry.marked = true;
                true
            }
            _ => false,
        }
    }

    /// Clears `n`'s mark (join-time self-repair; see the engine's
    /// `repair_orphaned_mark`). Returns `true` if it was marked.
    pub fn unmark(&mut self, n: NodeId, now: Time) -> bool {
        match self.get_mut(n, now) {
            Some(e) if e.entry.marked => {
                e.entry.marked = false;
                true
            }
            _ => false,
        }
    }

    /// Per-entry flag: does this entry's subtree currently receive data
    /// through *this* table? Least fixpoint of: every live unmarked entry
    /// is reachable (we fan data out to it directly), and a live *marked*
    /// entry is reachable if an already-reachable entry's coverage claims
    /// it (data flows to the coverer, which forwards it onward). Coverage
    /// chains can nest, so the propagation runs to a fixpoint (see
    /// [`crate::bits::reach_fixpoint`]). Bit `i` of the result corresponds
    /// to `entries[i]`; table width is unbounded — the internet-scale
    /// sweeps route hundreds of receivers through single access routers.
    fn data_reachable(&self, now: Time) -> Mask {
        reach_fixpoint(
            self.entries.len(),
            |i| {
                let e = &self.entries[i];
                if e.entry.is_dead(now) {
                    Seed::Skip
                } else if e.entry.marked {
                    Seed::Pending // reachable only via a coverer
                } else {
                    Seed::Reach
                }
            },
            |j, i| {
                let covers = &self.entries[j].covers;
                !covers.is_empty() && covers.contains(&self.entries[i].node)
            },
        )
    }

    /// Is `n` claimed by the coverage of a live, data-reachable entry
    /// other than itself — i.e. does some branching node that actually
    /// receives data currently serve `n`? A claimant that is itself
    /// marked counts only if its own coverer chain bottoms out at a live
    /// unmarked entry (see [`Self::data_reachable`]); an orphaned marked
    /// claimant receives nothing and therefore serves nobody.
    pub fn served_by_other(&self, n: NodeId, now: Time) -> bool {
        // Bloom fast path: `n` never appeared in any coverage claim ⇒
        // definitely unserved, skip the scan and the fixpoint both.
        if !self.claims.maybe_contains(n) {
            return false;
        }
        // Fast path: no live entry claims `n` at all (the common case at
        // routers with no fusion activity) — skip the fixpoint entirely.
        if !self
            .entries
            .iter()
            .any(|e| !e.entry.is_dead(now) && e.node != n && e.covers.contains(&n))
        {
            return false;
        }
        let reach = self.data_reachable(now);
        self.entries
            .iter()
            .enumerate()
            .any(|(i, e)| reach.test(i) && e.node != n && e.covers.contains(&n))
    }

    /// Is `nodes` contained in the coverage of a live, data-reachable
    /// entry other than `sender`? If so, an incoming fusion from `sender`
    /// is subsumed by an already-installed branching node and must be
    /// ignored (see the nested-fusion note in the module docs). An
    /// orphaned marked coverer receives no data and serves nobody — it
    /// cannot veto a fusion from a node that is asking to serve the
    /// subtree itself.
    pub fn covered_by_other(&self, nodes: &[NodeId], sender: NodeId, now: Time) -> bool {
        // Bloom fast path: if any listed node was never claimed by
        // anyone, no single entry can cover the whole set.
        if nodes.iter().any(|&n| !self.claims.maybe_contains(n)) {
            return false;
        }
        // Fast path: no live entry other than `sender` even claims the
        // whole set — skip the fixpoint.
        if !self.entries.iter().any(|e| {
            !e.entry.is_dead(now)
                && e.node != sender
                && !e.covers.is_empty()
                && nodes.iter().all(|n| e.covers.contains(n))
        }) {
            return false;
        }
        let reach = self.data_reachable(now);
        self.entries.iter().enumerate().any(|(i, e)| {
            reach.test(i)
                && e.node != sender
                && !e.covers.is_empty()
                && nodes.iter().all(|n| e.covers.contains(n))
        })
    }

    /// Installs the fusion sender `Bp` claiming `covers`: stale from birth
    /// (fusion rule 3) — used for data, never for tree emission — or, if
    /// present, refreshes its t2 while keeping t1 expired (rule 4) and
    /// updates the claim. Existing fusion senders whose claims are
    /// contained in `covers` are subsumed: marked, so they stop receiving
    /// data (their subtrees are now served through `Bp`). Returns `true`
    /// on insert or newly subsumed entries (structural change).
    pub fn install_fusion_sender(
        &mut self,
        bp: NodeId,
        covers: &[NodeId],
        now: Time,
        timing: &Timing,
    ) -> bool {
        let mut structural = false;
        for &n in covers {
            self.claims.insert(n);
        }
        // Subsume narrower senders (they sit deeper on the same paths).
        for e in &mut self.entries {
            if e.node != bp
                && !e.entry.is_dead(now)
                && !e.covers.is_empty()
                && !e.entry.marked
                && e.covers.iter().all(|n| covers.contains(n))
            {
                e.entry.marked = true;
                structural = true;
            }
        }
        if let Some(e) = self.get_mut(bp, now) {
            e.entry.refresh_t2_keep_stale(now, timing);
            // In-place copy: refreshes repeat the same claim far more often
            // than they change it, so reuse the existing allocation.
            e.covers.clear();
            e.covers.extend_from_slice(covers);
            return structural;
        }
        self.purge(bp);
        let mut entry = SoftEntry::new(now, timing);
        entry.force_stale(now);
        self.entries.push(MftEntry {
            node: bp,
            entry,
            covers: covers.to_vec(),
        });
        true
    }

    /// Data fan-out set: live, unmarked entries.
    pub fn data_targets(&self, now: Time) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .iter()
            .filter(move |e| !e.entry.is_dead(now) && !e.entry.marked)
            .map(|e| e.node)
    }

    /// Tree fan-out set: fresh entries (marked or not), plus *unmarked*
    /// stale entries.
    ///
    /// The paper says a stale entry "produces no downstream tree message";
    /// applied to fusion-installed branching children (which rule (4)
    /// keeps permanently stale) that starves them of self-addressed trees,
    /// so they never fan out as emitters, never hear fusions from deeper
    /// branching nodes, and keep duplicating data toward targets those
    /// deeper nodes already serve — visible as duplicate deliveries the
    /// first time three branching nodes stack on one path. Emitting trees
    /// to live unmarked entries (the data fan-out set) closes the hole
    /// while keeping the rule's purpose: *marked* entries still stop
    /// emitting the moment they go stale, so decayed branches wind down.
    /// `DESIGN.md` §5 records this as a specification completion.
    pub fn tree_targets(&self, now: Time) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .iter()
            .filter(move |e| e.entry.is_fresh(now) || (!e.entry.is_dead(now) && !e.entry.marked))
            .map(|e| e.node)
    }

    /// Live members of `nodes` (fusion relevance test).
    pub fn intersect<'a>(
        &'a self,
        nodes: &'a [NodeId],
        now: Time,
    ) -> impl Iterator<Item = NodeId> + 'a {
        nodes
            .iter()
            .copied()
            .filter(move |&n| self.contains(n, now))
    }

    /// All live members (fusion payloads: "all the nodes that B maintains
    /// in its MFT").
    pub fn live(&self, now: Time) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .iter()
            .filter(move |e| !e.entry.is_dead(now))
            .map(|e| e.node)
    }

    /// Removes dead entries; returns how many.
    pub fn reap(&mut self, now: Time) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !e.entry.is_dead(now));
        let dropped = before - self.entries.len();
        if dropped > 0 {
            self.claims.clear();
            for e in &self.entries {
                for &n in &e.covers {
                    self.claims.insert(n);
                }
            }
        }
        dropped
    }

    /// No live entries left?
    pub fn is_effectively_empty(&self, now: Time) -> bool {
        self.entries.iter().all(|e| e.entry.is_dead(now))
    }

    /// Raw entry count (dead-but-unreaped included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops a dead duplicate before re-insertion.
    fn purge(&mut self, n: NodeId) {
        self.entries.retain(|e| e.node != n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tm() -> Timing {
        Timing::default()
    }

    #[test]
    fn mct_single_entry_lifecycle() {
        let t = tm();
        let mut m = HbhMct::new(NodeId(1), Time(0), &t);
        assert_eq!(m.node(), NodeId(1));
        assert!(!m.is_stale(Time(0)));
        assert!(m.is_stale(Time(t.t1)));
        m.refresh(Time(t.t1), &t);
        assert!(!m.is_stale(Time(t.t1)));
        assert!(m.is_dead(Time(t.t1 + t.t2)));
    }

    #[test]
    fn mct_replace_swaps_node_and_restarts() {
        let t = tm();
        let mut m = HbhMct::new(NodeId(1), Time(0), &t);
        m.replace(NodeId(2), Time(t.t1), &t);
        assert_eq!(m.node(), NodeId(2));
        assert!(!m.is_stale(Time(t.t1)));
    }

    #[test]
    fn mft_insert_and_membership() {
        let t = tm();
        let mut m = HbhMft::default();
        assert!(m.refresh_or_insert(NodeId(1), Time(0), &t));
        assert!(!m.refresh_or_insert(NodeId(1), Time(5), &t));
        assert!(m.contains(NodeId(1), Time(5)));
        assert!(!m.contains(NodeId(2), Time(5)));
    }

    #[test]
    fn dead_entries_count_as_absent() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(1), Time(0), &t);
        assert!(!m.contains(NodeId(1), Time(t.t2)));
        // Re-inserting a dead node works and reports "new".
        assert!(m.refresh_or_insert(NodeId(1), Time(t.t2), &t));
        assert_eq!(m.len(), 1, "dead duplicate purged");
    }

    #[test]
    fn marked_entries_tree_only() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(1), Time(0), &t);
        assert!(m.mark(NodeId(1), Time(0)));
        assert!(!m.mark(NodeId(1), Time(0)), "already marked");
        assert_eq!(m.data_targets(Time(1)).count(), 0);
        assert_eq!(m.tree_targets(Time(1)).collect::<Vec<_>>(), vec![NodeId(1)]);
    }

    #[test]
    fn fusion_senders_get_data_and_self_addressed_trees() {
        // Stale-but-unmarked: data-eligible, and (spec completion, see the
        // tree_targets docs) still receives self-addressed tree messages so
        // it can fan out as an emitter.
        let t = tm();
        let mut m = HbhMft::default();
        m.install_fusion_sender(NodeId(9), &[], Time(0), &t);
        assert_eq!(m.data_targets(Time(1)).collect::<Vec<_>>(), vec![NodeId(9)]);
        assert_eq!(m.tree_targets(Time(1)).collect::<Vec<_>>(), vec![NodeId(9)]);
    }

    #[test]
    fn marked_stale_entries_emit_nothing() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(1), Time(0), &t);
        m.mark(NodeId(1), Time(0));
        let stale_at = Time(t.t1 + 1);
        assert!(m.contains(NodeId(1), stale_at));
        assert_eq!(m.data_targets(stale_at).count(), 0);
        assert_eq!(
            m.tree_targets(stale_at).count(),
            0,
            "marked+stale: fully silent"
        );
    }

    #[test]
    fn fusion_sender_survives_via_t2_refreshes_but_stays_stale() {
        let t = tm();
        let mut m = HbhMft::default();
        assert!(m.install_fusion_sender(NodeId(9), &[], Time(0), &t));
        // Refresh before death: still alive, still stale.
        assert!(!m.install_fusion_sender(NodeId(9), &[], Time(t.t2 - 10), &t));
        let later = Time(t.t2 + 10);
        assert!(m.contains(NodeId(9), later));
        assert!(m.is_stale(NodeId(9), later));
    }

    #[test]
    fn subsumption_marks_narrower_fusion_senders() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(7), Time(0), &t); // the shared target
        m.install_fusion_sender(NodeId(2), &[NodeId(7)], Time(0), &t);
        // A broader claim covering {7, 8} subsumes sender 2.
        m.install_fusion_sender(NodeId(3), &[NodeId(7), NodeId(8)], Time(1), &t);
        assert!(m.is_marked(NodeId(2), Time(2)), "narrow sender subsumed");
        assert!(!m.is_marked(NodeId(3), Time(2)));
        assert_eq!(
            m.data_targets(Time(2)).collect::<Vec<_>>(),
            vec![NodeId(7), NodeId(3)]
        );
    }

    #[test]
    fn covered_by_other_detects_nested_claims() {
        let t = tm();
        let mut m = HbhMft::default();
        m.install_fusion_sender(NodeId(3), &[NodeId(7), NodeId(8)], Time(0), &t);
        assert!(m.covered_by_other(&[NodeId(7)], NodeId(9), Time(1)));
        assert!(
            !m.covered_by_other(&[NodeId(7)], NodeId(3), Time(1)),
            "sender excluded"
        );
        assert!(!m.covered_by_other(&[NodeId(7), NodeId(9)], NodeId(5), Time(1)));
    }

    #[test]
    fn join_refresh_unstales_a_fusion_sender() {
        // A downstream branching node that *does* receive its receivers'
        // joins sends join(S, B) upstream; the interception refresh turns
        // its stale entry fresh, making it tree-eligible (Figure 5's H3
        // entry at H1).
        let t = tm();
        let mut m = HbhMft::default();
        m.install_fusion_sender(NodeId(9), &[], Time(0), &t);
        m.refresh_or_insert(NodeId(9), Time(10), &t);
        assert_eq!(
            m.tree_targets(Time(11)).collect::<Vec<_>>(),
            vec![NodeId(9)]
        );
    }

    #[test]
    fn served_by_other_requires_data_reachable_claimant() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(7), Time(0), &t);
        assert!(!m.served_by_other(NodeId(7), Time(1)), "no claimant at all");
        m.install_fusion_sender(NodeId(2), &[NodeId(7)], Time(0), &t);
        assert!(m.served_by_other(NodeId(7), Time(1)));
        // An orphaned marked claimant receives no data, so it serves nobody.
        m.mark(NodeId(2), Time(1));
        assert!(!m.served_by_other(NodeId(7), Time(1)));
        // A dead claimant serves nobody either.
        let mut m2 = HbhMft::default();
        m2.refresh_or_insert(NodeId(7), Time(0), &t);
        m2.install_fusion_sender(NodeId(2), &[NodeId(7)], Time(0), &t);
        assert!(!m2.served_by_other(NodeId(7), Time(t.t2 + 1)));
    }

    #[test]
    fn served_by_other_follows_coverage_chains() {
        // 3 (unmarked) covers 2; 2 (marked) covers 7. Data reaches 2
        // through 3, so 2 still serves 7 — 7 must stay marked.
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(7), Time(0), &t);
        m.install_fusion_sender(NodeId(2), &[NodeId(7)], Time(0), &t);
        m.install_fusion_sender(NodeId(3), &[NodeId(2)], Time(0), &t);
        m.mark(NodeId(2), Time(0));
        assert!(
            m.served_by_other(NodeId(7), Time(1)),
            "chain 3→2→7 delivers"
        );
        // Break the chain: 3 dies, nothing reaches 2, so nothing serves 7.
        let late = Time(t.t2 + 1);
        m.install_fusion_sender(NodeId(2), &[NodeId(7)], late, &t);
        m.refresh_or_insert(NodeId(7), late, &t);
        m.mark(NodeId(2), late);
        assert!(
            !m.served_by_other(NodeId(7), late),
            "orphaned chain serves nobody"
        );
    }

    #[test]
    fn covered_by_other_ignores_orphaned_marked_coverers() {
        let t = tm();
        let mut m = HbhMft::default();
        m.install_fusion_sender(NodeId(3), &[NodeId(7), NodeId(8)], Time(0), &t);
        m.mark(NodeId(3), Time(0));
        // 3 is marked with no coverer of its own: it receives no data and
        // cannot veto a fusion from a node offering to serve {7}.
        assert!(!m.covered_by_other(&[NodeId(7)], NodeId(9), Time(1)));
        // Give 3 a live coverer and its claim counts again.
        m.install_fusion_sender(NodeId(4), &[NodeId(3)], Time(1), &t);
        assert!(m.covered_by_other(&[NodeId(7)], NodeId(9), Time(2)));
    }

    #[test]
    fn unmark_restores_data_eligibility() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(1), Time(0), &t);
        m.mark(NodeId(1), Time(0));
        assert_eq!(m.data_targets(Time(1)).count(), 0);
        assert!(m.unmark(NodeId(1), Time(1)));
        assert!(!m.unmark(NodeId(1), Time(1)), "already unmarked");
        assert_eq!(m.data_targets(Time(1)).collect::<Vec<_>>(), vec![NodeId(1)]);
    }

    #[test]
    fn refresh_keeps_mark() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(1), Time(0), &t);
        m.mark(NodeId(1), Time(0));
        m.refresh_or_insert(NodeId(1), Time(50), &t);
        assert!(
            m.is_marked(NodeId(1), Time(50)),
            "joins refresh but do not unmark"
        );
    }

    #[test]
    fn marked_entry_dies_without_refresh() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(1), Time(0), &t);
        m.mark(NodeId(1), Time(0));
        assert!(!m.contains(NodeId(1), Time(t.t2)));
        assert_eq!(m.reap(Time(t.t2)), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn intersect_ignores_dead_and_missing() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(1), Time(0), &t);
        m.refresh_or_insert(NodeId(2), Time(400), &t);
        let now = Time(t.t2); // entry 1 dead
        let hits: Vec<_> = m
            .intersect(&[NodeId(1), NodeId(2), NodeId(3)], now)
            .collect();
        assert_eq!(hits, vec![NodeId(2)]);
    }

    #[test]
    fn fan_out_order_is_insertion_order() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(5), Time(0), &t);
        m.refresh_or_insert(NodeId(2), Time(0), &t);
        m.refresh_or_insert(NodeId(8), Time(0), &t);
        let order: Vec<_> = m.data_targets(Time(1)).collect();
        assert_eq!(order, vec![NodeId(5), NodeId(2), NodeId(8)]);
    }

    #[test]
    fn claims_bloom_screens_and_rebuilds() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(7), Time(0), &t);
        // Plain receivers put nothing in the claims bloom, so the probe
        // short-circuits before any scan or fixpoint.
        assert!(!m.served_by_other(NodeId(7), Time(1)));
        m.install_fusion_sender(NodeId(2), &[NodeId(7)], Time(0), &t);
        assert!(
            m.served_by_other(NodeId(7), Time(1)),
            "bloom positive falls through to the exact check"
        );
        // Reaping the dead claimant rebuilds the filter; the claim is
        // gone and the fast path answers negative again.
        assert_eq!(m.reap(Time(t.t2)), 2);
        m.refresh_or_insert(NodeId(7), Time(t.t2), &t);
        assert!(!m.served_by_other(NodeId(7), Time(t.t2 + 1)));
    }

    #[test]
    fn effectively_empty_tracks_liveness() {
        let t = tm();
        let mut m = HbhMft::default();
        m.refresh_or_insert(NodeId(1), Time(0), &t);
        assert!(!m.is_effectively_empty(Time(10)));
        assert!(m.is_effectively_empty(Time(t.t2)));
    }
}
