//! End-to-end over real loopback UDP: the unchanged HBH and REUNITE
//! engines build their trees and deliver data between actual sockets.

use hbh_live::{Cluster, LiveTiming};
use hbh_proto::{Hbh, HbhHard};
use hbh_proto_base::{Channel, Cmd, Script};
use hbh_reunite::Reunite;
use hbh_sim_core::Time;
use hbh_topo::graph::NodeId;
use hbh_topo::scenarios;
use std::collections::HashSet;
use std::time::Duration;

fn converge_ms() -> u64 {
    let t = LiveTiming::fast().0;
    t.convergence_horizon(200)
}

#[test]
fn hbh_over_udp_delivers_to_all_receivers() {
    let graph = scenarios::fig2();
    let n = |l: &str| graph.node_by_label(l).unwrap();
    let (s, r1, r2, r3) = (n("S"), n("r1"), n("r2"), n("r3"));
    let cluster = Cluster::launch(graph, || Hbh::new(LiveTiming::fast().0)).unwrap();
    let ch = Channel::primary(s);
    cluster.command(s, Cmd::StartSource(ch));
    for (i, r) in [r1, r2, r3].into_iter().enumerate() {
        std::thread::sleep(Duration::from_millis(60 * i as u64));
        cluster.command(r, Cmd::Join(ch));
    }
    std::thread::sleep(Duration::from_millis(converge_ms()));

    cluster.command(s, Cmd::SendData { ch, tag: 7 });
    let got = cluster.wait_deliveries(3, Duration::from_secs(3));
    let nodes: HashSet<NodeId> = got.iter().map(|d| d.node).collect();
    assert_eq!(nodes, HashSet::from([r1, r2, r3]), "deliveries: {got:?}");
    assert!(got.iter().all(|d| d.tag == 7));
    cluster.shutdown();
}

#[test]
fn reunite_over_udp_delivers_to_all_receivers() {
    let graph = scenarios::fig3();
    let n = |l: &str| graph.node_by_label(l).unwrap();
    let (s, r1, r2) = (n("S"), n("r1"), n("r2"));
    let cluster = Cluster::launch(graph, || Reunite::new(LiveTiming::fast().0)).unwrap();
    let ch = Channel::primary(s);
    cluster.command(s, Cmd::StartSource(ch));
    cluster.command(r1, Cmd::Join(ch));
    std::thread::sleep(Duration::from_millis(120));
    cluster.command(r2, Cmd::Join(ch));
    std::thread::sleep(Duration::from_millis(converge_ms()));

    cluster.command(s, Cmd::SendData { ch, tag: 9 });
    let got = cluster.wait_deliveries(2, Duration::from_secs(3));
    let nodes: HashSet<NodeId> = got.iter().map(|d| d.node).collect();
    assert_eq!(nodes, HashSet::from([r1, r2]), "deliveries: {got:?}");
    cluster.shutdown();
}

#[test]
fn leave_stops_delivery_over_udp() {
    let graph = scenarios::fig2();
    let n = |l: &str| graph.node_by_label(l).unwrap();
    let (s, r1, r3) = (n("S"), n("r1"), n("r3"));
    let timing = LiveTiming::fast().0;
    let cluster = Cluster::launch(graph, || Hbh::new(timing)).unwrap();
    let ch = Channel::primary(s);
    cluster.command(s, Cmd::StartSource(ch));
    cluster.command(r1, Cmd::Join(ch));
    cluster.command(r3, Cmd::Join(ch));
    std::thread::sleep(Duration::from_millis(converge_ms()));
    cluster.command(r3, Cmd::Leave(ch));
    // Let r3's soft state decay fully.
    std::thread::sleep(Duration::from_millis(
        3 * timing.t2 + 5 * timing.tree_period,
    ));

    cluster.command(s, Cmd::SendData { ch, tag: 5 });
    let got = cluster.wait_deliveries(2, Duration::from_millis(800));
    let nodes: Vec<NodeId> = got.iter().map(|d| d.node).collect();
    assert_eq!(nodes, vec![r1], "only the remaining member: {got:?}");
    cluster.shutdown();
}

#[test]
fn scripted_router_crash_heals_over_udp() {
    // The fault-injection acceptance test on real sockets: one Script
    // (the same type the simulation kernel consumes) crashes a transit
    // router mid-session. While it is down, only the receiver routed
    // through it goes dark; after the restart, delivery resumes with no
    // explicit re-join — the periodic join/tree refreshes rebuild the
    // crashed router's blank forwarding state on their own.
    let graph = scenarios::fig1();
    let n = |l: &str| graph.node_by_label(l).unwrap();
    let (s, h2, r1, r4) = (n("S"), n("H2"), n("r1"), n("r4"));
    let timing = LiveTiming::fast().0;
    let cluster = Cluster::launch(graph, || Hbh::new(timing)).unwrap();
    let ch = Channel::primary(s);

    // r1 sits behind H2 (S→H1→H2→H4→H6→r1); r4 is on the H3 branch and
    // never touches H2 — the innocent receiver.
    let c = converge_ms();
    let script = Script::new()
        .start_source(Time(0), ch)
        .join(Time(40), r1, ch)
        .join(Time(80), r4, ch)
        .send(Time(c), ch, 1)
        .fail_node(Time(c + 150), h2)
        .send(Time(c + 300), ch, 2)
        .restore_node(Time(c + 450), h2)
        .send(Time(2 * c + 450), ch, 3);
    cluster.run_script(&script);

    let got = cluster.wait_deliveries(5, Duration::from_secs(3));
    let nodes_for = |tag: u64| -> HashSet<NodeId> {
        got.iter()
            .filter(|d| d.tag == tag)
            .map(|d| d.node)
            .collect()
    };
    assert_eq!(nodes_for(1), HashSet::from([r1, r4]), "pre-crash: {got:?}");
    assert_eq!(
        nodes_for(2),
        HashSet::from([r4]),
        "crash must only unplug the receiver behind it: {got:?}"
    );
    assert_eq!(
        nodes_for(3),
        HashSet::from([r1, r4]),
        "post-repair: {got:?}"
    );
    cluster.shutdown();
}

#[test]
fn hard_engine_scripted_crash_heals_over_udp() {
    // The same scripted crash as above, run against the hard-state engine:
    // its repair is event-driven (probe give-up, not refresh decay), so
    // recovery after the restart comes from the rejoin retry ladder and
    // the reliable control plane, not from periodic tree refreshes.
    let graph = scenarios::fig1();
    let n = |l: &str| graph.node_by_label(l).unwrap();
    let (s, h2, r1, r4) = (n("S"), n("H2"), n("r1"), n("r4"));
    let timing = LiveTiming::fast().0;
    let cluster = Cluster::launch(graph, || HbhHard::new(timing)).unwrap();
    let ch = Channel::primary(s);

    let c = converge_ms();
    let script = Script::new()
        .start_source(Time(0), ch)
        .join(Time(40), r1, ch)
        .join(Time(80), r4, ch)
        .send(Time(c), ch, 1)
        .fail_node(Time(c + 150), h2)
        .send(Time(c + 300), ch, 2)
        .restore_node(Time(c + 450), h2)
        .send(Time(2 * c + 450), ch, 3);
    cluster.run_script(&script);

    let got = cluster.wait_deliveries(5, Duration::from_secs(3));
    let nodes_for = |tag: u64| -> HashSet<NodeId> {
        got.iter()
            .filter(|d| d.tag == tag)
            .map(|d| d.node)
            .collect()
    };
    assert_eq!(nodes_for(1), HashSet::from([r1, r4]), "pre-crash: {got:?}");
    assert_eq!(
        nodes_for(2),
        HashSet::from([r4]),
        "fig1 is a tree, so r1 has no detour while H2 is down: {got:?}"
    );
    assert_eq!(
        nodes_for(3),
        HashSet::from([r1, r4]),
        "post-restart the rejoin ladder must rebuild H2's blank state: {got:?}"
    );
    cluster.shutdown();
}
