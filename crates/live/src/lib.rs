#![warn(missing_docs)]

//! # hbh-live — the protocol engines on real sockets
//!
//! Everything in `hbh-proto` / `hbh-reunite` is written against the
//! [`hbh_sim_core::KernelOps`] capability trait, not against the simulator.
//! This crate provides the other implementation of that trait: one OS
//! thread per node, a real `UdpSocket` per node, messages encoded with
//! `hbh-wire`, and wall-clock timers (1 simulated time unit = 1 ms). The
//! *identical protocol code* that reproduces the paper's figures in the
//! simulator runs here over loopback UDP — recursive unicast on an actual
//! unicast network.
//!
//! ```no_run
//! use hbh_live::{Cluster, LiveTiming};
//! use hbh_proto::Hbh;
//! use hbh_proto_base::{Channel, Cmd};
//! use hbh_topo::scenarios;
//!
//! let graph = scenarios::fig2();
//! let source = graph.node_by_label("S").unwrap();
//! let r1 = graph.node_by_label("r1").unwrap();
//! let cluster = Cluster::launch(graph, || Hbh::new(LiveTiming::fast().0)).unwrap();
//! let ch = Channel::primary(source);
//! cluster.command(source, Cmd::StartSource(ch));
//! cluster.command(r1, Cmd::Join(ch));
//! std::thread::sleep(std::time::Duration::from_millis(1500));
//! cluster.command(source, Cmd::SendData { ch, tag: 1 });
//! let d = cluster.wait_delivery(std::time::Duration::from_secs(2)).unwrap();
//! assert_eq!(d.node, r1);
//! cluster.shutdown();
//! ```
//!
//! ## Scope
//!
//! This is a demonstration runtime, not a production daemon: every node is
//! given the same frozen [`hbh_sim_core::Network`] as its routing view
//! (the moral equivalent of a converged link-state domain), there is no
//! config reload, and all nodes live in one process. What it proves is the
//! part that matters for the paper's deployment story — the protocol state
//! machines need nothing from the simulator.

pub mod cluster;
pub mod codec;
pub mod node;

pub use cluster::Cluster;
pub use codec::LiveMsg;
pub use node::LiveTiming;
