//! Cluster harness: binds one UDP socket per graph node, spawns one thread
//! per node running the protocol, and exposes command/delivery channels.

use crate::codec::LiveMsg;
use crate::node::{run_node, LiveCmd, NodeSetup};
use hbh_proto_base::Cmd;
use hbh_sim_core::{Delivery, Network, Protocol};
use hbh_topo::graph::{Graph, NodeId};
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running cluster of live nodes over loopback UDP.
pub struct Cluster {
    commands: HashMap<NodeId, Sender<LiveCmd>>,
    deliveries: Receiver<Delivery>,
    handles: Vec<JoinHandle<()>>,
    /// Node → bound address, for inspection.
    pub addresses: HashMap<NodeId, SocketAddr>,
}

impl Cluster {
    /// Binds every node to an ephemeral loopback port and spawns its
    /// thread. `make_proto` is called once per node (protocols are cheap
    /// config structs).
    pub fn launch<P, F>(graph: Graph, make_proto: F) -> std::io::Result<Cluster>
    where
        P: Protocol<Command = Cmd> + Send + 'static,
        P::Msg: LiveMsg,
        P::NodeState: Send,
        F: Fn() -> P,
    {
        let net = Network::new(graph);
        // Bind all sockets first so the full address book exists before
        // any node starts talking.
        let mut sockets = Vec::new();
        let mut addr_book = HashMap::new();
        for node in net.graph().nodes() {
            let socket = UdpSocket::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
            addr_book.insert(node, socket.local_addr()?);
            sockets.push((node, socket));
        }
        let (dl_tx, dl_rx) = channel();
        let mut commands = HashMap::new();
        let mut handles = Vec::new();
        for (node, socket) in sockets {
            let (cmd_tx, cmd_rx) = channel();
            commands.insert(node, cmd_tx);
            let setup = NodeSetup {
                node,
                net: net.clone(),
                addr_book: addr_book.clone(),
                socket,
                deliveries: dl_tx.clone(),
                commands: cmd_rx,
                seed: 0x11FE ^ u64::from(node.0),
            };
            let proto = make_proto();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hbh-live-{node}"))
                    .spawn(move || run_node(proto, setup))?,
            );
        }
        Ok(Cluster {
            commands,
            deliveries: dl_rx,
            handles,
            addresses: addr_book,
        })
    }

    /// Sends a protocol command to a node's thread.
    pub fn command(&self, node: NodeId, cmd: Cmd) {
        if let Some(tx) = self.commands.get(&node) {
            let _ = tx.send(LiveCmd::Proto(cmd));
        }
    }

    /// Blocks for the next application-level delivery.
    pub fn wait_delivery(&self, timeout: Duration) -> Option<Delivery> {
        self.deliveries.recv_timeout(timeout).ok()
    }

    /// Collects deliveries until `count` arrive or `timeout` elapses.
    pub fn wait_deliveries(&self, count: usize, timeout: Duration) -> Vec<Delivery> {
        let deadline = Instant::now() + timeout;
        let mut out = Vec::new();
        while out.len() < count {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.deliveries.recv_timeout(left) {
                Ok(d) => out.push(d),
                Err(_) => break,
            }
        }
        out
    }

    /// Stops every node thread and joins them.
    pub fn shutdown(self) {
        for tx in self.commands.values() {
            let _ = tx.send(LiveCmd::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}
