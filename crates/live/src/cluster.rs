//! Cluster harness: binds one UDP socket per graph node, spawns one thread
//! per node running the protocol, and exposes command/delivery channels.

use crate::codec::LiveMsg;
use crate::node::{run_node, LiveCmd, NodeSetup};
use hbh_proto_base::{Cmd, Script, ScriptAction};
use hbh_sim_core::{Delivery, FaultEvent, Network, Protocol};
use hbh_topo::graph::{Graph, NodeId};
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running cluster of live nodes over loopback UDP.
pub struct Cluster {
    commands: HashMap<NodeId, Sender<LiveCmd>>,
    deliveries: Receiver<Delivery>,
    handles: Vec<JoinHandle<()>>,
    /// Node → bound address, for inspection.
    pub addresses: HashMap<NodeId, SocketAddr>,
}

impl Cluster {
    /// Binds every node to an ephemeral loopback port and spawns its
    /// thread. `make_proto` is called once per node (protocols are cheap
    /// config structs).
    pub fn launch<P, F>(graph: Graph, make_proto: F) -> std::io::Result<Cluster>
    where
        P: Protocol<Command = Cmd> + Send + 'static,
        P::Msg: LiveMsg,
        P::NodeState: Send,
        F: Fn() -> P,
    {
        let net = Network::new(graph);
        // Bind all sockets first so the full address book exists before
        // any node starts talking.
        let mut sockets = Vec::new();
        let mut addr_book = HashMap::new();
        for node in net.graph().nodes() {
            let socket = UdpSocket::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
            addr_book.insert(node, socket.local_addr()?);
            sockets.push((node, socket));
        }
        let (dl_tx, dl_rx) = channel();
        let mut commands = HashMap::new();
        let mut handles = Vec::new();
        for (node, socket) in sockets {
            let (cmd_tx, cmd_rx) = channel();
            commands.insert(node, cmd_tx);
            let setup = NodeSetup {
                node,
                net: net.clone(),
                addr_book: addr_book.clone(),
                socket,
                deliveries: dl_tx.clone(),
                commands: cmd_rx,
                seed: 0x11FE ^ u64::from(node.0),
            };
            let proto = make_proto();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hbh-live-{node}"))
                    .spawn(move || run_node(proto, setup))?,
            );
        }
        Ok(Cluster {
            commands,
            deliveries: dl_rx,
            handles,
            addresses: addr_book,
        })
    }

    /// Sends a protocol command to a node's thread.
    pub fn command(&self, node: NodeId, cmd: Cmd) {
        if let Some(tx) = self.commands.get(&node) {
            let _ = tx.send(LiveCmd::Proto(cmd));
        }
    }

    /// Crashes a node: its protocol state and timers are wiped and it
    /// ignores all traffic until [`Cluster::restart`]. The socket stays
    /// bound, so in-flight datagrams vanish like on a rebooting router.
    pub fn crash(&self, node: NodeId) {
        if let Some(tx) = self.commands.get(&node) {
            let _ = tx.send(LiveCmd::Crash);
        }
    }

    /// Restarts a crashed node with factory-fresh state.
    pub fn restart(&self, node: NodeId) {
        if let Some(tx) = self.commands.get(&node) {
            let _ = tx.send(LiveCmd::Restart);
        }
    }

    /// Replays a [`Script`] against the cluster in wall-clock time: one
    /// script time unit = one millisecond (matching [`crate::LiveTiming`]).
    /// Entries are applied in time order; commands go to their node's
    /// thread, node faults become [`Cluster::crash`]/[`Cluster::restart`].
    /// Blocks until the last entry has been issued.
    ///
    /// The same `Script` drives [`hbh_sim_core::Kernel`] via
    /// [`Script::schedule`], which is exactly the point: one scenario
    /// description, two backends.
    ///
    /// # Panics
    ///
    /// On link faults — the live backend has no per-link switch (loopback
    /// UDP has no links to cut); crash the adjacent node instead.
    pub fn run_script(&self, script: &Script) {
        let start = Instant::now();
        for (at, action) in script.sorted_entries() {
            let due = start + Duration::from_millis(at.0);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            match action {
                ScriptAction::Command(node, cmd) => self.command(node, cmd),
                ScriptAction::Fault(FaultEvent::NodeDown(n)) => self.crash(n),
                ScriptAction::Fault(FaultEvent::NodeUp(n)) => self.restart(n),
                ScriptAction::Fault(ev) => {
                    panic!("live cluster cannot apply link fault {ev:?}")
                }
            }
        }
    }

    /// Blocks for the next application-level delivery.
    pub fn wait_delivery(&self, timeout: Duration) -> Option<Delivery> {
        self.deliveries.recv_timeout(timeout).ok()
    }

    /// Collects deliveries until `count` arrive or `timeout` elapses.
    pub fn wait_deliveries(&self, count: usize, timeout: Duration) -> Vec<Delivery> {
        let deadline = Instant::now() + timeout;
        let mut out = Vec::new();
        while out.len() < count {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.deliveries.recv_timeout(left) {
                Ok(d) => out.push(d),
                Err(_) => break,
            }
        }
        out
    }

    /// Stops every node thread and joins them.
    pub fn shutdown(self) {
        for tx in self.commands.values() {
            let _ = tx.send(LiveCmd::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}
