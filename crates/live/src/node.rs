//! One live node: a UDP socket, the protocol state machine, and a
//! [`KernelOps`] implementation backed by wall-clock time.

use crate::codec::{decode_packet, encode_packet, LiveMsg};
use hbh_proto_base::{Cmd, Timing};
use hbh_sim_core::{Ctx, Delivery, KernelOps, Network, Packet, Protocol, Time};
use hbh_topo::graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt::Debug;
use std::hash::Hash;
use std::net::{SocketAddr, UdpSocket};
use std::sync::mpsc::{Receiver, Sender};
use std::time::{Duration, Instant};

/// Millisecond-scale timing for live runs (1 time unit = 1 ms, so the
/// simulator defaults of 100-unit periods would mean 100 ms refreshes —
/// fine, but tests prefer faster convergence).
pub struct LiveTiming(pub Timing);

impl LiveTiming {
    /// Snappy timers for tests/demos: 40 ms periods, t1 = 110 ms,
    /// t2 = 220 ms — converges in roughly a second.
    pub fn fast() -> Self {
        LiveTiming(Timing {
            join_period: 40,
            tree_period: 40,
            t1: 110,
            t2: 220,
        })
    }
}

/// Control-plane commands into a node thread.
pub enum LiveCmd {
    /// A protocol command (join/leave/send) for this node.
    Proto(Cmd),
    /// Crash the node: wipe protocol state and timers, then ignore all
    /// traffic and protocol commands until [`LiveCmd::Restart`]. The
    /// thread and socket stay up so the port is preserved — peers keep a
    /// valid address and their datagrams vanish, exactly like a rebooting
    /// router.
    Crash,
    /// Restart a crashed node with factory-fresh state.
    Restart,
    /// Stop the node thread.
    Shutdown,
}

/// The [`KernelOps`] backend for one live node.
struct LiveOps<M, T> {
    node: NodeId,
    net: Network,
    addr_book: HashMap<NodeId, SocketAddr>,
    socket: UdpSocket,
    epoch: Instant,
    rng: StdRng,
    deliveries: Sender<Delivery>,
    // Keyed timers with the same supersede/cancel semantics as the kernel.
    timer_ids: HashMap<T, u64>,
    timer_heap: BinaryHeap<Reverse<(Time, u64)>>,
    timer_payloads: HashMap<u64, T>,
    next_id: u64,
    _msg: std::marker::PhantomData<M>,
}

impl<M: LiveMsg + Clone + Debug, T: Clone + Eq + Hash + Debug> LiveOps<M, T> {
    fn wall_now(&self) -> Time {
        Time(self.epoch.elapsed().as_millis() as u64)
    }

    fn transmit(&mut self, next: NodeId, pkt: &Packet<M>) {
        if let Some(addr) = self.addr_book.get(&next) {
            // UDP send errors on loopback are not actionable; soft-state
            // refresh covers occasional losses exactly like on a real net.
            let _ = self.socket.send_to(&encode_packet(pkt), addr);
        }
    }

    /// Pops every due timer (validated against the supersede map).
    fn due_timers(&mut self) -> Vec<T> {
        let now = self.wall_now();
        let mut due = Vec::new();
        while let Some(&Reverse((at, id))) = self.timer_heap.peek() {
            if at > now {
                break;
            }
            self.timer_heap.pop();
            let Some(t) = self.timer_payloads.remove(&id) else {
                continue;
            };
            if self.timer_ids.get(&t) == Some(&id) {
                self.timer_ids.remove(&t);
                due.push(t);
            }
        }
        due
    }

    fn next_deadline(&self) -> Option<Time> {
        self.timer_heap.peek().map(|&Reverse((at, _))| at)
    }
}

impl<M, T> KernelOps<M, T> for LiveOps<M, T>
where
    M: LiveMsg + Clone + Debug,
    T: Clone + Eq + Hash + Debug,
{
    fn now(&self) -> Time {
        self.wall_now()
    }

    fn net(&self) -> &Network {
        &self.net
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn send(&mut self, from: NodeId, pkt: Packet<M>) {
        debug_assert_eq!(from, self.node);
        if pkt.dst == from {
            // Loopback: hand the datagram to our own socket.
            self.transmit(from, &pkt);
            return;
        }
        if let Some(next) = self.net.next_hop(from, pkt.dst) {
            self.transmit(next, &pkt);
        }
    }

    fn send_link(&mut self, from: NodeId, via: NodeId, pkt: Packet<M>) {
        debug_assert_eq!(from, self.node);
        self.transmit(via, &pkt);
    }

    fn forward(&mut self, from: NodeId, mut pkt: Packet<M>) {
        if pkt.ttl == 0 {
            return;
        }
        pkt.ttl -= 1;
        if let Some(next) = self.net.next_hop(from, pkt.dst) {
            self.transmit(next, &pkt);
        }
    }

    fn deliver(&mut self, node: NodeId, tag: u64, injected_at: Time) {
        let _ = self.deliveries.send(Delivery {
            node,
            at: self.wall_now(),
            tag,
            injected_at,
        });
    }

    fn set_timer(&mut self, node: NodeId, timer: T, delay: u64) {
        debug_assert_eq!(node, self.node);
        let id = self.next_id;
        self.next_id += 1;
        let at = self.wall_now() + delay;
        self.timer_ids.insert(timer.clone(), id);
        self.timer_payloads.insert(id, timer);
        self.timer_heap.push(Reverse((at, id)));
    }

    fn cancel_timer(&mut self, node: NodeId, timer: &T) {
        debug_assert_eq!(node, self.node);
        self.timer_ids.remove(timer);
    }

    fn structural_change(&mut self) {}

    fn trace_note(&mut self, _node: NodeId, _note: String) {}
}

/// Configuration handed to a node thread by the cluster.
pub(crate) struct NodeSetup {
    pub node: NodeId,
    pub net: Network,
    pub addr_book: HashMap<NodeId, SocketAddr>,
    pub socket: UdpSocket,
    pub deliveries: Sender<Delivery>,
    pub commands: Receiver<LiveCmd>,
    pub seed: u64,
}

/// Runs one node until shutdown: receive datagrams, fire timers, apply
/// commands — dispatching into the *unchanged* protocol implementation.
pub(crate) fn run_node<P>(proto: P, setup: NodeSetup)
where
    P: Protocol<Command = Cmd>,
    P::Msg: LiveMsg,
{
    let NodeSetup {
        node,
        net,
        addr_book,
        socket,
        deliveries,
        commands,
        seed,
    } = setup;
    let mut state = P::NodeState::default();
    let mut ops: LiveOps<P::Msg, P::Timer> = LiveOps {
        node,
        net,
        addr_book,
        socket,
        epoch: Instant::now(),
        rng: StdRng::seed_from_u64(seed),
        deliveries,
        timer_ids: HashMap::new(),
        timer_heap: BinaryHeap::new(),
        timer_payloads: HashMap::new(),
        next_id: 0,
        _msg: std::marker::PhantomData,
    };
    let mut buf = [0u8; 64 * 1024];
    let mut crashed = false;
    loop {
        // 1. Commands from the harness.
        loop {
            match commands.try_recv() {
                Ok(LiveCmd::Proto(cmd)) if !crashed => {
                    let mut ctx = Ctx::from_ops(node, &mut ops);
                    proto.on_command(&mut state, cmd, &mut ctx);
                }
                Ok(LiveCmd::Proto(_)) => {} // a dead node takes no commands
                Ok(LiveCmd::Crash) => {
                    // Mirror the simulator's NodeDown: protocol state and
                    // pending timers are volatile, so recovery must come
                    // entirely from the neighbours' soft-state refreshes.
                    state = P::NodeState::default();
                    ops.timer_ids.clear();
                    ops.timer_heap.clear();
                    ops.timer_payloads.clear();
                    crashed = true;
                }
                Ok(LiveCmd::Restart) => crashed = false,
                Ok(LiveCmd::Shutdown) => return,
                Err(_) => break,
            }
        }
        // 2. Fire due timers.
        for timer in ops.due_timers() {
            let mut ctx = Ctx::from_ops(node, &mut ops);
            proto.on_timer(&mut state, timer, &mut ctx);
        }
        // 3. Wait for the next datagram, bounded by the next deadline.
        let now = ops.wall_now();
        let until_deadline = ops
            .next_deadline()
            .map(|d| d.since(now))
            .unwrap_or(20)
            .clamp(1, 20);
        let _ = ops
            .socket
            .set_read_timeout(Some(Duration::from_millis(until_deadline)));
        match ops.socket.recv_from(&mut buf) {
            Ok((n, _)) => {
                if crashed {
                    continue; // drain and discard: a dead node hears nothing
                }
                let Some(pkt) = decode_packet::<P::Msg>(&buf[..n]) else {
                    continue;
                };
                // Same dispatch rules as the simulation kernel.
                let g = ops.net.graph();
                if g.is_host(node) && pkt.dst != node {
                    continue; // misrouted to a host: drop
                }
                if ops.net.runs_protocol(node) {
                    let mut ctx = Ctx::from_ops(node, &mut ops);
                    proto.on_packet(&mut state, pkt, &mut ctx);
                } else if pkt.dst != node {
                    // Unicast-only router: plain forwarding.
                    let mut fwd = pkt;
                    if fwd.ttl > 0 {
                        fwd.ttl -= 1;
                        if let Some(next) = ops.net.next_hop(node, fwd.dst) {
                            ops.transmit(next, &fwd);
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return, // socket died: stop the node
        }
    }
}
