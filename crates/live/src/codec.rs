//! Datagram envelope: the kernel's [`Packet`] metadata followed by the
//! `hbh-wire` encoding of the protocol message.
//!
//! ```text
//! src u32 | dst u32 | ttl u8 | class u8 | tag u64 | injected_at u64 | wire msg …
//! ```

use hbh_sim_core::{Packet, PacketClass, Time};
use hbh_topo::graph::NodeId;
use hbh_wire::{decode as wire_decode, encode as wire_encode, WireMsg};

/// Envelope header length in bytes.
pub const ENVELOPE_LEN: usize = 4 + 4 + 1 + 1 + 8 + 8;

/// Protocol messages that have a wire form (HBH and REUNITE here; PIM's
/// data plane needs interface-directed forwarding that plain UDP unicast
/// between processes doesn't model, which is exactly the paper's point).
pub trait LiveMsg: Sized {
    /// This message in its wire representation.
    fn to_wire(&self) -> WireMsg;
    /// Parses back from the wire representation (None: wrong family).
    fn from_wire(w: WireMsg) -> Option<Self>;
}

impl LiveMsg for hbh_proto::HbhMsg {
    fn to_wire(&self) -> WireMsg {
        WireMsg::Hbh(self.clone())
    }
    fn from_wire(w: WireMsg) -> Option<Self> {
        match w {
            WireMsg::Hbh(m) => Some(m),
            _ => None,
        }
    }
}

impl LiveMsg for hbh_proto::HardMsg {
    fn to_wire(&self) -> WireMsg {
        WireMsg::HbhHard(self.clone())
    }
    fn from_wire(w: WireMsg) -> Option<Self> {
        match w {
            WireMsg::HbhHard(m) => Some(m),
            _ => None,
        }
    }
}

impl LiveMsg for hbh_reunite::ReuniteMsg {
    fn to_wire(&self) -> WireMsg {
        WireMsg::Reunite(*self)
    }
    fn from_wire(w: WireMsg) -> Option<Self> {
        match w {
            WireMsg::Reunite(m) => Some(m),
            _ => None,
        }
    }
}

/// Serializes a packet into one UDP datagram.
pub fn encode_packet<M: LiveMsg>(pkt: &Packet<M>) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_LEN + 32);
    out.extend_from_slice(&pkt.src.0.to_be_bytes());
    out.extend_from_slice(&pkt.dst.0.to_be_bytes());
    out.push(pkt.ttl);
    out.push(match pkt.class {
        PacketClass::Control => 0,
        PacketClass::Data => 1,
    });
    out.extend_from_slice(&pkt.tag.to_be_bytes());
    out.extend_from_slice(&pkt.injected_at.0.to_be_bytes());
    out.extend_from_slice(&wire_encode(&pkt.payload.to_wire()));
    out
}

/// Parses one UDP datagram back into a packet. `None` on any malformation
/// (a live node drops garbage, it doesn't crash).
pub fn decode_packet<M: LiveMsg>(buf: &[u8]) -> Option<Packet<M>> {
    if buf.len() < ENVELOPE_LEN {
        return None;
    }
    let u32_at = |i: usize| u32::from_be_bytes(buf[i..i + 4].try_into().unwrap());
    let u64_at = |i: usize| u64::from_be_bytes(buf[i..i + 8].try_into().unwrap());
    let src = NodeId(u32_at(0));
    let dst = NodeId(u32_at(4));
    let ttl = buf[8];
    let class = match buf[9] {
        0 => PacketClass::Control,
        1 => PacketClass::Data,
        _ => return None,
    };
    let tag = u64_at(10);
    let injected_at = Time(u64_at(18));
    let payload = M::from_wire(wire_decode(&buf[ENVELOPE_LEN..]).ok()?)?;
    Some(Packet {
        src,
        dst,
        ttl,
        class,
        tag,
        injected_at,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbh_proto::HbhMsg;
    use hbh_proto_base::Channel;

    fn sample() -> Packet<HbhMsg> {
        let ch = Channel::primary(NodeId(3));
        let mut p = Packet::data(NodeId(3), NodeId(9), 42, Time(17), HbhMsg::Data { ch });
        p.ttl = 7;
        p
    }

    #[test]
    fn packet_roundtrip() {
        let p = sample();
        let q: Packet<HbhMsg> = decode_packet(&encode_packet(&p)).unwrap();
        assert_eq!(
            (q.src, q.dst, q.ttl, q.class, q.tag, q.injected_at),
            (p.src, p.dst, p.ttl, p.class, p.tag, p.injected_at)
        );
        assert_eq!(q.payload, p.payload);
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        assert!(decode_packet::<HbhMsg>(&[]).is_none());
        assert!(decode_packet::<HbhMsg>(&[0u8; 10]).is_none());
        let mut bytes = encode_packet(&sample());
        bytes[9] = 9; // bad class
        assert!(decode_packet::<HbhMsg>(&bytes).is_none());
        let mut bytes = encode_packet(&sample());
        bytes.truncate(ENVELOPE_LEN + 3);
        assert!(decode_packet::<HbhMsg>(&bytes).is_none());
    }

    #[test]
    fn wrong_protocol_family_is_rejected() {
        let p = sample();
        let bytes = encode_packet(&p);
        assert!(decode_packet::<hbh_reunite::ReuniteMsg>(&bytes).is_none());
    }
}
