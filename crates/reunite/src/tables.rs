//! REUNITE's two tables: the control-plane MCT and the forwarding-plane
//! MFT.
//!
//! Entries are insertion-ordered (`Vec`-backed): REUNITE semantics depend
//! on *who joined first* — the source's `dst` is the first receiver that
//! joined the group, and a promoted branching node takes the first MCT
//! receiver as its `dst`.

use hbh_proto_base::{SoftEntry, Timing};
use hbh_sim_core::Time;
use hbh_topo::graph::NodeId;

/// Multicast Control Table for one channel at a non-branching router: the
/// receivers whose `tree` messages flow through this node. Never used for
/// data forwarding.
#[derive(Clone, Debug, Default)]
pub struct Mct {
    entries: Vec<(NodeId, SoftEntry)>,
}

impl Mct {
    /// Refreshes (or installs) `r`. Returns `true` on install.
    pub fn refresh_or_insert(&mut self, r: NodeId, now: Time, timing: &Timing) -> bool {
        match self.entries.iter_mut().find(|(n, _)| *n == r) {
            Some((_, e)) => {
                e.refresh(now, timing);
                false
            }
            None => {
                self.entries.push((r, SoftEntry::new(now, timing)));
                true
            }
        }
    }

    /// Removes `r` (a marked tree arrived). Returns `true` if present.
    pub fn remove(&mut self, r: NodeId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| *n != r);
        self.entries.len() != before
    }

    /// The oldest live entry — the `dst` a promotion would adopt.
    pub fn first_live(&self, now: Time) -> Option<NodeId> {
        self.entries
            .iter()
            .find(|(_, e)| !e.is_dead(now))
            .map(|(n, _)| *n)
    }

    /// All live receivers, oldest first.
    pub fn live(&self, now: Time) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .iter()
            .filter(move |(_, e)| !e.is_dead(now))
            .map(|(n, _)| *n)
    }

    /// True if `r` has an entry (liveness not checked).
    pub fn contains(&self, r: NodeId) -> bool {
        self.entries.iter().any(|(n, _)| *n == r)
    }

    /// Drops dead entries; returns how many.
    pub fn reap(&mut self, now: Time) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(_, e)| !e.is_dead(now));
        before - self.entries.len()
    }

    /// True if no entries remain.
    /// True if no entries remain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Raw entry count (including not-yet-reaped dead entries).
    /// Raw entry count (dead-but-unreaped included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Multicast Forwarding Table for one channel at a branching router (or at
/// the source): the receivers that joined *here*, with the distinguished
/// `dst` the incoming data is addressed to.
#[derive(Clone, Debug)]
pub struct Mft {
    dst: NodeId,
    entries: Vec<(NodeId, SoftEntry)>,
    /// Set when a marked `tree(S, dst)` arrives: the table stops
    /// intercepting joins (downstream receivers must re-join upstream) but
    /// keeps forwarding data until its entries decay.
    stale_flag: bool,
}

impl Mft {
    /// Creates the table with `dst` as first member.
    pub fn new(dst: NodeId, now: Time, timing: &Timing) -> Self {
        Mft {
            dst,
            entries: vec![(dst, SoftEntry::new(now, timing))],
            stale_flag: false,
        }
    }

    /// The receiver incoming data is addressed to.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Refreshes (or installs) receiver `r`. Returns `true` on install.
    pub fn refresh_or_insert(&mut self, r: NodeId, now: Time, timing: &Timing) -> bool {
        match self.entries.iter_mut().find(|(n, _)| *n == r) {
            Some((_, e)) => {
                e.refresh(now, timing);
                false
            }
            None => {
                self.entries.push((r, SoftEntry::new(now, timing)));
                true
            }
        }
    }

    /// Refreshes `r` only if present. Returns `true` if it was.
    pub fn refresh_existing(&mut self, r: NodeId, now: Time, timing: &Timing) -> bool {
        match self.entries.iter_mut().find(|(n, _)| *n == r) {
            Some((_, e)) => {
                e.refresh(now, timing);
                true
            }
            None => false,
        }
    }

    /// True if `r` has an entry (liveness not checked).
    pub fn contains(&self, r: NodeId) -> bool {
        self.entries.iter().any(|(n, _)| *n == r)
    }

    /// Whether the table still intercepts joins: not flagged stale and its
    /// `dst` entry still fresh (a stale `dst` is the source-side trigger of
    /// the whole reconfiguration).
    pub fn intercepts(&self, now: Time) -> bool {
        !self.stale_flag && self.dst_entry().is_some_and(|e| e.is_fresh(now))
    }

    /// Marks the table stale (marked tree received for `dst`). Returns
    /// `true` if the flag was newly set.
    pub fn set_stale(&mut self) -> bool {
        !std::mem::replace(&mut self.stale_flag, true)
    }

    /// True if a marked tree flagged this table stale.
    pub fn is_stale_flagged(&self) -> bool {
        self.stale_flag
    }

    /// Clears the stale flag (upstream recovered and is sending unmarked
    /// trees again). Returns `true` if the flag had been set.
    pub fn clear_stale(&mut self) -> bool {
        std::mem::replace(&mut self.stale_flag, false)
    }

    fn dst_entry(&self) -> Option<&SoftEntry> {
        self.entries
            .iter()
            .find(|(n, _)| *n == self.dst)
            .map(|(_, e)| e)
    }

    /// Whether the `dst` entry is stale (the source starts sending marked
    /// trees when this turns true).
    pub fn dst_is_stale(&self, now: Time) -> bool {
        self.dst_entry().map_or(true, |e| e.is_stale(now))
    }

    /// Whether data can still be produced toward `dst` (entry alive).
    pub fn dst_is_alive(&self, now: Time) -> bool {
        self.dst_entry().is_some_and(|e| !e.is_dead(now))
    }

    /// Staleness of an individual entry (drives per-branch marked trees).
    pub fn entry_is_stale(&self, r: NodeId, now: Time) -> bool {
        self.entries
            .iter()
            .find(|(n, _)| *n == r)
            .is_some_and(|(_, e)| e.is_stale(now))
    }

    /// Live receivers, oldest first (includes `dst` if alive).
    pub fn live(&self, now: Time) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .iter()
            .filter(move |(_, e)| !e.is_dead(now))
            .map(|(n, _)| *n)
    }

    /// Live receivers other than `dst` — the copy fan-out set.
    pub fn copy_targets(&self, now: Time) -> impl Iterator<Item = NodeId> + '_ {
        let dst = self.dst;
        self.live(now).filter(move |&n| n != dst)
    }

    /// Drops dead entries; returns how many. If the `dst` entry died, the
    /// caller decides what happens next ([`Mft::elect_new_dst`] at the
    /// source; decay at branching nodes).
    pub fn reap(&mut self, now: Time) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(_, e)| !e.is_dead(now));
        before - self.entries.len()
    }

    /// True if `dst` is no longer in the table (died and was reaped).
    pub fn dst_gone(&self) -> bool {
        !self.contains(self.dst)
    }

    /// Source-side re-election after the `dst` receiver departed: the
    /// oldest remaining live entry becomes the new `dst` ("r2 now receives
    /// data through the shortest-path from S" — Figure 2(d)). Clears the
    /// stale flag. Returns the new dst if one exists.
    pub fn elect_new_dst(&mut self, now: Time) -> Option<NodeId> {
        debug_assert!(self.dst_gone());
        let new = self
            .entries
            .iter()
            .find(|(_, e)| !e.is_dead(now))
            .map(|(n, _)| *n)?;
        self.dst = new;
        self.stale_flag = false;
        Some(new)
    }

    /// True if no entries remain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Raw entry count (dead-but-unreaped included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tm() -> Timing {
        Timing::default()
    }

    #[test]
    fn mct_insert_refresh_remove() {
        let mut m = Mct::default();
        assert!(m.refresh_or_insert(NodeId(1), Time(0), &tm()));
        assert!(!m.refresh_or_insert(NodeId(1), Time(10), &tm()));
        assert!(m.contains(NodeId(1)));
        assert!(m.remove(NodeId(1)));
        assert!(!m.remove(NodeId(1)));
        assert!(m.is_empty());
    }

    #[test]
    fn mct_first_live_is_insertion_ordered() {
        let mut m = Mct::default();
        m.refresh_or_insert(NodeId(5), Time(0), &tm());
        m.refresh_or_insert(NodeId(2), Time(1), &tm());
        assert_eq!(m.first_live(Time(10)), Some(NodeId(5)));
    }

    #[test]
    fn mct_first_live_skips_dead() {
        let mut m = Mct::default();
        let t = tm();
        m.refresh_or_insert(NodeId(5), Time(0), &t);
        m.refresh_or_insert(NodeId(2), Time(400), &t);
        assert_eq!(m.first_live(Time(t.t2)), Some(NodeId(2)));
    }

    #[test]
    fn mct_reap() {
        let mut m = Mct::default();
        let t = tm();
        m.refresh_or_insert(NodeId(1), Time(0), &t);
        m.refresh_or_insert(NodeId(2), Time(300), &t);
        assert_eq!(m.reap(Time(t.t2)), 1);
        assert!(m.contains(NodeId(2)));
    }

    #[test]
    fn mft_starts_with_dst_as_member() {
        let m = Mft::new(NodeId(7), Time(0), &tm());
        assert_eq!(m.dst(), NodeId(7));
        assert!(m.contains(NodeId(7)));
        assert!(m.intercepts(Time(0)));
        assert_eq!(m.copy_targets(Time(0)).count(), 0);
    }

    #[test]
    fn mft_copy_targets_exclude_dst() {
        let mut m = Mft::new(NodeId(7), Time(0), &tm());
        m.refresh_or_insert(NodeId(8), Time(0), &tm());
        m.refresh_or_insert(NodeId(9), Time(0), &tm());
        let targets: Vec<_> = m.copy_targets(Time(1)).collect();
        assert_eq!(targets, vec![NodeId(8), NodeId(9)]);
    }

    #[test]
    fn mft_stops_intercepting_when_flagged() {
        let mut m = Mft::new(NodeId(7), Time(0), &tm());
        assert!(m.intercepts(Time(1)));
        assert!(m.set_stale());
        assert!(!m.set_stale(), "second set reports no change");
        assert!(!m.intercepts(Time(1)));
    }

    #[test]
    fn mft_stops_intercepting_when_dst_goes_stale() {
        let t = tm();
        let m = Mft::new(NodeId(7), Time(0), &t);
        assert!(m.intercepts(Time(t.t1 - 1)));
        assert!(!m.intercepts(Time(t.t1)));
        assert!(m.dst_is_stale(Time(t.t1)));
        assert!(
            m.dst_is_alive(Time(t.t1)),
            "stale but still forwarding data"
        );
    }

    #[test]
    fn mft_dst_reelection_after_departure() {
        let t = tm();
        let mut m = Mft::new(NodeId(7), Time(0), &t);
        m.refresh_or_insert(NodeId(8), Time(500), &t);
        // dst (7) dies at t2 = 520; 8 is alive.
        assert_eq!(m.reap(Time(520)), 1);
        assert!(m.dst_gone());
        assert_eq!(m.elect_new_dst(Time(520)), Some(NodeId(8)));
        assert_eq!(m.dst(), NodeId(8));
        assert!(!m.is_stale_flagged(), "re-election clears staleness");
    }

    #[test]
    fn mft_reelection_with_no_survivors() {
        let t = tm();
        let mut m = Mft::new(NodeId(7), Time(0), &t);
        m.reap(Time(t.t2));
        assert!(m.is_empty());
        assert_eq!(m.elect_new_dst(Time(t.t2)), None);
    }

    #[test]
    fn mft_entry_staleness_per_receiver() {
        let t = tm();
        let mut m = Mft::new(NodeId(7), Time(0), &t);
        m.refresh_or_insert(NodeId(8), Time(200), &t);
        assert!(m.entry_is_stale(NodeId(7), Time(t.t1)));
        assert!(!m.entry_is_stale(NodeId(8), Time(t.t1)));
    }

    #[test]
    fn mft_refresh_existing_only() {
        let mut m = Mft::new(NodeId(7), Time(0), &tm());
        assert!(m.refresh_existing(NodeId(7), Time(5), &tm()));
        assert!(!m.refresh_existing(NodeId(9), Time(5), &tm()));
        assert!(!m.contains(NodeId(9)));
    }
}
