//! The REUNITE protocol engine.
//!
//! ## Processing rules (per §2 of the HBH paper and [21])
//!
//! **join(S, r)** — travels unicast toward `S`:
//! * at the source: install `r` (first receiver becomes `MFT.dst`) or
//!   refresh it;
//! * at a branching router with a *fresh* table: if `r == dst`, refresh and
//!   **forward** (the dst receiver's joins maintain the entire upstream
//!   chain: `S`'s own dst entry is refreshed by them); if `r` is another
//!   member, refresh and discard; otherwise install `r` and discard;
//! * at a branching router with a *stale* table: forward untouched (this
//!   is what lets downstream receivers re-join upstream during
//!   reconfiguration — Figure 2(c));
//! * at a router with MCT state listing some other receiver: **promote**
//!   to branching (`dst` = oldest MCT receiver, add `r`, drop the MCT);
//! * otherwise forward untouched.
//!
//! **tree(S, r)** — travels unicast toward `r`:
//! * at a branching router whose `dst == r`: unmarked → refresh the dst
//!   entry, clear a stale flag (recovery), forward, and emit `tree(S, rᵢ)`
//!   for every other live member (marked iff that member's entry is
//!   stale); marked → set the stale flag and forward the marked tree;
//! * at a branching router with `dst ≠ r`: forward only (transit);
//! * at a non-branching router: unmarked → install/refresh `r` in the MCT;
//!   marked → delete `r`'s MCT entry; either way forward;
//! * at the receiver: consume.
//!
//! **data** — addressed to some branching node's `dst`:
//! * a branching router seeing data addressed to its own `dst` forwards
//!   the original and unicasts one modified copy per other live member
//!   (this is where REUNITE's `n` copies vs HBH's `n+1` trade-off lives);
//! * everyone else just forwards; the receiver delivers.
//!
//! The source's periodic tree timer doubles as its sweep: it reaps dead
//! entries, re-elects `dst` after the dst receiver departs (Figure 2(d)),
//! and emits one tree per live member.

use crate::messages::{ReuniteMsg, ReuniteTimer};
use crate::tables::{Mct, Mft};
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Ctx, Packet, Protocol};
use hbh_sim_core::{FastMap, FastSet};
use hbh_topo::graph::NodeId;

/// The REUNITE protocol (configuration; per-node state in
/// [`ReuniteNodeState`]).
#[derive(Clone, Debug)]
pub struct Reunite {
    /// Refresh periods and soft-state timers.
    pub timing: Timing,
}

impl Reunite {
    /// A REUNITE instance with the given (validated) timing.
    pub fn new(timing: Timing) -> Self {
        timing.validate();
        Reunite { timing }
    }
}

/// Per-node REUNITE state.
#[derive(Default)]
pub struct ReuniteNodeState {
    mct: FastMap<Channel, Mct>,
    mft: FastMap<Channel, Mft>,
    /// Receiver-agent subscriptions.
    member: FastSet<Channel>,
    /// Channels whose source tree timer is armed (source host only).
    tree_armed: FastSet<Channel>,
    /// Channels with an armed router sweep.
    sweep_armed: FastSet<Channel>,
}

impl ReuniteNodeState {
    /// This node's MCT for `ch`, if any.
    pub fn mct(&self, ch: Channel) -> Option<&Mct> {
        self.mct.get(&ch)
    }

    /// This node's MFT for `ch`, if any.
    pub fn mft(&self, ch: Channel) -> Option<&Mft> {
        self.mft.get(&ch)
    }

    /// Is this node's receiver agent subscribed to `ch`?
    pub fn is_member(&self, ch: Channel) -> bool {
        self.member.contains(&ch)
    }

    /// True if this node is currently a branching node for `ch`.
    pub fn is_branching(&self, ch: Channel) -> bool {
        self.mft.contains_key(&ch)
    }
}

impl hbh_proto_base::StateInventory for ReuniteNodeState {
    fn forwarding_entries(&self, ch: Channel) -> usize {
        self.mft.get(&ch).map_or(0, |m| m.len())
    }

    fn control_entries(&self, ch: Channel) -> usize {
        self.mct.get(&ch).map_or(0, |m| m.len())
    }
}

type RCtx<'a> = Ctx<'a, ReuniteMsg, ReuniteTimer>;

impl Reunite {
    fn arm_sweep(&self, state: &mut ReuniteNodeState, ch: Channel, ctx: &mut RCtx<'_>) {
        if state.sweep_armed.insert(ch) {
            ctx.set_timer(ReuniteTimer::Sweep(ch), self.timing.tree_period);
        }
    }

    // --- join ---------------------------------------------------------

    fn join_at_source(
        &self,
        state: &mut ReuniteNodeState,
        ch: Channel,
        r: NodeId,
        ctx: &mut RCtx<'_>,
    ) {
        let now = ctx.now();
        match state.mft.get_mut(&ch) {
            Some(mft) => {
                if mft.refresh_or_insert(r, now, &self.timing) {
                    ctx.structural_change();
                }
            }
            None => {
                state.mft.insert(ch, Mft::new(r, now, &self.timing));
                ctx.structural_change();
                if state.tree_armed.insert(ch) {
                    ctx.set_timer(ReuniteTimer::TreeRefresh(ch), self.timing.tree_period);
                }
            }
        }
    }

    fn join_at_router(
        &self,
        state: &mut ReuniteNodeState,
        pkt: Packet<ReuniteMsg>,
        ch: Channel,
        r: NodeId,
        fresh: bool,
        ctx: &mut RCtx<'_>,
    ) {
        let now = ctx.now();
        if let Some(mft) = state.mft.get_mut(&ch) {
            if !mft.intercepts(now) {
                ctx.forward(pkt); // stale table: let joins escape upstream
                return;
            }
            if r == mft.dst() {
                // The dst receiver's join refreshes this hop and continues
                // upstream to keep the whole dst chain alive.
                mft.refresh_existing(r, now, &self.timing);
                ctx.forward(pkt);
            } else if mft.refresh_existing(r, now, &self.timing) {
                // Member joined here earlier: refresh, consume.
            } else if fresh {
                // A new receiver joins at the first branching node it
                // meets ("r6 joined at R7").
                mft.refresh_or_insert(r, now, &self.timing);
                ctx.structural_change();
            } else {
                // Refresh join for an entry that lives elsewhere (usually
                // at the source): pass through untouched — capturing it
                // would starve the upstream entry it refreshes.
                ctx.forward(pkt);
            }
            return;
        }
        // Promotion check (fresh joins only): MCT listing a *different*
        // receiver?
        let promoted = match (&state.mct.get(&ch), fresh) {
            (Some(mct), true) => mct.live(now).find(|&x| x != r),
            _ => None,
        };
        if let Some(dst) = promoted {
            state.mct.remove(&ch);
            let mut mft = Mft::new(dst, now, &self.timing);
            mft.refresh_or_insert(r, now, &self.timing);
            state.mft.insert(ch, mft);
            ctx.structural_change();
            self.arm_sweep(state, ch, ctx);
            return; // join consumed: r joined here
        }
        ctx.forward(pkt);
    }

    // --- tree ---------------------------------------------------------

    fn tree_at_router(
        &self,
        state: &mut ReuniteNodeState,
        pkt: Packet<ReuniteMsg>,
        ch: Channel,
        r: NodeId,
        marked: bool,
        ctx: &mut RCtx<'_>,
    ) {
        let now = ctx.now();
        if let Some(mft) = state.mft.get_mut(&ch) {
            if mft.dst() == r {
                if marked {
                    if mft.set_stale() {
                        ctx.structural_change();
                    }
                    ctx.forward(pkt);
                } else {
                    mft.refresh_existing(r, now, &self.timing);
                    if mft.clear_stale() {
                        // Upstream recovered: resume normal operation.
                        ctx.structural_change();
                    }
                    ctx.forward(pkt);
                    for target in mft.copy_targets(now) {
                        let entry_stale = mft.entry_is_stale(target, now);
                        let tree = Packet::control(
                            ctx.node,
                            target,
                            ReuniteMsg::Tree {
                                ch,
                                receiver: target,
                                marked: entry_stale,
                            },
                        );
                        ctx.send(tree);
                    }
                }
            } else {
                ctx.forward(pkt); // transit tree for someone else's branch
            }
            return;
        }
        // Non-branching router: maintain the MCT.
        let mct = state.mct.entry(ch).or_default();
        if marked {
            if mct.remove(r) {
                ctx.structural_change();
            }
            if mct.is_empty() {
                state.mct.remove(&ch);
            }
        } else {
            if mct.refresh_or_insert(r, now, &self.timing) {
                ctx.structural_change();
            }
            self.arm_sweep(state, ch, ctx);
        }
        ctx.forward(pkt);
    }

    // --- data ---------------------------------------------------------

    fn data_at_router(
        &self,
        state: &mut ReuniteNodeState,
        pkt: Packet<ReuniteMsg>,
        ch: Channel,
        ctx: &mut RCtx<'_>,
    ) {
        let now = ctx.now();
        if let Some(mft) = state.mft.get(&ch) {
            if mft.dst() == pkt.dst {
                for r in mft.copy_targets(now) {
                    ctx.send(pkt.copy_to(r));
                }
            }
        }
        ctx.forward(pkt);
    }

    // --- source -------------------------------------------------------

    fn source_tree_tick(&self, state: &mut ReuniteNodeState, ch: Channel, ctx: &mut RCtx<'_>) {
        let now = ctx.now();
        let Some(mft) = state.mft.get_mut(&ch) else {
            state.tree_armed.remove(&ch);
            return;
        };
        if mft.reap(now) > 0 {
            ctx.structural_change();
        }
        if mft.dst_gone() && mft.elect_new_dst(now).is_some() {
            ctx.structural_change();
        }
        if mft.is_empty() {
            state.mft.remove(&ch);
            state.tree_armed.remove(&ch);
            ctx.structural_change();
            return;
        }
        for target in mft.live(now) {
            let entry_stale = mft.entry_is_stale(target, now);
            let tree = Packet::control(
                ctx.node,
                target,
                ReuniteMsg::Tree {
                    ch,
                    receiver: target,
                    marked: entry_stale,
                },
            );
            ctx.send(tree);
        }
        ctx.set_timer(ReuniteTimer::TreeRefresh(ch), self.timing.tree_period);
    }

    fn source_send_data(
        &self,
        state: &mut ReuniteNodeState,
        ch: Channel,
        tag: u64,
        ctx: &mut RCtx<'_>,
    ) {
        let now = ctx.now();
        let Some(mft) = state.mft.get_mut(&ch) else {
            return; // no receivers
        };
        // Keep the table current so data is never addressed to a corpse.
        mft.reap(now);
        if mft.dst_gone() {
            mft.elect_new_dst(now);
        }
        if mft.is_empty() {
            state.mft.remove(&ch);
            return;
        }
        let dst = mft.dst();
        ctx.send(Packet::data(
            ctx.node,
            dst,
            tag,
            now,
            ReuniteMsg::Data { ch },
        ));
        for r in mft.copy_targets(now) {
            ctx.send(Packet::data(ctx.node, r, tag, now, ReuniteMsg::Data { ch }));
        }
    }

    fn send_receiver_join(&self, ch: Channel, fresh: bool, ctx: &mut RCtx<'_>) {
        if ch.source == ctx.node {
            return;
        }
        let pkt = Packet::control(
            ctx.node,
            ch.source,
            ReuniteMsg::Join {
                ch,
                receiver: ctx.node,
                fresh,
            },
        );
        ctx.send(pkt);
    }
}

impl Protocol for Reunite {
    type Msg = ReuniteMsg;
    type Timer = ReuniteTimer;
    type Command = Cmd;
    type NodeState = ReuniteNodeState;

    fn on_packet(&self, state: &mut ReuniteNodeState, pkt: Packet<ReuniteMsg>, ctx: &mut RCtx<'_>) {
        let here = ctx.node;
        let is_host = ctx.net().graph().is_host(here);
        match pkt.payload {
            ReuniteMsg::Join {
                ch,
                receiver,
                fresh,
            } => {
                if pkt.dst == here {
                    // Reached the source.
                    self.join_at_source(state, ch, receiver, ctx);
                } else if is_host {
                    // Kernel guards against this; keep the invariant loud.
                    unreachable!("transit join at host {here}");
                } else {
                    self.join_at_router(state, pkt, ch, receiver, fresh, ctx);
                }
            }
            ReuniteMsg::Tree {
                ch,
                receiver,
                marked,
            } => {
                if pkt.dst == here {
                    // Receiver end of a tree message: consume.
                    let _ = (ch, receiver, marked);
                } else {
                    self.tree_at_router(state, pkt, ch, receiver, marked, ctx);
                }
            }
            ReuniteMsg::Data { ch } => {
                if pkt.dst == here {
                    if state.member.contains(&ch) {
                        ctx.deliver(&pkt);
                    }
                } else {
                    self.data_at_router(state, pkt, ch, ctx);
                }
            }
        }
    }

    fn on_timer(&self, state: &mut ReuniteNodeState, timer: ReuniteTimer, ctx: &mut RCtx<'_>) {
        match timer {
            ReuniteTimer::JoinRefresh(ch) => {
                if state.member.contains(&ch) {
                    self.send_receiver_join(ch, false, ctx);
                    ctx.set_timer(ReuniteTimer::JoinRefresh(ch), self.timing.join_period);
                }
            }
            ReuniteTimer::TreeRefresh(ch) => self.source_tree_tick(state, ch, ctx),
            ReuniteTimer::Sweep(ch) => {
                let now = ctx.now();
                let mut reaped = 0;
                let mut keep = false;
                if let Some(mct) = state.mct.get_mut(&ch) {
                    reaped += mct.reap(now);
                    if mct.is_empty() {
                        state.mct.remove(&ch);
                    } else {
                        keep = true;
                    }
                }
                if let Some(mft) = state.mft.get_mut(&ch) {
                    reaped += mft.reap(now);
                    if mft.is_empty() {
                        state.mft.remove(&ch);
                    } else {
                        keep = true;
                    }
                }
                if reaped > 0 {
                    ctx.structural_change();
                }
                if keep {
                    ctx.set_timer(ReuniteTimer::Sweep(ch), self.timing.tree_period);
                } else {
                    state.sweep_armed.remove(&ch);
                }
            }
        }
    }

    fn on_command(&self, state: &mut ReuniteNodeState, cmd: Cmd, ctx: &mut RCtx<'_>) {
        match cmd {
            Cmd::StartSource(_) => {
                // REUNITE sources are armed lazily by the first join.
            }
            Cmd::Join(ch) => {
                if state.member.insert(ch) {
                    self.send_receiver_join(ch, true, ctx);
                    ctx.set_timer(ReuniteTimer::JoinRefresh(ch), self.timing.join_period);
                }
            }
            Cmd::Leave(ch) => {
                if state.member.remove(&ch) {
                    ctx.cancel_timer(&ReuniteTimer::JoinRefresh(ch));
                }
            }
            Cmd::SendData { ch, tag } => {
                assert_eq!(ctx.node, ch.source, "SendData must run at the source");
                self.source_send_data(state, ch, tag, ctx);
            }
        }
    }
}
