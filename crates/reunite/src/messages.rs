//! REUNITE wire messages and node timers.

use hbh_proto_base::Channel;
use hbh_topo::graph::NodeId;

/// REUNITE packet payloads.
///
/// REUNITE identifies a conversation by `<S, P>` (source address + port);
/// we reuse the [`Channel`] type for it — the distinction the HBH paper
/// draws (class-D compatibility) is about the *addressing architecture*,
/// not the protocol mechanics, and is discussed in the crate docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReuniteMsg {
    /// `join(S, r)`: unicast from receiver `r` toward the source,
    /// interceptable by branching nodes on the way.
    ///
    /// `fresh` distinguishes a receiver's *first* join (which may be
    /// captured by a branching node or promote an MCT router — "r2 joined
    /// the channel at R3") from the periodic *refresh* joins, which only
    /// refresh entries that already exist. Without the distinction, a
    /// refresh join passing a newly promoted branching node would be
    /// captured there, starving the upstream entry it used to refresh and
    /// livelocking the tree in endless marked-tree reconfigurations (the
    /// original REUNITE carries the same flag for the same reason).
    Join {
        /// The conversation being joined.
        ch: Channel,
        /// The joining receiver.
        receiver: NodeId,
        /// First join (may be captured / promote) vs. refresh.
        fresh: bool,
    },
    /// `tree(S, r)`: sent downstream (unicast toward `r`), installing and
    /// refreshing MCT soft state. A **marked** tree announces that data
    /// addressed to `r` will stop flowing and wipes `r`'s MCT entries.
    Tree {
        /// The conversation being refreshed.
        ch: Channel,
        /// The receiver this tree message heads for.
        receiver: NodeId,
        /// Marked trees announce the receiver's data will stop.
        marked: bool,
    },
    /// Channel data. Addressed to `MFT<S>.dst` of the branching node that
    /// produced it (initially the source's `dst`).
    Data {
        /// The conversation the payload belongs to.
        ch: Channel,
    },
}

impl ReuniteMsg {
    /// The channel this message belongs to.
    pub fn channel(&self) -> Channel {
        match *self {
            ReuniteMsg::Join { ch, .. } | ReuniteMsg::Tree { ch, .. } | ReuniteMsg::Data { ch } => {
                ch
            }
        }
    }
}

/// Node-local timers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ReuniteTimer {
    /// Receiver agent: periodic `join` refresh.
    JoinRefresh(Channel),
    /// Source agent: periodic `tree` emission (doubles as the source's
    /// table sweep).
    TreeRefresh(Channel),
    /// Router: reap dead MCT/MFT entries.
    Sweep(Channel),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_accessor_covers_variants() {
        let ch = Channel::primary(NodeId(0));
        assert_eq!(ReuniteMsg::Data { ch }.channel(), ch);
        assert_eq!(
            ReuniteMsg::Join {
                ch,
                receiver: NodeId(1),
                fresh: true
            }
            .channel(),
            ch
        );
        assert_eq!(
            ReuniteMsg::Tree {
                ch,
                receiver: NodeId(1),
                marked: true
            }
            .channel(),
            ch
        );
    }
}
