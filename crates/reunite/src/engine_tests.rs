//! Behavioural tests for the REUNITE engine on small topologies.
//!
//! The paper-figure scenarios (Figures 1–3) are exercised end-to-end in
//! the workspace integration tests; these tests pin the individual
//! mechanisms: join interception, MCT→MFT promotion, dst-chain refresh,
//! departure reconfiguration and dst re-election.

use crate::engine::Reunite;
use crate::messages::ReuniteMsg;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Kernel, Network, Time};
use hbh_topo::graph::{Graph, NodeId};

/// Symmetric Y:
///
/// ```text
///   s(host) - a - b - c - h1
///                    \
///                     d - h2
/// ```
struct Y {
    net: Network,
    s: NodeId,
    a: NodeId,
    b: NodeId,
    c: NodeId,
    d: NodeId,
    h1: NodeId,
    h2: NodeId,
}

fn y() -> Y {
    let mut g = Graph::new();
    let a = g.add_router();
    let b = g.add_router();
    let c = g.add_router();
    let d = g.add_router();
    g.add_link(a, b, 1, 1);
    g.add_link(b, c, 1, 1);
    g.add_link(b, d, 1, 1);
    let s = g.add_host(a, 1, 1);
    let h1 = g.add_host(c, 1, 1);
    let h2 = g.add_host(d, 1, 1);
    Y {
        net: Network::new(g),
        s,
        a,
        b,
        c,
        d,
        h1,
        h2,
    }
}

fn kernel(net: &Network) -> Kernel<Reunite> {
    Kernel::new(net.clone(), Reunite::new(Timing::default()), 7)
}

#[test]
fn first_join_reaches_source_and_creates_mft() {
    let y = y();
    let ch = Channel::primary(y.s);
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch), Time(0));
    k.run_until(Time(50));
    let mft = k.state(y.s).mft(ch).expect("source MFT");
    assert_eq!(mft.dst(), y.h1, "first receiver becomes dst");
    assert!(k.state(y.b).mft(ch).is_none(), "no branching yet");
}

#[test]
fn trees_install_mct_along_downstream_path() {
    let y = y();
    let ch = Channel::primary(y.s);
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch), Time(0));
    k.run_until(Time(400));
    for router in [y.a, y.b, y.c] {
        let mct = k.state(router).mct(ch).expect("MCT on downstream path");
        assert!(mct.contains(y.h1), "router {router} lacks h1 MCT entry");
    }
    assert!(
        k.state(y.d).mct(ch).is_none(),
        "off-tree router has no state"
    );
}

#[test]
fn second_join_promotes_branching_node() {
    let y = y();
    let ch = Channel::primary(y.s);
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch), Time(0));
    // Wait for trees to install MCTs, then join h2: its join path
    // h2→d→b→a→s hits b, which holds MCT{h1} → promotion.
    k.command_at(y.h2, Cmd::Join(ch), Time(300));
    k.run_until(Time(700));
    let mft = k.state(y.b).mft(ch).expect("b promoted to branching");
    assert_eq!(mft.dst(), y.h1);
    assert!(mft.contains(y.h2));
    assert!(k.state(y.b).mct(ch).is_none(), "MCT destroyed on promotion");
    // h2 joined at b, not at the source.
    assert!(!k.state(y.s).mft(ch).unwrap().contains(y.h2));
}

#[test]
fn data_is_duplicated_at_the_branching_node_only() {
    let y = y();
    let ch = Channel::primary(y.s);
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch), Time(0));
    k.command_at(y.h2, Cmd::Join(ch), Time(300));
    k.run_until(Time(1500));
    k.command_at(y.s, Cmd::SendData { ch, tag: 1 }, Time(1500));
    k.run_until(Time(1700));
    let nodes: std::collections::HashSet<NodeId> =
        k.stats().deliveries_tagged(1).map(|d| d.node).collect();
    assert_eq!(nodes, [y.h1, y.h2].into_iter().collect());
    // One packet from s to b (addressed h1), duplicated at b:
    // links s→a, a→b, b→c, c→h1, b→d, d→h2 — all single-copy.
    assert_eq!(k.stats().data_copies_tagged(1), 6);
    for (link, copies) in k.stats().data_copies_per_link(1) {
        assert_eq!(copies, 1, "duplicate on {link:?}");
    }
}

#[test]
fn dst_chain_stays_alive_long_term() {
    // The dst receiver's joins must keep refreshing the source MFT *and*
    // the branching-node dst entry across many t1 periods (regression
    // guard for the join-forwarding rule).
    let y = y();
    let ch = Channel::primary(y.s);
    let timing = Timing::default();
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch), Time(0));
    k.command_at(y.h2, Cmd::Join(ch), Time(300));
    k.run_until(Time(10 * timing.t2));
    let src = k.state(y.s).mft(ch).expect("source table alive");
    assert!(
        src.intercepts(k.now()) || !src.dst_is_stale(k.now()),
        "dst fresh at source"
    );
    let b = k.state(y.b).mft(ch).expect("branching table alive");
    assert!(!b.dst_is_stale(k.now()), "dst fresh at branching node");
    assert!(!b.is_stale_flagged());
    // And data still flows to both.
    let t = k.now();
    k.command_at(y.s, Cmd::SendData { ch, tag: 2 }, t);
    k.run_until(t + 100);
    assert_eq!(k.stats().deliveries_tagged(2).count(), 2);
}

#[test]
fn non_dst_leave_stops_its_copies_only() {
    let y = y();
    let ch = Channel::primary(y.s);
    let timing = Timing::default();
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch), Time(0));
    k.command_at(y.h2, Cmd::Join(ch), Time(300));
    k.run_until(Time(1000));
    k.command_at(y.h2, Cmd::Leave(ch), Time(1000));
    k.run_until(Time(1000 + 2 * timing.t2 + 5 * timing.tree_period));
    let t = k.now();
    k.command_at(y.s, Cmd::SendData { ch, tag: 3 }, t);
    k.run_until(t + 100);
    let nodes: Vec<NodeId> = k.stats().deliveries_tagged(3).map(|d| d.node).collect();
    assert_eq!(nodes, vec![y.h1]);
    // b's table decayed to h1 only, and with one member it may collapse
    // entirely once trees stop branching; either state is acceptable as
    // long as h2 is gone.
    if let Some(mft) = k.state(y.b).mft(ch) {
        assert!(!mft.contains(y.h2));
    }
}

#[test]
fn dst_leave_reelects_and_keeps_survivors() {
    let y = y();
    let ch = Channel::primary(y.s);
    let timing = Timing::default();
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch), Time(0)); // h1 = dst
    k.command_at(y.h2, Cmd::Join(ch), Time(300));
    k.run_until(Time(1000));
    k.command_at(y.h1, Cmd::Leave(ch), Time(1000));
    // Full reconfiguration: t1 → marked trees → h2 re-joins at s → t2 →
    // re-election.
    k.run_until(Time(1000 + 3 * timing.t2 + 10 * timing.tree_period));
    let mft = k.state(y.s).mft(ch).expect("source table survives");
    assert_eq!(mft.dst(), y.h2, "survivor elected as new dst");
    let t = k.now();
    k.command_at(y.s, Cmd::SendData { ch, tag: 4 }, t);
    k.run_until(t + 100);
    let nodes: Vec<NodeId> = k.stats().deliveries_tagged(4).map(|d| d.node).collect();
    assert_eq!(nodes, vec![y.h2]);
    // Data is now addressed to h2 directly: path s→a→b→d→h2, 4 copies.
    assert_eq!(k.stats().data_copies_tagged(4), 4);
}

#[test]
fn all_leave_tears_everything_down() {
    let y = y();
    let ch = Channel::primary(y.s);
    let timing = Timing::default();
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch), Time(0));
    k.command_at(y.h2, Cmd::Join(ch), Time(300));
    k.run_until(Time(1000));
    k.command_at(y.h1, Cmd::Leave(ch), Time(1000));
    k.command_at(y.h2, Cmd::Leave(ch), Time(1000));
    k.run_until(Time(1000 + 4 * timing.t2 + 10 * timing.tree_period));
    for n in [y.s, y.a, y.b, y.c, y.d] {
        assert!(k.state(n).mft(ch).is_none(), "MFT left at {n}");
        assert!(k.state(n).mct(ch).is_none(), "MCT left at {n}");
    }
    // And the probe goes nowhere.
    let t = k.now();
    k.command_at(y.s, Cmd::SendData { ch, tag: 5 }, t);
    k.run_until(t + 100);
    assert_eq!(k.stats().data_copies_tagged(5), 0);
}

#[test]
fn delivery_delay_matches_tree_path() {
    let y = y();
    let ch = Channel::primary(y.s);
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch), Time(0));
    k.run_until(Time(600));
    k.command_at(y.s, Cmd::SendData { ch, tag: 6 }, Time(600));
    k.run_until(Time(700));
    let d: Vec<_> = k.stats().deliveries_tagged(6).collect();
    // s→a→b→c→h1, unit costs: delay 4.
    assert_eq!(d[0].delay(), 4);
}

#[test]
fn rejoin_after_full_teardown_rebuilds() {
    let y = y();
    let ch = Channel::primary(y.s);
    let timing = Timing::default();
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch), Time(0));
    k.command_at(y.h1, Cmd::Leave(ch), Time(500));
    let quiet = 500 + 4 * timing.t2;
    k.command_at(y.h1, Cmd::Join(ch), Time(quiet));
    k.run_until(Time(quiet + 600));
    let t = k.now();
    k.command_at(y.s, Cmd::SendData { ch, tag: 7 }, t);
    k.run_until(t + 100);
    assert_eq!(k.stats().deliveries_tagged(7).count(), 1);
}

#[test]
fn two_channels_are_isolated() {
    let y = y();
    let ch1 = Channel::new(y.s, hbh_proto_base::GroupAddr(1));
    let ch2 = Channel::new(y.s, hbh_proto_base::GroupAddr(2));
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch1), Time(0));
    k.command_at(y.h2, Cmd::Join(ch2), Time(0));
    k.run_until(Time(800));
    k.command_at(y.s, Cmd::SendData { ch: ch1, tag: 8 }, Time(800));
    k.command_at(y.s, Cmd::SendData { ch: ch2, tag: 9 }, Time(800));
    k.run_until(Time(900));
    let n8: Vec<NodeId> = k.stats().deliveries_tagged(8).map(|d| d.node).collect();
    let n9: Vec<NodeId> = k.stats().deliveries_tagged(9).map(|d| d.node).collect();
    assert_eq!(n8, vec![y.h1]);
    assert_eq!(n9, vec![y.h2]);
}

#[test]
fn no_drops_in_steady_state() {
    let y = y();
    let ch = Channel::primary(y.s);
    let mut k = kernel(&y.net);
    k.command_at(y.h1, Cmd::Join(ch), Time(0));
    k.command_at(y.h2, Cmd::Join(ch), Time(100));
    k.run_until(Time(5000));
    assert_eq!(k.stats().drops, 0);
}

#[test]
fn message_payload_channels_consistent() {
    // Sanity on the wire format used above.
    let ch = Channel::primary(NodeId(9));
    assert_eq!(ReuniteMsg::Data { ch }.channel(), ch);
}
