#![warn(missing_docs)]

//! # hbh-reunite — the REUNITE baseline
//!
//! REUNITE (REcursive UNIcast trEes; Stoica, Ng, Zhang — INFOCOM 2000) is
//! the protocol HBH descends from and is compared against. It implements
//! multicast distribution on plain unicast forwarding by splitting
//! multicast state into:
//!
//! * **MCT** (multicast control table) at *non-branching* routers — control
//!   plane only, never consulted for forwarding;
//! * **MFT** (multicast forwarding table) at *branching* routers — maps a
//!   channel to the set of receivers that joined at this node, plus a
//!   distinguished `dst`: incoming data is *addressed to* `MFT.dst`, and a
//!   branching node forwards the original toward `dst` while sending one
//!   modified copy to every other receiver in the table.
//!
//! Tree construction: `join(S, r)` messages travel from receivers toward
//! the source along unicast routes and are intercepted by the first
//! branching node whose MFT is fresh; `tree(S, r)` messages travel from
//! the source downstream, installing MCT state at the routers they
//! traverse. A router holding MCT state that sees a join for a *different*
//! receiver promotes itself to a branching node. Departures propagate with
//! **marked** tree messages that wipe downstream MCT state, forcing
//! downstream receivers to re-join upstream — the reconfiguration of the
//! paper's Figure 2, which can change the route of *other* receivers and
//! which HBH was designed to avoid.
//!
//! The implementation follows [21] as summarized in §2 of the HBH paper,
//! including the two pathologies the paper demonstrates under asymmetric
//! unicast routing (non-shortest-path branches, Figure 2; duplicate copies
//! on shared links, Figure 3). Branching-node migration for overloaded or
//! unicast-only routers (footnote 2 of the paper) is out of scope here, as
//! it is in the paper's own simulations.

pub mod engine;
pub mod messages;
pub mod tables;

pub use engine::{Reunite, ReuniteNodeState};
pub use messages::{ReuniteMsg, ReuniteTimer};
pub use tables::{Mct, Mft};

#[cfg(test)]
#[path = "engine_tests.rs"]
mod engine_tests;
