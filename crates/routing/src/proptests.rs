//! Property-based tests for the routing substrate: metric laws that must
//! hold on arbitrary connected graphs with arbitrary directed costs.

use crate::provider::{OnDemandRoutes, RouteProvider};
use crate::reference::floyd_warshall;
use crate::tables::RoutingTables;
use hbh_topo::graph::{Graph, PathCost};
use hbh_topo::{costs, random};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph(seed: u64, n: usize, degree_scale: u8) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let degree = 2.0 + f64::from(degree_scale % 4);
    let mut g = random::gnp_with_avg_degree(n, degree.min((n - 1) as f64), &mut rng);
    costs::assign_paper_costs(&mut g, &mut rng);
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Dijkstra-based tables agree with the Floyd–Warshall reference on
    /// every pair.
    #[test]
    fn tables_match_reference(seed in 0u64..100_000, n in 4usize..16, d in 0u8..8) {
        let g = arb_graph(seed, n, d);
        let t = RoutingTables::compute(&g);
        let fw = floyd_warshall(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(t.dist(u, v), fw[u.index()][v.index()]);
            }
        }
    }

    /// Distances obey the (directed) triangle inequality.
    #[test]
    fn triangle_inequality(seed in 0u64..100_000, n in 4usize..14, d in 0u8..8) {
        let g = arb_graph(seed, n, d);
        let t = RoutingTables::compute(&g);
        let routers: Vec<_> = g.routers().collect();
        for &a in &routers {
            for &b in &routers {
                for &c in &routers {
                    if let (Some(ab), Some(bc), Some(ac)) =
                        (t.dist(a, b), t.dist(b, c), t.dist(a, c))
                    {
                        prop_assert!(ac <= ab + bc,
                            "d({a},{c}) = {ac} > {ab} + {bc} via {b}");
                    }
                }
            }
        }
    }

    /// Walking next-hops reproduces exactly the advertised distance, and
    /// every step makes strict progress (no loops).
    #[test]
    fn next_hops_realize_distances(seed in 0u64..100_000, n in 4usize..16, d in 0u8..8) {
        let g = arb_graph(seed, n, d);
        let t = RoutingTables::compute(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                let Some(path) = t.path(u, v) else { continue };
                let total: PathCost = path
                    .windows(2)
                    .map(|w| PathCost::from(g.cost(w[0], w[1]).unwrap()))
                    .sum();
                prop_assert_eq!(Some(total), t.dist(u, v));
                // Strictly decreasing remaining distance at every hop.
                for w in path.windows(2) {
                    prop_assert!(t.dist(w[1], v) < t.dist(w[0], v) || w[1] == v);
                }
            }
        }
    }

    /// No shortest path transits a host.
    #[test]
    fn paths_never_transit_hosts(seed in 0u64..100_000, n in 4usize..16, d in 0u8..8) {
        let g = arb_graph(seed, n, d);
        let t = RoutingTables::compute(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if let Some(path) = t.path(u, v) {
                    if path.len() > 2 {
                        for &mid in &path[1..path.len() - 1] {
                            prop_assert!(g.is_router(mid), "host {mid} in transit {u}→{v}");
                        }
                    }
                }
            }
        }
    }

    /// The lazy provider answers exactly like the eager tables on every
    /// (src, dst) pair — identical distances AND identical next hops (the
    /// tie-breaks must survive the CSR/caching path), even with a cache
    /// small enough to force evictions mid-sweep.
    #[test]
    fn on_demand_equals_eager_tables(seed in 0u64..100_000, n in 4usize..16, d in 0u8..8) {
        let g = arb_graph(seed, n, d);
        let eager = RoutingTables::compute(&g);
        let lazy = OnDemandRoutes::new(&g, 3.max(n / 4));
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(eager.dist(u, v), lazy.dist(u, v), "dist {}->{}", u, v);
                prop_assert_eq!(
                    eager.next_hop(u, v),
                    RouteProvider::next_hop(&lazy, u, v),
                    "hop {}->{}", u, v
                );
            }
        }
    }

    /// Same equivalence over the surviving topology when one router is
    /// avoided, exercising the masked SPF path of both providers.
    #[test]
    fn on_demand_equals_eager_avoiding_a_node(seed in 0u64..100_000, n in 5usize..16, d in 0u8..8) {
        let g = arb_graph(seed, n, d);
        let victim = g.routers().nth((seed as usize) % 3).unwrap();
        let mut node_down = vec![false; g.node_count()];
        node_down[victim.index()] = true;
        let edge_down = vec![false; g.directed_edge_count()];
        let eager = RoutingTables::compute_avoiding(&g, &node_down, &edge_down);
        let lazy = OnDemandRoutes::with_masks(
            std::sync::Arc::new(hbh_topo::Csr::from_graph(&g)),
            node_down,
            edge_down,
            3.max(n / 4),
        );
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(eager.dist(u, v), lazy.dist(u, v), "dist {}->{}", u, v);
                prop_assert_eq!(
                    eager.next_hop(u, v),
                    RouteProvider::next_hop(&lazy, u, v),
                    "hop {}->{}", u, v
                );
            }
        }
    }

    /// Fault transitions through `rerouted` (selective invalidation +
    /// cached survivors) still answer exactly like a fresh masked
    /// computation.
    #[test]
    fn rerouted_provider_stays_exact(seed in 0u64..100_000, n in 5usize..14, d in 0u8..8) {
        let g = arb_graph(seed, n, d);
        let lazy = OnDemandRoutes::new(&g, n);
        // Warm a few rows, then fail a router and compare post-fault.
        for u in g.nodes().take(n / 2) {
            lazy.dist(u, g.nodes().last().unwrap());
        }
        let victim = g.routers().nth((seed as usize) % 3).unwrap();
        let mut node_down = vec![false; g.node_count()];
        node_down[victim.index()] = true;
        let edge_down = vec![false; g.directed_edge_count()];
        let after = lazy.rerouted(node_down.clone(), edge_down.clone());
        let fresh = RoutingTables::compute_avoiding(&g, &node_down, &edge_down);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(fresh.dist(u, v), after.dist(u, v), "dist {}->{}", u, v);
                prop_assert_eq!(
                    fresh.next_hop(u, v),
                    RouteProvider::next_hop(&after, u, v),
                    "hop {}->{}", u, v
                );
            }
        }
    }

    /// Distances are monotone under cost increase: raising one directed
    /// link's cost never shortens any distance.
    #[test]
    fn monotone_under_cost_increase(seed in 0u64..100_000, n in 4usize..12) {
        let mut g = arb_graph(seed, n, 1);
        let before = RoutingTables::compute(&g);
        let (a, b, ab, _) = g.undirected_links()[0];
        g.set_cost(a, b, ab + 5);
        let after = RoutingTables::compute(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if let (Some(x), Some(y)) = (before.dist(u, v), after.dist(u, v)) {
                    prop_assert!(y >= x, "raising a cost shortened {u}→{v}: {x} → {y}");
                }
            }
        }
    }
}
