//! Property-based tests for the routing substrate: metric laws that must
//! hold on arbitrary connected graphs with arbitrary directed costs.

use crate::reference::floyd_warshall;
use crate::tables::RoutingTables;
use hbh_topo::graph::{Graph, PathCost};
use hbh_topo::{costs, random};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph(seed: u64, n: usize, degree_scale: u8) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let degree = 2.0 + f64::from(degree_scale % 4);
    let mut g = random::gnp_with_avg_degree(n, degree.min((n - 1) as f64), &mut rng);
    costs::assign_paper_costs(&mut g, &mut rng);
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Dijkstra-based tables agree with the Floyd–Warshall reference on
    /// every pair.
    #[test]
    fn tables_match_reference(seed in 0u64..100_000, n in 4usize..16, d in 0u8..8) {
        let g = arb_graph(seed, n, d);
        let t = RoutingTables::compute(&g);
        let fw = floyd_warshall(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(t.dist(u, v), fw[u.index()][v.index()]);
            }
        }
    }

    /// Distances obey the (directed) triangle inequality.
    #[test]
    fn triangle_inequality(seed in 0u64..100_000, n in 4usize..14, d in 0u8..8) {
        let g = arb_graph(seed, n, d);
        let t = RoutingTables::compute(&g);
        let routers: Vec<_> = g.routers().collect();
        for &a in &routers {
            for &b in &routers {
                for &c in &routers {
                    if let (Some(ab), Some(bc), Some(ac)) =
                        (t.dist(a, b), t.dist(b, c), t.dist(a, c))
                    {
                        prop_assert!(ac <= ab + bc,
                            "d({a},{c}) = {ac} > {ab} + {bc} via {b}");
                    }
                }
            }
        }
    }

    /// Walking next-hops reproduces exactly the advertised distance, and
    /// every step makes strict progress (no loops).
    #[test]
    fn next_hops_realize_distances(seed in 0u64..100_000, n in 4usize..16, d in 0u8..8) {
        let g = arb_graph(seed, n, d);
        let t = RoutingTables::compute(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                let Some(path) = t.path(u, v) else { continue };
                let total: PathCost = path
                    .windows(2)
                    .map(|w| PathCost::from(g.cost(w[0], w[1]).unwrap()))
                    .sum();
                prop_assert_eq!(Some(total), t.dist(u, v));
                // Strictly decreasing remaining distance at every hop.
                for w in path.windows(2) {
                    prop_assert!(t.dist(w[1], v) < t.dist(w[0], v) || w[1] == v);
                }
            }
        }
    }

    /// No shortest path transits a host.
    #[test]
    fn paths_never_transit_hosts(seed in 0u64..100_000, n in 4usize..16, d in 0u8..8) {
        let g = arb_graph(seed, n, d);
        let t = RoutingTables::compute(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if let Some(path) = t.path(u, v) {
                    if path.len() > 2 {
                        for &mid in &path[1..path.len() - 1] {
                            prop_assert!(g.is_router(mid), "host {mid} in transit {u}→{v}");
                        }
                    }
                }
            }
        }
    }

    /// Distances are monotone under cost increase: raising one directed
    /// link's cost never shortens any distance.
    #[test]
    fn monotone_under_cost_increase(seed in 0u64..100_000, n in 4usize..12) {
        let mut g = arb_graph(seed, n, 1);
        let before = RoutingTables::compute(&g);
        let (a, b, ab, _) = g.undirected_links()[0];
        g.set_cost(a, b, ab + 5);
        let after = RoutingTables::compute(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if let (Some(x), Some(y)) = (before.dist(u, v), after.dist(u, v)) {
                    prop_assert!(y >= x, "raising a cost shortened {u}→{v}: {x} → {y}");
                }
            }
        }
    }
}
