//! Analytic distribution-tree construction.
//!
//! These functions build the *idealized* tree shapes the paper reasons
//! about, directly from the routing tables:
//!
//! * [`forward_spt`] — union of the unicast paths `source → r`: the
//!   shortest-path tree HBH aims to realize;
//! * [`reverse_spt`] — union of the *reversed* unicast paths `r → source`:
//!   the RPF tree built by PIM-SS (and PIM-SM, rooted at the RP).
//!
//! The message-driven protocol engines are the ground truth for the
//! evaluation; these analytic trees exist to cross-validate them (the
//! integration tests assert, e.g., that the converged PIM-SS engine
//! produces exactly [`reverse_spt`]) and to compute reference metrics.

use crate::tables::RoutingTables;
use hbh_topo::graph::{Graph, NodeId, PathCost};
use std::collections::{BTreeMap, BTreeSet};

/// An analytic distribution tree: a set of directed links plus the
/// root→receiver path through them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistTree {
    root: NodeId,
    /// Directed links `(from, to)` of the tree, each carrying exactly one
    /// copy of every data packet (the RPF guarantee).
    links: BTreeSet<(NodeId, NodeId)>,
    /// The downstream path `root → … → r` for every receiver.
    paths: BTreeMap<NodeId, Vec<NodeId>>,
}

impl DistTree {
    /// The tree's root (source or RP).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Directed links of the tree.
    pub fn links(&self) -> &BTreeSet<(NodeId, NodeId)> {
        &self.links
    }

    /// Tree cost under one-copy-per-link forwarding (the paper's metric for
    /// the RPF protocols): the number of directed links.
    pub fn cost(&self) -> usize {
        self.links.len()
    }

    /// Receivers this tree serves.
    pub fn receivers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.paths.keys().copied()
    }

    /// The downstream path to `r`, if `r` is a receiver of this tree.
    pub fn path_to(&self, r: NodeId) -> Option<&[NodeId]> {
        self.paths.get(&r).map(Vec::as_slice)
    }

    /// Delay from the root to `r`: the sum of the *downstream* directed link
    /// costs along `r`'s path. For a reverse SPT this is generally larger
    /// than the unicast distance — exactly the effect Figure 8 measures.
    pub fn delay_to(&self, g: &Graph, r: NodeId) -> Option<PathCost> {
        let path = self.paths.get(&r)?;
        Some(
            path.windows(2)
                .map(|w| PathCost::from(g.cost(w[0], w[1]).expect("tree links exist")))
                .sum(),
        )
    }

    /// Mean delay over all receivers (`None` if the tree has none).
    pub fn avg_delay(&self, g: &Graph) -> Option<f64> {
        if self.paths.is_empty() {
            return None;
        }
        let total: PathCost = self
            .paths
            .keys()
            .map(|&r| self.delay_to(g, r).unwrap())
            .sum();
        Some(total as f64 / self.paths.len() as f64)
    }

    fn from_paths(root: NodeId, paths: BTreeMap<NodeId, Vec<NodeId>>) -> Self {
        let mut links = BTreeSet::new();
        for p in paths.values() {
            for w in p.windows(2) {
                links.insert((w[0], w[1]));
            }
        }
        DistTree { root, links, paths }
    }
}

/// The forward shortest-path tree: union of the unicast paths `source → r`.
///
/// Receivers unreachable from `source` are silently skipped (cannot happen
/// on the connected experiment topologies; asserted by callers that care).
pub fn forward_spt(t: &RoutingTables, source: NodeId, receivers: &[NodeId]) -> DistTree {
    let mut paths = BTreeMap::new();
    for &r in receivers {
        if r == source {
            continue;
        }
        if let Some(p) = t.path(source, r) {
            paths.insert(r, p);
        }
    }
    DistTree::from_paths(source, paths)
}

/// The reverse shortest-path tree rooted at `root`: union of the *reversed*
/// unicast paths `r → root`. This is the tree RPF joins build: each
/// receiver's join walks its unicast route toward the root and data flows
/// back down the same links in the opposite direction.
pub fn reverse_spt(t: &RoutingTables, root: NodeId, receivers: &[NodeId]) -> DistTree {
    let mut paths = BTreeMap::new();
    for &r in receivers {
        if r == root {
            continue;
        }
        if let Some(mut p) = t.path(r, root) {
            p.reverse();
            paths.insert(r, p);
        }
    }
    DistTree::from_paths(root, paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbh_topo::graph::Graph;
    use hbh_topo::scenarios;

    fn fig2() -> (Graph, RoutingTables) {
        let g = scenarios::fig2();
        let t = RoutingTables::compute(&g);
        (g, t)
    }

    fn n(g: &Graph, l: &str) -> NodeId {
        g.node_by_label(l).unwrap()
    }

    #[test]
    fn forward_spt_follows_downstream_routes() {
        let (g, t) = fig2();
        let tree = forward_spt(&t, n(&g, "S"), &[n(&g, "r1"), n(&g, "r2")]);
        assert_eq!(
            tree.path_to(n(&g, "r1")).unwrap(),
            &[n(&g, "S"), n(&g, "R1"), n(&g, "R3"), n(&g, "r1")]
        );
        assert_eq!(
            tree.path_to(n(&g, "r2")).unwrap(),
            &[n(&g, "S"), n(&g, "R4"), n(&g, "r2")]
        );
        // 3 + 2 downstream links, no sharing.
        assert_eq!(tree.cost(), 5);
    }

    #[test]
    fn reverse_spt_reverses_upstream_routes() {
        let (g, t) = fig2();
        let tree = reverse_spt(&t, n(&g, "S"), &[n(&g, "r2")]);
        // r2's route to S is r2→R3→R1→S, so data flows S→R1→R3→r2.
        assert_eq!(
            tree.path_to(n(&g, "r2")).unwrap(),
            &[n(&g, "S"), n(&g, "R1"), n(&g, "R3"), n(&g, "r2")]
        );
    }

    #[test]
    fn reverse_spt_delay_exceeds_forward_on_asymmetric_routes() {
        let (g, t) = fig2();
        let s = n(&g, "S");
        let r2 = n(&g, "r2");
        let fwd = forward_spt(&t, s, &[r2]);
        let rev = reverse_spt(&t, s, &[r2]);
        assert_eq!(fwd.delay_to(&g, r2), Some(2)); // S→R4→r2
        assert_eq!(rev.delay_to(&g, r2), Some(5)); // S→R1→R3→r2 with R3→r2 = 3
    }

    #[test]
    fn shared_links_are_counted_once() {
        let (g, t) = fig2();
        let s = n(&g, "S");
        // r1 and r3 share S→R1→R3.
        let tree = forward_spt(&t, s, &[n(&g, "r1"), n(&g, "r3")]);
        assert_eq!(tree.cost(), 4); // S→R1, R1→R3, R3→r1, R3→r3
    }

    #[test]
    fn forward_delay_equals_unicast_distance() {
        let (g, t) = fig2();
        let s = n(&g, "S");
        let receivers = [n(&g, "r1"), n(&g, "r2"), n(&g, "r3")];
        let tree = forward_spt(&t, s, &receivers);
        for &r in &receivers {
            assert_eq!(tree.delay_to(&g, r), t.dist(s, r), "receiver {r}");
        }
    }

    #[test]
    fn source_in_receiver_set_is_ignored() {
        let (g, t) = fig2();
        let s = n(&g, "S");
        let tree = forward_spt(&t, s, &[s, n(&g, "r1")]);
        assert_eq!(tree.receivers().count(), 1);
    }

    #[test]
    fn empty_receiver_set_gives_empty_tree() {
        let (g, t) = fig2();
        let tree = forward_spt(&t, n(&g, "S"), &[]);
        assert_eq!(tree.cost(), 0);
        assert_eq!(tree.avg_delay(&g), None);
    }

    #[test]
    fn avg_delay_averages_receivers() {
        let (g, t) = fig2();
        let s = n(&g, "S");
        let tree = forward_spt(&t, s, &[n(&g, "r1"), n(&g, "r2")]);
        // d(S,r1) = 3, d(S,r2) = 2.
        assert_eq!(tree.avg_delay(&g), Some(2.5));
    }
}
