#![warn(missing_docs)]

//! # hbh-routing — the unicast routing substrate
//!
//! Every protocol in the HBH paper (HBH itself, REUNITE, PIM-SM, PIM-SS)
//! rides on top of ordinary unicast routing: control messages are unicast
//! hop-by-hop, and the recursive-unicast data plane forwards by unicast
//! destination address. This crate computes that unicast routing layer
//! ahead of time, exactly as NS-2's static routing does for the paper's
//! simulations:
//!
//! * [`dijkstra`] — single-source shortest paths over the *directed* link
//!   costs (hosts never transit);
//! * [`tables::RoutingTables`] — all-pairs distances and next hops, the
//!   eager forwarding state (exact, O(n²) — the paper-scale default);
//! * [`provider`] — the [`provider::RouteProvider`] trait plus
//!   [`provider::OnDemandRoutes`], lazy per-source SPF rows behind an LRU
//!   for internet-scale topologies where n² tables no longer fit;
//! * [`paths`] — path extraction and shortest-path-tree construction
//!   (forward SPT and reverse SPT — the two tree shapes whose difference
//!   under asymmetric costs is the whole point of the paper);
//! * [`asymmetry`] — measurements of how asymmetric the routing actually is
//!   (the Paxson-style "fraction of asymmetric routes" statistic).
//!
//! Ties between equal-cost paths are broken deterministically (smallest
//! node id wins), so a given topology + cost assignment always yields one
//! reproducible routing.

pub mod asymmetry;
pub mod dijkstra;
pub mod paths;
pub mod provider;
pub mod qos;
pub mod reference;
pub mod tables;

#[cfg(test)]
mod proptests;

pub use dijkstra::{DijkstraScratch, ShortestPaths};
pub use provider::{OnDemandRoutes, RouteProvider, RouteStats};
pub use tables::RoutingTables;
