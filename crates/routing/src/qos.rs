//! QoS-constrained unicast routing — the extension the paper names as
//! future work ("to study the possibility of including QoS parameters
//! inside HBH's tree construction", §5).
//!
//! The simplest deployable QoS model is bandwidth admission: a channel
//! that needs `min_bw` units routes over the sub-topology whose directed
//! links all offer at least that much. Because HBH forwards *every*
//! packet (control and data) by forward-direction unicast lookup, running
//! it over bandwidth-constrained tables makes the entire distribution
//! tree QoS-compliant by construction. RPF protocols cannot inherit this:
//! their joins can be constrained, but data then flows over the *reverse*
//! directions of those links, whose bandwidth was never checked — the
//! `qos` experiment measures exactly that gap.

use crate::dijkstra::ShortestPaths;
use crate::tables::RoutingTables;
use hbh_topo::graph::{Bandwidth, Graph, NodeId, PathCost};

/// Computes routing tables over the sub-topology of directed links with
/// `bandwidth ≥ min_bw`. Reachability may shrink: pairs with no compliant
/// path report `None` distances, and the caller decides whether that is
/// admission failure or cause for re-dimensioning.
pub fn constrained_tables(g: &Graph, min_bw: Bandwidth) -> RoutingTables {
    // Filter into a shadow graph with identical node numbering: links
    // below the floor are re-costed to effectively-infinite so they are
    // never chosen but the structure (and LinkId space) stays identical.
    // (A true removal would change nothing else: costs cap at 10 in every
    // experiment, so the sentinel can never be part of a chosen path
    // unless no compliant path exists at all.)
    let mut shadow = g.clone();
    let mut any_compliant = false;
    for (l, _) in g.directed_links() {
        let bw = g.bandwidth(l.from, l.to).expect("directed link exists");
        if bw < min_bw {
            shadow.set_cost(l.from, l.to, BLOCKED_COST);
        } else {
            any_compliant = true;
        }
    }
    let _ = any_compliant;
    RoutingTables::compute(&shadow)
}

/// Cost sentinel marking non-compliant links in the shadow graph. Any
/// path using one is detectable by [`path_is_compliant`]'s bandwidth
/// check, and [`admitted`] treats distances ≥ this as unreachable.
pub const BLOCKED_COST: u32 = 1 << 20;

/// True if `dst` is reachable from `src` without any non-compliant link.
pub fn admitted(t: &RoutingTables, src: NodeId, dst: NodeId) -> bool {
    matches!(t.dist(src, dst), Some(d) if d < PathCost::from(BLOCKED_COST))
}

/// Bottleneck bandwidth of a directed path (`None` for an empty path).
pub fn bottleneck(g: &Graph, path: &[NodeId]) -> Option<Bandwidth> {
    path.windows(2)
        .map(|w| g.bandwidth(w[0], w[1]).expect("path follows real links"))
        .min()
}

/// True if every directed link of `path` offers at least `min_bw`.
pub fn path_is_compliant(g: &Graph, path: &[NodeId], min_bw: Bandwidth) -> bool {
    bottleneck(g, path).is_some_and(|b| b >= min_bw)
}

/// Admission check for a whole channel: every receiver reachable over
/// compliant links.
pub fn channel_admitted(t: &RoutingTables, source: NodeId, receivers: &[NodeId]) -> bool {
    receivers
        .iter()
        .all(|&r| admitted(t, source, r) && admitted(t, r, source))
}

/// Convenience: the constrained shortest path, if admitted.
pub fn constrained_path(t: &RoutingTables, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    admitted(t, src, dst).then(|| t.path(src, dst)).flatten()
}

/// Re-exported for callers that only need one root.
pub fn constrained_spf(g: &Graph, root: NodeId, min_bw: Bandwidth) -> ShortestPaths {
    let mut shadow = g.clone();
    for (l, _) in g.directed_links() {
        if g.bandwidth(l.from, l.to).unwrap() < min_bw {
            shadow.set_cost(l.from, l.to, BLOCKED_COST);
        }
    }
    crate::dijkstra::shortest_paths(&shadow, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbh_topo::costs;
    use hbh_topo::graph::Graph;
    use hbh_topo::isp::isp_topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// s — a — b with a thin a→b direction and a fat detour a — c — b.
    fn thin_link() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let c = g.add_router();
        g.add_link(a, b, 1, 1);
        g.add_link(a, c, 2, 2);
        g.add_link(c, b, 2, 2);
        g.set_bandwidth(a, b, 1); // thin forward direction only
        let s = g.add_host(a, 1, 1);
        (g, a, b, c, s)
    }

    #[test]
    fn constrained_routing_takes_the_fat_detour() {
        let (g, a, b, c, _) = thin_link();
        let unconstrained = RoutingTables::compute(&g);
        assert_eq!(unconstrained.path(a, b), Some(vec![a, b]));
        let t = constrained_tables(&g, 5);
        assert_eq!(t.path(a, b), Some(vec![a, c, b]), "thin link avoided");
        assert!(admitted(&t, a, b));
        // The reverse direction b→a is fat: still direct.
        assert_eq!(t.path(b, a), Some(vec![b, a]));
    }

    #[test]
    fn unreachable_under_constraint_is_not_admitted() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 1, 1);
        g.set_bandwidth(a, b, 1);
        g.set_bandwidth(b, a, 1);
        let t = constrained_tables(&g, 5);
        assert!(!admitted(&t, a, b));
        assert!(!channel_admitted(&t, a, &[b]));
        assert_eq!(constrained_path(&t, a, b), None);
    }

    #[test]
    fn bottleneck_and_compliance() {
        let (g, a, b, c, _) = thin_link();
        assert_eq!(bottleneck(&g, &[a, b]), Some(1));
        assert_eq!(bottleneck(&g, &[a, c, b]), Some(u32::MAX));
        assert!(!path_is_compliant(&g, &[a, b], 5));
        assert!(path_is_compliant(&g, &[a, c, b], 5));
        assert_eq!(bottleneck(&g, &[a]), None);
    }

    #[test]
    fn compliant_paths_really_avoid_thin_links_on_isp() {
        let mut g = isp_topology();
        let mut rng = StdRng::seed_from_u64(4);
        costs::assign_paper_costs(&mut g, &mut rng);
        costs::assign_bandwidths(&mut g, 1, 10, &mut rng);
        let min_bw = 4;
        let t = constrained_tables(&g, min_bw);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v || !admitted(&t, u, v) {
                    continue;
                }
                let path = t.path(u, v).unwrap();
                assert!(
                    path_is_compliant(&g, &path, min_bw),
                    "admitted path {u}→{v} crosses a thin link"
                );
            }
        }
    }

    #[test]
    fn constraint_never_shortens_distances() {
        let mut g = isp_topology();
        let mut rng = StdRng::seed_from_u64(5);
        costs::assign_paper_costs(&mut g, &mut rng);
        costs::assign_bandwidths(&mut g, 1, 10, &mut rng);
        let free = RoutingTables::compute(&g);
        let t = constrained_tables(&g, 5);
        for u in g.nodes() {
            for v in g.nodes() {
                if let (Some(a), Some(b)) = (free.dist(u, v), t.dist(u, v)) {
                    if b < PathCost::from(BLOCKED_COST) {
                        assert!(b >= a, "constraint shortened {u}→{v}");
                    }
                }
            }
        }
    }
}
