//! Independent all-pairs reference: Floyd–Warshall.
//!
//! A deliberately different algorithm (dynamic programming over
//! intermediate nodes vs. Dijkstra's greedy frontier) computing the same
//! distances, used to cross-validate [`crate::tables::RoutingTables`] in
//! tests — a routing bug would corrupt *every* experiment, so the
//! distances get two independent witnesses.
//!
//! Host-transit exclusion matters here too: paths may start or end at a
//! host but never pass through one, so hosts are simply excluded from the
//! set of intermediate nodes.

use hbh_topo::graph::{Graph, PathCost};

/// All-pairs distances by Floyd–Warshall. `dist[u][v] = None` when
/// unreachable.
pub fn floyd_warshall(g: &Graph) -> Vec<Vec<Option<PathCost>>> {
    let n = g.node_count();
    let mut dist: Vec<Vec<Option<PathCost>>> = vec![vec![None; n]; n];
    for u in g.nodes() {
        dist[u.index()][u.index()] = Some(0);
        for e in g.neighbors(u) {
            // Out-edges of hosts are usable only as the *first* hop, which
            // this direct-edge initialization captures; hosts are excluded
            // from the intermediate set below.
            let d = PathCost::from(e.cost);
            let cell = &mut dist[u.index()][e.to.index()];
            *cell = Some(cell.map_or(d, |old: PathCost| old.min(d)));
        }
    }
    for k in g.nodes().filter(|&k| g.is_router(k)) {
        for i in 0..n {
            let Some(dik) = dist[i][k.index()] else {
                continue;
            };
            // Indexes two rows of `dist` (row k read, row i written, possibly
            // the same row); an iterator form would fight the borrow checker
            // for no clarity gain in a reference implementation.
            #[allow(clippy::needless_range_loop)]
            for j in 0..n {
                let Some(dkj) = dist[k.index()][j] else {
                    continue;
                };
                let through = dik + dkj;
                let cell = &mut dist[i][j];
                if cell.map_or(true, |d| through < d) {
                    *cell = Some(through);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::RoutingTables;
    use hbh_topo::graph::Graph;
    use hbh_topo::{costs, isp, random, scenarios};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn agree(g: &Graph) {
        let tables = RoutingTables::compute(g);
        let fw = floyd_warshall(g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    tables.dist(u, v),
                    fw[u.index()][v.index()],
                    "distance {u}→{v} disagrees between Dijkstra and Floyd–Warshall"
                );
            }
        }
    }

    #[test]
    fn agrees_on_isp_topology() {
        for seed in 0..5 {
            let mut g = isp::isp_topology();
            costs::assign_paper_costs(&mut g, &mut StdRng::seed_from_u64(seed));
            agree(&g);
        }
    }

    #[test]
    fn agrees_on_random_topologies() {
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = random::gnp_with_avg_degree(20, 4.0, &mut rng);
            costs::assign_paper_costs(&mut g, &mut rng);
            agree(&g);
        }
    }

    #[test]
    fn agrees_on_scenario_topologies() {
        for g in [scenarios::fig1(), scenarios::fig2(), scenarios::fig3()] {
            agree(&g);
        }
    }

    #[test]
    fn agrees_on_disconnected_graph() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_router(); // isolated
        g.add_link(a, b, 3, 4);
        agree(&g);
    }

    #[test]
    fn hosts_never_shortcut_in_reference_either() {
        // a —1→ h —1→ ... no: hosts are single-homed; emulate the dual-homed
        // scenario receiver instead.
        let g = scenarios::fig2();
        let fw = floyd_warshall(&g);
        let r2 = g.node_by_label("R2").unwrap();
        let r3 = g.node_by_label("R3").unwrap();
        // R3 and R2 both attach to host r1; a path R3→r1→R2 must not exist.
        // The real route R3→R1→R2 is blocked (R1→R2 = 10): d = 11.
        assert_eq!(fw[r3.index()][r2.index()], Some(11));
    }
}
