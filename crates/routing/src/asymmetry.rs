//! Route-level asymmetry measurements.
//!
//! The paper motivates HBH with Paxson's measurement that ~50% of Internet
//! routes are asymmetric at city granularity (§2.3). These helpers compute
//! the analogous statistics on a simulated topology so experiments can
//! report *how* asymmetric a given cost assignment actually made the
//! routing, and the asymmetry ablation can verify its knob works.

use crate::tables::RoutingTables;
use hbh_topo::graph::{Graph, NodeId};

/// Summary of routing asymmetry over all ordered router pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AsymmetryStats {
    /// Ordered pairs `(u, v)`, `u ≠ v`, both routers, `v` reachable.
    pub pairs: usize,
    /// Pairs whose forward and reverse paths traverse different node
    /// sequences (`path(u→v) ≠ reverse(path(v→u))`).
    pub asymmetric_paths: usize,
    /// Pairs whose forward and reverse distances differ.
    pub asymmetric_dists: usize,
}

impl AsymmetryStats {
    /// Fraction of pairs with path-level asymmetry.
    pub fn path_fraction(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.asymmetric_paths as f64 / self.pairs as f64
        }
    }

    /// Fraction of pairs with distance-level asymmetry.
    pub fn dist_fraction(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.asymmetric_dists as f64 / self.pairs as f64
        }
    }
}

/// Measures asymmetry over every ordered pair of distinct routers.
pub fn measure(g: &Graph, t: &RoutingTables) -> AsymmetryStats {
    let routers: Vec<NodeId> = g.routers().collect();
    let mut stats = AsymmetryStats::default();
    for &u in &routers {
        for &v in &routers {
            if u == v {
                continue;
            }
            let (Some(fwd), Some(bwd)) = (t.path(u, v), t.path(v, u)) else {
                continue;
            };
            stats.pairs += 1;
            let mut bwd_rev = bwd;
            bwd_rev.reverse();
            if fwd != bwd_rev {
                stats.asymmetric_paths += 1;
            }
            if t.dist(u, v) != t.dist(v, u) {
                stats.asymmetric_dists += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbh_topo::costs;
    use hbh_topo::isp::isp_topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn symmetric_costs_give_symmetric_distances() {
        let mut g = isp_topology();
        costs::assign_uniform_with_asymmetry(&mut g, 1, 10, 0.0, &mut StdRng::seed_from_u64(1));
        let t = RoutingTables::compute(&g);
        let stats = measure(&g, &t);
        assert_eq!(stats.asymmetric_dists, 0, "{stats:?}");
        // Equal-cost ties can still pick different node sequences per
        // direction, but distances must agree exactly.
        assert_eq!(stats.pairs, 18 * 17);
    }

    #[test]
    fn paper_costs_make_most_routes_asymmetric() {
        let mut g = isp_topology();
        costs::assign_paper_costs(&mut g, &mut StdRng::seed_from_u64(2));
        let t = RoutingTables::compute(&g);
        let stats = measure(&g, &t);
        assert!(
            stats.path_fraction() > 0.3,
            "expected heavy path asymmetry, got {}",
            stats.path_fraction()
        );
        assert!(stats.asymmetric_dists > 0);
    }

    #[test]
    fn asymmetry_grows_with_the_knob() {
        let mut frac = Vec::new();
        for (i, a) in [0.0, 0.5, 1.0].into_iter().enumerate() {
            let mut total = 0.0;
            for seed in 0..5u64 {
                let mut g = isp_topology();
                costs::assign_uniform_with_asymmetry(
                    &mut g,
                    1,
                    10,
                    a,
                    &mut StdRng::seed_from_u64(100 * (i as u64 + 1) + seed),
                );
                let t = RoutingTables::compute(&g);
                total += measure(&g, &t).dist_fraction();
            }
            frac.push(total / 5.0);
        }
        assert!(frac[0] < frac[1] && frac[1] < frac[2], "{frac:?}");
    }

    #[test]
    fn fractions_of_empty_stats_are_zero() {
        let stats = AsymmetryStats::default();
        assert_eq!(stats.path_fraction(), 0.0);
        assert_eq!(stats.dist_fraction(), 0.0);
    }
}
