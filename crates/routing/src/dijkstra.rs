//! Single-source shortest paths over directed link costs.
//!
//! Two details matter for protocol fidelity:
//!
//! * **Hosts never transit.** The paper's receivers are end hosts; a packet
//!   is never routed *through* one. The search therefore only relaxes
//!   out-edges of the root and of routers. (The Figure 2 scenario attaches
//!   a receiver to two routers, which would otherwise open a fake shortcut.)
//! * **Deterministic tie-breaking.** When two paths have equal cost the one
//!   whose predecessor has the smaller node id wins, so routing tables are
//!   a pure function of the topology — a property the regression tests and
//!   the paired-run experiment design both rely on.
//!
//! The search itself runs over a [`Csr`] packing of the graph: per-node
//! out-edges are contiguous `u32` slices instead of one heap allocation per
//! node, which is what makes all-pairs and on-demand sweeps viable at
//! thousands of routers. CSR packing preserves per-node edge order, so the
//! tie-breaks — and therefore every route — are identical to a search over
//! the raw adjacency.

use hbh_topo::csr::Csr;
use hbh_topo::graph::{EdgeId, Graph, NodeId, PathCost};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of one single-source Dijkstra run.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    root: NodeId,
    /// `dist[v]` = cost of the shortest `root → v` path (`u64::MAX` if
    /// unreachable).
    dist: Vec<PathCost>,
    /// `pred[v]` = previous hop on the shortest `root → v` path.
    pred: Vec<Option<NodeId>>,
    /// `first[v]` = neighbor of `root` the shortest `root → v` path leaves
    /// through (`None` for the root itself and for unreachable nodes).
    first: Vec<Option<NodeId>>,
}

const UNREACHABLE: PathCost = PathCost::MAX;

/// Reusable working storage for repeated Dijkstra runs.
///
/// All-pairs table construction ([`crate::RoutingTables::compute`]) runs
/// one search per node; threading one scratch through them replaces `4n`
/// fresh allocations per search with buffer resets. Fault-reroute paths
/// hold one of these across *calls* too (see
/// [`crate::RoutingTables::compute_avoiding_with`]).
#[derive(Default)]
pub struct DijkstraScratch {
    pub(crate) dist: Vec<PathCost>,
    pub(crate) pred: Vec<Option<NodeId>>,
    pub(crate) first: Vec<Option<NodeId>>,
    done: Vec<bool>,
    heap: BinaryHeap<Reverse<(PathCost, NodeId)>>,
}

impl DijkstraScratch {
    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, UNREACHABLE);
        self.pred.clear();
        self.pred.resize(n, None);
        self.first.clear();
        self.first.resize(n, None);
        self.done.clear();
        self.done.resize(n, false);
        self.heap.clear();
    }
}

/// Runs Dijkstra from `root` over the directed costs of `g`.
///
/// One-shot convenience: packs `g` into a throwaway [`Csr`] first. Sweeps
/// that run many searches should pack once and use the `_csr` entry points
/// (as [`crate::RoutingTables`] and `OnDemandRoutes` do).
pub fn shortest_paths(g: &Graph, root: NodeId) -> ShortestPaths {
    let csr = Csr::from_graph(g);
    let mut s = DijkstraScratch::default();
    shortest_paths_csr_into(&csr, root, &mut s);
    ShortestPaths {
        root,
        dist: std::mem::take(&mut s.dist),
        pred: std::mem::take(&mut s.pred),
        first: std::mem::take(&mut s.first),
    }
}

/// [`shortest_paths`] over a pre-packed CSR view, into caller-provided
/// scratch storage. The results are left in `s.dist` / `s.pred` /
/// `s.first`.
///
/// First hops are resolved inline during relaxation: when `v` is improved
/// via `u`, `u` has already been finalized (its out-edges are only relaxed
/// after it is popped as settled), so `first[u]` is final and
/// `first[v] = first[u]` (or `v` itself when `u` is the root) holds for
/// the eventual shortest path too.
pub(crate) fn shortest_paths_csr_into(csr: &Csr, root: NodeId, s: &mut DijkstraScratch) {
    shortest_paths_core(csr, root, s, |_| true, |_| true);
}

/// [`shortest_paths_csr_into`] over the *surviving* topology: nodes
/// flagged in `node_down` and directed edges flagged in `edge_down` are
/// excluded from the search (the failure-injection reroute path). Both
/// masks are indexed densely by `NodeId`/`EdgeId`; tie-breaking is
/// identical to the unfiltered search, so all-false masks reproduce it
/// exactly.
pub(crate) fn shortest_paths_avoiding_csr_into(
    csr: &Csr,
    root: NodeId,
    s: &mut DijkstraScratch,
    node_down: &[bool],
    edge_down: &[bool],
) {
    shortest_paths_core(
        csr,
        root,
        s,
        |n: NodeId| !node_down[n.index()],
        |e: EdgeId| !edge_down[e.index()],
    );
}

/// The search itself, generic over the availability filters so the
/// unfiltered hot path monomorphizes to the historical loop with no mask
/// reads. Edges are relaxed as a parallel-slice walk over the CSR arrays.
fn shortest_paths_core(
    csr: &Csr,
    root: NodeId,
    s: &mut DijkstraScratch,
    node_up: impl Fn(NodeId) -> bool,
    edge_up: impl Fn(EdgeId) -> bool,
) {
    s.reset(csr.node_count());
    if !node_up(root) {
        return; // a failed root reaches nothing (its own dist stays MAX)
    }

    s.dist[root.index()] = 0;
    s.heap.push(Reverse((0, root)));

    while let Some(Reverse((d, u))) = s.heap.pop() {
        if s.done[u.index()] {
            continue;
        }
        s.done[u.index()] = true;
        // Hosts sink traffic; only the search root may emit from one.
        if u != root && csr.is_host(u) {
            continue;
        }
        let (to, cost, eid) = csr.out_slices(u);
        for i in 0..to.len() {
            let v = NodeId(to[i]);
            if !edge_up(EdgeId(eid[i])) || !node_up(v) {
                continue;
            }
            let nd = d + PathCost::from(cost[i]);
            let better = nd < s.dist[v.index()]
                || (nd == s.dist[v.index()] && tie_break(s.pred[v.index()], u));
            if better && !s.done[v.index()] {
                s.dist[v.index()] = nd;
                s.pred[v.index()] = Some(u);
                s.first[v.index()] = if u == root {
                    Some(v)
                } else {
                    s.first[u.index()]
                };
                s.heap.push(Reverse((nd, v)));
            }
        }
    }
}

/// On an equal-cost tie, adopt the new predecessor only if it has a
/// strictly smaller id than the incumbent.
fn tie_break(current: Option<NodeId>, candidate: NodeId) -> bool {
    match current {
        None => true,
        Some(c) => candidate < c,
    }
}

impl ShortestPaths {
    /// The root this run was computed from.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Cost of the shortest `root → v` path, `None` if unreachable.
    pub fn dist(&self, v: NodeId) -> Option<PathCost> {
        match self.dist[v.index()] {
            UNREACHABLE => None,
            d => Some(d),
        }
    }

    /// Predecessor of `v` on its shortest path from the root.
    pub fn pred(&self, v: NodeId) -> Option<NodeId> {
        self.pred[v.index()]
    }

    /// The full path `root → … → v`, `None` if unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.dist(v)?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.pred[cur.index()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.root);
        path.reverse();
        Some(path)
    }

    /// First hop on the path `root → v` (i.e. the neighbor of `root` that
    /// traffic to `v` leaves through). `None` if `v` is the root itself or
    /// unreachable. O(1): first hops are resolved during the search.
    pub fn first_hop(&self, v: NodeId) -> Option<NodeId> {
        self.first[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbh_topo::graph::Graph;

    /// S --1--> A --2--> B, plus a direct S--9--B link.
    fn diamondish() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s = g.add_router();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(s, a, 1, 1);
        g.add_link(a, b, 2, 2);
        g.add_link(s, b, 9, 9);
        (g, s, a, b)
    }

    #[test]
    fn picks_cheapest_path() {
        let (g, s, a, b) = diamondish();
        let sp = shortest_paths(&g, s);
        assert_eq!(sp.dist(b), Some(3));
        assert_eq!(sp.path_to(b), Some(vec![s, a, b]));
    }

    #[test]
    fn root_distance_is_zero_with_empty_first_hop() {
        let (g, s, ..) = diamondish();
        let sp = shortest_paths(&g, s);
        assert_eq!(sp.dist(s), Some(0));
        assert_eq!(sp.first_hop(s), None);
        assert_eq!(sp.path_to(s), Some(vec![s]));
    }

    #[test]
    fn first_hop_matches_path() {
        let (g, s, a, b) = diamondish();
        let sp = shortest_paths(&g, s);
        assert_eq!(sp.first_hop(b), Some(a));
        assert_eq!(sp.first_hop(a), Some(a));
    }

    #[test]
    fn asymmetric_costs_give_asymmetric_distances() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 2, 7);
        assert_eq!(shortest_paths(&g, a).dist(b), Some(2));
        assert_eq!(shortest_paths(&g, b).dist(a), Some(7));
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let sp = shortest_paths(&g, a);
        assert_eq!(sp.dist(b), None);
        assert_eq!(sp.path_to(b), None);
        assert_eq!(sp.first_hop(b), None);
    }

    #[test]
    fn hosts_do_not_transit() {
        // a — h — b where the host path would be cheap, plus an expensive
        // router detour a — c — b. Traffic must take the detour.
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let c = g.add_router();
        let h = g.add_host(a, 1, 1);
        // Fake second attachment exists only in scenario builders; emulate
        // with a normal router link here: h cannot get one, so instead
        // verify the plain property: a's shortest path to b ignores h.
        g.add_link(a, c, 5, 5);
        g.add_link(c, b, 5, 5);
        let sp = shortest_paths(&g, a);
        assert_eq!(sp.dist(b), Some(10));
        assert_eq!(sp.path_to(b), Some(vec![a, c, b]));
        assert_eq!(sp.dist(h), Some(1));
    }

    #[test]
    fn host_as_root_can_emit() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 3, 3);
        let h = g.add_host(a, 2, 4);
        let sp = shortest_paths(&g, h);
        assert_eq!(sp.dist(b), Some(7)); // 4 (h→a) + 3 (a→b)
        assert_eq!(sp.path_to(b), Some(vec![h, a, b]));
    }

    #[test]
    fn dual_homed_host_does_not_open_a_shortcut() {
        use hbh_topo::scenarios;
        // In fig2, r1 attaches to both R2 and R3. A path S→R1→R3→r1→R2 must
        // not exist for routing purposes.
        let g = scenarios::fig2();
        let s = g.node_by_label("S").unwrap();
        let r2 = g.node_by_label("R2").unwrap();
        let sp = shortest_paths(&g, s);
        let path = sp.path_to(r2).unwrap();
        assert!(
            path.iter().all(|&n| !g.is_host(n) || n == s),
            "path to R2 crosses a host: {path:?}"
        );
    }

    #[test]
    fn equal_cost_tie_breaks_to_smaller_predecessor() {
        // s—a—t and s—b—t, all cost 1; a has the smaller id, so the path
        // via a must win deterministically.
        let mut g = Graph::new();
        let s = g.add_router();
        let a = g.add_router();
        let b = g.add_router();
        let t = g.add_router();
        g.add_link(s, a, 1, 1);
        g.add_link(s, b, 1, 1);
        g.add_link(a, t, 1, 1);
        g.add_link(b, t, 1, 1);
        let sp = shortest_paths(&g, s);
        assert_eq!(sp.path_to(t), Some(vec![s, a, t]));
    }

    #[test]
    fn inline_first_hops_match_reconstructed_paths() {
        use hbh_topo::scenarios;
        for g in [scenarios::fig2(), scenarios::fig3()] {
            for root in g.nodes() {
                let sp = shortest_paths(&g, root);
                for v in g.nodes() {
                    let expected = match sp.path_to(v) {
                        Some(p) if p.len() >= 2 => Some(p[1]),
                        _ => None,
                    };
                    assert_eq!(sp.first_hop(v), expected, "first hop {root}->{v}");
                }
            }
        }
    }

    #[test]
    fn fig2_routes_match_paper() {
        use hbh_topo::scenarios;
        let g = scenarios::fig2();
        let n = |l: &str| g.node_by_label(l).unwrap();
        let (s, r1, r2, r3, r4) = (n("S"), n("R1"), n("R2"), n("R3"), n("R4"));
        let (rx1, rx2, rx3) = (n("r1"), n("r2"), n("r3"));

        // Downstream routes.
        let from_s = shortest_paths(&g, s);
        assert_eq!(from_s.path_to(rx1), Some(vec![s, r1, r3, rx1]));
        assert_eq!(from_s.path_to(rx2), Some(vec![s, r4, rx2]));
        assert_eq!(from_s.path_to(rx3), Some(vec![s, r1, r3, rx3]));

        // Upstream routes.
        assert_eq!(
            shortest_paths(&g, rx1).path_to(s),
            Some(vec![rx1, r2, r1, s])
        );
        assert_eq!(
            shortest_paths(&g, rx2).path_to(s),
            Some(vec![rx2, r3, r1, s])
        );
        assert_eq!(
            shortest_paths(&g, rx3).path_to(s),
            Some(vec![rx3, r3, r1, s])
        );
    }

    #[test]
    fn fig3_routes_match_paper() {
        use hbh_topo::scenarios;
        let g = scenarios::fig3();
        let n = |l: &str| g.node_by_label(l).unwrap();
        let from_s = shortest_paths(&g, n("S"));
        assert_eq!(
            from_s.path_to(n("r1")),
            Some(vec![n("S"), n("R1"), n("R6"), n("R4"), n("r1")])
        );
        assert_eq!(
            from_s.path_to(n("r2")),
            Some(vec![n("S"), n("R1"), n("R6"), n("R5"), n("r2")])
        );
        assert_eq!(
            shortest_paths(&g, n("r1")).path_to(n("S")),
            Some(vec![n("r1"), n("R4"), n("R2"), n("R1"), n("S")])
        );
        assert_eq!(
            shortest_paths(&g, n("r2")).path_to(n("S")),
            Some(vec![n("r2"), n("R5"), n("R3"), n("R1"), n("S")])
        );
    }
}
