//! Demand-driven routing: the [`RouteProvider`] abstraction and its lazy
//! [`OnDemandRoutes`] implementation.
//!
//! The paper's scaling argument is that HBH routers keep state only where
//! trees actually pass — but the harness historically froze **all-pairs**
//! Dijkstra into an `n×n` next-hop array per scenario draw, O(n²) memory
//! and precompute that caps experiments near 50 routers. The fix mirrors
//! the protocol's own philosophy: routes are a *service*, computed when
//! first consulted and memoized per source.
//!
//! [`RouteProvider`] is the consumer-facing trait (`next_hop`, `dist`,
//! `path`); [`crate::RoutingTables`] implements it as the exact eager
//! fallback (bit-for-bit the historical behaviour, used for the paper's
//! n≤50 figures), and [`OnDemandRoutes`] implements it lazily: one forward
//! SPF row per *forwarding node actually consulted*, in an LRU with
//! deterministic eviction. Both run the same CSR Dijkstra with the same
//! tie-breaks, so on any (at, dst) pair they agree exactly — a property
//! test pins this, with and without failed elements.
//!
//! On a fault event [`OnDemandRoutes::rerouted`] derives the
//! post-failure provider. New failures invalidate only the cached rows
//! whose SPF tree actually touches a newly failed element (removing an
//! element can never improve an untouched tree, and tie-break winners stay
//! winners when a losing candidate disappears); any *restoration* flushes
//! the cache, since a returning element may improve arbitrary rows.

use crate::dijkstra::{shortest_paths_avoiding_csr_into, DijkstraScratch};
use hbh_topo::csr::Csr;
use hbh_topo::graph::{Graph, NodeId, PathCost};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Unicast route lookups, independent of how routes are materialized.
///
/// Implementations must agree with [`crate::dijkstra::shortest_paths`] on
/// every pair (same costs, same deterministic tie-breaks); they differ
/// only in *when* routes are computed and how much memory they pin.
pub trait RouteProvider {
    /// Number of nodes routes are answered for.
    fn node_count(&self) -> usize;

    /// The neighbor of `at` that a packet destined to `dst` leaves
    /// through. `None` if `at == dst` or `dst` is unreachable.
    fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId>;

    /// Cost of the shortest `from → to` path, `None` if unreachable.
    fn dist(&self, from: NodeId, to: NodeId) -> Option<PathCost>;

    /// The full unicast path `from → … → to` (inclusive), walked from the
    /// next hops exactly like a real packet would be forwarded.
    fn path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        self.dist(from, to)?;
        let n = self.node_count();
        let mut path = vec![from];
        let mut cur = from;
        while cur != to {
            cur = self.next_hop(cur, to)?;
            path.push(cur);
            assert!(path.len() <= n, "routing loop from {from} to {to}");
        }
        Some(path)
    }

    /// Cache behaviour counters; all zero for eager providers.
    fn route_stats(&self) -> RouteStats {
        RouteStats::default()
    }

    /// Heap bytes currently pinned by materialized route state.
    fn state_bytes(&self) -> usize;
}

/// Counters describing how a provider materialized its answers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// SPF rows computed (eager: one per node, up front).
    pub computed: u64,
    /// Lookups answered from a cached row.
    pub hits: u64,
    /// Lookups that had to compute a row first.
    pub misses: u64,
    /// Rows dropped by LRU capacity pressure.
    pub evicted: u64,
    /// Rows dropped because a fault event touched their tree.
    pub invalidated: u64,
    /// Rows resident right now.
    pub cached_rows: usize,
    /// Fault-epoch counter (bumped by every [`OnDemandRoutes::rerouted`]).
    pub generation: u64,
}

impl RouteStats {
    /// Fraction of lookups served without running an SPF.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl RouteProvider for crate::RoutingTables {
    fn node_count(&self) -> usize {
        self.node_count()
    }

    fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        crate::RoutingTables::next_hop(self, at, dst)
    }

    fn dist(&self, from: NodeId, to: NodeId) -> Option<PathCost> {
        crate::RoutingTables::dist(self, from, to)
    }

    fn path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        crate::RoutingTables::path(self, from, to)
    }

    fn route_stats(&self) -> RouteStats {
        let n = self.node_count() as u64;
        RouteStats {
            computed: n,
            cached_rows: self.node_count(),
            ..RouteStats::default()
        }
    }

    fn state_bytes(&self) -> usize {
        // dist: Vec<PathCost>, next: Vec<Option<NodeId>>, both n×n.
        let n = self.node_count();
        n * n * (size_of::<PathCost>() + size_of::<Option<NodeId>>())
    }
}

/// One memoized forward-SPF row: everything node `src` needs to answer
/// `next_hop(src, *)` / `dist(src, *)`, plus the predecessor tree used for
/// selective fault invalidation.
struct Row {
    /// `dist[v]` from the row's source (`u64::MAX` = unreachable).
    dist: Box<[PathCost]>,
    /// First hop toward `v` (`u32::MAX` = none).
    next: Box<[u32]>,
    /// SPF-tree predecessor of `v` (`u32::MAX` = none); consulted when a
    /// fault event asks "does this tree cross the failed edge?".
    pred: Box<[u32]>,
    /// LRU tick of the last lookup through this row.
    last_used: u64,
}

const NONE: u32 = u32::MAX;

impl Row {
    fn bytes(n: usize) -> usize {
        n * (size_of::<PathCost>() + 2 * size_of::<u32>())
    }
}

/// Everything behind the lock: the rows plus the counters and scratch that
/// mutate on lookups.
struct RowCache {
    rows: HashMap<u32, Row>,
    tick: u64,
    scratch: DijkstraScratch,
    stats: RouteStats,
}

/// Lazy per-source routing over a shared CSR view.
///
/// `next_hop(at, dst)` materializes the forward SPF row of `at` on first
/// consultation and memoizes it; subsequent lookups from `at` are O(1)
/// array reads. Memory therefore scales with the number of *forwarding
/// nodes actually consulted* (routers on active trees), not with n².
///
/// * **Capacity / eviction** — at most `capacity` rows stay resident; the
///   victim is the row with the smallest `(last_used, source)` pair, so
///   eviction (and everything downstream of it) is deterministic for a
///   fixed lookup sequence.
/// * **Faults** — the provider answers over the surviving topology
///   described by its node/edge masks; [`OnDemandRoutes::rerouted`]
///   derives the next fault epoch, carrying over every row the event
///   provably cannot have changed.
/// * **Sharing** — lookups take `&self` (interior mutability behind a
///   [`Mutex`]), so paired protocol runs sharing one network also share
///   one warm cache.
pub struct OnDemandRoutes {
    csr: Arc<Csr>,
    node_down: Vec<bool>,
    edge_down: Vec<bool>,
    capacity: usize,
    generation: u64,
    cache: Mutex<RowCache>,
}

impl OnDemandRoutes {
    /// Lazy routes over the full (fault-free) topology of `g`.
    pub fn new(g: &Graph, capacity: usize) -> Self {
        Self::from_csr(Arc::new(Csr::from_graph(g)), capacity)
    }

    /// Lazy routes over a pre-packed, shareable CSR view.
    pub fn from_csr(csr: Arc<Csr>, capacity: usize) -> Self {
        let n = csr.node_count();
        let m = csr.directed_edge_count();
        Self::with_masks(csr, vec![false; n], vec![false; m], capacity)
    }

    /// Lazy routes over the surviving topology: nodes/edges flagged in the
    /// masks are treated as absent, exactly like
    /// [`crate::RoutingTables::compute_avoiding`].
    ///
    /// # Panics
    /// Panics if a mask length does not match the CSR, or `capacity` is 0.
    pub fn with_masks(
        csr: Arc<Csr>,
        node_down: Vec<bool>,
        edge_down: Vec<bool>,
        capacity: usize,
    ) -> Self {
        assert_eq!(node_down.len(), csr.node_count(), "node mask length");
        assert_eq!(
            edge_down.len(),
            csr.directed_edge_count(),
            "edge mask length"
        );
        assert!(capacity > 0, "route cache needs room for at least one row");
        OnDemandRoutes {
            csr,
            node_down,
            edge_down,
            capacity,
            generation: 0,
            cache: Mutex::new(RowCache {
                rows: HashMap::new(),
                tick: 0,
                scratch: DijkstraScratch::default(),
                stats: RouteStats::default(),
            }),
        }
    }

    /// The CSR view this provider routes over.
    pub fn csr(&self) -> &Arc<Csr> {
        &self.csr
    }

    /// Derives the provider for the next fault epoch, reusing the CSR and
    /// every cached row the change provably leaves exact.
    ///
    /// A row (the forward SPF tree of one source) survives iff no *newly*
    /// failed node is reachable in it and no newly failed directed edge is
    /// one of its tree edges: removing elements the tree never touches
    /// cannot shorten any path, and a tie-break winner stays the winner
    /// when only losing candidates disappear. Any *restoration* (a mask
    /// bit going `true → false`) flushes the whole cache instead — a
    /// returning link may improve arbitrary rows. Cumulative stats carry
    /// over; the generation counter increments.
    pub fn rerouted(&self, node_down: Vec<bool>, edge_down: Vec<bool>) -> Self {
        assert_eq!(node_down.len(), self.node_down.len(), "node mask length");
        assert_eq!(edge_down.len(), self.edge_down.len(), "edge mask length");
        let mut old = self.cache.lock().unwrap();

        let restored = self
            .node_down
            .iter()
            .zip(&node_down)
            .any(|(&was, &is)| was && !is)
            || self
                .edge_down
                .iter()
                .zip(&edge_down)
                .any(|(&was, &is)| was && !is);

        let mut rows = HashMap::new();
        let mut stats = old.stats;
        if restored {
            stats.invalidated += old.rows.len() as u64;
        } else {
            let new_nodes: Vec<NodeId> = node_down
                .iter()
                .zip(&self.node_down)
                .enumerate()
                .filter(|(_, (&is, &was))| is && !was)
                .map(|(i, _)| NodeId(i as u32))
                .collect();
            let new_edges: Vec<(u32, u32)> = edge_down
                .iter()
                .zip(&self.edge_down)
                .enumerate()
                .filter(|(_, (&is, &was))| is && !was)
                .map(|(i, _)| {
                    let l = self.csr.edge_ends(hbh_topo::EdgeId(i as u32));
                    (l.from.0, l.to.0)
                })
                .collect();
            rows = std::mem::take(&mut old.rows);
            rows.retain(|_, row| {
                let touches_node = new_nodes
                    .iter()
                    .any(|v| row.dist[v.index()] != PathCost::MAX);
                let touches_edge = new_edges.iter().any(|&(f, t)| row.pred[t as usize] == f);
                let keep = !touches_node && !touches_edge;
                if !keep {
                    stats.invalidated += 1;
                }
                keep
            });
        }
        stats.cached_rows = rows.len();

        OnDemandRoutes {
            csr: Arc::clone(&self.csr),
            node_down,
            edge_down,
            capacity: self.capacity,
            generation: self.generation + 1,
            cache: Mutex::new(RowCache {
                rows,
                tick: old.tick,
                scratch: DijkstraScratch::default(),
                stats,
            }),
        }
    }

    /// Sources with a resident row, ascending (test introspection).
    pub fn cached_sources(&self) -> Vec<NodeId> {
        let c = self.cache.lock().unwrap();
        let mut v: Vec<u32> = c.rows.keys().copied().collect();
        v.sort_unstable();
        v.into_iter().map(NodeId).collect()
    }

    /// Runs `f` over the (possibly just materialized) row of `src`.
    fn with_row<R>(&self, src: NodeId, f: impl FnOnce(&Row) -> R) -> R {
        let c = &mut *self.cache.lock().unwrap();
        c.tick += 1;
        let tick = c.tick;
        if let Some(row) = c.rows.get_mut(&src.0) {
            row.last_used = tick;
            c.stats.hits += 1;
            return f(row);
        }
        c.stats.misses += 1;
        c.stats.computed += 1;

        shortest_paths_avoiding_csr_into(
            &self.csr,
            src,
            &mut c.scratch,
            &self.node_down,
            &self.edge_down,
        );
        let pack = |xs: &[Option<NodeId>]| -> Box<[u32]> {
            xs.iter().map(|x| x.map_or(NONE, |n| n.0)).collect()
        };
        let row = Row {
            dist: c.scratch.dist.as_slice().into(),
            next: pack(&c.scratch.first),
            pred: pack(&c.scratch.pred),
            last_used: tick,
        };

        if c.rows.len() >= self.capacity {
            // Deterministic LRU: oldest tick, ties to the smallest source.
            let victim = c
                .rows
                .iter()
                .map(|(&src, row)| (row.last_used, src))
                .min()
                .expect("capacity > 0 and cache full");
            c.rows.remove(&victim.1);
            c.stats.evicted += 1;
        }
        let r = f(c.rows.entry(src.0).or_insert(row));
        c.stats.cached_rows = c.rows.len();
        r
    }
}

impl RouteProvider for OnDemandRoutes {
    fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        self.with_row(at, |row| match row.next[dst.index()] {
            NONE => None,
            n => Some(NodeId(n)),
        })
    }

    fn dist(&self, from: NodeId, to: NodeId) -> Option<PathCost> {
        self.with_row(from, |row| match row.dist[to.index()] {
            PathCost::MAX => None,
            d => Some(d),
        })
    }

    fn route_stats(&self) -> RouteStats {
        let c = self.cache.lock().unwrap();
        RouteStats {
            cached_rows: c.rows.len(),
            generation: self.generation,
            ..c.stats
        }
    }

    fn state_bytes(&self) -> usize {
        let c = self.cache.lock().unwrap();
        c.rows.len() * Row::bytes(self.csr.node_count())
            + self.node_down.len()
            + self.edge_down.len()
    }
}

impl std::fmt::Debug for OnDemandRoutes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.route_stats();
        f.debug_struct("OnDemandRoutes")
            .field("nodes", &self.csr.node_count())
            .field("capacity", &self.capacity)
            .field("generation", &self.generation)
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingTables;
    use hbh_topo::costs;
    use hbh_topo::isp::isp_topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn isp(seed: u64) -> Graph {
        let mut g = isp_topology();
        costs::assign_paper_costs(&mut g, &mut StdRng::seed_from_u64(seed));
        g
    }

    #[test]
    fn agrees_with_eager_tables_on_isp() {
        let g = isp(5);
        let eager = RoutingTables::compute(&g);
        let lazy = OnDemandRoutes::new(&g, 64);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    RouteProvider::dist(&eager, u, v),
                    lazy.dist(u, v),
                    "dist {u}->{v}"
                );
                assert_eq!(
                    RouteProvider::next_hop(&eager, u, v),
                    lazy.next_hop(u, v),
                    "hop {u}->{v}"
                );
            }
        }
    }

    #[test]
    fn rows_materialize_lazily_and_hit_afterwards() {
        let g = isp(1);
        let lazy = OnDemandRoutes::new(&g, 64);
        let (a, b) = {
            let mut it = g.nodes();
            (it.next().unwrap(), it.nth(3).unwrap())
        };
        assert_eq!(lazy.route_stats().computed, 0);
        lazy.next_hop(a, b);
        let s = lazy.route_stats();
        assert_eq!((s.computed, s.misses, s.hits, s.cached_rows), (1, 1, 0, 1));
        lazy.dist(a, b);
        lazy.next_hop(a, g.nodes().nth(7).unwrap());
        let s = lazy.route_stats();
        assert_eq!((s.computed, s.misses, s.hits), (1, 1, 2));
        assert!(s.hit_rate() > 0.6);
    }

    #[test]
    fn capacity_evicts_deterministically() {
        let g = isp(2);
        let lazy = OnDemandRoutes::new(&g, 2);
        let nodes: Vec<NodeId> = g.nodes().collect();
        lazy.dist(nodes[0], nodes[5]); // tick 1
        lazy.dist(nodes[1], nodes[5]); // tick 2
        lazy.dist(nodes[0], nodes[6]); // tick 3: refreshes row 0
        lazy.dist(nodes[2], nodes[5]); // tick 4: must evict row 1 (oldest)
        assert_eq!(lazy.cached_sources(), vec![nodes[0], nodes[2]]);
        assert_eq!(lazy.route_stats().evicted, 1);
    }

    #[test]
    fn path_walks_next_hops() {
        let g = isp(3);
        let eager = RoutingTables::compute(&g);
        let lazy = OnDemandRoutes::new(&g, 64);
        for u in g.nodes().take(6) {
            for v in g.nodes().take(6) {
                assert_eq!(eager.path(u, v), RouteProvider::path(&lazy, u, v));
            }
        }
    }

    #[test]
    fn masked_provider_matches_compute_avoiding() {
        let g = isp(4);
        let victim = g.nodes().nth(2).unwrap();
        let mut node_down = vec![false; g.node_count()];
        node_down[victim.index()] = true;
        let edge_down = vec![false; g.directed_edge_count()];
        let eager = RoutingTables::compute_avoiding(&g, &node_down, &edge_down);
        let lazy =
            OnDemandRoutes::with_masks(Arc::new(Csr::from_graph(&g)), node_down, edge_down, 64);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    RouteProvider::dist(&eager, u, v),
                    lazy.dist(u, v),
                    "dist {u}->{v}"
                );
                assert_eq!(
                    RouteProvider::next_hop(&eager, u, v),
                    lazy.next_hop(u, v),
                    "hop {u}->{v}"
                );
            }
        }
    }

    #[test]
    fn rerouted_keeps_untouched_rows_and_drops_touched_ones() {
        let g = isp(6);
        let lazy = OnDemandRoutes::new(&g, 64);
        let nodes: Vec<NodeId> = g.nodes().collect();
        // Materialize every row, then fail one router.
        for &u in &nodes {
            lazy.dist(u, nodes[0]);
        }
        let victim = nodes[3];
        let mut node_down = vec![false; g.node_count()];
        node_down[victim.index()] = true;
        let next = lazy.rerouted(node_down.clone(), vec![false; g.directed_edge_count()]);
        assert_eq!(next.route_stats().generation, 1);
        // The ISP backbone is connected: every router's SPF reaches the
        // victim, so every router row must have been invalidated. Host
        // rows reach it too — cache must be empty.
        assert_eq!(next.cached_sources(), vec![]);
        // Surviving answers equal a fresh masked computation.
        let fresh = RoutingTables::compute_avoiding(
            &g,
            &node_down,
            &vec![false; g.directed_edge_count()][..],
        );
        for &u in &nodes {
            for &v in &nodes {
                assert_eq!(RouteProvider::dist(&fresh, u, v), next.dist(u, v));
            }
        }
    }

    #[test]
    fn restoration_flushes_the_cache() {
        let g = isp(7);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let mut node_down = vec![false; g.node_count()];
        node_down[nodes[3].index()] = true;
        let masked = OnDemandRoutes::with_masks(
            Arc::new(Csr::from_graph(&g)),
            node_down,
            vec![false; g.directed_edge_count()],
            64,
        );
        masked.dist(nodes[0], nodes[1]);
        assert_eq!(masked.cached_sources().len(), 1);
        // Bring the router back: all rows must go (they may improve).
        let healed = masked.rerouted(
            vec![false; g.node_count()],
            vec![false; g.directed_edge_count()],
        );
        assert_eq!(healed.cached_sources(), vec![]);
        let plain = RoutingTables::compute(&g);
        for &u in nodes.iter().take(5) {
            for &v in nodes.iter().take(5) {
                assert_eq!(RouteProvider::dist(&plain, u, v), healed.dist(u, v));
            }
        }
    }

    #[test]
    fn pinned_seed_eviction_and_recompute_is_deterministic() {
        use rand::RngExt;
        // Two independent providers fed the identical pseudorandom lookup
        // stream (pinned seed, capacity far below the working set) must
        // agree on every answer, every counter, and the resident set —
        // i.e. eviction + recompute is a pure function of the sequence.
        let g = isp(9);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let a = OnDemandRoutes::new(&g, 3);
        let b = OnDemandRoutes::new(&g, 3);
        let mut rng = StdRng::seed_from_u64(0xCAC4E);
        for _ in 0..200 {
            let u = nodes[rng.random_range(0..nodes.len())];
            let v = nodes[rng.random_range(0..nodes.len())];
            assert_eq!(a.next_hop(u, v), b.next_hop(u, v), "hop {u}->{v}");
            assert_eq!(a.dist(u, v), b.dist(u, v), "dist {u}->{v}");
        }
        assert_eq!(a.route_stats(), b.route_stats());
        assert_eq!(a.cached_sources(), b.cached_sources());
        let s = a.route_stats();
        assert!(
            s.evicted > 0,
            "capacity 3 must have evicted under 200 lookups"
        );
        assert_eq!(s.cached_rows, 3);
    }

    #[test]
    fn eager_provider_reports_full_footprint() {
        let g = isp(8);
        let t = RoutingTables::compute(&g);
        let n = g.node_count();
        assert_eq!(
            RouteProvider::state_bytes(&t),
            n * n * (size_of::<PathCost>() + size_of::<Option<NodeId>>())
        );
        let lazy = OnDemandRoutes::new(&g, 64);
        lazy.dist(g.nodes().next().unwrap(), g.nodes().nth(1).unwrap());
        assert!(lazy.state_bytes() < RouteProvider::state_bytes(&t));
    }
}
