//! All-pairs forwarding tables.
//!
//! [`RoutingTables`] is the unicast forwarding state every simulated node
//! consults: `next_hop(at, dst)` answers "which neighbor does a packet for
//! `dst` leave through?". It is computed once per cost assignment by
//! running [`crate::dijkstra`] from every node — NS-2's static routing does
//! the same before the simulation starts.

use crate::dijkstra::{shortest_paths_avoiding_csr_into, shortest_paths_csr_into, DijkstraScratch};
use hbh_topo::csr::Csr;
use hbh_topo::graph::{Graph, NodeId, PathCost};

/// Precomputed all-pairs routing: distances and next hops.
///
/// ```
/// use hbh_topo::graph::Graph;
/// use hbh_routing::RoutingTables;
///
/// let mut g = Graph::new();
/// let a = g.add_router();
/// let b = g.add_router();
/// let c = g.add_router();
/// g.add_link(a, b, 1, 9);
/// g.add_link(b, c, 1, 9);
/// g.add_link(a, c, 5, 5); // direct but pricier than a→b→c
///
/// let t = RoutingTables::compute(&g);
/// assert_eq!(t.dist(a, c), Some(2));
/// assert_eq!(t.path(a, c), Some(vec![a, b, c]));
/// // The reverse direction is asymmetric: the direct link wins.
/// assert_eq!(t.path(c, a), Some(vec![c, a]));
/// ```
#[derive(Clone, Debug)]
pub struct RoutingTables {
    n: usize,
    /// `dist[u * n + v]`, `u64::MAX` when unreachable.
    dist: Vec<PathCost>,
    /// `next[u * n + v]` = neighbor of `u` on the shortest `u → v` path.
    next: Vec<Option<NodeId>>,
}

impl RoutingTables {
    /// Builds the tables for the current costs of `g`.
    ///
    /// The graph is packed into a [`Csr`] once, then one Dijkstra run per
    /// node, all sharing one scratch buffer. Each search resolves first
    /// hops inline, so a table row is a plain copy of the search result —
    /// no per-row sort or path reconstruction.
    pub fn compute(g: &Graph) -> Self {
        Self::compute_csr(&Csr::from_graph(g))
    }

    /// [`RoutingTables::compute`] over a pre-packed CSR view.
    pub fn compute_csr(csr: &Csr) -> Self {
        let n = csr.node_count();
        let mut dist = vec![PathCost::MAX; n * n];
        let mut next = vec![None; n * n];
        let mut scratch = DijkstraScratch::default();
        for u in 0..n {
            let u = NodeId(u as u32);
            shortest_paths_csr_into(csr, u, &mut scratch);
            let row = u.index() * n;
            dist[row..row + n].copy_from_slice(&scratch.dist);
            next[row..row + n].copy_from_slice(&scratch.first);
        }
        RoutingTables { n, dist, next }
    }

    /// [`RoutingTables::compute`] over the *surviving* topology: nodes
    /// flagged in `node_down` and directed edges flagged in `edge_down` are
    /// treated as absent. This models instantaneous unicast reconvergence
    /// after a failure — the substrate the multicast protocols repair on
    /// top of. Rows of down nodes are fully unreachable (a crashed router
    /// neither originates nor receives).
    ///
    /// With all-false masks the result is identical to
    /// [`RoutingTables::compute`] (same searches, same tie-breaks), which
    /// the fault-free equivalence tests pin.
    ///
    /// # Panics
    /// Panics if a mask length does not match the graph.
    pub fn compute_avoiding(g: &Graph, node_down: &[bool], edge_down: &[bool]) -> Self {
        let mut scratch = DijkstraScratch::default();
        Self::compute_avoiding_with(g, node_down, edge_down, &mut scratch)
    }

    /// [`RoutingTables::compute_avoiding`] with caller-held scratch, for
    /// call sites that reroute repeatedly (one reroute per fault event in a
    /// churn run): the n searches of one call *and* every subsequent call
    /// reuse the same buffers instead of reallocating per source.
    pub fn compute_avoiding_with(
        g: &Graph,
        node_down: &[bool],
        edge_down: &[bool],
        scratch: &mut DijkstraScratch,
    ) -> Self {
        assert_eq!(node_down.len(), g.node_count(), "node mask length");
        assert_eq!(edge_down.len(), g.directed_edge_count(), "edge mask length");
        Self::compute_avoiding_csr_with(&Csr::from_graph(g), node_down, edge_down, scratch)
    }

    /// [`RoutingTables::compute_avoiding_with`] over a pre-packed CSR view
    /// (the fault-reroute hot path packs once per topology and reuses it
    /// across every fault event).
    pub fn compute_avoiding_csr_with(
        csr: &Csr,
        node_down: &[bool],
        edge_down: &[bool],
        scratch: &mut DijkstraScratch,
    ) -> Self {
        assert_eq!(node_down.len(), csr.node_count(), "node mask length");
        assert_eq!(
            edge_down.len(),
            csr.directed_edge_count(),
            "edge mask length"
        );
        let n = csr.node_count();
        let mut dist = vec![PathCost::MAX; n * n];
        let mut next = vec![None; n * n];
        for u in 0..n {
            let u = NodeId(u as u32);
            if node_down[u.index()] {
                continue; // row stays unreachable
            }
            shortest_paths_avoiding_csr_into(csr, u, scratch, node_down, edge_down);
            let row = u.index() * n;
            dist[row..row + n].copy_from_slice(&scratch.dist);
            next[row..row + n].copy_from_slice(&scratch.first);
        }
        RoutingTables { n, dist, next }
    }

    /// Number of nodes the tables were built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Cost of the shortest `from → to` path.
    pub fn dist(&self, from: NodeId, to: NodeId) -> Option<PathCost> {
        match self.dist[from.index() * self.n + to.index()] {
            PathCost::MAX => None,
            d => Some(d),
        }
    }

    /// The neighbor of `at` that a packet destined to `dst` leaves through.
    /// `None` if `at == dst` or `dst` is unreachable.
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        self.next[at.index() * self.n + dst.index()]
    }

    /// The full unicast path `from → … → to` (inclusive), walked from the
    /// next-hop tables exactly like a real packet would be forwarded.
    pub fn path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        self.dist(from, to)?;
        let mut path = vec![from];
        let mut cur = from;
        while cur != to {
            cur = self.next_hop(cur, to)?;
            path.push(cur);
            assert!(path.len() <= self.n, "routing loop from {from} to {to}");
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbh_topo::costs;
    use hbh_topo::graph::Graph;
    use hbh_topo::isp::isp_topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..4).map(|_| g.add_router()).collect();
        g.add_link(nodes[0], nodes[1], 1, 2);
        g.add_link(nodes[1], nodes[2], 3, 4);
        g.add_link(nodes[2], nodes[3], 5, 6);
        (g, nodes)
    }

    #[test]
    fn next_hop_walks_the_line() {
        let (g, n) = line();
        let t = RoutingTables::compute(&g);
        assert_eq!(t.next_hop(n[0], n[3]), Some(n[1]));
        assert_eq!(t.next_hop(n[1], n[3]), Some(n[2]));
        assert_eq!(t.next_hop(n[2], n[3]), Some(n[3]));
        assert_eq!(t.next_hop(n[3], n[3]), None);
    }

    #[test]
    fn distances_are_directional() {
        let (g, n) = line();
        let t = RoutingTables::compute(&g);
        assert_eq!(t.dist(n[0], n[3]), Some(1 + 3 + 5));
        assert_eq!(t.dist(n[3], n[0]), Some(6 + 4 + 2));
    }

    #[test]
    fn path_reconstruction_matches_next_hops() {
        let (g, n) = line();
        let t = RoutingTables::compute(&g);
        assert_eq!(t.path(n[0], n[3]), Some(vec![n[0], n[1], n[2], n[3]]));
        assert_eq!(t.path(n[2], n[2]), Some(vec![n[2]]));
    }

    #[test]
    fn unreachable_pairs_are_none() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let t = RoutingTables::compute(&g);
        assert_eq!(t.dist(a, b), None);
        assert_eq!(t.next_hop(a, b), None);
        assert_eq!(t.path(a, b), None);
    }

    #[test]
    fn tables_agree_with_dijkstra_on_isp() {
        let mut g = isp_topology();
        costs::assign_paper_costs(&mut g, &mut StdRng::seed_from_u64(11));
        let t = RoutingTables::compute(&g);
        for u in g.nodes() {
            let sp = crate::dijkstra::shortest_paths(&g, u);
            for v in g.nodes() {
                assert_eq!(t.dist(u, v), sp.dist(v), "dist {u}->{v}");
                if u != v {
                    assert_eq!(
                        t.path(u, v),
                        sp.path_to(v),
                        "path {u}->{v} diverges from Dijkstra"
                    );
                }
            }
        }
    }

    #[test]
    fn path_costs_sum_to_table_distance() {
        let mut g = isp_topology();
        costs::assign_paper_costs(&mut g, &mut StdRng::seed_from_u64(3));
        let t = RoutingTables::compute(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let path = t.path(u, v).expect("ISP topology is connected");
                let sum: PathCost = path
                    .windows(2)
                    .map(|w| PathCost::from(g.cost(w[0], w[1]).unwrap()))
                    .sum();
                assert_eq!(Some(sum), t.dist(u, v));
            }
        }
    }

    #[test]
    fn avoiding_nothing_equals_plain_compute() {
        let mut g = isp_topology();
        costs::assign_paper_costs(&mut g, &mut StdRng::seed_from_u64(7));
        let plain = RoutingTables::compute(&g);
        let masked = RoutingTables::compute_avoiding(
            &g,
            &vec![false; g.node_count()][..],
            &vec![false; g.directed_edge_count()][..],
        );
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(plain.dist(u, v), masked.dist(u, v), "dist {u}->{v}");
                assert_eq!(plain.next_hop(u, v), masked.next_hop(u, v), "hop {u}->{v}");
            }
        }
    }

    #[test]
    fn avoiding_a_node_routes_around_it() {
        // 0 - 1 - 3 (cheap via 1) with a detour 0 - 2 - 3; fail node 1.
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let c = g.add_router();
        let d = g.add_router();
        g.add_link(a, b, 1, 1);
        g.add_link(b, d, 1, 1);
        g.add_link(a, c, 5, 5);
        g.add_link(c, d, 5, 5);
        let mut node_down = vec![false; g.node_count()];
        node_down[b.index()] = true;
        let t = RoutingTables::compute_avoiding(&g, &node_down, &[false; 8]);
        assert_eq!(t.path(a, d), Some(vec![a, c, d]));
        assert_eq!(t.dist(a, b), None, "down node is unreachable");
        assert_eq!(t.dist(b, d), None, "down node originates nothing");
    }

    #[test]
    fn avoiding_an_edge_is_directional_per_mask() {
        let (g, n) = line();
        // Fail both directions of the 0-1 link: 3 becomes unreachable
        // from 0 and vice versa.
        let mut edge_down = vec![false; g.directed_edge_count()];
        let (e01, _) = g.edge_entry(n[0], n[1]).unwrap();
        let (e10, _) = g.edge_entry(n[1], n[0]).unwrap();
        edge_down[e01.index()] = true;
        edge_down[e10.index()] = true;
        let t = RoutingTables::compute_avoiding(&g, &vec![false; g.node_count()][..], &edge_down);
        assert_eq!(t.dist(n[0], n[3]), None);
        assert_eq!(t.dist(n[3], n[0]), None);
        assert_eq!(t.dist(n[1], n[3]), Some(3 + 5), "rest of the line intact");
    }

    #[test]
    fn recompute_after_cost_change_shifts_routes() {
        let (mut g, n) = line();
        let before = RoutingTables::compute(&g);
        assert_eq!(before.dist(n[0], n[1]), Some(1));
        g.set_cost(n[0], n[1], 9);
        let after = RoutingTables::compute(&g);
        assert_eq!(after.dist(n[0], n[1]), Some(9));
    }
}
