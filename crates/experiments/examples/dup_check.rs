//! Diagnostic: converge REUNITE on one scenario, dump the table state and
//! the data-plane trace (used while chasing duplicate-delivery bugs).

use hbh_experiments::runner::{build_kernel, converge, probe_window};
use hbh_experiments::scenario::{build, ScenarioOptions, TopologyKind};
use hbh_proto_base::{Cmd, Timing};
use hbh_reunite::Reunite;
use hbh_sim_core::trace::TraceKind;
use hbh_sim_core::PacketClass;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(11);
    let group: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let timing = Timing::default();
    let sc = build(
        TopologyKind::Isp,
        group,
        seed,
        &timing,
        &ScenarioOptions::default(),
    );
    println!("source: {}  receivers: {:?}", sc.source, sc.receivers);

    let (mut k, ch) = build_kernel(Reunite::new(timing), &sc);
    let ok = converge(&mut k, &timing, sc.join_window);
    println!("converged: {ok} at {}", k.now());
    let now = k.now();
    for node in k.network().graph().nodes() {
        let st = k.state(node);
        if let Some(mft) = st.mft(ch) {
            let live: Vec<String> = mft.live(now).map(|n| n.to_string()).collect();
            println!(
                "{node}: MFT dst={} live={live:?} stale_flag={} dst_stale={}",
                mft.dst(),
                mft.is_stale_flagged(),
                mft.dst_is_stale(now)
            );
        } else if let Some(mct) = st.mct(ch) {
            let live: Vec<String> = mct.live(now).map(|n| n.to_string()).collect();
            println!("{node}: MCT {live:?}");
        }
    }
    k.enable_trace();
    let t = k.now();
    k.command_at(sc.source, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + probe_window(k.network()));
    for rec in k.take_trace() {
        match &rec.what {
            TraceKind::Sent { to, pkt } if pkt.class == PacketClass::Data => {
                println!(
                    "[{}] {} --data--> {} (dst {})",
                    rec.at, rec.node, to, pkt.dst
                );
            }
            TraceKind::Delivered { tag } => {
                println!("[{}] {} DELIVER tag={tag}", rec.at, rec.node);
            }
            _ => {}
        }
    }
}
