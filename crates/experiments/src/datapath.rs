//! Data-path reconstruction from kernel traces.
//!
//! The kernel records every link transit of a tagged probe; this module
//! rebuilds the exact node sequence each receiver's copy travelled. That
//! is a stronger instrument than comparing delays: two different paths
//! can coincidentally have equal cost, but the stability experiment's
//! "did anyone's *route* change?" question needs path identity.

use hbh_proto_base::Cmd;
use hbh_sim_core::trace::TraceKind;
use hbh_sim_core::{Kernel, PacketClass, Protocol, Time};
use hbh_topo::graph::NodeId;
use std::collections::BTreeMap;

/// The data-plane transits of one probe, as a link multiset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DataTransits {
    /// `(from, to) → copies` for the probe.
    pub links: BTreeMap<(NodeId, NodeId), u64>,
    /// Delivery times per receiver.
    pub delivered: BTreeMap<NodeId, Time>,
}

impl DataTransits {
    /// Collects the transits of probe `tag` from a drained trace.
    pub fn from_trace<M: Clone + std::fmt::Debug>(
        trace: &[hbh_sim_core::trace::TraceRecord<M>],
        tag: u64,
    ) -> Self {
        let mut out = DataTransits::default();
        for rec in trace {
            match &rec.what {
                TraceKind::Sent { to, pkt } if pkt.class == PacketClass::Data && pkt.tag == tag => {
                    *out.links.entry((rec.node, *to)).or_insert(0) += 1;
                }
                TraceKind::Delivered { tag: t } if *t == tag => {
                    out.delivered.insert(rec.node, rec.at);
                }
                _ => {}
            }
        }
        out
    }

    /// Reconstructs the node path to `receiver` by walking the link
    /// multiset backward from the receiver (each node on a delivery path
    /// has exactly one incoming probe link in a duplicate-free tree;
    /// when duplicates exist the lexicographically smallest predecessor is
    /// taken, keeping the result deterministic).
    pub fn path_to(&self, receiver: NodeId) -> Option<Vec<NodeId>> {
        self.delivered.get(&receiver)?;
        let mut path = vec![receiver];
        let mut cur = receiver;
        loop {
            let mut preds = self
                .links
                .keys()
                .filter(|&&(_, to)| to == cur)
                .map(|&(from, _)| from);
            let Some(prev) = preds.next() else {
                break; // reached the source (no incoming probe link)
            };
            if path.contains(&prev) {
                break; // defensive: malformed multiset, avoid looping
            }
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        Some(path)
    }

    /// Total copies (= the tree-cost metric, cross-checkable against the
    /// kernel's own accounting).
    pub fn total_copies(&self) -> u64 {
        self.links.values().sum()
    }
}

/// Convenience: probe a converged kernel with tracing and return the
/// reconstructed transits. The kernel's trace buffer is drained.
pub fn traced_probe<P: Protocol<Command = Cmd>>(
    k: &mut Kernel<P>,
    ch: hbh_proto_base::Channel,
    tag: u64,
) -> DataTransits {
    k.enable_trace();
    let _ = k.take_trace();
    let t = k.now();
    k.command_at(ch.source, Cmd::SendData { ch, tag }, t);
    let window = crate::runner::probe_window(k.network());
    k.run_until(t + window);
    let trace = k.take_trace();
    DataTransits::from_trace(&trace, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{build_kernel, converge};
    use crate::scenario::{build, ScenarioOptions, TopologyKind};
    use hbh_proto::Hbh;
    use hbh_proto_base::Timing;
    use hbh_routing::RoutingTables;

    fn transits(seed: u64) -> (DataTransits, crate::scenario::Scenario) {
        let timing = Timing::default();
        let sc = build(
            TopologyKind::Isp,
            6,
            seed,
            &timing,
            &ScenarioOptions::default(),
        );
        let (mut k, ch) = build_kernel(Hbh::new(timing), &sc);
        converge(&mut k, &timing, sc.join_window);
        (traced_probe(&mut k, ch, 1), sc)
    }

    #[test]
    fn reconstructed_paths_are_exactly_the_unicast_shortest_paths() {
        let (tr, sc) = transits(3);
        let tables = RoutingTables::compute(sc.graph());
        for &r in &sc.receivers {
            let path = tr.path_to(r).expect("receiver served");
            assert_eq!(
                Some(path),
                tables.path(sc.source, r),
                "HBH data path to {r} differs from the unicast SPT path"
            );
        }
    }

    #[test]
    fn total_copies_matches_kernel_accounting() {
        let timing = Timing::default();
        let sc = build(
            TopologyKind::Isp,
            8,
            5,
            &timing,
            &ScenarioOptions::default(),
        );
        let (mut k, ch) = build_kernel(Hbh::new(timing), &sc);
        converge(&mut k, &timing, sc.join_window);
        let tr = traced_probe(&mut k, ch, 7);
        assert_eq!(tr.total_copies(), k.stats().data_copies_tagged(7));
    }

    #[test]
    fn unserved_receiver_has_no_path() {
        let (tr, _) = transits(4);
        assert_eq!(
            tr.path_to(hbh_topo::graph::NodeId(0)),
            None,
            "router never delivers"
        );
    }
}
