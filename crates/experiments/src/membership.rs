//! Membership-scale study: how control traffic and per-router state
//! respond to internet-scale group dynamics.
//!
//! Three workloads drive the hierarchy topology through the [`Workload`]
//! API, paired across protocol arms exactly like the figure sweeps:
//!
//! * **flash crowd** — every receiver joins inside one tree period, the
//!   worst-case join storm (a popular event going live);
//! * **zipf** — receivers spread over channels with Zipf(α) popularity,
//!   the steady-state load of a channel lineup;
//! * **zapping** — IPTV viewers hopping between channels, a sustained
//!   join/leave churn on every channel at once.
//!
//! Per arm we report the control-message volume, the *settle latency*
//! (how long after the schedule until a probe reaches every expected
//! receiver), and per-router state. State is split by role: **interior**
//! routers (no member hosts attached) hold only tree state, which the
//! aggregated HBH variant keeps O(interfaces); **access** routers
//! additionally hold the compressed per-member summary (12 bytes per
//! live host), the irreducible membership record. The storm sweep drives
//! HBH-AGG alone to 10⁵ receivers and fits the growth exponent of the
//! interior maximum — the sublinearity acceptance number.

use crate::protocols::{dispatch, ProtocolKind, Study};
use crate::runner::{converge, probe_tolerant, probe_window};
use crate::scenario::Scenario;
use hbh_proto_base::{Channel, Cmd, Timing, Workload};
use hbh_sim_core::{Kernel, Network, Protocol, Time};
use hbh_topo::costs;
use hbh_topo::graph::{Graph, NodeId};
use hbh_topo::hier::{attach_hosts, hierarchical, TierSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;
use std::time::Instant;

/// One membership sweep: topology shape, workload knobs, and arms.
#[derive(Clone, Debug)]
pub struct MembershipConfig {
    /// Routers per tier (see [`TierSpec`]).
    pub spec: TierSpec,
    /// End hosts attached round-robin to the access tier.
    pub hosts: usize,
    /// Receivers (flash crowd) / viewers (zipf, zapping) in the
    /// protocol-comparison workloads.
    pub group_size: usize,
    /// Channel lineup size for the multi-channel workloads.
    pub channels: u32,
    /// Zipf popularity exponent.
    pub zipf_exponent: f64,
    /// Channel switches per viewer in the zapping workload.
    pub zaps: usize,
    /// Flash-crowd sizes for the HBH-AGG storm sweep (ascending).
    pub storm_sizes: Vec<usize>,
    pub base_seed: u64,
    /// LRU capacity of the on-demand route cache, in SPF rows.
    pub cache_rows: usize,
    pub timing: Timing,
    /// Protocol arms for the comparison workloads.
    pub protocols: Vec<ProtocolKind>,
}

impl MembershipConfig {
    /// CI-sized configuration: the full code path (hierarchy, workloads,
    /// storm sweep, state split) in seconds.
    pub fn smoke() -> Self {
        MembershipConfig {
            spec: TierSpec {
                ases: 2,
                pops_per_as: 3,
                access_per_pop: 2,
            },
            hosts: 240,
            group_size: 24,
            channels: 4,
            zipf_exponent: 1.0,
            zaps: 2,
            storm_sizes: vec![40, 160],
            base_seed: 7,
            cache_rows: 256,
            timing: Timing::default(),
            protocols: ProtocolKind::MEMBERSHIP_ARMS.to_vec(),
        }
    }

    /// The acceptance-scale configuration: 5,020 routers, 120k hosts,
    /// storm sweep to 10⁵ receivers inside one tree period.
    pub fn full() -> Self {
        MembershipConfig {
            spec: TierSpec {
                ases: 20,
                pops_per_as: 10,
                access_per_pop: 24,
            },
            hosts: 120_000,
            group_size: 256,
            channels: 8,
            zipf_exponent: 1.0,
            zaps: 3,
            storm_sizes: vec![1_000, 10_000, 100_000],
            base_seed: 7,
            cache_rows: 4096,
            timing: Timing::default(),
            protocols: ProtocolKind::MEMBERSHIP_ARMS.to_vec(),
        }
    }

    /// Total routers this configuration builds.
    pub fn router_count(&self) -> usize {
        self.spec.router_count()
    }

    /// The three comparison workloads, by name.
    pub fn workloads(&self) -> Vec<(&'static str, Workload)> {
        vec![
            (
                "flash_crowd",
                Workload::flash_crowd(self.group_size, Time(0)),
            ),
            (
                "zipf",
                Workload::zipf(self.group_size, self.channels, self.zipf_exponent),
            ),
            (
                "zapping",
                Workload::zapping(self.group_size, self.channels, self.zaps),
            ),
        ]
    }
}

/// What one kernel run of a membership workload measured.
#[derive(Clone, Debug)]
pub struct MembershipOutcome {
    /// Expected primary-channel members once the schedule played out.
    pub expected: usize,
    /// How many of them the final probe reached.
    pub served: usize,
    /// Whether structural changes quiesced before probing.
    pub converged: bool,
    /// Time from the end of convergence until a probe reached everyone
    /// (`None` = never within the deadline).
    pub settle_latency: Option<u64>,
    /// Control-plane copies over the whole run.
    pub control_copies: u64,
    /// Kernel events dispatched.
    pub events: u64,
    /// Max state bytes over routers with no member hosts attached
    /// (pure tree state — the sublinearity claim lives here).
    pub interior_state_max: usize,
    /// Mean state bytes over interior routers.
    pub interior_state_mean: f64,
    /// Max state bytes over the member-facing access routers (includes
    /// the per-member summary, irreducibly O(local members)).
    pub access_state_max: usize,
}

impl MembershipOutcome {
    /// True when every expected receiver was served.
    pub fn complete(&self) -> bool {
        self.served == self.expected
    }

    /// Control copies per expected receiver.
    pub fn control_per_receiver(&self) -> f64 {
        self.control_copies as f64 / self.expected.max(1) as f64
    }
}

/// The membership study: converge, settle-probe, then split per-router
/// state by role.
pub struct MembershipStudy;

impl Study for MembershipStudy {
    type Out = MembershipOutcome;

    fn run<P>(
        &self,
        mut k: Kernel<P>,
        ch: Channel,
        scenario: &Scenario,
        timing: &Timing,
    ) -> MembershipOutcome
    where
        P: Protocol<Command = Cmd>,
        P::NodeState: hbh_proto_base::StateInventory,
    {
        // Script-driven workloads (zapping) stretch past the join window;
        // converge over whichever horizon is longer.
        let horizon = scenario.join_window.max(scenario.script.duration().0);
        let converged = converge(&mut k, timing, horizon);

        // Settle loop: probe once per tree period until every expected
        // receiver is served (tolerant — trees mid-decay may duplicate).
        let window = probe_window(k.network());
        let settle_start = k.now();
        let deadline = settle_start + 8 * timing.t2 + 8 * timing.tree_period;
        let mut settle_latency = None;
        let mut served;
        let mut tag = 100;
        loop {
            let (delays, _) = probe_tolerant(&mut k, ch, tag, window);
            tag += 1;
            served = scenario
                .receivers
                .iter()
                .filter(|r| delays.contains_key(r))
                .count();
            if served == scenario.receivers.len() {
                settle_latency = Some(k.now().0.saturating_sub(settle_start.0));
                break;
            }
            if k.now() > deadline {
                break;
            }
            let next = k.now() + timing.tree_period;
            k.run_until(next);
        }

        use hbh_proto_base::StateInventory;
        let g = k.network().graph();
        let member_access: BTreeSet<NodeId> = scenario
            .receivers
            .iter()
            .map(|&r| g.host_router(r))
            .collect();
        let mut interior_max = 0usize;
        let mut interior_sum = 0usize;
        let mut interior_count = 0usize;
        let mut access_max = 0usize;
        for r in g.routers() {
            let bytes = k.state(r).state_bytes(ch);
            if member_access.contains(&r) {
                access_max = access_max.max(bytes);
            } else {
                interior_max = interior_max.max(bytes);
                interior_sum += bytes;
                interior_count += 1;
            }
        }

        MembershipOutcome {
            expected: scenario.receivers.len(),
            served,
            converged,
            settle_latency,
            control_copies: k.stats().control_copies(),
            events: k.stats().events,
            interior_state_max: interior_max,
            interior_state_mean: interior_sum as f64 / interior_count.max(1) as f64,
            access_state_max: access_max,
        }
    }
}

/// One (workload, protocol) cell of the comparison matrix.
#[derive(Clone, Debug)]
pub struct WorkloadArm {
    pub workload: &'static str,
    pub kind: ProtocolKind,
    pub outcome: MembershipOutcome,
}

/// One point of the HBH-AGG flash-crowd storm sweep.
#[derive(Clone, Debug)]
pub struct StormPoint {
    pub receivers: usize,
    pub outcome: MembershipOutcome,
}

/// Result of a membership sweep, ready for JSON serialization.
#[derive(Clone, Debug)]
pub struct MembershipReport {
    pub routers: usize,
    pub hosts: usize,
    pub group_size: usize,
    pub channels: u32,
    pub comparison: Vec<WorkloadArm>,
    pub storm: Vec<StormPoint>,
    pub wall_secs: f64,
    pub events: u64,
}

impl MembershipReport {
    /// Comparison cells where not every receiver was served.
    pub fn incomplete(&self) -> u64 {
        self.comparison
            .iter()
            .filter(|a| !a.outcome.complete())
            .count() as u64
            + self.storm.iter().filter(|p| !p.outcome.complete()).count() as u64
    }

    /// Cells that failed to quiesce before probing.
    pub fn unconverged(&self) -> u64 {
        self.comparison
            .iter()
            .filter(|a| !a.outcome.converged)
            .count() as u64
            + self.storm.iter().filter(|p| !p.outcome.converged).count() as u64
    }

    /// Growth exponent of the interior state maximum across the storm
    /// sweep: `ln(state ratio) / ln(receiver ratio)` between the first
    /// and last points. 1.0 = linear in receivers, 0.0 = flat; the
    /// summary path must stay well below 1.
    pub fn storm_state_exponent(&self) -> f64 {
        let (Some(first), Some(last)) = (self.storm.first(), self.storm.last()) else {
            return 0.0;
        };
        if first.receivers >= last.receivers {
            return 0.0;
        }
        let state_ratio = last.outcome.interior_state_max.max(1) as f64
            / first.outcome.interior_state_max.max(1) as f64;
        let rx_ratio = last.receivers as f64 / first.receivers as f64;
        state_ratio.ln() / rx_ratio.ln()
    }

    /// HBH-AGG vs plain HBH control copies on the flash-crowd workload
    /// (aggregation must strictly reduce the join-storm control volume).
    pub fn agg_control_ratio(&self) -> f64 {
        let copies = |kind: ProtocolKind| {
            self.comparison
                .iter()
                .find(|a| a.workload == "flash_crowd" && a.kind == kind)
                .map(|a| a.outcome.control_copies)
        };
        match (copies(ProtocolKind::HbhAgg), copies(ProtocolKind::Hbh)) {
            (Some(agg), Some(plain)) => agg as f64 / plain.max(1) as f64,
            _ => f64::NAN,
        }
    }
}

/// Builds the frozen topology of `cfg` (same scheme as the scale sweep,
/// different seed salt so the sweeps don't alias).
pub fn build_membership_graph(cfg: &MembershipConfig) -> Graph {
    let shape = (cfg.spec.ases as u64) << 32
        | (cfg.spec.pops_per_as as u64) << 16
        | cfg.spec.access_per_pop as u64;
    let mut rng = StdRng::seed_from_u64(cfg.base_seed ^ 0xAE3B_0000 ^ shape);
    let mut topo = hierarchical(&cfg.spec, &mut rng);
    attach_hosts(&mut topo, cfg.hosts, &mut rng);
    topo.graph
}

/// Builds scenario `run` of the sweep: per-run cost draw and source over
/// the shared frozen `template`, then the workload's membership plan.
pub fn build_membership_scenario(
    cfg: &MembershipConfig,
    template: &Graph,
    workload: &Workload,
    run: usize,
) -> Scenario {
    let run_seed = cfg.base_seed ^ ((run as u64) << 40) ^ 0xAE3B_E125;
    let mut rng = StdRng::seed_from_u64(run_seed);
    let mut graph = template.clone();
    costs::assign_paper_costs(&mut graph, &mut rng);
    let hosts: Vec<NodeId> = graph.hosts().collect();
    let source = hosts[rng.random_range(0..hosts.len())];
    let network = Network::on_demand(graph, cfg.cache_rows);
    Scenario::from_parts(network, source, Vec::new(), Vec::new(), 0, run_seed)
        .with_workload(workload, &cfg.timing)
}

/// Runs the sweep: each comparison workload paired across every arm, then
/// the HBH-AGG storm sweep over `cfg.storm_sizes`.
pub fn run_membership(cfg: &MembershipConfig) -> MembershipReport {
    let template = build_membership_graph(cfg);
    let start = Instant::now();
    let mut comparison = Vec::new();
    for (run, (name, workload)) in cfg.workloads().into_iter().enumerate() {
        let sc = build_membership_scenario(cfg, &template, &workload, run);
        for &kind in &cfg.protocols {
            let outcome = dispatch(kind, &sc, &cfg.timing, &MembershipStudy);
            eprintln!(
                "{name}/{}: served {}/{}, control {}, interior max {} B",
                kind.name(),
                outcome.served,
                outcome.expected,
                outcome.control_copies,
                outcome.interior_state_max,
            );
            comparison.push(WorkloadArm {
                workload: name,
                kind,
                outcome,
            });
        }
    }

    let mut storm = Vec::new();
    for (i, &n) in cfg.storm_sizes.iter().enumerate() {
        let workload = Workload::flash_crowd(n, Time(0));
        let sc = build_membership_scenario(cfg, &template, &workload, 100 + i);
        let outcome = dispatch(ProtocolKind::HbhAgg, &sc, &cfg.timing, &MembershipStudy);
        eprintln!(
            "storm {n}: served {}/{}, control/receiver {:.1}, interior max {} B, access max {} B",
            outcome.served,
            outcome.expected,
            outcome.control_per_receiver(),
            outcome.interior_state_max,
            outcome.access_state_max,
        );
        storm.push(StormPoint {
            receivers: n,
            outcome,
        });
    }

    let wall_secs = start.elapsed().as_secs_f64();
    let events = comparison
        .iter()
        .map(|a| a.outcome.events)
        .chain(storm.iter().map(|p| p.outcome.events))
        .sum();
    MembershipReport {
        routers: cfg.router_count(),
        hosts: cfg.hosts,
        group_size: cfg.group_size,
        channels: cfg.channels,
        comparison,
        storm,
        wall_secs,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_serves_everyone_and_stays_sublinear() {
        let report = run_membership(&MembershipConfig::smoke());
        assert_eq!(report.incomplete(), 0, "every expected receiver served");
        assert_eq!(report.unconverged(), 0);
        assert_eq!(report.comparison.len(), 3 * 5);
        assert_eq!(report.storm.len(), 2);
        let alpha = report.storm_state_exponent();
        assert!(
            alpha < 0.5,
            "interior state must be sublinear in receivers (exponent {alpha:.2})"
        );
        let ratio = report.agg_control_ratio();
        assert!(
            ratio < 1.0,
            "aggregation must reduce flash-crowd control volume (ratio {ratio:.2})"
        );
    }

    #[test]
    fn scenarios_are_reproducible_per_seed() {
        let cfg = MembershipConfig::smoke();
        let template = build_membership_graph(&cfg);
        let w = Workload::flash_crowd(cfg.group_size, Time(0));
        let a = build_membership_scenario(&cfg, &template, &w, 0);
        let b = build_membership_scenario(&cfg, &template, &w, 0);
        assert_eq!(a.source, b.source);
        assert_eq!(a.receivers, b.receivers);
        assert_eq!(a.join_times, b.join_times);
        let c = build_membership_scenario(&cfg, &template, &w, 1);
        assert!(a.source != c.source || a.receivers != c.receivers);
    }

    #[test]
    fn zapping_scenario_carries_its_script() {
        let cfg = MembershipConfig::smoke();
        let template = build_membership_graph(&cfg);
        let w = Workload::zapping(cfg.group_size, cfg.channels, cfg.zaps);
        let sc = build_membership_scenario(&cfg, &template, &w, 2);
        assert!(sc.join_times.is_empty());
        assert!(!sc.script.is_empty());
        assert!(sc.receivers.len() <= cfg.group_size);
    }
}
