//! Generic experiment runner: build a kernel, converge (verified), inject
//! a tagged probe, read the paper's metrics off the accounting.

use crate::scenario::Scenario;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Kernel, Network, Protocol, Time};
use hbh_topo::graph::NodeId;
use std::collections::BTreeMap;

/// Result of one converged probe.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeOutcome {
    /// Tree cost: data copies transmitted across links for one packet.
    pub cost: u64,
    /// Bandwidth consumption: each copy weighted by its link's cost (the
    /// abstract's "bandwidth consumption of the multicast trees"; see
    /// EXPERIMENTS.md for how this relates to the paper's Figure 7 axis).
    pub weighted_cost: u64,
    /// Per-receiver delay (time units).
    pub delays: BTreeMap<NodeId, u64>,
    /// Receivers that should have been served.
    pub expected: usize,
    /// `true` if structural changes quiesced before the probe.
    pub converged: bool,
    /// Structural changes observed since kernel start (stability metric).
    pub structural_changes: u64,
    /// Control-plane link transmissions since kernel start.
    pub control_copies: u64,
    /// Kernel drops (should be 0 in steady state).
    pub drops: u64,
}

impl ProbeOutcome {
    /// Did every expected receiver get exactly one copy?
    pub fn complete(&self) -> bool {
        self.delays.len() == self.expected
    }

    /// Mean receiver delay (the Figure 8 metric).
    pub fn avg_delay(&self) -> f64 {
        if self.delays.is_empty() {
            return 0.0;
        }
        self.delays.values().sum::<u64>() as f64 / self.delays.len() as f64
    }
}

/// Builds a kernel for `scenario`, wiring the source and all joins.
pub fn build_kernel<P: Protocol<Command = Cmd>>(
    proto: P,
    scenario: &Scenario,
) -> (Kernel<P>, Channel) {
    let net = Network::new(scenario.graph.clone());
    let mut k = Kernel::new(net, proto, scenario.seed);
    let ch = Channel::primary(scenario.source);
    k.command_at(scenario.source, Cmd::StartSource(ch), Time::ZERO);
    for &(r, t) in &scenario.join_times {
        k.command_at(r, Cmd::Join(ch), t);
    }
    (k, ch)
}

/// Runs to the convergence horizon, then extends in `2·t2` windows until
/// structural changes quiesce (bounded retries). Returns `true` if
/// quiescence was reached.
pub fn converge<P: Protocol<Command = Cmd>>(
    k: &mut Kernel<P>,
    timing: &Timing,
    join_window: u64,
) -> bool {
    k.run_until(Time(timing.convergence_horizon(join_window)));
    for _ in 0..8 {
        let before = k.stats().structural_changes;
        let until = k.now() + 2 * timing.t2;
        k.run_until(until);
        if k.stats().structural_changes == before {
            return true;
        }
    }
    false
}

/// How long to let a probe propagate: generous upper bound on any
/// recursive-unicast delivery path (every node visited once, max cost 10),
/// plus slack.
pub fn probe_window(net: &Network) -> u64 {
    net.node_count() as u64 * 20 + 200
}

/// Injects a tagged data packet and collects deliveries attributed to it.
pub fn probe<P: Protocol<Command = Cmd>>(
    k: &mut Kernel<P>,
    ch: Channel,
    tag: u64,
    expected: usize,
) -> (u64, BTreeMap<NodeId, u64>) {
    let at = k.now();
    k.command_at(ch.source, Cmd::SendData { ch, tag }, at);
    let window = probe_window(k.network());
    k.run_until(at + window);
    let cost = k.stats().data_copies_tagged(tag);
    let mut delays = BTreeMap::new();
    for d in k.stats().deliveries_tagged(tag) {
        let prev = delays.insert(d.node, d.delay());
        assert!(prev.is_none(), "duplicate delivery at {} (tag {tag})", d.node);
    }
    debug_assert!(delays.len() <= expected);
    (cost, delays)
}

/// The standard experiment: converge then probe once.
pub fn run_probe<P: Protocol<Command = Cmd>>(
    proto: P,
    scenario: &Scenario,
    timing: &Timing,
) -> ProbeOutcome {
    let (mut k, ch) = build_kernel(proto, scenario);
    let converged = converge(&mut k, timing, scenario.join_window);
    let control_copies = k.stats().control_copies();
    let structural_changes = k.stats().structural_changes;
    let (cost, delays) = probe(&mut k, ch, 1, scenario.receivers.len());
    let weighted_cost: u64 = k
        .stats()
        .data_copies_per_link(1)
        .iter()
        .map(|(&(f, t), &copies)| {
            copies * u64::from(k.network().graph().cost(f, t).expect("counted link exists"))
        })
        .sum();
    ProbeOutcome {
        cost,
        weighted_cost,
        delays,
        expected: scenario.receivers.len(),
        converged,
        structural_changes,
        control_copies,
        drops: k.stats().drops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build, ScenarioOptions, TopologyKind};
    use hbh_proto::Hbh;

    fn outcome(seed: u64) -> ProbeOutcome {
        let timing = Timing::default();
        let sc = build(TopologyKind::Isp, 6, seed, &timing, &ScenarioOptions::default());
        run_probe(Hbh::new(timing), &sc, &timing)
    }

    #[test]
    fn hbh_probe_on_isp_is_complete_and_converged() {
        let o = outcome(3);
        assert!(o.converged);
        assert!(o.complete(), "served {}/{}", o.delays.len(), o.expected);
        assert!(o.cost > 0);
        assert_eq!(o.drops, 0);
    }

    #[test]
    fn probe_is_deterministic() {
        assert_eq!(outcome(4), outcome(4));
    }

    #[test]
    fn different_seeds_differ() {
        let (a, b) = (outcome(1), outcome(2));
        assert!(a.cost != b.cost || a.delays != b.delays);
    }

    #[test]
    fn avg_delay_reflects_receivers() {
        let o = outcome(5);
        let lo = *o.delays.values().min().unwrap() as f64;
        let hi = *o.delays.values().max().unwrap() as f64;
        assert!(o.avg_delay() >= lo && o.avg_delay() <= hi);
    }
}
