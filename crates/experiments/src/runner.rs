//! Generic experiment runner: build a kernel, converge (verified), inject
//! a tagged probe, read the paper's metrics off the accounting — plus
//! [`RunConfig`], the one bundle of run knobs every figure binary shares.

use crate::protocols::ProtocolKind;
use crate::report::Args;
use crate::scenario::{Scenario, ScenarioOptions, TopologyKind};
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Kernel, Network, Protocol, Time};
use hbh_topo::graph::{EdgeId, NodeId};
use std::collections::BTreeMap;

/// The run knobs shared by every figure binary, as one builder-style
/// value instead of positional constructor arguments scattered per
/// figure: topology, run count, base seed, timing, scenario options,
/// protocol set, trace toggle, probe-window override, and worker-thread
/// pin.
///
/// Figure-specific configs convert from it (`EvalConfig::from_run`,
/// `StabilityConfig::from_run`, `ChurnConfig::from_run`, …), and binaries
/// build it straight from argv with [`RunConfig::from_args`]:
///
/// ```no_run
/// use hbh_experiments::report::Args;
/// use hbh_experiments::runner::RunConfig;
///
/// let args = Args::parse(RunConfig::STANDARD_ARGS);
/// let run = RunConfig::from_args(&args, 100);
/// ```
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Topology family scenarios are drawn from.
    pub topo: TopologyKind,
    /// Independent scenario draws per figure point.
    pub runs: usize,
    /// Base of the per-run seed stream (see `figures::eval::run_seed`).
    pub base_seed: u64,
    /// Protocol timer configuration.
    pub timing: Timing,
    /// Scenario-construction options.
    pub opts: ScenarioOptions,
    /// Protocols under test, in legend order.
    pub protocols: Vec<ProtocolKind>,
    /// Enable kernel tracing in studies that honor it (path
    /// reconstruction costs memory; off by default).
    pub trace: bool,
    /// Override the derived [`probe_window`] (time units), for studies
    /// probing under conditions the derivation does not model.
    pub probe_window: Option<u64>,
    /// Pin the `parallel::map_runs` worker count (applied via the
    /// `HBH_THREADS` environment variable).
    pub threads: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            topo: TopologyKind::Isp,
            runs: 100,
            base_seed: 1,
            timing: Timing::default(),
            opts: ScenarioOptions::default(),
            protocols: ProtocolKind::ALL.to_vec(),
            trace: false,
            probe_window: None,
            threads: None,
        }
    }
}

impl RunConfig {
    /// The argv keys [`RunConfig::from_args`] understands; binaries append
    /// their figure-specific keys to this list when calling `Args::parse`.
    pub const STANDARD_ARGS: &'static [&'static str] = &["topo", "runs", "seed", "threads"];

    /// Paper-default configuration (ISP topology, 100 runs, seed 1, all
    /// four protocols).
    pub fn new() -> Self {
        RunConfig::default()
    }

    /// Reads the standard keys from parsed argv (`--topo --runs --seed
    /// --threads`), with `default_runs` as the `--runs` fallback. A
    /// `--threads` value is applied immediately (sets `HBH_THREADS`, which
    /// `parallel::map_runs` reads).
    pub fn from_args(args: &Args, default_runs: usize) -> Self {
        let cfg = RunConfig::new()
            .topo(
                TopologyKind::parse(args.get("topo").unwrap_or("isp"))
                    .expect("--topo must be isp or rand50"),
            )
            .runs(args.get_parse("runs", default_runs))
            .seed(args.get_parse("seed", 1));
        let cfg = match args.get("threads") {
            Some(v) => cfg.threads(v.parse().expect("--threads must be a positive integer")),
            None => cfg,
        };
        cfg.apply_threads();
        cfg
    }

    /// Sets the topology family.
    pub fn topo(mut self, topo: TopologyKind) -> Self {
        self.topo = topo;
        self
    }

    /// Sets the number of independent runs.
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Sets the protocol timing.
    pub fn timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the scenario options.
    pub fn opts(mut self, opts: ScenarioOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the protocol list.
    pub fn protocols(mut self, protocols: Vec<ProtocolKind>) -> Self {
        self.protocols = protocols;
        self
    }

    /// Toggles kernel tracing for studies that honor it.
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Overrides the derived probe window.
    pub fn probe_window(mut self, window: u64) -> Self {
        self.probe_window = Some(window);
        self
    }

    /// Pins the worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Exports a pinned thread count to `HBH_THREADS` so
    /// `parallel::map_runs` picks it up. No-op when `threads` is unset.
    pub fn apply_threads(&self) {
        if let Some(n) = self.threads {
            std::env::set_var("HBH_THREADS", n.to_string());
        }
    }

    /// The probe window to use over `net`: the override if set, else the
    /// derived [`probe_window`].
    pub fn probe_window_for(&self, net: &Network) -> u64 {
        self.probe_window.unwrap_or_else(|| probe_window(net))
    }
}

/// Result of one converged probe.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeOutcome {
    /// Tree cost: data copies transmitted across links for one packet.
    pub cost: u64,
    /// Bandwidth consumption: each copy weighted by its link's cost (the
    /// abstract's "bandwidth consumption of the multicast trees"; see
    /// EXPERIMENTS.md for how this relates to the paper's Figure 7 axis).
    pub weighted_cost: u64,
    /// Per-receiver delay (time units).
    pub delays: BTreeMap<NodeId, u64>,
    /// Receivers that should have been served.
    pub expected: usize,
    /// `true` if structural changes quiesced before the probe.
    pub converged: bool,
    /// Structural changes observed since kernel start (stability metric).
    pub structural_changes: u64,
    /// Control-plane link transmissions since kernel start.
    pub control_copies: u64,
    /// Kernel drops (should be 0 in steady state).
    pub drops: u64,
    /// Scheduler events dispatched over the whole run (throughput metric
    /// for the bench harness).
    pub events: u64,
}

impl ProbeOutcome {
    /// Did every expected receiver get exactly one copy?
    pub fn complete(&self) -> bool {
        self.delays.len() == self.expected
    }

    /// Mean receiver delay (the Figure 8 metric).
    pub fn avg_delay(&self) -> f64 {
        if self.delays.is_empty() {
            return 0.0;
        }
        self.delays.values().sum::<u64>() as f64 / self.delays.len() as f64
    }
}

/// Builds a kernel for `scenario`, wiring the source and all joins. The
/// kernel runs over the scenario's shared [`Network`] — an `Arc` bump, so
/// the four kernels of a paired comparison reuse one routing computation.
pub fn build_kernel<P: Protocol<Command = Cmd>>(
    proto: P,
    scenario: &Scenario,
) -> (Kernel<P>, Channel) {
    build_kernel_on(scenario.network().clone(), proto, scenario)
}

/// [`build_kernel`] over an explicit network (e.g. the bandwidth-admitted
/// tables of the QoS ablation, or an independently recomputed network in
/// the route-sharing equivalence tests).
pub fn build_kernel_on<P: Protocol<Command = Cmd>>(
    net: Network,
    proto: P,
    scenario: &Scenario,
) -> (Kernel<P>, Channel) {
    let mut k = Kernel::new(net, proto, scenario.seed);
    if let Some(faults) = &scenario.faults {
        k.install_faults(faults);
    }
    let ch = Channel::primary(scenario.source);
    k.command_at(scenario.source, Cmd::StartSource(ch), Time::ZERO);
    for &(r, t) in &scenario.join_times {
        k.command_at(r, Cmd::Join(ch), t);
    }
    if !scenario.script.is_empty() {
        scenario.script.schedule(&mut k);
    }
    (k, ch)
}

/// Runs to the convergence horizon, then extends in `2·t2` windows until
/// structural changes quiesce (bounded retries). Returns `true` if
/// quiescence was reached.
pub fn converge<P: Protocol<Command = Cmd>>(
    k: &mut Kernel<P>,
    timing: &Timing,
    join_window: u64,
) -> bool {
    k.run_until(Time(timing.convergence_horizon(join_window)));
    for _ in 0..8 {
        let before = k.stats().structural_changes;
        let until = k.now() + 2 * timing.t2;
        k.run_until(until);
        if k.stats().structural_changes == before {
            return true;
        }
    }
    false
}

/// How long to let a probe propagate before reading deliveries.
///
/// Invariant: the window must dominate the longest delivery path any
/// protocol can take. Recursive-unicast delivery (REUNITE/HBH before the
/// tree settles) can relay a probe through every node, and each hop costs
/// at most the topology's largest link cost — so `nodes × 2 × worst hop`
/// bounds even a pathological there-and-back traversal, plus fixed slack
/// for host access links and staged retransmissions. Derived from the
/// graph's actual costs: the paper's `[1, 10]` draw gives the historical
/// `n · 20 + 200`, and topologies with other cost ranges stay covered
/// instead of silently truncating deliveries.
pub fn probe_window(net: &Network) -> u64 {
    let worst_hop = u64::from(net.graph().max_link_cost().max(1));
    net.node_count() as u64 * 2 * worst_hop + 200
}

/// Injects a tagged data packet and collects deliveries attributed to it.
pub fn probe<P: Protocol<Command = Cmd>>(
    k: &mut Kernel<P>,
    ch: Channel,
    tag: u64,
    expected: usize,
) -> (u64, BTreeMap<NodeId, u64>) {
    let window = probe_window(k.network());
    let (delays, duplicates) = probe_tolerant(k, ch, tag, window);
    assert!(
        duplicates == 0,
        "duplicate delivery of probe {tag} ({duplicates} extra copies)"
    );
    let cost = k.stats().data_copies_tagged(tag);
    debug_assert!(delays.len() <= expected);
    (cost, delays)
}

/// [`probe`] without the duplicate-free assertion: returns each
/// receiver's *first* delivery delay plus the count of duplicate
/// deliveries. Steady-state trees never duplicate (that is what [`probe`]
/// pins), but a tree *mid-repair* legitimately can — e.g. REUNITE
/// re-joining through a new branching node while stale state still
/// forwards — which is precisely what the churn experiment measures.
pub fn probe_tolerant<P: Protocol<Command = Cmd>>(
    k: &mut Kernel<P>,
    ch: Channel,
    tag: u64,
    window: u64,
) -> (BTreeMap<NodeId, u64>, u64) {
    let at = k.now();
    k.command_at(ch.source, Cmd::SendData { ch, tag }, at);
    let deadline = at + window;
    // The window bounds the *worst-case* propagation; the wave itself dies
    // out far sooner. Once the injected packet has fanned out and no
    // data-class arrival remains scheduled, no further copy, delivery or
    // data drop can happen (forwarding is strictly arrival-driven), so the
    // remaining window would simulate nothing but steady-state control
    // refreshes — skip it. Identical cost/delay results, a fraction of the
    // events.
    let mut wave_started = false;
    while let Some(t) = k.peek_next() {
        if t > deadline {
            break;
        }
        k.step();
        if k.pending_data_arrivals() > 0 {
            wave_started = true;
        } else if wave_started {
            break;
        }
    }
    let mut delays = BTreeMap::new();
    let mut duplicates = 0u64;
    for d in k.stats().deliveries_tagged(tag) {
        match delays.entry(d.node) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(d.delay());
            }
            std::collections::btree_map::Entry::Occupied(_) => duplicates += 1,
        }
    }
    (delays, duplicates)
}

/// The standard experiment: converge then probe once.
pub fn run_probe<P: Protocol<Command = Cmd>>(
    proto: P,
    scenario: &Scenario,
    timing: &Timing,
) -> ProbeOutcome {
    run_probe_on(scenario.network().clone(), proto, scenario, timing)
}

/// [`run_probe`] over a freshly computed `Network` instead of the
/// scenario's shared one. Exists for the route-sharing equivalence tests:
/// outcomes must be identical either way.
pub fn run_probe_isolated<P: Protocol<Command = Cmd>>(
    proto: P,
    scenario: &Scenario,
    timing: &Timing,
) -> ProbeOutcome {
    run_probe_on(
        Network::new(scenario.graph().clone()),
        proto,
        scenario,
        timing,
    )
}

/// [`run_probe`] over an explicit network.
pub fn run_probe_on<P: Protocol<Command = Cmd>>(
    net: Network,
    proto: P,
    scenario: &Scenario,
    timing: &Timing,
) -> ProbeOutcome {
    let (mut k, ch) = build_kernel_on(net, proto, scenario);
    let converged = converge(&mut k, timing, scenario.join_window);
    let control_copies = k.stats().control_copies();
    let structural_changes = k.stats().structural_changes;
    let (cost, delays) = probe(&mut k, ch, 1, scenario.receivers.len());
    let weighted_cost: u64 = k
        .stats()
        .data_copies_by_edge(1)
        .map(|row| {
            let g = k.network().graph();
            row.iter()
                .enumerate()
                .filter(|(_, &copies)| copies > 0)
                .map(|(e, &copies)| copies * u64::from(g.edge_cost(EdgeId(e as u32))))
                .sum()
        })
        .unwrap_or(0);
    ProbeOutcome {
        cost,
        weighted_cost,
        delays,
        expected: scenario.receivers.len(),
        converged,
        structural_changes,
        control_copies,
        drops: k.stats().drops,
        events: k.stats().events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build, ScenarioOptions, TopologyKind};
    use hbh_proto::Hbh;

    fn outcome(seed: u64) -> ProbeOutcome {
        let timing = Timing::default();
        let sc = build(
            TopologyKind::Isp,
            6,
            seed,
            &timing,
            &ScenarioOptions::default(),
        );
        run_probe(Hbh::new(timing), &sc, &timing)
    }

    #[test]
    fn hbh_probe_on_isp_is_complete_and_converged() {
        let o = outcome(3);
        assert!(o.converged);
        assert!(o.complete(), "served {}/{}", o.delays.len(), o.expected);
        assert!(o.cost > 0);
        assert_eq!(o.drops, 0);
    }

    #[test]
    fn probe_is_deterministic() {
        assert_eq!(outcome(4), outcome(4));
    }

    #[test]
    fn different_seeds_differ() {
        let (a, b) = (outcome(1), outcome(2));
        assert!(a.cost != b.cost || a.delays != b.delays);
    }

    #[test]
    fn probe_window_derives_from_actual_max_cost() {
        let timing = Timing::default();
        let sc = build(
            TopologyKind::Isp,
            4,
            1,
            &timing,
            &ScenarioOptions::default(),
        );
        let net = sc.network();
        let max = u64::from(net.graph().max_link_cost());
        assert!((1..=10).contains(&max), "paper draws costs from [1, 10]");
        assert_eq!(probe_window(net), net.node_count() as u64 * 2 * max + 200);
        // With the paper's cost draw the bound never exceeds the historical
        // fixed-constant window (n · 20 + 200), so horizons only tighten.
        assert!(probe_window(net) <= net.node_count() as u64 * 20 + 200);
    }

    #[test]
    fn avg_delay_reflects_receivers() {
        let o = outcome(5);
        let lo = *o.delays.values().min().unwrap() as f64;
        let hi = *o.delays.values().max().unwrap() as f64;
        assert!(o.avg_delay() >= lo && o.avg_delay() <= hi);
    }
}
