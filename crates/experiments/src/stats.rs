//! Streaming summary statistics (Welford's algorithm) and confidence
//! intervals for the experiment reports.

/// Online mean/variance accumulator.
///
/// ```
/// use hbh_experiments::stats::Summary;
///
/// let mut s = Summary::default();
/// for x in [2.0, 4.0, 6.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.n(), 3);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Summary {
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (Bessel-corrected); 0 for fewer than two samples.
    pub fn var(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn sd(&self) -> f64 {
        self.var().sqrt()
    }

    /// Half-width of the normal-approximation 95% confidence interval.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.sd() / (self.n as f64).sqrt()
        }
    }

    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n;
        self.m2 += other.m2 + d * d * self.n as f64 * other.n as f64 / n;
        self.mean = mean;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn of(xs: &[f64]) -> Summary {
        let mut s = Summary::default();
        for &x in xs {
            s.add(x);
        }
        s
    }

    #[test]
    fn mean_and_variance() {
        let s = of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.var() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(of(&[]).mean(), 0.0);
        assert_eq!(of(&[3.0]).var(), 0.0);
        assert_eq!(of(&[3.0]).ci95(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = of(&[1.0, 2.0, 3.0, 4.0]);
        let many = of(&(0..100).map(|i| (i % 4) as f64 + 1.0).collect::<Vec<_>>());
        assert!(many.ci95() < few.ci95());
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = of(&xs);
        let mut a = of(&xs[..20]);
        let b = of(&xs[20..]);
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.var() - whole.var()).abs() < 1e-9);
        assert_eq!(a.n(), 50);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = of(&[1.0, 2.0]);
        s.merge(&Summary::default());
        assert_eq!(s.n(), 2);
        let mut e = Summary::default();
        e.merge(&of(&[1.0, 2.0]));
        assert_eq!(e.n(), 2);
    }
}
