//! Internet-scale sweeps: hierarchical AS/POP/access topologies with
//! thousands of routers and ≥100k attached hosts, driven through the same
//! paired-run machinery as the paper figures.
//!
//! The paper argues HBH scales because routers keep state only where trees
//! pass; this module makes the *harness* honour the same principle. At 5k
//! routers an eager all-pairs table would pin `n² ≈ 26M` entries per draw
//! — hundreds of megabytes and minutes of Dijkstra before the first event
//! fires. Scale scenarios therefore always run on
//! [`Network::on_demand`]: SPF rows materialize only for the routers that
//! actually forward (tree nodes), the LRU bounds residency, and the
//! reported [`RouteStats`] make the O(n²) → O(used) claim a number.
//!
//! The topology (and host attachment) is frozen per configuration; each
//! run redraws per-direction link costs from the paper's `U[1, 10]`, picks
//! a source host and samples the receiver group, exactly mirroring §4.1
//! methodology on the big graph. PIM-SM is not an arm here: its central-RP
//! placement scans routers × hosts, an all-pairs consumer by design (see
//! `protocols::pick_rp_with`).

use crate::protocols::{run_protocol, ProtocolKind};
use crate::scenario::Scenario;
use hbh_proto_base::workload::{join_schedule, sample_receivers};
use hbh_proto_base::Timing;
use hbh_routing::RouteStats;
use hbh_sim_core::{Network, Time};
use hbh_topo::costs;
use hbh_topo::graph::{Graph, NodeId, PathCost};
use hbh_topo::hier::{attach_hosts, hierarchical, TierSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// One scale sweep: topology shape, load, and run plan.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Routers per tier (see [`TierSpec`]).
    pub spec: TierSpec,
    /// End hosts attached round-robin to the access tier.
    pub hosts: usize,
    /// Receivers sampled per run.
    pub group_size: usize,
    /// Independent paired runs (cost draw + membership per run).
    pub runs: usize,
    pub base_seed: u64,
    /// LRU capacity of the on-demand route cache, in SPF rows.
    pub cache_rows: usize,
    pub timing: Timing,
    /// Protocol arms; all run on the same draw per run.
    pub protocols: Vec<ProtocolKind>,
}

/// The protocols that stay viable at scale (no all-pairs consumers).
pub const SCALE_ARMS: [ProtocolKind; 3] = [
    ProtocolKind::PimSs,
    ProtocolKind::Reunite,
    ProtocolKind::Hbh,
];

impl ScaleConfig {
    /// CI-sized configuration: ~38 routers, 120 hosts — the full code path
    /// (hierarchy, on-demand routing, cache accounting) in well under a
    /// second.
    pub fn smoke() -> Self {
        ScaleConfig {
            spec: TierSpec {
                ases: 2,
                pops_per_as: 3,
                access_per_pop: 2,
            },
            hosts: 120,
            group_size: 12,
            runs: 3,
            base_seed: 7,
            cache_rows: 256,
            timing: Timing::default(),
            protocols: SCALE_ARMS.to_vec(),
        }
    }

    /// The acceptance-scale configuration: 5,020 routers
    /// (20 AS × 10 POP × 24 access), 100k hosts.
    pub fn full() -> Self {
        ScaleConfig {
            spec: TierSpec {
                ases: 20,
                pops_per_as: 10,
                access_per_pop: 24,
            },
            hosts: 100_000,
            group_size: 256,
            runs: 3,
            base_seed: 7,
            cache_rows: 4096,
            timing: Timing::default(),
            protocols: SCALE_ARMS.to_vec(),
        }
    }

    /// Total routers this configuration builds.
    pub fn router_count(&self) -> usize {
        self.spec.router_count()
    }
}

/// Aggregates of one protocol arm over all runs.
#[derive(Clone, Debug)]
pub struct ScaleArm {
    pub kind: ProtocolKind,
    pub cost_mean: f64,
    pub delay_mean: f64,
    /// Runs where not every receiver was served (must stay 0).
    pub incomplete: u64,
    /// Runs that failed to quiesce before the probe (should stay 0).
    pub unconverged: u64,
    /// Kernel events dispatched, summed over runs.
    pub events: u64,
}

/// Result of a scale sweep, ready for JSON serialization.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    pub routers: usize,
    pub hosts: usize,
    /// Directed edges of the loaded graph (router mesh + host links).
    pub directed_edges: usize,
    pub runs: usize,
    pub group_size: usize,
    pub cache_rows: usize,
    pub per_protocol: Vec<ScaleArm>,
    pub wall_secs: f64,
    /// Events across all arms and runs.
    pub events: u64,
    pub events_per_sec: f64,
    /// Route-cache counters summed over the runs' networks.
    pub route_stats: RouteStats,
    /// Peak bytes pinned by cached SPF rows in any single run.
    pub route_bytes: usize,
    /// What eager all-pairs tables would pin for the same topology
    /// (`n² × (dist + next-hop entry)`).
    pub all_pairs_bytes: usize,
    /// CSR packing of the loaded topology (shared, counted once).
    pub csr_bytes: usize,
}

impl ScaleReport {
    /// How many times smaller the route cache is than hypothetical eager
    /// tables — the O(n²) → O(used) headline number.
    pub fn memory_ratio(&self) -> f64 {
        self.all_pairs_bytes as f64 / self.route_bytes.max(1) as f64
    }

    /// Fraction of route lookups served from cache.
    pub fn hit_rate(&self) -> f64 {
        self.route_stats.hit_rate()
    }

    /// Total incomplete runs across arms.
    pub fn incomplete(&self) -> u64 {
        self.per_protocol.iter().map(|a| a.incomplete).sum()
    }
}

/// Builds the frozen topology of `cfg`: hierarchy + hosts, no costs yet.
/// Deterministic per configuration (the seed folds in the tier shape, so
/// differently shaped sweeps don't alias).
pub fn build_scale_graph(cfg: &ScaleConfig) -> Graph {
    let shape = (cfg.spec.ases as u64) << 32
        | (cfg.spec.pops_per_as as u64) << 16
        | cfg.spec.access_per_pop as u64;
    let mut rng = StdRng::seed_from_u64(cfg.base_seed ^ 0x5CA1E ^ shape);
    let mut topo = hierarchical(&cfg.spec, &mut rng);
    attach_hosts(&mut topo, cfg.hosts, &mut rng);
    topo.graph
}

/// Builds run `run` of the sweep over the shared frozen `template`:
/// per-run cost draw, source host, receiver sample, join schedule, and an
/// on-demand network sized by `cfg.cache_rows`.
pub fn build_scale_scenario(cfg: &ScaleConfig, template: &Graph, run: usize) -> Scenario {
    let run_seed = cfg.base_seed ^ ((run as u64) << 40) ^ 0x5EED_5CA1E;
    let mut rng = StdRng::seed_from_u64(run_seed);
    let mut graph = template.clone();
    costs::assign_paper_costs(&mut graph, &mut rng);

    let hosts: Vec<NodeId> = graph.hosts().collect();
    let source = hosts[rng.random_range(0..hosts.len())];
    let pool: Vec<NodeId> = hosts.iter().copied().filter(|&h| h != source).collect();
    let receivers = sample_receivers(&pool, cfg.group_size, &mut rng);
    let join_window = 20 * cfg.timing.join_period;
    let join_times = join_schedule(&receivers, Time(0), join_window, &mut rng);

    let network = Network::on_demand(graph, cfg.cache_rows);
    Scenario::from_parts(
        network,
        source,
        receivers,
        join_times,
        join_window,
        run_seed,
    )
}

/// Runs the sweep: `cfg.runs` paired draws, every arm on each draw, route
/// cache shared across the arms of a draw (the paired kernels warm it for
/// each other). Runs execute sequentially — at 5k routers a single run's
/// working set is the right unit of memory residency.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleReport {
    let template = build_scale_graph(cfg);
    let start = Instant::now();

    let mut arms: Vec<ScaleArm> = cfg
        .protocols
        .iter()
        .map(|&kind| ScaleArm {
            kind,
            cost_mean: 0.0,
            delay_mean: 0.0,
            incomplete: 0,
            unconverged: 0,
            events: 0,
        })
        .collect();
    let mut route_stats = RouteStats::default();
    let mut route_bytes = 0usize;
    let mut csr_bytes = 0usize;

    for run in 0..cfg.runs {
        let sc = build_scale_scenario(cfg, &template, run);
        for (arm, &kind) in arms.iter_mut().zip(&cfg.protocols) {
            let o = run_protocol(kind, &sc, &cfg.timing);
            arm.cost_mean += o.cost as f64 / cfg.runs as f64;
            arm.delay_mean += o.avg_delay() / cfg.runs as f64;
            if !o.complete() {
                arm.incomplete += 1;
            }
            if !o.converged {
                arm.unconverged += 1;
            }
            arm.events += o.events;
        }
        let s = sc.network().routes().route_stats();
        route_stats.computed += s.computed;
        route_stats.hits += s.hits;
        route_stats.misses += s.misses;
        route_stats.evicted += s.evicted;
        route_stats.invalidated += s.invalidated;
        route_stats.cached_rows = route_stats.cached_rows.max(s.cached_rows);
        route_bytes = route_bytes.max(sc.network().routes().state_bytes());
        if csr_bytes == 0 {
            if let Some(b) = csr_bytes_of(sc.network()) {
                csr_bytes = b;
            }
        }
        eprintln!(
            "run {}/{}: {} rows cached, {} computed, hit rate {:.1}%",
            run + 1,
            cfg.runs,
            s.cached_rows,
            s.computed,
            s.hit_rate() * 100.0
        );
    }

    let wall_secs = start.elapsed().as_secs_f64();
    let events: u64 = arms.iter().map(|a| a.events).sum();
    let n = template.node_count();
    ScaleReport {
        routers: cfg.router_count(),
        hosts: cfg.hosts,
        directed_edges: template.directed_edge_count(),
        runs: cfg.runs,
        group_size: cfg.group_size,
        cache_rows: cfg.cache_rows,
        per_protocol: arms,
        wall_secs,
        events,
        events_per_sec: events as f64 / wall_secs.max(1e-9),
        route_stats,
        route_bytes,
        all_pairs_bytes: n * n * (size_of::<PathCost>() + size_of::<Option<NodeId>>()),
        csr_bytes,
    }
}

fn csr_bytes_of(net: &Network) -> Option<usize> {
    // The CSR footprint is a topology property; recompute it from the
    // graph rather than poking into the provider.
    Some(hbh_topo::Csr::from_graph(net.graph()).bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_completes_and_caches() {
        let cfg = ScaleConfig::smoke();
        let report = run_scale(&cfg);
        assert_eq!(report.routers, 2 * (1 + 3 * 3));
        assert_eq!(report.hosts, 120);
        assert_eq!(report.incomplete(), 0, "every receiver must be served");
        for arm in &report.per_protocol {
            assert_eq!(arm.unconverged, 0, "{} failed to converge", arm.kind.name());
            assert!(arm.cost_mean > 0.0);
        }
        assert!(report.route_stats.computed > 0);
        assert!(
            report.hit_rate() > 0.5,
            "paired arms must share warm rows (hit rate {:.2})",
            report.hit_rate()
        );
        assert!(report.route_bytes > 0);
        assert!(report.memory_ratio() > 1.0);
    }

    #[test]
    fn scale_scenarios_are_reproducible_and_paired() {
        let cfg = ScaleConfig::smoke();
        let template = build_scale_graph(&cfg);
        let a = build_scale_scenario(&cfg, &template, 0);
        let b = build_scale_scenario(&cfg, &template, 0);
        assert_eq!(a.source, b.source);
        assert_eq!(a.receivers, b.receivers);
        assert_eq!(a.join_times, b.join_times);
        let c = build_scale_scenario(&cfg, &template, 1);
        assert!(a.source != c.source || a.receivers != c.receivers);
    }

    #[test]
    fn scale_networks_are_on_demand() {
        let cfg = ScaleConfig::smoke();
        let template = build_scale_graph(&cfg);
        let sc = build_scale_scenario(&cfg, &template, 0);
        assert!(sc.network().is_on_demand());
    }
}
