//! Scenario construction: topology + per-run cost draw + receiver sample +
//! join schedule (§4.1 of the paper).

use hbh_proto_base::workload::WorkloadGen;
use hbh_proto_base::{Channel, Script, Timing, Workload};
use hbh_sim_core::fault::FaultPlan;
use hbh_sim_core::{Network, Time};
use hbh_topo::graph::{Graph, NodeId};
use hbh_topo::{costs, isp, random};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cell::RefCell;
use std::collections::VecDeque;

/// Seed that fixes the 50-node random topology across all runs (the paper
/// simulates *a* random topology, varying costs and receivers per run).
pub const RAND50_TOPO_SEED: u64 = 0xC0FFEE;

/// Seed fixing the Waxman topology (generalization check beyond the
/// paper's two topologies).
pub const WAXMAN_TOPO_SEED: u64 = 0xAC5;

/// Which evaluation topology to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// The 18-router ISP backbone of Figure 6 (source fixed at host 18).
    Isp,
    /// The 50-node random topology with average degree 8.6.
    Rand50,
    /// A 30-router Waxman graph (α = 0.9, β = 0.3): geometry-flavoured
    /// randomness the paper did not test, used as a generalization check.
    Waxman30,
}

impl TopologyKind {
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Isp => "isp",
            TopologyKind::Rand50 => "rand50",
            TopologyKind::Waxman30 => "waxman30",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "isp" => Some(TopologyKind::Isp),
            "rand50" => Some(TopologyKind::Rand50),
            "waxman30" => Some(TopologyKind::Waxman30),
            _ => None,
        }
    }

    /// The group sizes plotted in the paper for this topology (Waxman is
    /// ours; it gets a proportional sweep).
    pub fn paper_group_sizes(self) -> Vec<usize> {
        match self {
            TopologyKind::Isp => (2..=16).step_by(2).collect(),
            TopologyKind::Rand50 => (5..=45).step_by(5).collect(),
            TopologyKind::Waxman30 => (4..=28).step_by(4).collect(),
        }
    }
}

/// One fully specified experiment run: every protocol is evaluated on this
/// exact draw (paired comparison).
///
/// The topology and its all-pairs unicast routes live in one shared,
/// immutable [`Network`] built when the scenario is drawn. Every kernel in
/// the paired comparison clones the `Network` (an `Arc` bump), so the
/// expensive all-pairs Dijkstra runs exactly once per draw instead of once
/// per protocol.
#[derive(Clone, Debug)]
pub struct Scenario {
    network: Network,
    /// The source host.
    pub source: NodeId,
    /// Receivers, in sampling order.
    pub receivers: Vec<NodeId>,
    /// Join times, staggered over `join_window`.
    pub join_times: Vec<(NodeId, Time)>,
    pub join_window: u64,
    /// Seed for protocol-internal randomness (e.g. PIM RP placement).
    pub seed: u64,
    /// Scripted actions beyond the primary-channel joins (extra channels,
    /// zap switches). Empty for the classic figure scenarios.
    pub script: Script,
    /// Faults installed at kernel-build time (`None` = pristine network).
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    /// The topology this run draws over.
    pub fn graph(&self) -> &Graph {
        self.network.graph()
    }

    /// The shared topology + routing bundle (cloning is an `Arc` bump).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Assembles a scenario from an externally built network + membership
    /// draw. The figure sweeps go through [`build`]; custom drivers (the
    /// hierarchical scale sweeps, hand-built topologies in tests) use this
    /// to reuse the paired-run machinery on any [`Network`].
    pub fn from_parts(
        network: Network,
        source: NodeId,
        receivers: Vec<NodeId>,
        join_times: Vec<(NodeId, Time)>,
        join_window: u64,
        seed: u64,
    ) -> Self {
        Scenario {
            network,
            source,
            receivers,
            join_times,
            join_window,
            seed,
            script: Script::new(),
            faults: None,
        }
    }

    /// Replaces this scenario's membership with a plan drawn from
    /// `workload` over the network's host pool (the source excluded). The
    /// draw is seeded from the scenario seed, so paired protocol runs on
    /// the same scenario see the identical plan.
    pub fn with_workload(mut self, workload: &Workload, timing: &Timing) -> Self {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x3057_10AD);
        let pool: Vec<NodeId> = {
            let source = self.source;
            self.graph().hosts().filter(|&h| h != source).collect()
        };
        let plan = workload.plan(&pool, Channel::primary(self.source), timing, &mut rng);
        self.receivers = plan.receivers;
        self.join_times = plan.join_times;
        self.join_window = plan.join_window;
        self.script = plan.script;
        self
    }

    /// Attaches a fault plan, installed when a kernel is built for this
    /// scenario.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Options beyond the paper defaults, used by the ablations.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioOptions {
    /// Probability that a link's two directions are drawn independently
    /// (1.0 = the paper's fully independent draws).
    pub asymmetry: f64,
    /// Fraction of routers made unicast-only (0.0 in the paper).
    pub unicast_only_fraction: f64,
    /// Join window in units of the join period. Short windows mean most
    /// receivers join before any tree state exists (they join at the
    /// source); long windows give the trees time to form between joins,
    /// so later receivers attach at branching nodes — which is where
    /// REUNITE's path pathologies live. The paper does not specify its
    /// join timing; the default (20 periods) lets roughly the paper's
    /// dynamics emerge while keeping runs fast.
    pub join_window_periods: u64,
    /// `Some(rows)`: serve unicast routes on demand with an LRU of at most
    /// `rows` cached SPF rows ([`Network::on_demand`]) instead of eager
    /// all-pairs tables. `None` (the default, and the paper figures'
    /// setting) keeps the exact eager tables — byte-identical outputs.
    pub route_cache: Option<usize>,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        ScenarioOptions {
            asymmetry: 1.0,
            unicast_only_fraction: 0.0,
            join_window_periods: 20,
            route_cache: None,
        }
    }
}

/// Entries kept in the per-thread routing-table cache. Each entry holds an
/// ISP-to-rand50-sized `Network` (tens of KB), so a few dozen is cheap and
/// comfortably covers the figure sweeps' reuse pattern (the same
/// `(topology, run seed)` draw revisited across group sizes).
const NETWORK_CACHE_CAP: usize = 32;

/// Graph-shaping inputs: everything [`build`] feeds into the topology and
/// cost draw, plus the routing materialization mode (an eager and an
/// on-demand network over the same draw must not alias). Group size and
/// timing shape only membership, which is drawn *after* the graph from the
/// same stream, so two builds agreeing on this key produce identical
/// graphs.
type NetworkCacheKey = (u8, u64, u64, u64, u64);

thread_local! {
    /// Capacity-bounded FIFO of recently computed `Network`s, keyed by
    /// `(topology, run seed, asymmetry, unicast-only fraction)`. Thread-
    /// local so the parallel figure runners share within a worker without
    /// any locking.
    static NETWORK_CACHE: RefCell<VecDeque<(NetworkCacheKey, Network)>> =
        const { RefCell::new(VecDeque::new()) };
}

/// Returns the shared `Network` for `graph`, reusing a cached instance if
/// this thread already computed routing state for an identical draw.
fn shared_network(key: NetworkCacheKey, graph: Graph, route_cache: Option<usize>) -> Network {
    NETWORK_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((_, net)) = cache.iter().find(|(k, _)| *k == key) {
            debug_assert_eq!(
                net.graph().undirected_links(),
                graph.undirected_links(),
                "network cache key collision"
            );
            return net.clone();
        }
        let net = match route_cache {
            None => Network::new(graph),
            Some(rows) => Network::on_demand(graph, rows),
        };
        if cache.len() == NETWORK_CACHE_CAP {
            cache.pop_front();
        }
        cache.push_back((key, net.clone()));
        net
    })
}

/// Builds run number `run_seed` of the experiment: the RNG stream is a
/// pure function of `(kind, run_seed)`, so runs are reproducible and
/// protocols see identical draws.
pub fn build(
    kind: TopologyKind,
    group_size: usize,
    run_seed: u64,
    timing: &Timing,
    opts: &ScenarioOptions,
) -> Scenario {
    let mut rng = StdRng::seed_from_u64(run_seed ^ (0x5EED_0000 + kind as u64));
    let (mut graph, source) = match kind {
        TopologyKind::Isp => (isp::isp_topology(), isp::SOURCE_HOST),
        TopologyKind::Rand50 => {
            let mut topo_rng = StdRng::seed_from_u64(RAND50_TOPO_SEED);
            let g = random::rand50(&mut topo_rng);
            // Source fixed at the first router's host, mirroring the ISP
            // convention (host n on router 0 → NodeId(50)).
            (g, NodeId(50))
        }
        TopologyKind::Waxman30 => {
            let mut topo_rng = StdRng::seed_from_u64(WAXMAN_TOPO_SEED);
            let g = random::waxman(30, 0.9, 0.3, &mut topo_rng);
            (g, NodeId(30))
        }
    };
    costs::assign_uniform_with_asymmetry(&mut graph, 1, 10, opts.asymmetry, &mut rng);

    if opts.unicast_only_fraction > 0.0 {
        // The source's access router stays capable so the channel can form;
        // everything else may lose multicast capability.
        let source_router = graph.host_router(source);
        let routers: Vec<NodeId> = graph.routers().filter(|&r| r != source_router).collect();
        for r in routers {
            if rng.random::<f64>() < opts.unicast_only_fraction {
                graph.set_mcast_capable(r, false);
            }
        }
    }

    let pool: Vec<NodeId> = graph.hosts().filter(|&h| h != source).collect();
    assert!(
        group_size <= pool.len(),
        "group size {group_size} exceeds receiver pool {}",
        pool.len()
    );
    // The paper workload consumes the RNG in the historical order
    // (receiver sample, then join schedule), keeping every figure
    // byte-identical across the Workload migration.
    let plan = Workload::paper_figure(group_size, opts.join_window_periods).plan(
        &pool,
        Channel::primary(source),
        timing,
        &mut rng,
    );
    let cache_key = (
        kind as u8,
        run_seed,
        opts.asymmetry.to_bits(),
        opts.unicast_only_fraction.to_bits(),
        // 0 = eager tables; rows+1 = on-demand with that capacity.
        opts.route_cache.map_or(0, |rows| rows as u64 + 1),
    );
    let network = shared_network(cache_key, graph, opts.route_cache);
    Scenario {
        network,
        source,
        receivers: plan.receivers,
        join_times: plan.join_times,
        join_window: plan.join_window,
        seed: run_seed,
        script: plan.script,
        faults: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> Timing {
        Timing::default()
    }

    #[test]
    fn isp_scenario_shape() {
        let s = build(
            TopologyKind::Isp,
            8,
            1,
            &timing(),
            &ScenarioOptions::default(),
        );
        assert_eq!(s.source, NodeId(18));
        assert_eq!(s.receivers.len(), 8);
        assert!(!s.receivers.contains(&s.source));
        assert_eq!(s.join_times.len(), 8);
    }

    #[test]
    fn rand50_topology_is_fixed_across_runs() {
        let a = build(
            TopologyKind::Rand50,
            5,
            1,
            &timing(),
            &ScenarioOptions::default(),
        );
        let b = build(
            TopologyKind::Rand50,
            5,
            2,
            &timing(),
            &ScenarioOptions::default(),
        );
        // Same adjacency (ignore costs): compare link endpoints.
        let ends = |g: &Graph| {
            g.undirected_links()
                .iter()
                .map(|&(a, b, ..)| (a, b))
                .collect::<Vec<_>>()
        };
        assert_eq!(ends(a.graph()), ends(b.graph()));
    }

    #[test]
    fn different_run_seeds_change_costs_and_receivers() {
        let a = build(
            TopologyKind::Isp,
            8,
            1,
            &timing(),
            &ScenarioOptions::default(),
        );
        let b = build(
            TopologyKind::Isp,
            8,
            2,
            &timing(),
            &ScenarioOptions::default(),
        );
        assert!(
            a.receivers != b.receivers
                || a.graph().undirected_links() != b.graph().undirected_links()
        );
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = build(
            TopologyKind::Isp,
            8,
            7,
            &timing(),
            &ScenarioOptions::default(),
        );
        let b = build(
            TopologyKind::Isp,
            8,
            7,
            &timing(),
            &ScenarioOptions::default(),
        );
        assert_eq!(a.receivers, b.receivers);
        assert_eq!(a.graph().undirected_links(), b.graph().undirected_links());
        assert_eq!(a.join_times, b.join_times);
    }

    #[test]
    fn unicast_fraction_disables_routers_but_not_source_router() {
        let opts = ScenarioOptions {
            unicast_only_fraction: 0.9,
            ..ScenarioOptions::default()
        };
        let s = build(TopologyKind::Isp, 4, 3, &timing(), &opts);
        let source_router = s.graph().host_router(s.source);
        assert!(s.graph().is_mcast_capable(source_router));
        let disabled = s
            .graph()
            .routers()
            .filter(|&r| !s.graph().is_mcast_capable(r))
            .count();
        assert!(disabled >= 10, "only {disabled} routers disabled at f=0.9");
    }

    #[test]
    fn paper_group_sizes_match_figures() {
        assert_eq!(
            TopologyKind::Isp.paper_group_sizes(),
            vec![2, 4, 6, 8, 10, 12, 14, 16]
        );
        assert_eq!(
            TopologyKind::Rand50.paper_group_sizes(),
            vec![5, 10, 15, 20, 25, 30, 35, 40, 45]
        );
    }

    #[test]
    fn waxman_scenario_builds_and_samples() {
        let s = build(
            TopologyKind::Waxman30,
            8,
            2,
            &timing(),
            &ScenarioOptions::default(),
        );
        assert_eq!(s.source, NodeId(30));
        assert_eq!(s.receivers.len(), 8);
        assert!(s.graph().routers().count() == 30 && s.graph().hosts().count() == 30);
    }

    #[test]
    fn same_draw_shares_one_network() {
        // Same (kind, run seed, options) ⇒ the thread-local cache hands
        // both scenarios the same Network allocation, even across group
        // sizes (membership is drawn after the graph).
        let a = build(
            TopologyKind::Isp,
            4,
            77,
            &timing(),
            &ScenarioOptions::default(),
        );
        let b = build(
            TopologyKind::Isp,
            12,
            77,
            &timing(),
            &ScenarioOptions::default(),
        );
        assert!(
            std::ptr::eq(a.network().graph(), b.network().graph()),
            "routing tables recomputed for an identical draw"
        );
    }

    #[test]
    fn different_options_do_not_share_networks() {
        let asym = ScenarioOptions {
            asymmetry: 0.0,
            ..ScenarioOptions::default()
        };
        let a = build(
            TopologyKind::Isp,
            4,
            78,
            &timing(),
            &ScenarioOptions::default(),
        );
        let b = build(TopologyKind::Isp, 4, 78, &timing(), &asym);
        assert!(!std::ptr::eq(a.network().graph(), b.network().graph()));
    }

    #[test]
    fn route_cache_option_switches_materialization_without_aliasing() {
        let lazy_opts = ScenarioOptions {
            route_cache: Some(64),
            ..ScenarioOptions::default()
        };
        let eager = build(
            TopologyKind::Isp,
            4,
            79,
            &timing(),
            &ScenarioOptions::default(),
        );
        let lazy = build(TopologyKind::Isp, 4, 79, &timing(), &lazy_opts);
        assert!(!eager.network().is_on_demand());
        assert!(lazy.network().is_on_demand());
        assert!(
            !std::ptr::eq(eager.network().graph(), lazy.network().graph()),
            "materialization mode must be part of the cache key"
        );
        // Same draw, same routes — membership and answers agree.
        assert_eq!(eager.receivers, lazy.receivers);
        for &r in &eager.receivers {
            assert_eq!(
                eager.network().dist(eager.source, r),
                lazy.network().dist(lazy.source, r)
            );
        }
    }

    #[test]
    fn parse_round_trips() {
        for k in [
            TopologyKind::Isp,
            TopologyKind::Rand50,
            TopologyKind::Waxman30,
        ] {
            assert_eq!(TopologyKind::parse(k.name()), Some(k));
        }
        assert_eq!(TopologyKind::parse("nope"), None);
    }
}
