//! State-footprint study — quantifying REUNITE's founding observation
//! (§2.1): "in typical multicast trees, the majority of routers simply
//! forward packets … nevertheless, all multicast protocols keep per group
//! information in all routers of the multicast tree."
//!
//! For each protocol we count, over the converged tree:
//!
//! * routers holding **forwarding** state (MFT / PIM oif entries) and the
//!   total number of such entries;
//! * routers holding **control-plane-only** state (MCT entries), which is
//!   cheap state kept off the forwarding path.
//!
//! Expected shape: PIM needs forwarding state at *every* on-tree router;
//! the recursive-unicast protocols concentrate it at branching nodes.

use crate::protocols::{dispatch, ProtocolKind, Study};
use crate::report::Table;
use crate::runner::converge;
use crate::scenario::{build, Scenario, ScenarioOptions, TopologyKind};
use crate::stats::Summary;
use hbh_proto_base::{Channel, Cmd, StateInventory, Timing};
use hbh_sim_core::{Kernel, Protocol};

/// State counts over all *routers* (host agents excluded) at convergence.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StateCounts {
    /// Routers with ≥ 1 forwarding entry.
    pub fwd_routers: usize,
    /// Total forwarding entries across routers.
    pub fwd_entries: usize,
    /// Routers with control-plane-only state.
    pub ctl_routers: usize,
    /// Total control entries across routers.
    pub ctl_entries: usize,
}

struct StateStudy;

impl Study for StateStudy {
    type Out = StateCounts;

    fn run<P>(
        &self,
        mut k: Kernel<P>,
        ch: Channel,
        scenario: &Scenario,
        timing: &Timing,
    ) -> StateCounts
    where
        P: Protocol<Command = Cmd>,
        P::NodeState: StateInventory,
    {
        converge(&mut k, timing, scenario.join_window);
        let mut out = StateCounts::default();
        let routers: Vec<_> = k.network().graph().routers().collect();
        for r in routers {
            let st = k.state(r);
            let fwd = st.forwarding_entries(ch);
            let ctl = st.control_entries(ch);
            if fwd > 0 {
                out.fwd_routers += 1;
                out.fwd_entries += fwd;
            }
            if ctl > 0 && fwd == 0 {
                out.ctl_routers += 1;
            }
            out.ctl_entries += ctl;
        }
        out
    }
}

/// Measures the converged state footprint of one protocol on one scenario.
pub fn measure(kind: ProtocolKind, scenario: &Scenario, timing: &Timing) -> StateCounts {
    dispatch(kind, scenario, timing, &StateStudy)
}

pub struct StateSizeConfig {
    pub topo: TopologyKind,
    pub sizes: Vec<usize>,
    pub runs: usize,
    pub base_seed: u64,
    pub timing: Timing,
    pub protocols: Vec<ProtocolKind>,
}

impl StateSizeConfig {
    pub fn default_with_runs(runs: usize) -> Self {
        StateSizeConfig {
            topo: TopologyKind::Isp,
            sizes: vec![4, 8, 16],
            runs,
            base_seed: 1,
            timing: Timing::default(),
            protocols: ProtocolKind::ALL.to_vec(),
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct StateSizePoint {
    pub fwd_routers: Summary,
    pub fwd_entries: Summary,
    pub ctl_routers: Summary,
}

pub fn evaluate(cfg: &StateSizeConfig) -> Vec<(usize, Vec<StateSizePoint>)> {
    cfg.sizes
        .iter()
        .map(|&m| {
            let mut acc = vec![StateSizePoint::default(); cfg.protocols.len()];
            for run in 0..cfg.runs {
                let sc = build(
                    cfg.topo,
                    m,
                    cfg.base_seed ^ (m as u64) << 40 ^ run as u64,
                    &cfg.timing,
                    &ScenarioOptions::default(),
                );
                for (i, &kind) in cfg.protocols.iter().enumerate() {
                    let c = measure(kind, &sc, &cfg.timing);
                    acc[i].fwd_routers.add(c.fwd_routers as f64);
                    acc[i].fwd_entries.add(c.fwd_entries as f64);
                    acc[i].ctl_routers.add(c.ctl_routers as f64);
                }
            }
            (m, acc)
        })
        .collect()
}

pub fn render(cfg: &StateSizeConfig, rows: &[(usize, Vec<StateSizePoint>)]) -> Table {
    let mut cols = Vec::new();
    for p in &cfg.protocols {
        cols.push(format!("{} fwd-routers", p.name()));
        cols.push(format!("{} fwd-entries", p.name()));
    }
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Forwarding-state footprint — {} topology, {} runs/point",
            cfg.topo.name(),
            cfg.runs
        ),
        "receivers",
        &col_refs,
    );
    for (m, points) in rows {
        let mut cells = Vec::new();
        for p in points {
            cells.push(Table::cell(p.fwd_routers.mean(), p.fwd_routers.ci95()));
            cells.push(Table::cell(p.fwd_entries.mean(), p.fwd_entries.ci95()));
        }
        t.row(m.to_string(), cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(kind: ProtocolKind, m: usize, seed: u64) -> StateCounts {
        let timing = Timing::default();
        let sc = build(
            TopologyKind::Isp,
            m,
            seed,
            &timing,
            &ScenarioOptions::default(),
        );
        measure(kind, &sc, &timing)
    }

    #[test]
    fn pim_ss_keeps_forwarding_state_at_every_on_tree_router() {
        // Reverse-SPT routers all hold oif state; with 8 receivers on 18
        // routers the tree covers most of the backbone.
        let c = counts(ProtocolKind::PimSs, 8, 5);
        assert!(c.fwd_routers >= 6, "{c:?}");
        assert_eq!(c.ctl_routers, 0, "PIM has no control-only state");
    }

    #[test]
    fn recursive_unicast_concentrates_forwarding_state() {
        for seed in [5, 6, 7] {
            let hbh = counts(ProtocolKind::Hbh, 8, seed);
            let ss = counts(ProtocolKind::PimSs, 8, seed);
            assert!(
                hbh.fwd_routers <= ss.fwd_routers,
                "seed {seed}: HBH {hbh:?} vs PIM-SS {ss:?}"
            );
            assert!(hbh.ctl_routers > 0, "non-branching tree routers keep MCTs");
        }
    }

    #[test]
    fn reunite_also_concentrates_forwarding_state() {
        let reunite = counts(ProtocolKind::Reunite, 8, 5);
        let ss = counts(ProtocolKind::PimSs, 8, 5);
        assert!(
            reunite.fwd_routers <= ss.fwd_routers,
            "{reunite:?} vs {ss:?}"
        );
    }
}
