//! Churn study: crash the busiest core router mid-session and measure how
//! each protocol's soft state repairs the tree.
//!
//! The paper's protocols keep no hard state: trees are rebuilt purely by
//! periodic join/tree refreshes, so a router crash should heal without any
//! explicit failure signalling — at the cost of a repair window during
//! which some receivers lose packets. This study quantifies that window
//! for the recursive-unicast pair (HBH vs REUNITE):
//!
//! * **repair latency** — time from the crash until a probe is again
//!   delivered to *every* receiver;
//! * **packets lost** — per-receiver probe misses accumulated while the
//!   tree is broken (probes fire once per tree period);
//! * **duplicates** — extra copies delivered mid-repair, when stale state
//!   and freshly built branches can forward concurrently;
//! * **perturbed innocents** — receivers whose pre-crash data path avoided
//!   the victim entirely but whose path changed anyway (the §3 stability
//!   argument, under failures instead of departures).
//!
//! The victim is chosen deterministically per scenario: the multicast-
//! capable router carrying the most source→receiver unicast paths,
//! excluding every access router so that no receiver is disconnected
//! outright. Runs whose surviving topology cannot reach all receivers are
//! skipped (and counted).

use crate::datapath::traced_probe;
use crate::protocols::{dispatch, ProtocolKind, Study};
use crate::report::Table;
use crate::runner::{converge, probe_tolerant, probe_window};
use crate::scenario::{build, Scenario, ScenarioOptions, TopologyKind};
use crate::stats::Summary;
use hbh_proto_base::{Channel, Cmd, Script, Timing};
use hbh_routing::{OnDemandRoutes, RouteProvider};
use hbh_sim_core::{Kernel, Protocol};
use hbh_topo::graph::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Picks the crash victim for a scenario, or `None` if no router can be
/// crashed without disconnecting a receiver.
///
/// Deterministic per scenario: the multicast-capable router on the most
/// source→receiver unicast paths (smallest id on ties), never an access
/// router of the source or any receiver, and only if every receiver stays
/// reachable on the surviving topology.
pub fn pick_victim(scenario: &Scenario) -> Option<NodeId> {
    let g = scenario.graph();
    let routes = scenario.network().routes();
    let mut excluded: BTreeSet<NodeId> = BTreeSet::new();
    excluded.insert(g.host_router(scenario.source));
    for &r in &scenario.receivers {
        excluded.insert(g.host_router(r));
    }
    let mut on_paths: BTreeMap<NodeId, usize> = BTreeMap::new();
    for &r in &scenario.receivers {
        if let Some(path) = routes.path(scenario.source, r) {
            for &n in &path {
                if g.is_router(n) && g.is_mcast_capable(n) && !excluded.contains(&n) {
                    *on_paths.entry(n).or_insert(0) += 1;
                }
            }
        }
    }
    let mut victim = None;
    let mut best = 0usize;
    for (&n, &count) in &on_paths {
        if count > best {
            best = count;
            victim = Some(n);
        }
    }
    let victim = victim?;
    let mut node_down = vec![false; g.node_count()];
    node_down[victim.index()] = true;
    let edge_down = vec![false; g.directed_edge_count()];
    // Reachability needs only the source's SPF row over the surviving
    // topology — one lazy row instead of an all-pairs recompute.
    let avoiding = OnDemandRoutes::with_masks(
        std::sync::Arc::new(hbh_topo::Csr::from_graph(g)),
        node_down,
        edge_down,
        2,
    );
    scenario
        .receivers
        .iter()
        .all(|&r| avoiding.dist(scenario.source, r).is_some())
        .then_some(victim)
}

/// Outcome of one crash-and-recover experiment.
#[derive(Clone, Debug)]
pub struct ChurnOutcome {
    /// Time units from the crash until a probe again reached every
    /// receiver; `None` if the tree never fully re-formed in the budget.
    pub repair_latency: Option<u64>,
    /// Per-receiver probe misses accumulated while the tree was broken.
    pub lost: u64,
    /// Duplicate deliveries observed during the repair window.
    pub duplicates: u64,
    /// Receivers whose pre-crash data path avoided the victim.
    pub innocent: usize,
    /// Innocent receivers whose data path changed after repair anyway.
    pub perturbed: usize,
    /// All receivers served again after the victim restarted?
    pub recovered: bool,
    /// Control-message link copies spent between the crash and the end of
    /// the repair window (soft state pays periodic refreshes here; hard
    /// state pays probes, repair joins and retransmissions).
    pub control: u64,
    /// Reliable-layer retransmissions over the same window (zero by
    /// construction for engines without a reliable layer).
    pub retransmits: u64,
    /// Protocol state bytes per router on the repaired tree (victim still
    /// down) — the memory price of whatever repair strategy was used.
    pub state_bytes: f64,
}

struct ChurnStudy {
    victim: NodeId,
}

/// Total reliable-layer retransmissions across all nodes (zero for
/// engines without a reliable layer).
fn total_retransmits<P>(k: &Kernel<P>) -> u64
where
    P: Protocol<Command = Cmd>,
    P::NodeState: hbh_proto_base::StateInventory,
{
    use hbh_proto_base::StateInventory;
    k.network()
        .graph()
        .nodes()
        .filter_map(|n| k.state(n).reliable_stats())
        .map(|s| s.retransmits)
        .sum()
}

/// Mean protocol state bytes per router for `ch`.
fn state_bytes_per_router<P>(k: &Kernel<P>, ch: Channel) -> f64
where
    P: Protocol<Command = Cmd>,
    P::NodeState: hbh_proto_base::StateInventory,
{
    use hbh_proto_base::StateInventory;
    let routers: Vec<NodeId> = k.network().graph().routers().collect();
    let total: usize = routers.iter().map(|&r| k.state(r).state_bytes(ch)).sum();
    total as f64 / routers.len().max(1) as f64
}

impl Study for ChurnStudy {
    type Out = ChurnOutcome;

    fn run<P>(
        &self,
        mut k: Kernel<P>,
        ch: Channel,
        scenario: &Scenario,
        timing: &Timing,
    ) -> ChurnOutcome
    where
        P: Protocol<Command = Cmd>,
        P::NodeState: hbh_proto_base::StateInventory,
    {
        converge(&mut k, timing, scenario.join_window);
        let before = traced_probe(&mut k, ch, 1);
        let innocent: Vec<NodeId> = scenario
            .receivers
            .iter()
            .copied()
            .filter(|&r| before.path_to(r).is_some_and(|p| !p.contains(&self.victim)))
            .collect();

        let t_fail = k.now() + 1;
        Script::new()
            .fail_node(t_fail, self.victim)
            .schedule(&mut k);
        k.run_until(t_fail);
        let control_before = k.stats().control_copies();
        let rtx_before = total_retransmits(&k);

        // Probe once per tree period until every receiver is served again.
        // Soft state can take a couple of destroy timeouts to flush stale
        // branches and re-grow, so budget a few t2 rounds.
        let expected = scenario.receivers.len();
        let window = probe_window(k.network());
        let deadline = t_fail + 8 * timing.t2 + 8 * timing.tree_period;
        let mut lost = 0u64;
        let mut duplicates = 0u64;
        let mut repair_latency = None;
        let mut tag = 100u64;
        while k.now() < deadline {
            let inject = k.now();
            let (delays, dups) = probe_tolerant(&mut k, ch, tag, window);
            duplicates += dups;
            let served = scenario
                .receivers
                .iter()
                .filter(|r| delays.contains_key(r))
                .count();
            if served == expected {
                repair_latency = Some(inject - t_fail);
                break;
            }
            lost += (expected - served) as u64;
            tag += 1;
            k.run_until(inject + timing.tree_period);
        }

        let control = k.stats().control_copies() - control_before;
        let retransmits = total_retransmits(&k) - rtx_before;
        let state_bytes = state_bytes_per_router(&k, ch);

        // Route perturbation of innocents, measured on the repaired tree
        // (victim still down): their unicast shortest paths are untouched
        // by the crash, so any change is protocol-induced.
        let mut perturbed = 0;
        if repair_latency.is_some() {
            let during = traced_probe(&mut k, ch, 2);
            perturbed = innocent
                .iter()
                .filter(|&&r| before.path_to(r) != during.path_to(r))
                .count();
        }

        let t_up = k.now() + 1;
        Script::new()
            .restore_node(t_up, self.victim)
            .schedule(&mut k);
        k.run_until(t_up);
        converge(&mut k, timing, 0);
        let (delays, _) = probe_tolerant(&mut k, ch, 3, window);
        let recovered = scenario.receivers.iter().all(|r| delays.contains_key(r));

        ChurnOutcome {
            repair_latency,
            lost,
            duplicates,
            innocent: innocent.len(),
            perturbed,
            recovered,
            control,
            retransmits,
            state_bytes,
        }
    }
}

/// Runs the churn study for one protocol on one scenario.
pub fn run_churn(
    kind: ProtocolKind,
    scenario: &Scenario,
    timing: &Timing,
    victim: NodeId,
) -> ChurnOutcome {
    dispatch(kind, scenario, timing, &ChurnStudy { victim })
}

/// Aggregates over runs, per protocol.
#[derive(Clone, Debug, Default)]
pub struct ChurnPoint {
    /// Repair latency over runs that repaired (time units).
    pub repair_latency: Summary,
    pub lost: Summary,
    pub duplicates: Summary,
    /// Perturbed innocent receivers per run.
    pub perturbed: Summary,
    /// Control-message link copies over the repair window.
    pub control: Summary,
    /// Reliable-layer retransmissions over the repair window.
    pub retransmits: Summary,
    /// State bytes per router on the repaired tree.
    pub state_bytes: Summary,
    /// Runs where the tree never fully re-formed within the budget.
    pub unrepaired: u64,
    /// Runs where service was not fully restored after the restart.
    pub unrecovered: u64,
}

pub struct ChurnConfig {
    pub topo: TopologyKind,
    pub group_size: usize,
    pub runs: usize,
    pub base_seed: u64,
    pub timing: Timing,
    pub protocols: Vec<ProtocolKind>,
}

impl ChurnConfig {
    /// Churn view of a shared [`crate::runner::RunConfig`]: fixed paper
    /// group size of 8 and the three churn arms (REUNITE and HBH — the
    /// soft-state pair whose repair behaviour the paper argues about —
    /// plus the hard-state HBH variant they are measured against);
    /// topology, runs, seed and timing carried over.
    pub fn from_run(run: &crate::runner::RunConfig) -> Self {
        ChurnConfig {
            topo: run.topo,
            group_size: 8,
            runs: run.runs,
            base_seed: run.base_seed,
            timing: run.timing,
            protocols: ProtocolKind::CHURN_ARMS.to_vec(),
        }
    }
}

/// Full study output: one point per protocol plus the skip count.
pub struct ChurnReport {
    pub points: Vec<ChurnPoint>,
    /// Runs with no crashable router (every candidate disconnects someone).
    pub skipped: u64,
}

pub fn evaluate(cfg: &ChurnConfig) -> ChurnReport {
    let per_run = crate::parallel::map_runs(cfg.runs, |run| {
        let sc = build(
            cfg.topo,
            cfg.group_size,
            cfg.base_seed ^ ((run as u64) << 16),
            &cfg.timing,
            &ScenarioOptions::default(),
        );
        let victim = pick_victim(&sc)?;
        Some(
            cfg.protocols
                .iter()
                .map(|&kind| run_churn(kind, &sc, &cfg.timing, victim))
                .collect::<Vec<_>>(),
        )
    });
    let mut points = vec![ChurnPoint::default(); cfg.protocols.len()];
    let mut skipped = 0;
    for outcomes in per_run {
        let Some(outcomes) = outcomes else {
            skipped += 1;
            continue;
        };
        for (p, o) in points.iter_mut().zip(outcomes) {
            match o.repair_latency {
                Some(lat) => p.repair_latency.add(lat as f64),
                None => p.unrepaired += 1,
            }
            p.lost.add(o.lost as f64);
            p.duplicates.add(o.duplicates as f64);
            p.perturbed.add(o.perturbed as f64);
            p.control.add(o.control as f64);
            p.retransmits.add(o.retransmits as f64);
            p.state_bytes.add(o.state_bytes);
            if !o.recovered {
                p.unrecovered += 1;
            }
        }
    }
    ChurnReport { points, skipped }
}

pub fn render(cfg: &ChurnConfig, report: &ChurnReport) -> Table {
    let names: Vec<&str> = cfg.protocols.iter().map(|p| p.name()).collect();
    let mut t = Table::new(
        format!(
            "Tree repair after a core-router crash — {} topology, {} receivers, {} runs ({} skipped)",
            cfg.topo.name(),
            cfg.group_size,
            cfg.runs,
            report.skipped
        ),
        "metric",
        &names,
    );
    let points = &report.points;
    t.row(
        "repair latency",
        points
            .iter()
            .map(|p| Table::cell(p.repair_latency.mean(), p.repair_latency.ci95()))
            .collect(),
    );
    t.row(
        "probe misses",
        points
            .iter()
            .map(|p| Table::cell(p.lost.mean(), p.lost.ci95()))
            .collect(),
    );
    t.row(
        "duplicates",
        points
            .iter()
            .map(|p| Table::cell(p.duplicates.mean(), p.duplicates.ci95()))
            .collect(),
    );
    t.row(
        "perturbed innocents",
        points
            .iter()
            .map(|p| Table::cell(p.perturbed.mean(), p.perturbed.ci95()))
            .collect(),
    );
    t.row(
        "control msgs (repair)",
        points
            .iter()
            .map(|p| Table::cell(p.control.mean(), p.control.ci95()))
            .collect(),
    );
    t.row(
        "retransmissions",
        points
            .iter()
            .map(|p| Table::cell(p.retransmits.mean(), p.retransmits.ci95()))
            .collect(),
    );
    t.row(
        "state bytes/router",
        points
            .iter()
            .map(|p| Table::cell(p.state_bytes.mean(), p.state_bytes.ci95()))
            .collect(),
    );
    t.row(
        "unrepaired runs",
        points
            .iter()
            .map(|p| format!("{:>8}", p.unrepaired))
            .collect(),
    );
    t.row(
        "unrecovered runs",
        points
            .iter()
            .map(|p| format!("{:>8}", p.unrecovered))
            .collect(),
    );
    t
}

/// Machine-readable report: one JSON object per protocol arm, with the
/// run parameters alongside so a consumer can tell two sweeps apart.
/// Hand-rolled (the workspace deliberately carries no JSON dependency);
/// every value is a finite number or an integer, so no escaping issues
/// arise beyond the protocol names, which are static ASCII.
pub fn render_json(cfg: &ChurnConfig, report: &ChurnReport) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.3}")
        } else {
            "null".to_string()
        }
    }
    let mut arms = Vec::new();
    for (kind, p) in cfg.protocols.iter().zip(&report.points) {
        arms.push(format!(
            concat!(
                "    {{\n",
                "      \"protocol\": \"{}\",\n",
                "      \"repair_latency_mean\": {},\n",
                "      \"repair_latency_ci95\": {},\n",
                "      \"probe_misses_mean\": {},\n",
                "      \"duplicates_mean\": {},\n",
                "      \"perturbed_innocents_mean\": {},\n",
                "      \"control_msgs_mean\": {},\n",
                "      \"retransmissions_mean\": {},\n",
                "      \"state_bytes_per_router_mean\": {},\n",
                "      \"unrepaired_runs\": {},\n",
                "      \"unrecovered_runs\": {}\n",
                "    }}"
            ),
            kind.name(),
            num(p.repair_latency.mean()),
            num(p.repair_latency.ci95()),
            num(p.lost.mean()),
            num(p.duplicates.mean()),
            num(p.perturbed.mean()),
            num(p.control.mean()),
            num(p.retransmits.mean()),
            num(p.state_bytes.mean()),
            p.unrepaired,
            p.unrecovered,
        ));
    }
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"churn\",\n",
            "  \"topology\": \"{}\",\n",
            "  \"group_size\": {},\n",
            "  \"runs\": {},\n",
            "  \"base_seed\": {},\n",
            "  \"skipped_runs\": {},\n",
            "  \"arms\": [\n{}\n  ]\n",
            "}}\n"
        ),
        cfg.topo.name(),
        cfg.group_size,
        cfg.runs,
        cfg.base_seed,
        report.skipped,
        arms.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;

    fn small_cfg(runs: usize, protocols: Vec<ProtocolKind>) -> ChurnConfig {
        let mut cfg = ChurnConfig::from_run(&RunConfig::new().runs(runs));
        cfg.protocols = protocols;
        cfg
    }

    #[test]
    fn victim_is_deterministic_and_never_an_access_router() {
        let timing = Timing::default();
        let sc = build(
            TopologyKind::Isp,
            8,
            7,
            &timing,
            &ScenarioOptions::default(),
        );
        let v = pick_victim(&sc).expect("ISP always has a crashable core router");
        assert_eq!(Some(v), pick_victim(&sc));
        let g = sc.graph();
        assert!(g.is_router(v) && g.is_mcast_capable(v));
        assert_ne!(v, g.host_router(sc.source));
        for &r in &sc.receivers {
            assert_ne!(v, g.host_router(r), "victim is {r}'s access router");
        }
    }

    #[test]
    fn hbh_repairs_and_recovers_from_a_core_crash() {
        let cfg = small_cfg(3, vec![ProtocolKind::Hbh]);
        let report = evaluate(&cfg);
        let p = &report.points[0];
        assert_eq!(p.unrepaired, 0, "HBH tree failed to self-heal");
        assert_eq!(p.unrecovered, 0, "HBH lost receivers after restart");
    }

    #[test]
    fn reunite_recovers_from_a_core_crash() {
        let cfg = small_cfg(3, vec![ProtocolKind::Reunite]);
        let report = evaluate(&cfg);
        let p = &report.points[0];
        assert_eq!(p.unrepaired, 0, "REUNITE tree failed to self-heal");
        assert_eq!(p.unrecovered, 0, "REUNITE lost receivers after restart");
    }

    #[test]
    fn hbh_never_perturbs_innocent_receivers() {
        // The §3 stability argument under failures: a receiver whose path
        // avoided the crashed router keeps its exact route, because HBH
        // data paths are the unicast shortest paths and those are
        // untouched by removing a node they never used.
        let cfg = small_cfg(3, vec![ProtocolKind::Hbh]);
        let report = evaluate(&cfg);
        assert_eq!(
            report.points[0].perturbed.mean(),
            0.0,
            "HBH rerouted receivers unaffected by the crash"
        );
    }
}
