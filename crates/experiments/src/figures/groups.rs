//! Multi-group scaling study — the concern §1 of the paper opens with:
//! "multicast forwarding state is difficult to aggregate". Many channels
//! share one network; we measure how total forwarding state and control
//! traffic scale with the number of concurrent groups, per protocol, and
//! verify that every channel keeps delivering exactly-once with all the
//! soft-state machinery interleaved.

use crate::report::Table;
use crate::runner::probe_window;
use crate::stats::Summary;
use hbh_pim::Pim;
use hbh_proto::Hbh;
use hbh_proto_base::workload::sample_receivers;
use hbh_proto_base::{Channel, Cmd, StateInventory, Timing};
use hbh_reunite::Reunite;
use hbh_sim_core::{Kernel, Network, Protocol, Time};
use hbh_topo::graph::NodeId;
use hbh_topo::{costs, isp};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One concurrent-channels scenario: `groups` channels, each with its own
/// source host and receiver set, on one cost draw.
#[derive(Clone, Debug)]
pub struct MultiGroupScenario {
    pub net: Network,
    pub channels: Vec<(Channel, Vec<NodeId>)>,
    pub seed: u64,
}

pub fn build_multi(groups: usize, receivers_per_group: usize, seed: u64) -> MultiGroupScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6800);
    let mut g = isp::isp_topology();
    costs::assign_paper_costs(&mut g, &mut rng);
    let hosts: Vec<NodeId> = g.hosts().collect();
    assert!(groups <= hosts.len(), "one distinct source host per group");
    let sources = sample_receivers(&hosts, groups, &mut rng);
    let channels = sources
        .iter()
        .map(|&s| {
            let pool: Vec<NodeId> = hosts.iter().copied().filter(|&h| h != s).collect();
            let rx = sample_receivers(&pool, receivers_per_group, &mut rng);
            (Channel::primary(s), rx)
        })
        .collect();
    MultiGroupScenario {
        net: Network::new(g),
        channels,
        seed,
    }
}

/// Outcome for one protocol on one multi-group scenario.
#[derive(Clone, Copy, Debug, Default)]
pub struct MultiGroupOutcome {
    /// Total forwarding entries over all routers and channels.
    pub fwd_entries: usize,
    /// Total control transmissions per refresh period (steady state).
    pub control_per_period: f64,
    /// Channels in which every receiver was served exactly once.
    pub complete_channels: usize,
}

fn run_multi<P>(proto: P, sc: &MultiGroupScenario, timing: &Timing) -> MultiGroupOutcome
where
    P: Protocol<Command = Cmd>,
    P::NodeState: StateInventory,
{
    let mut k = Kernel::new(sc.net.clone(), proto, sc.seed);
    let mut rng = StdRng::seed_from_u64(sc.seed ^ 0x6801);
    for (ch, receivers) in &sc.channels {
        k.command_at(ch.source, Cmd::StartSource(*ch), Time::ZERO);
        let sched = hbh_proto_base::workload::join_schedule(
            receivers,
            Time::ZERO,
            10 * timing.join_period,
            &mut rng,
        );
        for (r, t) in sched {
            k.command_at(r, Cmd::Join(*ch), t);
        }
    }
    k.run_until(Time(timing.convergence_horizon(10 * timing.join_period)));
    for _ in 0..8 {
        let before = k.stats().structural_changes;
        let until = k.now() + 2 * timing.t2;
        k.run_until(until);
        if k.stats().structural_changes == before {
            break;
        }
    }

    // Steady-state control rate over a 10-period window.
    let c0 = k.stats().control_copies();
    let t0 = k.now();
    let periods = 10;
    k.run_until(t0 + periods * timing.tree_period);
    let control_per_period = (k.stats().control_copies() - c0) as f64 / periods as f64;

    // Aggregate state inventory.
    let mut fwd_entries = 0;
    let routers: Vec<NodeId> = k.network().graph().routers().collect();
    for &r in &routers {
        for (ch, _) in &sc.channels {
            fwd_entries += k.state(r).forwarding_entries(*ch);
        }
    }

    // Probe every channel.
    let mut complete = 0;
    for (i, (ch, receivers)) in sc.channels.iter().enumerate() {
        let tag = 1000 + i as u64;
        let t = k.now();
        k.command_at(ch.source, Cmd::SendData { ch: *ch, tag }, t);
        k.run_until(t + probe_window(k.network()));
        let served: std::collections::HashSet<NodeId> =
            k.stats().deliveries_tagged(tag).map(|d| d.node).collect();
        let count = k.stats().deliveries_tagged(tag).count();
        if count == receivers.len() && served.len() == count {
            complete += 1;
        }
    }
    MultiGroupOutcome {
        fwd_entries,
        control_per_period,
        complete_channels: complete,
    }
}

pub struct GroupsConfig {
    pub group_counts: Vec<usize>,
    pub receivers_per_group: usize,
    pub runs: usize,
    pub base_seed: u64,
    pub timing: Timing,
}

impl GroupsConfig {
    pub fn default_with_runs(runs: usize) -> Self {
        GroupsConfig {
            group_counts: vec![1, 4, 8, 16],
            receivers_per_group: 5,
            runs,
            base_seed: 1,
            timing: Timing::default(),
        }
    }
}

pub const GROUPS_PROTOCOLS: [&str; 3] = ["HBH", "REUNITE", "PIM-SS"];

#[derive(Clone, Debug, Default)]
pub struct GroupsPoint {
    pub fwd_entries: Summary,
    pub control: Summary,
    pub incomplete: u64,
}

pub fn evaluate(cfg: &GroupsConfig) -> Vec<(usize, Vec<GroupsPoint>)> {
    cfg.group_counts
        .iter()
        .map(|&g| {
            let per_run = crate::parallel::map_runs(cfg.runs, |run| {
                let sc = build_multi(
                    g,
                    cfg.receivers_per_group,
                    (cfg.base_seed ^ ((g as u64) << 28)) ^ run as u64,
                );
                [
                    run_multi(Hbh::new(cfg.timing), &sc, &cfg.timing),
                    run_multi(Reunite::new(cfg.timing), &sc, &cfg.timing),
                    run_multi(Pim::source_specific(cfg.timing), &sc, &cfg.timing),
                ]
            });
            let mut acc = vec![GroupsPoint::default(); 3];
            for outs in per_run {
                for (p, o) in acc.iter_mut().zip(outs) {
                    p.fwd_entries.add(o.fwd_entries as f64);
                    p.control.add(o.control_per_period);
                    p.incomplete += (g - o.complete_channels) as u64;
                }
            }
            (g, acc)
        })
        .collect()
}

pub fn render(cfg: &GroupsConfig, rows: &[(usize, Vec<GroupsPoint>)]) -> Table {
    let mut cols = Vec::new();
    for p in GROUPS_PROTOCOLS {
        cols.push(format!("{p} fwd-entries"));
        cols.push(format!("{p} ctl/period"));
    }
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Concurrent groups scaling — ISP topology, {} receivers/group, {} runs/point",
            cfg.receivers_per_group, cfg.runs
        ),
        "groups",
        &col_refs,
    );
    for (g, points) in rows {
        let mut cells = Vec::new();
        for p in points {
            cells.push(Table::cell(p.fwd_entries.mean(), p.fwd_entries.ci95()));
            cells.push(Table::cell(p.control.mean(), p.control.ci95()));
        }
        t.row(g.to_string(), cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_groups_all_deliver() {
        let sc = build_multi(6, 4, 3);
        let timing = Timing::default();
        for (name, o) in [
            ("HBH", run_multi(Hbh::new(timing), &sc, &timing)),
            ("REUNITE", run_multi(Reunite::new(timing), &sc, &timing)),
            (
                "PIM-SS",
                run_multi(Pim::source_specific(timing), &sc, &timing),
            ),
        ] {
            assert_eq!(o.complete_channels, 6, "{name} dropped a channel");
            assert!(o.fwd_entries > 0);
        }
    }

    #[test]
    fn state_scales_with_group_count() {
        let timing = Timing::default();
        let small = run_multi(Hbh::new(timing), &build_multi(2, 4, 5), &timing);
        let large = run_multi(Hbh::new(timing), &build_multi(8, 4, 5), &timing);
        assert!(
            large.fwd_entries > 2 * small.fwd_entries,
            "8 groups ({}) should hold far more state than 2 ({})",
            large.fwd_entries,
            small.fwd_entries
        );
    }

    #[test]
    fn sources_are_distinct() {
        let sc = build_multi(10, 3, 7);
        let mut sources: Vec<NodeId> = sc.channels.iter().map(|(c, _)| c.source).collect();
        sources.sort();
        sources.dedup();
        assert_eq!(sources.len(), 10);
    }
}
