//! Ablation A2 — unicast-only clouds.
//!
//! The protocols' raison d'être (§1): keep delivering when a fraction of
//! the routers cannot hold multicast state. Only the recursive-unicast
//! protocols can run here — PIM forwards data interface-by-interface and
//! has no way across a unicast-only router (which is the deployment
//! problem the paper starts from). We sweep the unicast-only fraction and
//! report delivery completeness, tree cost, and delay for HBH and
//! REUNITE; cost should rise as branching points get displaced, and
//! completeness must stay at 100%.

use crate::figures::eval::{evaluate, EvalConfig, EvalPoint, Metric};
use crate::protocols::ProtocolKind;
use crate::report::Table;
use crate::scenario::{ScenarioOptions, TopologyKind};
use hbh_proto_base::Timing;

pub struct CloudsConfig {
    pub topo: TopologyKind,
    pub group_size: usize,
    pub runs: usize,
    pub base_seed: u64,
    pub fractions: Vec<f64>,
    pub timing: Timing,
}

impl CloudsConfig {
    pub fn default_with_runs(runs: usize) -> Self {
        CloudsConfig {
            topo: TopologyKind::Isp,
            group_size: 10,
            runs,
            base_seed: 1,
            fractions: vec![0.0, 0.2, 0.4, 0.6, 0.8],
            timing: Timing::default(),
        }
    }
}

pub struct CloudsPoint {
    pub fraction: f64,
    pub point: EvalPoint,
    pub cfg: EvalConfig,
}

pub fn evaluate_sweep(cfg: &CloudsConfig) -> Vec<CloudsPoint> {
    cfg.fractions
        .iter()
        .map(|&f| {
            let ecfg = EvalConfig {
                topo: cfg.topo,
                sizes: vec![cfg.group_size],
                runs: cfg.runs,
                base_seed: cfg.base_seed ^ ((f * 1000.0) as u64) << 20,
                timing: cfg.timing,
                opts: ScenarioOptions {
                    unicast_only_fraction: f,
                    ..ScenarioOptions::default()
                },
                protocols: ProtocolKind::RECURSIVE_UNICAST.to_vec(),
            };
            let point = evaluate(&ecfg).remove(0);
            CloudsPoint {
                fraction: f,
                point,
                cfg: ecfg,
            }
        })
        .collect()
}

pub fn render(cfg: &CloudsConfig, points: &[CloudsPoint], metric: Metric) -> Table {
    let mut t = Table::new(
        format!(
            "{} vs unicast-only router fraction — {} topology, {} receivers, {} runs/point",
            metric.title(),
            cfg.topo.name(),
            cfg.group_size,
            cfg.runs
        ),
        "unicast-only",
        &["REUNITE", "HBH", "REUNITE incompl", "HBH incompl"],
    );
    for p in points {
        let s = |i: usize| match metric {
            Metric::Cost => p.point.per_protocol[i].cost,
            Metric::Bandwidth => p.point.per_protocol[i].bandwidth,
            Metric::Delay => p.point.per_protocol[i].delay,
        };
        t.row(
            format!("{:.2}", p.fraction),
            vec![
                Table::cell(s(0).mean(), s(0).ci95()),
                Table::cell(s(1).mean(), s(1).ci95()),
                format!("{:>8}", p.point.per_protocol[0].incomplete),
                format!("{:>8}", p.point.per_protocol[1].incomplete),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_survives_heavy_unicast_clouds() {
        let cfg = CloudsConfig {
            fractions: vec![0.6],
            runs: 4,
            group_size: 8,
            ..CloudsConfig::default_with_runs(4)
        };
        let pts = evaluate_sweep(&cfg);
        for (i, pp) in pts[0].point.per_protocol.iter().enumerate() {
            assert_eq!(
                pp.incomplete,
                0,
                "{} dropped receivers behind unicast clouds",
                pts[0].cfg.protocols[i].name()
            );
        }
    }

    #[test]
    fn cost_rises_as_branching_gets_displaced() {
        let cfg = CloudsConfig {
            fractions: vec![0.0, 0.8],
            runs: 6,
            group_size: 10,
            ..CloudsConfig::default_with_runs(6)
        };
        let pts = evaluate_sweep(&cfg);
        let hbh_cost = |p: &CloudsPoint| p.point.per_protocol[1].cost.mean();
        assert!(
            hbh_cost(&pts[1]) > hbh_cost(&pts[0]),
            "displaced branching should cost extra copies: {} vs {}",
            hbh_cost(&pts[1]),
            hbh_cost(&pts[0])
        );
    }
}
