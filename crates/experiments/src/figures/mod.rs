//! One module per paper artifact / ablation. See the crate docs for the
//! artifact ↔ module ↔ binary map.

pub mod asymmetry;
pub mod churn;
pub mod clouds;
pub mod eval;
pub mod groups;
pub mod overhead;
pub mod qos;
pub mod stability;
pub mod state_size;
pub mod timers;
