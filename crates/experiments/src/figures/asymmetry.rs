//! Ablation A1 — asymmetry sweep.
//!
//! The paper's causal story is that HBH's advantage over REUNITE *comes
//! from* unicast routing asymmetry (§2.3, §4.2). This ablation
//! interpolates the asymmetry probability from 0 (fully symmetric costs)
//! to 1 (the paper's independent per-direction draws) and reports the
//! cost/delay of the two recursive-unicast protocols plus the HBH
//! advantage at each step — the advantage should be ≈ 0 at `a = 0` and
//! grow with `a`.

use crate::figures::eval::{evaluate, EvalConfig, EvalPoint, Metric};
use crate::protocols::ProtocolKind;
use crate::report::Table;
use crate::scenario::{ScenarioOptions, TopologyKind};
use hbh_proto_base::Timing;

pub struct AsymmetryConfig {
    pub topo: TopologyKind,
    pub group_size: usize,
    pub runs: usize,
    pub base_seed: u64,
    pub steps: Vec<f64>,
    pub timing: Timing,
}

impl AsymmetryConfig {
    pub fn default_with_runs(runs: usize) -> Self {
        AsymmetryConfig {
            topo: TopologyKind::Isp,
            group_size: 10,
            runs,
            base_seed: 1,
            steps: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            timing: Timing::default(),
        }
    }
}

pub struct AsymmetryPoint {
    pub asymmetry: f64,
    pub point: EvalPoint,
    pub cfg: EvalConfig,
}

pub fn evaluate_sweep(cfg: &AsymmetryConfig) -> Vec<AsymmetryPoint> {
    cfg.steps
        .iter()
        .map(|&a| {
            let ecfg = EvalConfig {
                topo: cfg.topo,
                sizes: vec![cfg.group_size],
                runs: cfg.runs,
                base_seed: cfg.base_seed ^ ((a * 1000.0) as u64) << 20,
                timing: cfg.timing,
                opts: ScenarioOptions {
                    asymmetry: a,
                    ..ScenarioOptions::default()
                },
                protocols: vec![
                    ProtocolKind::PimSs,
                    ProtocolKind::Reunite,
                    ProtocolKind::Hbh,
                ],
            };
            let point = evaluate(&ecfg).remove(0);
            AsymmetryPoint {
                asymmetry: a,
                point,
                cfg: ecfg,
            }
        })
        .collect()
}

pub fn render(cfg: &AsymmetryConfig, points: &[AsymmetryPoint], metric: Metric) -> Table {
    let mut t = Table::new(
        format!(
            "{} vs cost asymmetry — {} topology, {} receivers, {} runs/point",
            metric.title(),
            cfg.topo.name(),
            cfg.group_size,
            cfg.runs
        ),
        "asymmetry",
        &["PIM-SS", "REUNITE", "HBH", "HBH adv %"],
    );
    for p in points {
        let s = |i: usize| match metric {
            Metric::Cost => p.point.per_protocol[i].cost,
            Metric::Bandwidth => p.point.per_protocol[i].bandwidth,
            Metric::Delay => p.point.per_protocol[i].delay,
        };
        let adv = crate::figures::eval::hbh_advantage_over_reunite(
            &p.cfg,
            std::slice::from_ref(&p.point),
            metric,
        )
        .unwrap_or(0.0);
        t.row(
            format!("{:.2}", p.asymmetry),
            vec![
                Table::cell(s(0).mean(), s(0).ci95()),
                Table::cell(s(1).mean(), s(1).ci95()),
                Table::cell(s(2).mean(), s(2).ci95()),
                format!("{adv:8.2}"),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_network_has_no_hbh_delay_advantage() {
        let cfg = AsymmetryConfig {
            steps: vec![0.0],
            runs: 5,
            group_size: 8,
            ..AsymmetryConfig::default_with_runs(5)
        };
        let pts = evaluate_sweep(&cfg);
        let adv = crate::figures::eval::hbh_advantage_over_reunite(
            &pts[0].cfg,
            std::slice::from_ref(&pts[0].point),
            Metric::Delay,
        )
        .unwrap();
        // With symmetric costs, forward SPT = reverse SPT: both protocols
        // serve every receiver at the unicast distance.
        assert!(
            adv.abs() < 1.0,
            "unexpected advantage {adv}% on symmetric network"
        );
    }

    #[test]
    fn full_asymmetry_gives_hbh_an_edge() {
        let cfg = AsymmetryConfig {
            steps: vec![1.0],
            runs: 8,
            group_size: 10,
            ..AsymmetryConfig::default_with_runs(8)
        };
        let pts = evaluate_sweep(&cfg);
        let adv = crate::figures::eval::hbh_advantage_over_reunite(
            &pts[0].cfg,
            std::slice::from_ref(&pts[0].point),
            Metric::Delay,
        )
        .unwrap();
        assert!(
            adv > 0.0,
            "HBH should win on delay under asymmetry, got {adv}%"
        );
    }
}
