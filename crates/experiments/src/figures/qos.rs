//! QoS extension experiment (the paper's named future work, §5): run the
//! protocols over **bandwidth-constrained** unicast routing and measure
//! how much of the constraint each distribution tree actually honors.
//!
//! Setup: per-direction bandwidths drawn from `U[1, 10]`; the channel
//! requires `min_bw`; unicast routing is recomputed over the compliant
//! sub-topology (`hbh-routing::qos`); runs where some receiver is not
//! admissible are skipped (counted).
//!
//! Expected result: the recursive-unicast protocols (HBH, REUNITE)
//! forward every packet by forward-direction unicast lookup, so their
//! delivery paths are compliant *by construction*. PIM-SS replicates data
//! interface-by-interface along the reverse of join paths — directions
//! whose bandwidth was never checked — so a fraction of its receivers end
//! up behind thin links. That asymmetric gap is precisely why the paper
//! calls SPT-based HBH "suitable for an eventual implementation of QoS
//! based routing".

use crate::datapath::traced_probe;
use crate::report::Table;
use crate::scenario::{build, Scenario, ScenarioOptions, TopologyKind};
use crate::stats::Summary;
use hbh_pim::Pim;
use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_reunite::Reunite;
use hbh_routing::qos;
use hbh_sim_core::{Kernel, Network, Protocol, Time};
use hbh_topo::costs;
use hbh_topo::graph::Bandwidth;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-protocol outcome of one admitted run.
#[derive(Clone, Copy, Debug, Default)]
pub struct QosOutcome {
    /// Receivers served.
    pub served: usize,
    /// Served receivers whose delivery path honors the bandwidth floor.
    pub compliant: usize,
}

pub struct QosConfig {
    pub topo: TopologyKind,
    pub group_size: usize,
    pub runs: usize,
    pub base_seed: u64,
    pub min_bw: Bandwidth,
    pub timing: Timing,
}

impl QosConfig {
    pub fn default_with_runs(runs: usize) -> Self {
        QosConfig {
            topo: TopologyKind::Isp,
            group_size: 8,
            runs,
            base_seed: 1,
            min_bw: 4,
            timing: Timing::default(),
        }
    }
}

/// Builds the constrained network for a scenario; `None` if the channel
/// is not admissible under the bandwidth floor.
fn admitted_network(sc: &Scenario, min_bw: Bandwidth, seed: u64) -> Option<Network> {
    let mut graph = sc.graph().clone();
    costs::assign_backbone_bandwidths(&mut graph, 1, 10, &mut StdRng::seed_from_u64(seed ^ 0xB0));
    let tables = qos::constrained_tables(&graph, min_bw);
    if !qos::channel_admitted(&tables, sc.source, &sc.receivers) {
        return None;
    }
    Some(Network::with_tables(graph, tables))
}

fn run_one<P: Protocol<Command = Cmd>>(
    proto: P,
    net: Network,
    sc: &Scenario,
    timing: &Timing,
    min_bw: Bandwidth,
) -> QosOutcome {
    let ch = Channel::primary(sc.source);
    let mut k = Kernel::new(net, proto, sc.seed);
    k.command_at(sc.source, Cmd::StartSource(ch), Time::ZERO);
    for &(r, t) in &sc.join_times {
        k.command_at(r, Cmd::Join(ch), t);
    }
    crate::runner::converge(&mut k, timing, sc.join_window);
    let transits = traced_probe(&mut k, ch, 1);
    let mut out = QosOutcome::default();
    for &r in &sc.receivers {
        let Some(path) = transits.path_to(r) else {
            continue;
        };
        out.served += 1;
        if qos::path_is_compliant(k.network().graph(), &path, min_bw) {
            out.compliant += 1;
        }
    }
    out
}

/// One protocol row of the report.
#[derive(Clone, Debug, Default)]
pub struct QosPoint {
    pub served_frac: Summary,
    pub compliant_frac: Summary,
}

pub struct QosReport {
    pub points: Vec<QosPoint>, // HBH, REUNITE, PIM-SS
    pub admitted_runs: usize,
    pub skipped_runs: usize,
}

pub const QOS_PROTOCOL_NAMES: [&str; 3] = ["HBH", "REUNITE", "PIM-SS"];

pub fn evaluate(cfg: &QosConfig) -> QosReport {
    // `None` marks a run whose channel was not admissible under the floor.
    let per_run = crate::parallel::map_runs(cfg.runs, |run| {
        let seed = cfg.base_seed ^ ((run as u64) << 18);
        let sc = build(
            cfg.topo,
            cfg.group_size,
            seed,
            &cfg.timing,
            &ScenarioOptions::default(),
        );
        let net = admitted_network(&sc, cfg.min_bw, seed)?;
        let outcomes = [
            run_one(
                Hbh::new(cfg.timing),
                net.clone(),
                &sc,
                &cfg.timing,
                cfg.min_bw,
            ),
            run_one(
                Reunite::new(cfg.timing),
                net.clone(),
                &sc,
                &cfg.timing,
                cfg.min_bw,
            ),
            run_one(
                Pim::source_specific(cfg.timing),
                net,
                &sc,
                &cfg.timing,
                cfg.min_bw,
            ),
        ];
        Some((sc.receivers.len(), outcomes))
    });
    let mut points = vec![QosPoint::default(); 3];
    let mut admitted_runs = 0;
    let mut skipped = 0;
    for entry in per_run {
        let Some((receivers, outcomes)) = entry else {
            skipped += 1;
            continue;
        };
        admitted_runs += 1;
        for (p, o) in points.iter_mut().zip(outcomes) {
            let n = receivers as f64;
            p.served_frac.add(o.served as f64 / n);
            p.compliant_frac.add(if o.served == 0 {
                0.0
            } else {
                o.compliant as f64 / o.served as f64
            });
        }
    }
    QosReport {
        points,
        admitted_runs,
        skipped_runs: skipped,
    }
}

pub fn render(cfg: &QosConfig, report: &QosReport) -> Table {
    let mut t = Table::new(
        format!(
            "QoS compliance (bandwidth floor {}) — {} topology, {} receivers, {} admitted / {} skipped runs",
            cfg.min_bw,
            cfg.topo.name(),
            cfg.group_size,
            report.admitted_runs,
            report.skipped_runs
        ),
        "metric",
        &QOS_PROTOCOL_NAMES,
    );
    t.row(
        "served fraction",
        report
            .points
            .iter()
            .map(|p| Table::cell(p.served_frac.mean(), p.served_frac.ci95()))
            .collect(),
    );
    t.row(
        "compliant-path fraction",
        report
            .points
            .iter()
            .map(|p| Table::cell(p.compliant_frac.mean(), p.compliant_frac.ci95()))
            .collect(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursive_unicast_is_fully_compliant_pim_is_not() {
        let cfg = QosConfig {
            runs: 8,
            ..QosConfig::default_with_runs(8)
        };
        let r = evaluate(&cfg);
        assert!(
            r.admitted_runs >= 3,
            "too few admitted runs ({})",
            r.admitted_runs
        );
        let [hbh, reunite, pim] = [&r.points[0], &r.points[1], &r.points[2]];
        assert_eq!(hbh.served_frac.mean(), 1.0, "HBH must serve everyone");
        assert_eq!(
            hbh.compliant_frac.mean(),
            1.0,
            "HBH paths compliant by construction"
        );
        assert_eq!(
            reunite.compliant_frac.mean(),
            1.0,
            "REUNITE data is routed unicast too"
        );
        assert!(
            pim.compliant_frac.mean() < 1.0,
            "PIM's reverse-direction data should violate the floor sometimes ({})",
            pim.compliant_frac.mean()
        );
    }
}
