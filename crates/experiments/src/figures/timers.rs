//! Ablation A3 — soft-state timer sensitivity.
//!
//! The paper never publishes its t1/t2 constants; this ablation shows the
//! steady-state metrics are insensitive to them while convergence time
//! scales with t2 (which is why our defaults are safe — `DESIGN.md` A3).
//! We scale t1/t2 by a factor (periods fixed) and report the time of the
//! last structural change (convergence time) and the probe metrics.

use crate::protocols::{dispatch, ProtocolKind, Study};
use crate::report::Table;
use crate::runner::{converge, probe};
use crate::scenario::{build, Scenario, ScenarioOptions, TopologyKind};
use crate::stats::Summary;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Kernel, Protocol};

/// Outcome of one timer-scale run.
#[derive(Clone, Copy, Debug)]
pub struct TimerOutcome {
    /// Simulated time of the last structural change (convergence time).
    pub converged_at: u64,
    pub cost: u64,
    pub avg_delay: f64,
    pub complete: bool,
}

struct ConvergenceStudy;

impl Study for ConvergenceStudy {
    type Out = TimerOutcome;

    fn run<P: Protocol<Command = Cmd>>(
        &self,
        mut k: Kernel<P>,
        ch: Channel,
        scenario: &Scenario,
        timing: &Timing,
    ) -> TimerOutcome {
        converge(&mut k, timing, scenario.join_window);
        let converged_at = k.stats().last_structural_change.0;
        let expected = scenario.receivers.len();
        let (cost, delays) = probe(&mut k, ch, 1, expected);
        let avg = if delays.is_empty() {
            0.0
        } else {
            delays.values().sum::<u64>() as f64 / delays.len() as f64
        };
        TimerOutcome {
            converged_at,
            cost,
            avg_delay: avg,
            complete: delays.len() == expected,
        }
    }
}

/// Scales t1/t2 (and t2 = 2·t1 stays preserved) without touching periods.
pub fn scaled_timing(scale: f64) -> Timing {
    let base = Timing::default();
    let t1 = ((base.t1 as f64) * scale).round() as u64;
    Timing {
        t1,
        t2: 2 * t1,
        ..base
    }
}

pub struct TimersConfig {
    pub topo: TopologyKind,
    pub group_size: usize,
    pub runs: usize,
    pub base_seed: u64,
    pub scales: Vec<f64>,
    pub protocols: Vec<ProtocolKind>,
}

impl TimersConfig {
    pub fn default_with_runs(runs: usize) -> Self {
        TimersConfig {
            topo: TopologyKind::Isp,
            group_size: 8,
            runs,
            base_seed: 1,
            scales: vec![1.0, 2.0, 4.0],
            protocols: vec![ProtocolKind::Reunite, ProtocolKind::Hbh],
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct TimersPoint {
    pub converged_at: Summary,
    pub cost: Summary,
    pub delay: Summary,
    pub incomplete: u64,
}

pub fn evaluate(cfg: &TimersConfig) -> Vec<(f64, Vec<TimersPoint>)> {
    cfg.scales
        .iter()
        .map(|&scale| {
            let timing = scaled_timing(scale);
            let per_run = crate::parallel::map_runs(cfg.runs, |run| {
                let sc = build(
                    cfg.topo,
                    cfg.group_size,
                    cfg.base_seed ^ ((run as u64) << 8),
                    &timing,
                    &ScenarioOptions::default(),
                );
                cfg.protocols
                    .iter()
                    .map(|&kind| dispatch(kind, &sc, &timing, &ConvergenceStudy))
                    .collect::<Vec<_>>()
            });
            let mut acc = vec![TimersPoint::default(); cfg.protocols.len()];
            for outcomes in per_run {
                for (a, o) in acc.iter_mut().zip(outcomes) {
                    a.converged_at.add(o.converged_at as f64);
                    a.cost.add(o.cost as f64);
                    a.delay.add(o.avg_delay);
                    if !o.complete {
                        a.incomplete += 1;
                    }
                }
            }
            (scale, acc)
        })
        .collect()
}

pub fn render(cfg: &TimersConfig, rows: &[(f64, Vec<TimersPoint>)]) -> Table {
    let mut cols = Vec::new();
    for p in &cfg.protocols {
        cols.push(format!("{} conv.time", p.name()));
        cols.push(format!("{} cost", p.name()));
        cols.push(format!("{} delay", p.name()));
    }
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Timer-scale sensitivity — {} topology, {} receivers, {} runs/point",
            cfg.topo.name(),
            cfg.group_size,
            cfg.runs
        ),
        "t-scale",
        &col_refs,
    );
    for (scale, points) in rows {
        let mut cells = Vec::new();
        for p in points {
            cells.push(Table::cell(p.converged_at.mean(), p.converged_at.ci95()));
            cells.push(Table::cell(p.cost.mean(), p.cost.ci95()));
            cells.push(Table::cell(p.delay.mean(), p.delay.ci95()));
        }
        t.row(format!("{scale:.1}"), cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_metrics_insensitive_to_timer_scale() {
        let cfg = TimersConfig {
            scales: vec![1.0, 4.0],
            runs: 3,
            protocols: vec![ProtocolKind::Hbh],
            ..TimersConfig::default_with_runs(3)
        };
        let rows = evaluate(&cfg);
        let (c1, c4) = (&rows[0].1[0], &rows[1].1[0]);
        assert_eq!(c1.incomplete + c4.incomplete, 0);
        assert!(
            (c1.cost.mean() - c4.cost.mean()).abs() < 0.5,
            "cost moved with timer scale: {} vs {}",
            c1.cost.mean(),
            c4.cost.mean()
        );
        assert!((c1.delay.mean() - c4.delay.mean()).abs() < 0.5);
    }

    #[test]
    fn scaled_timing_keeps_invariants() {
        for s in [0.5, 1.0, 3.0] {
            scaled_timing(s).validate();
        }
    }
}
