//! The paper's headline evaluation (Figures 7 and 8): average tree cost
//! and average receiver delay vs. group size, four protocols, two
//! topologies, N independent paired runs per point.

use crate::protocols::{run_protocol, ProtocolKind};
use crate::report::Table;
use crate::scenario::{build, ScenarioOptions, TopologyKind};
use crate::stats::Summary;
use hbh_proto_base::Timing;

/// Which of the two paper metrics to report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Figure 7: packet copies per injected data packet.
    Cost,
    /// Copies weighted by link cost (the abstract's "bandwidth
    /// consumption"; an alternative reading of Figure 7's axis).
    Bandwidth,
    /// Figure 8: mean receiver delay in time units.
    Delay,
}

impl Metric {
    pub fn title(self) -> &'static str {
        match self {
            Metric::Cost => "Tree cost (number of packet copies)",
            Metric::Bandwidth => "Tree bandwidth consumption (cost-weighted copies)",
            Metric::Delay => "Receiver average delay (time units)",
        }
    }
}

/// Evaluation configuration (defaults reproduce the paper's setup except
/// for `runs`, which the binaries let you dial down from 500).
#[derive(Clone, Debug)]
pub struct EvalConfig {
    pub topo: TopologyKind,
    pub sizes: Vec<usize>,
    pub runs: usize,
    pub base_seed: u64,
    pub timing: Timing,
    pub opts: ScenarioOptions,
    pub protocols: Vec<ProtocolKind>,
}

impl EvalConfig {
    /// Evaluation view of a shared [`crate::runner::RunConfig`]: the
    /// paper's group-size sweep for the run's topology, all other knobs
    /// carried over.
    pub fn from_run(run: &crate::runner::RunConfig) -> Self {
        EvalConfig {
            topo: run.topo,
            sizes: run.topo.paper_group_sizes(),
            runs: run.runs,
            base_seed: run.base_seed,
            timing: run.timing,
            opts: run.opts,
            protocols: run.protocols.clone(),
        }
    }
}

/// Per-protocol aggregates at one group size.
#[derive(Clone, Debug, Default)]
pub struct ProtocolPoint {
    pub cost: Summary,
    pub bandwidth: Summary,
    pub delay: Summary,
    /// Runs where not every receiver was served (must stay 0).
    pub incomplete: u64,
    /// Runs that failed to quiesce before the probe (should stay 0).
    pub unconverged: u64,
}

/// One group-size row of the figure.
#[derive(Clone, Debug)]
pub struct EvalPoint {
    pub group_size: usize,
    /// Indexed like `cfg.protocols`.
    pub per_protocol: Vec<ProtocolPoint>,
}

/// Seed for run `run` at group size `group_size`: `base ^ (size << 32) ^
/// run`, giving disjoint seed spaces per (size, run) pair. The shift is
/// deliberately parenthesized — `<<` binds tighter than `^` in Rust, so
/// this grouping is exactly what the historical unparenthesized expression
/// evaluated to; a regression test pins the sequence.
pub fn run_seed(base_seed: u64, group_size: usize, run: usize) -> u64 {
    (base_seed ^ ((group_size as u64) << 32)) ^ run as u64
}

/// Runs the full evaluation; paired design: all protocols see the same
/// scenario draw of each run. Runs are distributed over available cores.
pub fn evaluate(cfg: &EvalConfig) -> Vec<EvalPoint> {
    cfg.sizes.iter().map(|&m| evaluate_point(cfg, m)).collect()
}

fn evaluate_point(cfg: &EvalConfig, group_size: usize) -> EvalPoint {
    // One row of per-protocol outcomes per run, back in run order, so the
    // Summary fold below is independent of worker scheduling.
    let per_run = crate::parallel::map_runs(cfg.runs, |run| {
        let seed = run_seed(cfg.base_seed, group_size, run);
        let sc = build(cfg.topo, group_size, seed, &cfg.timing, &cfg.opts);
        cfg.protocols
            .iter()
            .map(|&kind| run_protocol(kind, &sc, &cfg.timing))
            .collect::<Vec<_>>()
    });

    let mut merged = vec![ProtocolPoint::default(); cfg.protocols.len()];
    for outcomes in per_run {
        for (m, o) in merged.iter_mut().zip(outcomes) {
            m.cost.add(o.cost as f64);
            m.bandwidth.add(o.weighted_cost as f64);
            m.delay.add(o.avg_delay());
            if !o.complete() {
                m.incomplete += 1;
            }
            if !o.converged {
                m.unconverged += 1;
            }
        }
    }
    EvalPoint {
        group_size,
        per_protocol: merged,
    }
}

fn metric_of(p: &ProtocolPoint, metric: Metric) -> &Summary {
    match metric {
        Metric::Cost => &p.cost,
        Metric::Bandwidth => &p.bandwidth,
        Metric::Delay => &p.delay,
    }
}

/// Renders one figure's table.
pub fn render(cfg: &EvalConfig, points: &[EvalPoint], metric: Metric) -> Table {
    let names: Vec<&str> = cfg.protocols.iter().map(|p| p.name()).collect();
    let mut t = Table::new(
        format!(
            "{} — {} topology, {} runs/point",
            metric.title(),
            cfg.topo.name(),
            cfg.runs
        ),
        "receivers",
        &names,
    );
    for p in points {
        let cells = p
            .per_protocol
            .iter()
            .map(|pp| {
                let s = metric_of(pp, metric);
                Table::cell(s.mean(), s.ci95())
            })
            .collect();
        t.row(p.group_size.to_string(), cells);
    }
    t
}

/// The paper's §4.2 headline comparison: HBH's average advantage over
/// REUNITE across all group sizes, in percent (positive = HBH better,
/// i.e. smaller metric).
pub fn hbh_advantage_over_reunite(
    cfg: &EvalConfig,
    points: &[EvalPoint],
    metric: Metric,
) -> Option<f64> {
    let hbh = cfg.protocols.iter().position(|&p| p == ProtocolKind::Hbh)?;
    let reunite = cfg
        .protocols
        .iter()
        .position(|&p| p == ProtocolKind::Reunite)?;
    let mut total = 0.0;
    let mut n = 0;
    for p in points {
        let h = metric_of(&p.per_protocol[hbh], metric).mean();
        let r = metric_of(&p.per_protocol[reunite], metric).mean();
        if r > 0.0 {
            total += (r - h) / r * 100.0;
            n += 1;
        }
    }
    (n > 0).then(|| total / n as f64)
}

/// Health check: no protocol may have dropped receivers or failed to
/// converge. Returns a description of the first violation.
pub fn health_violations(cfg: &EvalConfig, points: &[EvalPoint]) -> Option<String> {
    for p in points {
        for (i, pp) in p.per_protocol.iter().enumerate() {
            if pp.incomplete > 0 {
                return Some(format!(
                    "{} at m={}: {} incomplete runs",
                    cfg.protocols[i].name(),
                    p.group_size,
                    pp.incomplete
                ));
            }
            if pp.unconverged > 0 {
                return Some(format!(
                    "{} at m={}: {} unconverged runs",
                    cfg.protocols[i].name(),
                    p.group_size,
                    pp.unconverged
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> EvalConfig {
        let mut cfg = EvalConfig::from_run(&crate::runner::RunConfig::new().runs(6));
        cfg.sizes = vec![4, 10];
        cfg
    }

    #[test]
    fn evaluation_is_healthy_and_ordered() {
        let cfg = small_cfg();
        let points = evaluate(&cfg);
        assert_eq!(points.len(), 2);
        assert_eq!(health_violations(&cfg, &points), None);
        // Cost grows with group size for every protocol.
        for i in 0..cfg.protocols.len() {
            assert!(
                points[1].per_protocol[i].cost.mean() > points[0].per_protocol[i].cost.mean(),
                "{}: cost should grow with receivers",
                cfg.protocols[i].name()
            );
        }
    }

    #[test]
    fn hbh_tracks_pim_ss_cost_and_beats_reunite_delay() {
        // The paper's qualitative ordering on the ISP topology, at a small
        // sample size: HBH ≈ PIM-SS on cost; HBH ≤ REUNITE on delay.
        let mut cfg = small_cfg();
        cfg.sizes = vec![10];
        cfg.runs = 10;
        let points = evaluate(&cfg);
        let idx = |k: ProtocolKind| cfg.protocols.iter().position(|&p| p == k).unwrap();
        let p = &points[0].per_protocol;
        let cost = |k| p[idx(k)].cost.mean();
        let delay = |k| p[idx(k)].delay.mean();
        assert!(
            (cost(ProtocolKind::Hbh) - cost(ProtocolKind::PimSs)).abs()
                < 0.15 * cost(ProtocolKind::PimSs),
            "HBH cost {} far from PIM-SS {}",
            cost(ProtocolKind::Hbh),
            cost(ProtocolKind::PimSs)
        );
        assert!(
            delay(ProtocolKind::Hbh) <= delay(ProtocolKind::Reunite) * 1.02,
            "HBH delay {} worse than REUNITE {}",
            delay(ProtocolKind::Hbh),
            delay(ProtocolKind::Reunite)
        );
    }

    #[test]
    fn run_seed_sequence_is_pinned() {
        // The exact seed stream the published figures were generated with.
        // `<<` binds tighter than `^`, so the historical expression
        // `base ^ (m as u64) << 32 ^ run` always grouped like run_seed();
        // this test freezes that so a future refactor cannot silently
        // reshuffle every scenario draw.
        assert_eq!(run_seed(1, 6, 0), 0x6_0000_0001);
        assert_eq!(run_seed(1, 6, 3), 0x6_0000_0002);
        assert_eq!(run_seed(1, 16, 49), 0x10_0000_0030); // 1 ^ 49 = 48
        assert_eq!(run_seed(0xDEAD, 10, 7), (0xDEAD ^ (10u64 << 32)) ^ 7);
        #[allow(clippy::precedence)]
        fn historical(base: u64, m: usize, run: usize) -> u64 {
            base ^ (m as u64) << 32 ^ run as u64
        }
        for (base, m, run) in [(1u64, 2usize, 0usize), (1, 16, 499), (99, 45, 123)] {
            assert_eq!(run_seed(base, m, run), historical(base, m, run));
        }
    }

    #[test]
    fn advantage_metric_computes() {
        let cfg = small_cfg();
        let points = evaluate(&cfg);
        let adv = hbh_advantage_over_reunite(&cfg, &points, Metric::Delay).unwrap();
        assert!(adv > -50.0 && adv < 90.0, "implausible advantage {adv}");
    }

    #[test]
    fn render_has_row_per_size() {
        let cfg = small_cfg();
        let points = evaluate(&cfg);
        let table = render(&cfg, &points, Metric::Cost).render();
        assert!(table.contains("PIM-SM") && table.contains("HBH"));
        assert_eq!(table.lines().count(), 2 + cfg.sizes.len());
    }
}
