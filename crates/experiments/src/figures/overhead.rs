//! Ablation A4/extension — control-plane overhead.
//!
//! The paper's metrics are data-plane only; a deployment also cares about
//! the refresh traffic each protocol sustains. This study measures
//! steady-state control transmissions per refresh period, per protocol,
//! as the group grows: joins (all), trees (recursive unicast), fusions
//! (HBH only). HBH is expected to pay more control than REUNITE (its
//! fusion machinery keeps running under asymmetry — §3.1), which frames
//! the paper's data-plane gains as a control-plane trade.

use crate::protocols::{dispatch, ProtocolKind, Study};
use crate::report::Table;
use crate::runner::converge;
use crate::scenario::{build, Scenario, ScenarioOptions, TopologyKind};
use crate::stats::Summary;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Kernel, Protocol};

struct OverheadStudy;

impl Study for OverheadStudy {
    /// Control transmissions per tree period in steady state.
    type Out = f64;

    fn run<P: Protocol<Command = Cmd>>(
        &self,
        mut k: Kernel<P>,
        _ch: Channel,
        scenario: &Scenario,
        timing: &Timing,
    ) -> f64 {
        converge(&mut k, timing, scenario.join_window);
        let c0 = k.stats().control_copies();
        let t0 = k.now();
        let periods = 20;
        k.run_until(t0 + periods * timing.tree_period);
        (k.stats().control_copies() - c0) as f64 / periods as f64
    }
}

pub struct OverheadConfig {
    pub topo: TopologyKind,
    pub sizes: Vec<usize>,
    pub runs: usize,
    pub base_seed: u64,
    pub timing: Timing,
    pub protocols: Vec<ProtocolKind>,
}

impl OverheadConfig {
    pub fn default_with_runs(runs: usize) -> Self {
        OverheadConfig {
            topo: TopologyKind::Isp,
            sizes: vec![2, 8, 16],
            runs,
            base_seed: 1,
            timing: Timing::default(),
            protocols: ProtocolKind::ALL.to_vec(),
        }
    }
}

pub fn evaluate(cfg: &OverheadConfig) -> Vec<(usize, Vec<Summary>)> {
    cfg.sizes
        .iter()
        .map(|&m| {
            let per_run = crate::parallel::map_runs(cfg.runs, |run| {
                let sc = build(
                    cfg.topo,
                    m,
                    (cfg.base_seed ^ ((m as u64) << 24)) ^ run as u64,
                    &cfg.timing,
                    &ScenarioOptions::default(),
                );
                cfg.protocols
                    .iter()
                    .map(|&kind| dispatch(kind, &sc, &cfg.timing, &OverheadStudy))
                    .collect::<Vec<_>>()
            });
            let mut acc = vec![Summary::default(); cfg.protocols.len()];
            for outcomes in per_run {
                for (a, o) in acc.iter_mut().zip(outcomes) {
                    a.add(o);
                }
            }
            (m, acc)
        })
        .collect()
}

pub fn render(cfg: &OverheadConfig, rows: &[(usize, Vec<Summary>)]) -> Table {
    let names: Vec<&str> = cfg.protocols.iter().map(|p| p.name()).collect();
    let mut t = Table::new(
        format!(
            "Control transmissions per refresh period — {} topology, {} runs/point",
            cfg.topo.name(),
            cfg.runs
        ),
        "receivers",
        &names,
    );
    for (m, points) in rows {
        t.row(
            m.to_string(),
            points
                .iter()
                .map(|s| Table::cell(s.mean(), s.ci95()))
                .collect(),
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_with_group_size() {
        let cfg = OverheadConfig {
            sizes: vec![2, 12],
            runs: 3,
            protocols: vec![ProtocolKind::Hbh],
            ..OverheadConfig::default_with_runs(3)
        };
        let rows = evaluate(&cfg);
        assert!(
            rows[1].1[0].mean() > rows[0].1[0].mean(),
            "more receivers must mean more refresh traffic"
        );
    }

    #[test]
    fn every_protocol_has_nonzero_steady_state_overhead() {
        let cfg = OverheadConfig {
            sizes: vec![6],
            runs: 2,
            ..OverheadConfig::default_with_runs(2)
        };
        let rows = evaluate(&cfg);
        for (i, s) in rows[0].1.iter().enumerate() {
            assert!(
                s.mean() > 0.0,
                "{} shows no refresh traffic",
                cfg.protocols[i].name()
            );
        }
    }
}
