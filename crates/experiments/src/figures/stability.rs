//! Tree-stability study (the paper's Figure 4 argument, quantified):
//! after a member departs, how much does each protocol's tree state churn,
//! and do the *remaining* receivers keep their routes?
//!
//! The paper argues (§3, Figure 4) that HBH's departures have minimal
//! impact — the departing receiver's entry lives at the branching node
//! nearest it — while REUNITE's reconfiguration can change other
//! receivers' routes (Figure 2: r2's route changes when r1 leaves). This
//! study measures both effects: structural-change count during the
//! reconfiguration window, and the number of surviving receivers whose
//! delivery delay changed between a probe before and after the departure.

use crate::datapath::traced_probe;
use crate::protocols::{dispatch, ProtocolKind, Study};
use crate::report::Table;
use crate::runner::converge;
use crate::scenario::{build, Scenario, ScenarioOptions, TopologyKind};
use crate::stats::Summary;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Kernel, Protocol};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Outcome of one departure experiment.
#[derive(Clone, Debug)]
pub struct DepartureOutcome {
    /// Structural table changes during the reconfiguration window.
    pub churn: u64,
    /// Surviving receivers whose *data path* (exact node sequence, not
    /// just its delay) changed.
    pub route_changes: usize,
    /// All survivors still served after reconfiguration?
    pub survivors_served: bool,
}

struct DepartureStudy;

impl Study for DepartureStudy {
    type Out = DepartureOutcome;

    fn run<P: Protocol<Command = Cmd>>(
        &self,
        mut k: Kernel<P>,
        ch: Channel,
        scenario: &Scenario,
        timing: &Timing,
    ) -> DepartureOutcome {
        converge(&mut k, timing, scenario.join_window);
        let before = traced_probe(&mut k, ch, 1);

        // Depart a random member (seeded by the scenario).
        let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0xDEAD);
        let leaver = scenario.receivers[rng.random_range(0..scenario.receivers.len())];
        let t_leave = k.now();
        k.command_at(leaver, Cmd::Leave(ch), t_leave);
        let churn_before = k.stats().structural_changes;
        // Reconfiguration window: everything the departure will ever cause
        // happens within a few t2 periods.
        k.run_until(t_leave + 4 * timing.t2 + 4 * timing.tree_period);
        converge(&mut k, timing, 0);
        let churn = k.stats().structural_changes - churn_before;

        let after = traced_probe(&mut k, ch, 2);
        let survivors: Vec<_> = scenario
            .receivers
            .iter()
            .copied()
            .filter(|&r| r != leaver)
            .collect();
        let survivors_served = survivors.iter().all(|r| after.delivered.contains_key(r));
        let route_changes = survivors
            .iter()
            .filter(|&&r| before.path_to(r) != after.path_to(r))
            .count();
        DepartureOutcome {
            churn,
            route_changes,
            survivors_served,
        }
    }
}

/// Runs the departure study for one protocol on one scenario.
pub fn run_departure(kind: ProtocolKind, scenario: &Scenario, timing: &Timing) -> DepartureOutcome {
    dispatch(kind, scenario, timing, &DepartureStudy)
}

/// Aggregates over runs.
#[derive(Clone, Debug, Default)]
pub struct StabilityPoint {
    pub churn: Summary,
    pub route_changes: Summary,
    pub failures: u64,
}

pub struct StabilityConfig {
    pub topo: TopologyKind,
    pub group_size: usize,
    pub runs: usize,
    pub base_seed: u64,
    pub timing: Timing,
    pub protocols: Vec<ProtocolKind>,
}

impl StabilityConfig {
    /// Stability view of a shared [`crate::runner::RunConfig`] (fixed
    /// paper group size of 8; all other knobs carried over).
    pub fn from_run(run: &crate::runner::RunConfig) -> Self {
        StabilityConfig {
            topo: run.topo,
            group_size: 8,
            runs: run.runs,
            base_seed: run.base_seed,
            timing: run.timing,
            protocols: run.protocols.clone(),
        }
    }
}

pub fn evaluate(cfg: &StabilityConfig) -> Vec<StabilityPoint> {
    let per_run = crate::parallel::map_runs(cfg.runs, |run| {
        let sc = build(
            cfg.topo,
            cfg.group_size,
            cfg.base_seed ^ ((run as u64) << 16),
            &cfg.timing,
            &ScenarioOptions::default(),
        );
        cfg.protocols
            .iter()
            .map(|&kind| run_departure(kind, &sc, &cfg.timing))
            .collect::<Vec<_>>()
    });
    let mut acc = vec![StabilityPoint::default(); cfg.protocols.len()];
    for outcomes in per_run {
        for (a, o) in acc.iter_mut().zip(outcomes) {
            a.churn.add(o.churn as f64);
            a.route_changes.add(o.route_changes as f64);
            if !o.survivors_served {
                a.failures += 1;
            }
        }
    }
    acc
}

pub fn render(cfg: &StabilityConfig, points: &[StabilityPoint]) -> Table {
    let names: Vec<&str> = cfg.protocols.iter().map(|p| p.name()).collect();
    let mut t = Table::new(
        format!(
            "Reconfiguration after one departure — {} topology, {} receivers, {} runs",
            cfg.topo.name(),
            cfg.group_size,
            cfg.runs
        ),
        "metric",
        &names,
    );
    t.row(
        "state churn",
        points
            .iter()
            .map(|p| Table::cell(p.churn.mean(), p.churn.ci95()))
            .collect(),
    );
    t.row(
        "survivor route changes",
        points
            .iter()
            .map(|p| Table::cell(p.route_changes.mean(), p.route_changes.ci95()))
            .collect(),
    );
    t.row(
        "failed runs",
        points
            .iter()
            .map(|p| format!("{:>8}", p.failures))
            .collect(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::runner::RunConfig;

    #[test]
    fn departures_never_break_survivors() {
        let cfg = StabilityConfig::from_run(&RunConfig::new().runs(3));
        let points = evaluate(&cfg);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.failures, 0, "{} broke survivors", cfg.protocols[i].name());
        }
    }

    #[test]
    fn hbh_survivor_routes_are_stable() {
        // §3's claim: member departure never changes other receivers'
        // routes in HBH. (REUNITE's number may be nonzero — Figure 2.)
        let cfg =
            StabilityConfig::from_run(&RunConfig::new().runs(5).protocols(vec![ProtocolKind::Hbh]));
        let points = evaluate(&cfg);
        assert_eq!(
            points[0].route_changes.mean(),
            0.0,
            "HBH changed survivor routes on departure"
        );
    }

    #[test]
    fn pim_ss_is_also_departure_stable() {
        // Reverse SPT branches are per-receiver independent: a departure
        // must not reroute anyone.
        let cfg = StabilityConfig::from_run(
            &RunConfig::new()
                .runs(3)
                .protocols(vec![ProtocolKind::PimSs]),
        );
        let points = evaluate(&cfg);
        assert_eq!(points[0].route_changes.mean(), 0.0);
    }
}
