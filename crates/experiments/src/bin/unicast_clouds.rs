//! Ablation A2 — delivery through unicast-only clouds.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin unicast_clouds -- --runs 100
//! ```
//!
//! Sweeps the fraction of routers that are unicast-only (cannot hold
//! multicast state) and shows the recursive-unicast protocols keep
//! serving every receiver — the paper's deployment story — at the price
//! of extra copies as branching points get displaced.

use hbh_experiments::figures::clouds::{evaluate_sweep, render, CloudsConfig};
use hbh_experiments::figures::eval::Metric;
use hbh_experiments::report::Args;
use hbh_experiments::scenario::TopologyKind;

fn main() {
    let args = Args::parse(&["runs", "group", "topo", "seed"]);
    let mut cfg = CloudsConfig::default_with_runs(args.get_parse("runs", 100));
    cfg.group_size = args.get_parse("group", 10);
    cfg.base_seed = args.get_parse("seed", 1);
    if let Some(t) = args.get("topo") {
        cfg.topo = TopologyKind::parse(t).expect("--topo must be isp or rand50");
    }
    let points = evaluate_sweep(&cfg);
    for metric in [Metric::Cost, Metric::Delay] {
        let table = render(&cfg, &points, metric);
        println!("{}", table.render());
        println!("{}", table.render_dat());
    }
}
