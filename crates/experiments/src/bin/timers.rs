//! Ablation A3 — soft-state timer sensitivity.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin timers -- --runs 50
//! ```
//!
//! Scales t1/t2 and shows that the steady-state metrics the paper reports
//! are timer-insensitive while convergence time scales with t2 —
//! justifying the defaults documented in `hbh-proto-base::timing`.

use hbh_experiments::figures::timers::{evaluate, render, TimersConfig};
use hbh_experiments::report::Args;
use hbh_experiments::scenario::TopologyKind;

fn main() {
    let args = Args::parse(&["runs", "group", "topo", "seed"]);
    let mut cfg = TimersConfig::default_with_runs(args.get_parse("runs", 50));
    cfg.group_size = args.get_parse("group", 8);
    cfg.base_seed = args.get_parse("seed", 1);
    if let Some(t) = args.get("topo") {
        cfg.topo = TopologyKind::parse(t).expect("--topo must be isp or rand50");
    }
    let rows = evaluate(&cfg);
    let table = render(&cfg, &rows);
    println!("{}", table.render());
    println!("{}", table.render_dat());
}
