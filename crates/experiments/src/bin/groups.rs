//! Concurrent-groups scaling experiment.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin groups -- --runs 20
//! ```
//!
//! Runs many channels simultaneously on one network and reports how total
//! forwarding state and control traffic grow with the group count — the
//! state-aggregation concern §1 of the paper opens with.

use hbh_experiments::figures::groups::{evaluate, render, GroupsConfig};
use hbh_experiments::report::Args;

fn main() {
    let args = Args::parse(&["runs", "rx", "seed"]);
    let mut cfg = GroupsConfig::default_with_runs(args.get_parse("runs", 20));
    cfg.receivers_per_group = args.get_parse("rx", 5);
    cfg.base_seed = args.get_parse("seed", 1);
    let rows = evaluate(&cfg);
    let table = render(&cfg, &rows);
    println!("{}", table.render());
    println!("{}", table.render_dat());
}
