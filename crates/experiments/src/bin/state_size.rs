//! State-footprint experiment — REUNITE's founding observation, measured.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin state_size -- --runs 50
//! ```
//!
//! For each protocol: how many routers must hold data-plane forwarding
//! state for the converged tree, and how many entries that is. PIM needs
//! state at every on-tree router; HBH/REUNITE concentrate it at branching
//! nodes and keep only cheap control-plane state elsewhere.

use hbh_experiments::figures::state_size::{evaluate, render, StateSizeConfig};
use hbh_experiments::report::Args;
use hbh_experiments::scenario::TopologyKind;

fn main() {
    let args = Args::parse(&["runs", "topo", "seed"]);
    let mut cfg = StateSizeConfig::default_with_runs(args.get_parse("runs", 50));
    cfg.base_seed = args.get_parse("seed", 1);
    if let Some(t) = args.get("topo") {
        cfg.topo = TopologyKind::parse(t).expect("--topo must be isp or rand50");
    }
    let rows = evaluate(&cfg);
    let table = render(&cfg, &rows);
    println!("{}", table.render());
    println!("{}", table.render_dat());
}
