//! Churn experiment — crash the busiest core router mid-session, measure
//! tree repair latency, probe misses/duplicates during reconfiguration,
//! control-plane spend, and route perturbation of innocent receivers
//! (REUNITE vs soft HBH vs hard-state HBH).
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin churn -- --runs 100
//! cargo run --release -p hbh-experiments --bin churn -- --topo rand50 --runs 50
//! cargo run --release -p hbh-experiments --bin churn -- --runs 2 --seed 1 \
//!     --check ci/churn_tolerance.txt
//! ```
//!
//! Prints the table and writes it to `results/churn.txt` plus the
//! machine-readable `results/churn.json`. Exits nonzero if any protocol
//! failed to restore full service after the router restarted, or if a
//! `--check` tolerance is violated.
//!
//! ## `--check FILE`
//!
//! `FILE` is a plain-text tolerance sheet for regression gating (CI runs
//! it at a pinned seed). Lines are `#` comments or:
//!
//! ```text
//! max_repair <PROTOCOL> <mean>   # mean repair latency must be <= mean
//! faster <A> <B>                 # A's mean repair must be strictly < B's
//! ```

use hbh_experiments::figures::churn::{evaluate, render, render_json, ChurnConfig, ChurnReport};
use hbh_experiments::report::Args;
use hbh_experiments::runner::RunConfig;

/// Applies the tolerance sheet; returns human-readable violations.
fn check_tolerances(sheet: &str, cfg: &ChurnConfig, report: &ChurnReport) -> Vec<String> {
    let mean_of = |name: &str| -> Option<f64> {
        cfg.protocols
            .iter()
            .position(|k| k.name() == name)
            .map(|i| report.points[i].repair_latency.mean())
    };
    let mut violations = Vec::new();
    for (lineno, line) in sheet.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["max_repair", proto, bound] => {
                let bound: f64 = bound
                    .parse()
                    .unwrap_or_else(|_| panic!("line {}: bad bound {bound}", lineno + 1));
                match mean_of(proto) {
                    Some(mean) if mean <= bound => {}
                    Some(mean) => violations.push(format!(
                        "{proto}: mean repair latency {mean:.0} exceeds tolerance {bound:.0}"
                    )),
                    None => violations.push(format!("{proto}: not an arm of this run")),
                }
            }
            ["faster", a, b] => match (mean_of(a), mean_of(b)) {
                (Some(ma), Some(mb)) if ma < mb => {}
                (Some(ma), Some(mb)) => violations.push(format!(
                    "{a} (mean {ma:.0}) must repair strictly faster than {b} (mean {mb:.0})"
                )),
                _ => violations.push(format!("faster {a} {b}: arm missing from this run")),
            },
            _ => panic!("line {}: unrecognized tolerance rule: {line}", lineno + 1),
        }
    }
    violations
}

fn main() {
    let mut allowed: Vec<&str> = RunConfig::STANDARD_ARGS.to_vec();
    allowed.push("group");
    allowed.push("check");
    let args = Args::parse(&allowed);
    let mut cfg = ChurnConfig::from_run(&RunConfig::from_args(&args, 100));
    cfg.group_size = args.get_parse("group", cfg.group_size);

    let report = evaluate(&cfg);
    let table = render(&cfg, &report);
    let rendered = table.render();
    println!("{rendered}");

    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/churn.txt";
    std::fs::write(path, format!("{rendered}\n")).expect("write churn report");
    let json_path = "results/churn.json";
    std::fs::write(json_path, render_json(&cfg, &report)).expect("write churn json");
    println!("# written to {path} and {json_path}");

    for (kind, p) in cfg.protocols.iter().zip(&report.points) {
        if p.unrecovered > 0 {
            eprintln!(
                "WARNING: {} did not restore full service in {} run(s)",
                kind.name(),
                p.unrecovered
            );
            std::process::exit(1);
        }
    }

    if let Some(sheet_path) = args.get("check") {
        let sheet = std::fs::read_to_string(sheet_path)
            .unwrap_or_else(|e| panic!("read tolerance sheet {sheet_path}: {e}"));
        let violations = check_tolerances(&sheet, &cfg, &report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("TOLERANCE VIOLATION: {v}");
            }
            std::process::exit(1);
        }
        println!("# tolerances OK ({sheet_path})");
    }
}
