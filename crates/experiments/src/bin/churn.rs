//! Churn experiment — crash the busiest core router mid-session, measure
//! tree repair latency, probe misses/duplicates during reconfiguration,
//! and route perturbation of innocent receivers (HBH vs REUNITE).
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin churn -- --runs 100
//! cargo run --release -p hbh-experiments --bin churn -- --topo rand50 --runs 50
//! ```
//!
//! Prints the table and writes it to `results/churn.txt`. Exits nonzero if
//! any protocol failed to restore full service after the router restarted.

use hbh_experiments::figures::churn::{evaluate, render, ChurnConfig};
use hbh_experiments::report::Args;
use hbh_experiments::runner::RunConfig;

fn main() {
    let mut allowed: Vec<&str> = RunConfig::STANDARD_ARGS.to_vec();
    allowed.push("group");
    let args = Args::parse(&allowed);
    let mut cfg = ChurnConfig::from_run(&RunConfig::from_args(&args, 100));
    cfg.group_size = args.get_parse("group", cfg.group_size);

    let report = evaluate(&cfg);
    let table = render(&cfg, &report);
    let rendered = table.render();
    println!("{rendered}");

    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/churn.txt";
    std::fs::write(path, format!("{rendered}\n")).expect("write churn report");
    println!("# written to {path}");

    for (kind, p) in cfg.protocols.iter().zip(&report.points) {
        if p.unrecovered > 0 {
            eprintln!(
                "WARNING: {} did not restore full service in {} run(s)",
                kind.name(),
                p.unrecovered
            );
            std::process::exit(1);
        }
    }
}
