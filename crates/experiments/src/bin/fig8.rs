//! Figure 8 — average receiver delay vs. number of receivers.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin fig8 -- --topo isp    --runs 500
//! cargo run --release -p hbh-experiments --bin fig8 -- --topo rand50 --runs 500
//! ```
//!
//! Prints the table behind Figure 8(a)/(b), a gnuplot-ready data block,
//! and the §4.2.2 summary (HBH's average delay advantage over REUNITE).

use hbh_experiments::figures::eval::{
    evaluate, hbh_advantage_over_reunite, health_violations, render, EvalConfig, Metric,
};
use hbh_experiments::report::Args;
use hbh_experiments::runner::RunConfig;

fn main() {
    let args = Args::parse(RunConfig::STANDARD_ARGS);
    let cfg = EvalConfig::from_run(&RunConfig::from_args(&args, 500));

    let points = evaluate(&cfg);
    let table = render(&cfg, &points, Metric::Delay);
    println!("{}", table.render());
    println!("{}", table.render_dat());
    if let Some(adv) = hbh_advantage_over_reunite(&cfg, &points, Metric::Delay) {
        println!("# HBH delay advantage over REUNITE, averaged over group sizes: {adv:.1}%");
        println!("# (paper, §4.2.2: ≈14% on the ISP topology, ≈30% on the 50-node topology)");
    }
    if let Some(v) = health_violations(&cfg, &points) {
        eprintln!("WARNING: {v}");
        std::process::exit(1);
    }
}
