//! Figure 4 quantified — tree reconfiguration after a member departure.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin stability -- --runs 100 --group 8
//! ```
//!
//! Reports, per protocol: the structural state churn caused by one
//! departure, and how many *surviving* receivers had their route changed
//! (HBH's design goal is zero — §3; REUNITE's Figure-2 reconfiguration
//! makes it nonzero).

use hbh_experiments::figures::stability::{evaluate, render, StabilityConfig};
use hbh_experiments::report::Args;
use hbh_experiments::runner::RunConfig;

fn main() {
    let args = Args::parse(&["runs", "group", "topo", "seed", "threads"]);
    let mut cfg = StabilityConfig::from_run(&RunConfig::from_args(&args, 100));
    cfg.group_size = args.get_parse("group", 8);
    let points = evaluate(&cfg);
    let table = render(&cfg, &points);
    println!("{}", table.render());
    println!("{}", table.render_dat());
}
