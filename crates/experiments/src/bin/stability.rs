//! Figure 4 quantified — tree reconfiguration after a member departure.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin stability -- --runs 100 --group 8
//! ```
//!
//! Reports, per protocol: the structural state churn caused by one
//! departure, and how many *surviving* receivers had their route changed
//! (HBH's design goal is zero — §3; REUNITE's Figure-2 reconfiguration
//! makes it nonzero).

use hbh_experiments::figures::stability::{evaluate, render, StabilityConfig};
use hbh_experiments::report::Args;
use hbh_experiments::scenario::TopologyKind;

fn main() {
    let args = Args::parse(&["runs", "group", "topo", "seed"]);
    let mut cfg = StabilityConfig::default_with_runs(args.get_parse("runs", 100));
    cfg.group_size = args.get_parse("group", 8);
    cfg.base_seed = args.get_parse("seed", 1);
    if let Some(t) = args.get("topo") {
        cfg.topo = TopologyKind::parse(t).expect("--topo must be isp or rand50");
    }
    let points = evaluate(&cfg);
    let table = render(&cfg, &points);
    println!("{}", table.render());
    println!("{}", table.render_dat());
}
