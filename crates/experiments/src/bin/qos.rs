//! QoS-routing extension experiment (the paper's §5 future work).
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin qos -- --runs 100 --minbw 4
//! ```
//!
//! Routes the channel over a bandwidth-constrained sub-topology and
//! reports, per protocol, what fraction of delivered paths honor the
//! constraint: recursive unicast inherits the constrained unicast routing
//! end-to-end; RPF data crosses unchecked reverse directions.

use hbh_experiments::figures::qos::{evaluate, render, QosConfig};
use hbh_experiments::report::Args;
use hbh_experiments::scenario::TopologyKind;

fn main() {
    let args = Args::parse(&["runs", "group", "topo", "seed", "minbw"]);
    let mut cfg = QosConfig::default_with_runs(args.get_parse("runs", 100));
    cfg.group_size = args.get_parse("group", 8);
    cfg.base_seed = args.get_parse("seed", 1);
    cfg.min_bw = args.get_parse("minbw", 4);
    if let Some(t) = args.get("topo") {
        cfg.topo = TopologyKind::parse(t).expect("--topo must be isp or rand50");
    }
    let report = evaluate(&cfg);
    let table = render(&cfg, &report);
    println!("{}", table.render());
    println!("{}", table.render_dat());
}
