//! Figure 7 — average tree cost (packet copies) vs. number of receivers.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin fig7 -- --topo isp    --runs 500
//! cargo run --release -p hbh-experiments --bin fig7 -- --topo rand50 --runs 500
//! ```
//!
//! Prints the table behind Figure 7(a) (`--topo isp`) or 7(b)
//! (`--topo rand50`), a gnuplot-ready data block, and the §4.2.1 summary
//! (HBH's average cost advantage over REUNITE).

use hbh_experiments::figures::eval::{
    evaluate, hbh_advantage_over_reunite, health_violations, render, EvalConfig, Metric,
};
use hbh_experiments::report::Args;
use hbh_experiments::scenario::TopologyKind;

fn main() {
    let args = Args::parse(&["topo", "runs", "seed"]);
    let topo = TopologyKind::parse(args.get("topo").unwrap_or("isp"))
        .expect("--topo must be isp or rand50");
    let runs: usize = args.get_parse("runs", 500);
    let mut cfg = EvalConfig::paper(topo, runs);
    cfg.base_seed = args.get_parse("seed", 1);

    let points = evaluate(&cfg);
    let table = render(&cfg, &points, Metric::Cost);
    println!("{}", table.render());
    println!("{}", table.render_dat());
    if let Some(adv) = hbh_advantage_over_reunite(&cfg, &points, Metric::Cost) {
        println!("# HBH tree-cost advantage over REUNITE, averaged over group sizes: {adv:.1}%");
        println!("# (paper, §4.2.1: ≈5% on the ISP topology, ≈18% on the 50-node topology)");
    }
    if let Some(v) = health_violations(&cfg, &points) {
        eprintln!("WARNING: {v}");
        std::process::exit(1);
    }
}
