//! Figure 7 — average tree cost (packet copies) vs. number of receivers.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin fig7 -- --topo isp    --runs 500
//! cargo run --release -p hbh-experiments --bin fig7 -- --topo rand50 --runs 500
//! ```
//!
//! Prints the table behind Figure 7(a) (`--topo isp`) or 7(b)
//! (`--topo rand50`), a gnuplot-ready data block, and the §4.2.1 summary
//! (HBH's average cost advantage over REUNITE).

use hbh_experiments::figures::eval::{
    evaluate, hbh_advantage_over_reunite, health_violations, render, EvalConfig, Metric,
};
use hbh_experiments::report::Args;
use hbh_experiments::runner::RunConfig;

fn main() {
    let args = Args::parse(RunConfig::STANDARD_ARGS);
    let cfg = EvalConfig::from_run(&RunConfig::from_args(&args, 500));

    let points = evaluate(&cfg);
    let table = render(&cfg, &points, Metric::Cost);
    println!("{}", table.render());
    println!("{}", table.render_dat());
    if let Some(adv) = hbh_advantage_over_reunite(&cfg, &points, Metric::Cost) {
        println!("# HBH tree-cost advantage over REUNITE, averaged over group sizes: {adv:.1}%");
        println!("# (paper, §4.2.1: ≈5% on the ISP topology, ≈18% on the 50-node topology)");
    }
    if let Some(v) = health_violations(&cfg, &points) {
        eprintln!("WARNING: {v}");
        std::process::exit(1);
    }
}
