//! One-shot reproduction summary: runs every experiment at reduced scale
//! and prints a single report — the "does the whole paper still hold?"
//! smoke command.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin summary -- --runs 30
//! ```

use hbh_experiments::figures::eval::{evaluate, hbh_advantage_over_reunite, EvalConfig, Metric};
use hbh_experiments::figures::{asymmetry, clouds, qos, stability};
use hbh_experiments::protocols::ProtocolKind;
use hbh_experiments::report::Args;
use hbh_experiments::runner::RunConfig;
use hbh_experiments::scenario::TopologyKind;

fn main() {
    let args = Args::parse(&["runs", "seed", "threads"]);
    let run = RunConfig::from_args(&args, 30);
    let runs = run.runs;
    let seed = run.base_seed;

    println!("# HBH reproduction summary ({runs} runs per point)\n");

    for topo in [
        TopologyKind::Isp,
        TopologyKind::Rand50,
        TopologyKind::Waxman30,
    ] {
        let mut cfg = EvalConfig::from_run(&run.clone().topo(topo));
        // Middle-of-figure group sizes keep the summary fast.
        let mid = cfg.sizes[cfg.sizes.len() / 2];
        cfg.sizes = vec![mid];
        let points = evaluate(&cfg);
        let cost = hbh_advantage_over_reunite(&cfg, &points, Metric::Cost).unwrap();
        let delay = hbh_advantage_over_reunite(&cfg, &points, Metric::Delay).unwrap();
        let p = &points[0].per_protocol;
        let idx = |k: ProtocolKind| cfg.protocols.iter().position(|&x| x == k).unwrap();
        println!(
            "{:>9} (m={mid:>2}): cost  PIM-SM {:>6.1}  PIM-SS {:>6.1}  REUNITE {:>6.1}  HBH {:>6.1}   (HBH vs REUNITE: {cost:+.1}%)",
            topo.name(),
            p[idx(ProtocolKind::PimSm)].cost.mean(),
            p[idx(ProtocolKind::PimSs)].cost.mean(),
            p[idx(ProtocolKind::Reunite)].cost.mean(),
            p[idx(ProtocolKind::Hbh)].cost.mean(),
        );
        println!(
            "{:>9}        delay PIM-SM {:>6.1}  PIM-SS {:>6.1}  REUNITE {:>6.1}  HBH {:>6.1}   (HBH vs REUNITE: {delay:+.1}%)",
            "",
            p[idx(ProtocolKind::PimSm)].delay.mean(),
            p[idx(ProtocolKind::PimSs)].delay.mean(),
            p[idx(ProtocolKind::Reunite)].delay.mean(),
            p[idx(ProtocolKind::Hbh)].delay.mean(),
        );
    }

    println!();
    let scfg =
        stability::StabilityConfig::from_run(&run.clone().runs((runs / 2).max(3)).seed(seed));
    let pts = stability::evaluate(&scfg);
    let idx = |k: ProtocolKind| scfg.protocols.iter().position(|&x| x == k).unwrap();
    println!(
        "stability: survivor route changes per departure — REUNITE {:.2}, HBH {:.2}",
        pts[idx(ProtocolKind::Reunite)].route_changes.mean(),
        pts[idx(ProtocolKind::Hbh)].route_changes.mean(),
    );

    let mut acfg = asymmetry::AsymmetryConfig::default_with_runs((runs / 2).max(3));
    acfg.steps = vec![0.0, 1.0];
    let pts = asymmetry::evaluate_sweep(&acfg);
    let adv = |p: &asymmetry::AsymmetryPoint| {
        hbh_experiments::figures::eval::hbh_advantage_over_reunite(
            &p.cfg,
            std::slice::from_ref(&p.point),
            Metric::Delay,
        )
        .unwrap()
    };
    println!(
        "asymmetry: HBH delay advantage {:.1}% at a=0  →  {:.1}% at a=1",
        adv(&pts[0]),
        adv(&pts[1])
    );

    let mut ccfg = clouds::CloudsConfig::default_with_runs((runs / 2).max(3));
    ccfg.fractions = vec![0.6];
    let pts = clouds::evaluate_sweep(&ccfg);
    let inc: u64 = pts[0].point.per_protocol.iter().map(|p| p.incomplete).sum();
    println!("clouds: at 60% unicast-only routers, incomplete runs = {inc}");

    let qcfg = qos::QosConfig {
        runs,
        ..qos::QosConfig::default_with_runs(runs)
    };
    let rep = qos::evaluate(&qcfg);
    println!(
        "qos: compliant-path fraction — HBH {:.2}, REUNITE {:.2}, PIM-SS {:.2} ({} admitted runs)",
        rep.points[0].compliant_frac.mean(),
        rep.points[1].compliant_frac.mean(),
        rep.points[2].compliant_frac.mean(),
        rep.admitted_runs
    );
}
