//! Ablation A1 — how HBH's advantage depends on routing asymmetry.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin asymmetry -- --runs 100
//! ```
//!
//! Sweeps the probability that a link's two directions get independent
//! costs (0 = symmetric network … 1 = the paper's setting) and prints
//! cost and delay for PIM-SS / REUNITE / HBH plus HBH's advantage — the
//! paper's causal claim is that the advantage vanishes at 0 and grows
//! with asymmetry.

use hbh_experiments::figures::asymmetry::{evaluate_sweep, render, AsymmetryConfig};
use hbh_experiments::figures::eval::Metric;
use hbh_experiments::report::Args;
use hbh_experiments::scenario::TopologyKind;

fn main() {
    let args = Args::parse(&["runs", "group", "topo", "seed"]);
    let mut cfg = AsymmetryConfig::default_with_runs(args.get_parse("runs", 100));
    cfg.group_size = args.get_parse("group", 10);
    cfg.base_seed = args.get_parse("seed", 1);
    if let Some(t) = args.get("topo") {
        cfg.topo = TopologyKind::parse(t).expect("--topo must be isp or rand50");
    }
    let points = evaluate_sweep(&cfg);
    for metric in [Metric::Cost, Metric::Delay] {
        let table = render(&cfg, &points, metric);
        println!("{}", table.render());
        println!("{}", table.render_dat());
    }
}
