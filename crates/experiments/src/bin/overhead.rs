//! Ablation A4 — steady-state control-plane overhead.
//!
//! ```text
//! cargo run --release -p hbh-experiments --bin overhead -- --runs 50
//! ```
//!
//! Measures control transmissions per refresh period for each protocol as
//! the group grows — the price HBH pays (fusion machinery) for its
//! data-plane gains.

use hbh_experiments::figures::overhead::{evaluate, render, OverheadConfig};
use hbh_experiments::report::Args;
use hbh_experiments::scenario::TopologyKind;

fn main() {
    let args = Args::parse(&["runs", "topo", "seed"]);
    let mut cfg = OverheadConfig::default_with_runs(args.get_parse("runs", 50));
    cfg.base_seed = args.get_parse("seed", 1);
    if let Some(t) = args.get("topo") {
        cfg.topo = TopologyKind::parse(t).expect("--topo must be isp or rand50");
    }
    let rows = evaluate(&cfg);
    let table = render(&cfg, &rows);
    println!("{}", table.render());
    println!("{}", table.render_dat());
}
