//! Diagnostic tool: converge one protocol on one scenario, dump the
//! per-node forwarding state and the data-plane trace of a probe.
//!
//! ```text
//! cargo run -p hbh-experiments --bin inspect -- --topo isp --group 6 --seed 3
//! ```

use hbh_experiments::report::Args;
use hbh_experiments::runner::{build_kernel, converge, probe_window};
use hbh_experiments::scenario::{build, ScenarioOptions, TopologyKind};
use hbh_proto::Hbh;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::trace::TraceKind;
use hbh_sim_core::PacketClass;

fn main() {
    let args = Args::parse(&["topo", "group", "seed"]);
    let topo = TopologyKind::parse(args.get("topo").unwrap_or("isp")).expect("bad topo");
    let group: usize = args.get_parse("group", 6);
    let seed: u64 = args.get_parse("seed", 3);
    let timing = Timing::default();
    let sc = build(topo, group, seed, &timing, &ScenarioOptions::default());
    println!("source: {}  receivers: {:?}", sc.source, sc.receivers);

    let (mut k, ch) = build_kernel(Hbh::new(timing), &sc);
    let ok = converge(&mut k, &timing, sc.join_window);
    println!(
        "converged: {ok} at {} (changes: {})",
        k.now(),
        k.stats().structural_changes
    );

    let now = k.now();
    for node in k.network().graph().nodes() {
        let st = k.state(node);
        if let Some(mft) = st.mft(ch) {
            let data: Vec<_> = mft.data_targets(now).collect();
            let tree: Vec<_> = mft.tree_targets(now).collect();
            let live: Vec<String> = mft
                .live(now)
                .map(|n| {
                    format!(
                        "{n}{}{}",
                        if mft.is_marked(n, now) { "[m]" } else { "" },
                        if mft.is_stale(n, now) { "[s]" } else { "" }
                    )
                })
                .collect();
            println!("{node}: MFT live={live:?} data->{data:?} tree->{tree:?}");
        } else if let Some(mct) = st.mct(ch) {
            println!("{node}: MCT {} ({:?})", mct.node(), mct.phase(now));
        }
    }

    k.enable_trace();
    let t = k.now();
    k.command_at(sc.source, Cmd::SendData { ch, tag: 1 }, t);
    k.run_until(t + probe_window(k.network()));
    for rec in k.take_trace() {
        match &rec.what {
            TraceKind::Sent { to, pkt } if pkt.class == PacketClass::Data => {
                println!(
                    "[{}] {} --data--> {} (dst {})",
                    rec.at, rec.node, to, pkt.dst
                );
            }
            TraceKind::Delivered { tag } => {
                println!("[{}] {} DELIVER tag={tag}", rec.at, rec.node);
            }
            _ => {}
        }
    }
    let _ = Channel::primary(sc.source);
}
