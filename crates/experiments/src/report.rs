//! Plain-text table rendering for the experiment binaries (the moral
//! equivalent of the paper's gnuplot data files, plus aligned tables for
//! humans).

use std::fmt::Write as _;

/// A column-aligned table: one row label per row, one column per series.
pub struct Table {
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            x_label: x_label.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        let cells_len = cells.len();
        assert_eq!(cells_len, self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), cells));
    }

    /// Formats a mean ± 95% CI cell.
    pub fn cell(mean: f64, ci: f64) -> String {
        format!("{mean:8.2} ±{ci:5.2}")
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let mut label_w = self.x_label.len();
        for (label, cells) in &self.rows {
            label_w = label_w.max(label.len());
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:>label_w$}", self.x_label);
        for (c, w) in self.columns.iter().zip(&widths) {
            let _ = write!(out, "  {c:>w$}");
        }
        let _ = writeln!(out);
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label:>label_w$}");
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(out, "  {c:>w$}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Gnuplot-friendly data block (numbers only; columns separated by
    /// whitespace, `#`-prefixed header).
    pub fn render_dat(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# {} | {} {}",
            self.title,
            self.x_label,
            self.columns.join(" ")
        );
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label}");
            for c in cells {
                // Strip the "± ci" decoration for machine consumption.
                let value = c.split('±').next().unwrap_or(c).trim();
                let _ = write!(out, " {value}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Tiny argv parser for the experiment binaries: `--key value` pairs and
/// flags. Unknown keys abort with a usage message.
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    pub fn parse(allowed: &[&str]) -> Args {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .unwrap_or_else(|| die(&format!("unexpected argument {}", argv[i]), allowed));
            if !allowed.contains(&key) {
                die(&format!("unknown option --{key}"), allowed);
            }
            let value = argv
                .get(i + 1)
                .unwrap_or_else(|| die(&format!("--{key} needs a value"), allowed));
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        Args { pairs }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("invalid value for --{key}: {v}"), &[])),
        }
    }
}

fn die(msg: &str, allowed: &[&str]) -> ! {
    eprintln!("error: {msg}");
    if !allowed.is_empty() {
        eprintln!(
            "usage: [{}]",
            allowed
                .iter()
                .map(|a| format!("--{a} <v>"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Tree cost", "receivers", &["HBH", "REUNITE"]);
        t.row("2", vec!["10.00".into(), "11.00".into()]);
        t.row("16", vec!["100.00".into(), "118.00".into()]);
        let s = t.render();
        assert!(s.contains("# Tree cost"));
        assert!(s.contains("HBH"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].len(), lines[2].len(), "columns aligned");
    }

    #[test]
    fn dat_strips_ci() {
        let mut t = Table::new("x", "n", &["a"]);
        t.row("1", vec![Table::cell(3.5, 0.2)]);
        let dat = t.render_dat();
        assert!(dat.contains("1 3.50"), "{dat}");
        assert!(!dat.contains('±'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", "n", &["a", "b"]);
        t.row("1", vec!["only-one".into()]);
    }
}
