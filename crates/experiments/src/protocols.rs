//! The four protocols under evaluation, behind one dispatch point.

use crate::runner::{run_probe, ProbeOutcome};
use crate::scenario::Scenario;
use hbh_pim::Pim;
use hbh_proto::{Hbh, HbhHard};
use hbh_proto_base::Timing;
use hbh_reunite::Reunite;
use hbh_topo::graph::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A protocol under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolKind {
    /// PIM-SM: shared tree centred on a per-run random RP.
    PimSm,
    /// PIM-SS: source-specific reverse SPT.
    PimSs,
    /// REUNITE recursive unicast.
    Reunite,
    /// HBH (the paper's contribution).
    Hbh,
    /// Hard-state HBH: same trees, but state is kept until explicitly
    /// torn down and every control message rides the reliable layer. Not
    /// one of the paper's four — it exists for the robustness studies —
    /// so it is deliberately absent from [`ProtocolKind::ALL`].
    HbhHard,
    /// HBH with membership aggregation: access routers absorb their
    /// hosts' joins into a coverage summary and represent the whole pod
    /// upstream with one join per period, so per-channel control traffic
    /// and tree state scale with routers, not receivers. Also outside
    /// [`ProtocolKind::ALL`] — it exists for the membership-scale
    /// studies.
    HbhAgg,
}

impl ProtocolKind {
    /// The paper's four, in its legend order.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::PimSm,
        ProtocolKind::PimSs,
        ProtocolKind::Reunite,
        ProtocolKind::Hbh,
    ];

    /// The recursive-unicast pair (protocols that tolerate unicast-only
    /// routers — the clouds ablation runs only these).
    pub const RECURSIVE_UNICAST: [ProtocolKind; 2] = [ProtocolKind::Reunite, ProtocolKind::Hbh];

    /// The churn-study arms: the paper's recursive-unicast pair plus the
    /// hard-state variant whose event-driven repair they are compared to.
    pub const CHURN_ARMS: [ProtocolKind; 3] = [
        ProtocolKind::Reunite,
        ProtocolKind::Hbh,
        ProtocolKind::HbhHard,
    ];

    /// The membership-scale bench arms: every protocol that survives
    /// internet-scale group sizes (PIM-SM's central-RP search does not),
    /// with the aggregated variant as the headline.
    pub const MEMBERSHIP_ARMS: [ProtocolKind; 5] = [
        ProtocolKind::PimSs,
        ProtocolKind::Reunite,
        ProtocolKind::Hbh,
        ProtocolKind::HbhHard,
        ProtocolKind::HbhAgg,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::PimSm => "PIM-SM",
            ProtocolKind::PimSs => "PIM-SS",
            ProtocolKind::Reunite => "REUNITE",
            ProtocolKind::Hbh => "HBH",
            ProtocolKind::HbhHard => "HBH-HARD",
            ProtocolKind::HbhAgg => "HBH-AGG",
        }
    }
}

/// How the PIM-SM rendez-vous point is placed.
///
/// NS's centralized multicast uses an operator-configured RP; the paper
/// does not say which node it was. [`RpPolicy::Central`] models a
/// competently placed RP (the router minimizing the total distance to all
/// hosts, recomputed per cost draw) and is the default because it
/// reproduces the paper's Figure 8(a) observation that the shared tree
/// can *beat* the source reverse-SPT on delay: the delay-optimal S→RP leg
/// then covers most of every path. [`RpPolicy::Random`] draws the RP
/// uniformly per run, which averages out placement effects and makes
/// PIM-SM strictly worse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RpPolicy {
    #[default]
    Central,
    Random,
    Fixed(NodeId),
}

/// Picks the PIM-SM rendez-vous point for a scenario under `policy`.
pub fn pick_rp_with(scenario: &Scenario, policy: RpPolicy) -> NodeId {
    let routers: Vec<NodeId> = scenario
        .graph()
        .routers()
        .filter(|&r| scenario.graph().is_mcast_capable(r))
        .collect();
    match policy {
        RpPolicy::Fixed(rp) => {
            assert!(routers.contains(&rp), "fixed RP must be a capable router");
            rp
        }
        RpPolicy::Random => {
            let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0x52_50); // "RP"
            routers[rng.random_range(0..routers.len())]
        }
        RpPolicy::Central => {
            // A competently administered RP serves many groups, so it is
            // placed at the network's cost-center: the router minimizing
            // the total distance to all hosts. (A per-channel delay-optimal
            // search degenerates to the source's own access router, making
            // PIM-SM ≡ PIM-SS — provably, since every reverse path to a
            // single-homed source decomposes through that router.) The
            // scenario's shared routing service holds exactly these routes.
            // Note this scans routers × hosts — appropriate at paper scale;
            // the scale sweeps run without PIM-SM for this reason.
            let routes = scenario.network().routes();
            let hosts: Vec<NodeId> = scenario.graph().hosts().collect();
            routers
                .iter()
                .copied()
                .min_by_key(|&r| {
                    hosts
                        .iter()
                        .map(|&h| routes.dist(r, h).unwrap_or(u64::MAX / 1024))
                        .sum::<u64>()
                })
                .expect("at least one capable router")
        }
    }
}

/// [`pick_rp_with`] under the default policy.
pub fn pick_rp(scenario: &Scenario) -> NodeId {
    pick_rp_with(scenario, RpPolicy::default())
}

/// A scripted experiment generic over the protocol: implement `run` once,
/// then [`dispatch`] it to any [`ProtocolKind`]. (A trait rather than a
/// closure because the method is generic over the protocol type.)
pub trait Study {
    type Out;
    fn run<P>(
        &self,
        kernel: hbh_sim_core::Kernel<P>,
        ch: hbh_proto_base::Channel,
        scenario: &Scenario,
        timing: &Timing,
    ) -> Self::Out
    where
        P: hbh_sim_core::Protocol<Command = hbh_proto_base::Cmd>,
        P::NodeState: hbh_proto_base::StateInventory;
}

/// Builds the kernel for `kind` on `scenario` and hands it to the study.
pub fn dispatch<S: Study>(
    kind: ProtocolKind,
    scenario: &Scenario,
    timing: &Timing,
    study: &S,
) -> S::Out {
    use crate::runner::build_kernel;
    match kind {
        ProtocolKind::Hbh => {
            let (k, ch) = build_kernel(Hbh::new(*timing), scenario);
            study.run(k, ch, scenario, timing)
        }
        ProtocolKind::HbhAgg => {
            let (k, ch) = build_kernel(Hbh::aggregated(*timing), scenario);
            study.run(k, ch, scenario, timing)
        }
        ProtocolKind::HbhHard => {
            let (k, ch) = build_kernel(HbhHard::new(*timing), scenario);
            study.run(k, ch, scenario, timing)
        }
        ProtocolKind::Reunite => {
            let (k, ch) = build_kernel(Reunite::new(*timing), scenario);
            study.run(k, ch, scenario, timing)
        }
        ProtocolKind::PimSs => {
            let (k, ch) = build_kernel(Pim::source_specific(*timing), scenario);
            study.run(k, ch, scenario, timing)
        }
        ProtocolKind::PimSm => {
            let (k, ch) = build_kernel(Pim::sparse_shared(pick_rp(scenario), *timing), scenario);
            study.run(k, ch, scenario, timing)
        }
    }
}

/// Runs the standard converge-then-probe experiment for one protocol.
pub fn run_protocol(kind: ProtocolKind, scenario: &Scenario, timing: &Timing) -> ProbeOutcome {
    match kind {
        ProtocolKind::Hbh => run_probe(Hbh::new(*timing), scenario, timing),
        ProtocolKind::HbhAgg => run_probe(Hbh::aggregated(*timing), scenario, timing),
        ProtocolKind::HbhHard => run_probe(HbhHard::new(*timing), scenario, timing),
        ProtocolKind::Reunite => run_probe(Reunite::new(*timing), scenario, timing),
        ProtocolKind::PimSs => run_probe(Pim::source_specific(*timing), scenario, timing),
        ProtocolKind::PimSm => run_probe(
            Pim::sparse_shared(pick_rp(scenario), *timing),
            scenario,
            timing,
        ),
    }
}

/// [`run_protocol`] over a freshly computed network instead of the
/// scenario's shared one. The route-sharing equivalence tests assert both
/// paths produce identical outcomes.
pub fn run_protocol_isolated(
    kind: ProtocolKind,
    scenario: &Scenario,
    timing: &Timing,
) -> ProbeOutcome {
    use crate::runner::run_probe_isolated;
    match kind {
        ProtocolKind::Hbh => run_probe_isolated(Hbh::new(*timing), scenario, timing),
        ProtocolKind::HbhAgg => run_probe_isolated(Hbh::aggregated(*timing), scenario, timing),
        ProtocolKind::HbhHard => run_probe_isolated(HbhHard::new(*timing), scenario, timing),
        ProtocolKind::Reunite => run_probe_isolated(Reunite::new(*timing), scenario, timing),
        ProtocolKind::PimSs => run_probe_isolated(Pim::source_specific(*timing), scenario, timing),
        ProtocolKind::PimSm => run_probe_isolated(
            Pim::sparse_shared(pick_rp(scenario), *timing),
            scenario,
            timing,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build, ScenarioOptions, TopologyKind};

    fn scenario(seed: u64) -> (Scenario, Timing) {
        let timing = Timing::default();
        let sc = build(
            TopologyKind::Isp,
            6,
            seed,
            &timing,
            &ScenarioOptions::default(),
        );
        (sc, timing)
    }

    #[test]
    fn all_protocols_serve_all_receivers_on_isp() {
        let (sc, timing) = scenario(11);
        for kind in ProtocolKind::ALL {
            let o = run_protocol(kind, &sc, &timing);
            assert!(o.converged, "{} failed to converge", kind.name());
            assert!(
                o.complete(),
                "{}: served {}/{}",
                kind.name(),
                o.delays.len(),
                o.expected
            );
        }
    }

    #[test]
    fn pim_ss_delay_is_reverse_path_distance() {
        // Cross-validation against the analytic reverse SPT.
        let (sc, timing) = scenario(12);
        let o = run_protocol(ProtocolKind::PimSs, &sc, &timing);
        let tables = hbh_routing::RoutingTables::compute(sc.graph());
        let tree = hbh_routing::paths::reverse_spt(&tables, sc.source, &sc.receivers);
        for (&r, &measured) in &o.delays {
            assert_eq!(
                Some(measured),
                tree.delay_to(sc.graph(), r),
                "receiver {r} delay mismatch vs analytic reverse SPT"
            );
        }
        assert_eq!(
            o.cost as usize,
            tree.cost(),
            "cost = links of the reverse SPT"
        );
    }

    #[test]
    fn hbh_delay_is_forward_shortest_path() {
        let (sc, timing) = scenario(13);
        let o = run_protocol(ProtocolKind::Hbh, &sc, &timing);
        let tables = hbh_routing::RoutingTables::compute(sc.graph());
        for (&r, &measured) in &o.delays {
            assert_eq!(
                Some(measured),
                tables.dist(sc.source, r),
                "receiver {r} not served on its shortest path"
            );
        }
    }

    #[test]
    fn rp_is_deterministic_per_scenario_and_capable() {
        let (sc, _) = scenario(14);
        let rp = pick_rp(&sc);
        assert_eq!(rp, pick_rp(&sc));
        assert!(sc.graph().is_router(rp) && sc.graph().is_mcast_capable(rp));
    }
}
