//! Chunked fan-out over independent run indices, shared by every figure
//! module.
//!
//! All the paper's sweeps have the same shape — `runs` independent
//! scenario draws whose outcomes are folded into per-point summaries — so
//! one helper owns the scoped-thread plumbing. Results come back in run
//! order regardless of thread scheduling, which keeps every aggregate
//! bit-identical to a sequential evaluation.

use std::thread;

/// Runs `f(run)` for `run` in `0..runs` across the available cores and
/// returns the results in run order.
///
/// Work is split into contiguous chunks (one per worker) so each thread's
/// scenario stream matches the sequential order — that is what lets the
/// per-thread routing-table cache in [`crate::scenario`] hit across group
/// sizes. On a single-core host this degrades to a plain sequential loop
/// with no thread spawn.
///
/// # Panics
/// Propagates any panic from `f` (a worker panic fails the whole sweep,
/// matching the sequential behaviour).
pub fn map_runs<T, F>(runs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(runs.max(1));
    if workers <= 1 {
        return (0..runs).map(f).collect();
    }
    let chunk = runs.div_ceil(workers);
    let f = &f;
    let mut out: Vec<T> = Vec::with_capacity(runs);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .filter_map(|w| {
                let lo = w * chunk;
                let hi = runs.min(lo + chunk);
                (lo < hi).then(|| scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()))
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_run_order() {
        let v = map_runs(17, |i| i * i);
        assert_eq!(v, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_runs_is_empty() {
        assert!(map_runs(0, |i| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = map_runs(4, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
