//! Chunked fan-out over independent run indices, shared by every figure
//! module.
//!
//! All the paper's sweeps have the same shape — `runs` independent
//! scenario draws whose outcomes are folded into per-point summaries — so
//! one helper owns the scoped-thread plumbing. Results come back in run
//! order regardless of thread scheduling, which keeps every aggregate
//! bit-identical to a sequential evaluation.

use std::thread;

/// Runs `f(run)` for `run` in `0..runs` across the available cores and
/// returns the results in run order.
///
/// The worker count defaults to the available cores but can be pinned
/// with the `HBH_THREADS` environment variable (any positive integer;
/// `HBH_THREADS=1` forces sequential execution) — useful for CI
/// reproducibility of timings and for benchmarks that must not compete
/// with each other. Invalid or zero values fall back to the default.
///
/// Work is split into contiguous chunks (one per worker) so each thread's
/// scenario stream matches the sequential order — that is what lets the
/// per-thread routing-table cache in [`crate::scenario`] hit across group
/// sizes. On a single-core host this degrades to a plain sequential loop
/// with no thread spawn.
///
/// # Panics
/// Propagates any panic from `f` (a worker panic fails the whole sweep,
/// matching the sequential behaviour).
pub fn map_runs<T, F>(runs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = configured_workers().min(runs.max(1));
    if workers <= 1 {
        return (0..runs).map(f).collect();
    }
    let chunk = runs.div_ceil(workers);
    let f = &f;
    let mut out: Vec<T> = Vec::with_capacity(runs);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .filter_map(|w| {
                let lo = w * chunk;
                let hi = runs.min(lo + chunk);
                (lo < hi).then(|| scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()))
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("worker panicked"));
        }
    });
    out
}

/// Worker count: `HBH_THREADS` when set to a positive integer, else the
/// available parallelism.
fn configured_workers() -> usize {
    std::env::var("HBH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_run_order() {
        let v = map_runs(17, |i| i * i);
        assert_eq!(v, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn hbh_threads_env_pins_worker_count() {
        // Env mutation is process-global: restore around the assertions.
        // (Rust runs tests concurrently, but no other test in this crate
        // reads HBH_THREADS at map_runs call time with a value dependency —
        // results are order-stable for any worker count, which is exactly
        // what this test also re-checks under a pinned count.)
        std::env::set_var("HBH_THREADS", "2");
        assert_eq!(configured_workers(), 2);
        let v = map_runs(9, |i| i + 1);
        assert_eq!(v, (1..=9).collect::<Vec<_>>());
        std::env::set_var("HBH_THREADS", "not-a-number");
        assert!(configured_workers() >= 1, "falls back to default");
        std::env::set_var("HBH_THREADS", "0");
        assert!(configured_workers() >= 1, "zero falls back to default");
        std::env::remove_var("HBH_THREADS");
    }

    #[test]
    fn zero_runs_is_empty() {
        assert!(map_runs(0, |i| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = map_runs(4, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
