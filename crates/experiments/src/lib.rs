//! # hbh-experiments — the paper's evaluation, regenerated
//!
//! This crate drives the four protocol engines through the scenarios of
//! §4 of the paper and prints the tables behind every figure:
//!
//! | artifact | module | binary |
//! |----------|--------|--------|
//! | Fig. 7(a)/(b) — tree cost vs. group size | [`figures::eval`] | `fig7` |
//! | Fig. 8(a)/(b) — receiver delay vs. group size | [`figures::eval`] | `fig8` |
//! | Fig. 4 — reconfiguration after departure | [`figures::stability`] | `stability` |
//! | A1 — asymmetry sweep | [`figures::asymmetry`] | `asymmetry` |
//! | A2 — unicast-only clouds | [`figures::clouds`] | `unicast_clouds` |
//! | A3 — timer sensitivity | [`figures::timers`] | `timers` |
//! | A4 — control overhead | [`figures::overhead`] | `overhead` |
//!
//! Methodology mirrors §4.1: per run, per-direction link costs are drawn
//! from `U[1, 10]`, a group of `m` receivers is sampled uniformly, all
//! four protocols run **on the same draw** (paired comparison), the
//! simulation converges (verified by structural-change quiescence, not
//! just a fixed horizon), one tagged data packet is injected, and the
//! paper's two metrics are read off the kernel's accounting: the number
//! of copies transmitted (tree cost) and the mean receiver delay. Results
//! are averaged over `--runs` independent draws (paper: 500).

pub mod datapath;
pub mod figures;
pub mod membership;
pub mod parallel;
pub mod protocols;
pub mod report;
pub mod runner;
pub mod scale;
pub mod scenario;
pub mod stats;

pub use protocols::ProtocolKind;
pub use runner::ProbeOutcome;
pub use scenario::{Scenario, TopologyKind};
