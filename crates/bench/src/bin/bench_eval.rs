//! Wall-clock benchmark of the paper's headline sweep (Figure 7/8 shape):
//! per group size, `--runs` paired scenario draws, all four protocols per
//! draw, on one topology. Emits a machine-readable JSON report so CI and
//! optimisation work can track simulator throughput over time.
//!
//! ```text
//! cargo run --release -p hbh-bench --bin bench_eval -- \
//!     --topo isp --runs 50 --out BENCH_eval.json
//! ```
//!
//! Reported per point: wall-clock milliseconds, runs per second, and
//! kernel events per second (summed over every kernel of the point, via
//! `ProbeOutcome::events`). The totals line at the end aggregates the
//! whole sweep.

use std::time::Instant;

use hbh_experiments::figures::eval::run_seed;
use hbh_experiments::protocols::{run_protocol, ProtocolKind};
use hbh_experiments::report::Args;
use hbh_experiments::scenario::{build, ScenarioOptions, TopologyKind};
use hbh_proto_base::Timing;

struct PointResult {
    group_size: usize,
    wall_ms: f64,
    runs_per_sec: f64,
    events: u64,
    events_per_sec: f64,
}

fn main() {
    let args = Args::parse(&["topo", "runs", "seed", "out"]);
    let topo = TopologyKind::parse(args.get("topo").unwrap_or("isp"))
        .expect("--topo must be isp or rand50");
    let runs: usize = args.get_parse("runs", 50);
    let base_seed: u64 = args.get_parse("seed", 1);
    let out_path = args.get("out").unwrap_or("BENCH_eval.json").to_string();

    let timing = Timing::default();
    let opts = ScenarioOptions::default();
    let sizes = topo.paper_group_sizes();

    let mut points = Vec::with_capacity(sizes.len());
    let sweep_start = Instant::now();
    for &m in &sizes {
        let start = Instant::now();
        let mut events = 0u64;
        for run in 0..runs {
            let sc = build(topo, m, run_seed(base_seed, m, run), &timing, &opts);
            for kind in ProtocolKind::ALL {
                let o = run_protocol(kind, &sc, &timing);
                assert!(
                    o.complete(),
                    "{} incomplete at m={m} run={run}",
                    kind.name()
                );
                events += o.events;
            }
        }
        let wall = start.elapsed().as_secs_f64();
        points.push(PointResult {
            group_size: m,
            wall_ms: wall * 1e3,
            runs_per_sec: runs as f64 / wall,
            events,
            events_per_sec: events as f64 / wall,
        });
        eprintln!(
            "m={m:>3}: {:>8.1} ms  {:>7.1} runs/s  {:>10.0} events/s",
            points.last().unwrap().wall_ms,
            points.last().unwrap().runs_per_sec,
            points.last().unwrap().events_per_sec,
        );
    }
    let total_wall = sweep_start.elapsed().as_secs_f64();
    let total_events: u64 = points.iter().map(|p| p.events).sum();
    let total_runs = runs * sizes.len();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"topo\": \"{}\",\n", topo.name()));
    json.push_str(&format!("  \"runs_per_point\": {runs},\n"));
    json.push_str(&format!("  \"base_seed\": {base_seed},\n"));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group_size\": {}, \"wall_ms\": {:.3}, \"runs_per_sec\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.1}}}{}\n",
            p.group_size,
            p.wall_ms,
            p.runs_per_sec,
            p.events,
            p.events_per_sec,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"total\": {{\"wall_ms\": {:.3}, \"runs\": {total_runs}, \
         \"runs_per_sec\": {:.3}, \"events\": {total_events}, \"events_per_sec\": {:.1}}}\n",
        total_wall * 1e3,
        total_runs as f64 / total_wall,
        total_events as f64 / total_wall,
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("writing benchmark report");
    eprintln!(
        "total: {:.1} ms for {total_runs} paired runs ({:.1} runs/s) -> {out_path}",
        total_wall * 1e3,
        total_runs as f64 / total_wall,
    );
    print!("{json}");
}
