//! Membership-scale benchmark: the three [`Workload`] shapes (flash
//! crowd, Zipf lineup, IPTV zapping) paired across the membership arms,
//! plus the HBH-AGG flash-crowd storm sweep to 10⁵ receivers, reporting
//! control volume, settle latency, and per-router state split by role
//! (interior tree state vs. access-router member summaries).
//!
//! ```text
//! # the acceptance-scale sweep: 5,020 routers, 120k hosts, 10⁵-join storm
//! cargo run --release -p hbh-bench --bin bench_membership -- --out BENCH_membership.json
//!
//! # CI smoke: tiny hierarchy, same code path, gated on a tolerance sheet
//! cargo run --release -p hbh-bench --bin bench_membership -- \
//!     --smoke 1 --out /tmp/bench_membership_ci.json --check ci/membership_tolerance.txt
//! ```
//!
//! The tolerance sheet is plain text, `#` comments, one rule per line:
//!
//! ```text
//! max_incomplete 0             # every expected receiver served, every cell
//! max_unconverged 0            # every cell quiesced before probing
//! max_storm_state_exponent 0.5 # interior state sublinear in receivers
//! max_agg_control_ratio 0.6    # aggregation must beat plain HBH's storm
//! ```

use std::process::ExitCode;
use std::time::Instant;

use hbh_experiments::membership::{run_membership, MembershipConfig, MembershipReport};
use hbh_experiments::report::Args;
use hbh_topo::hier::TierSpec;

/// Peak resident set of this process in kB, from `/proc/self/status`
/// (`VmHWM`). Linux-only; 0 where the file or field is missing.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// Checks `report` against the rules of a tolerance sheet. Returns the
/// violated rules, empty when everything passes.
fn check_tolerances(sheet: &str, report: &MembershipReport) -> Vec<String> {
    let mut violations = Vec::new();
    for line in sheet.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["max_incomplete", bound] => {
                let bound: u64 = bound.parse().expect("max_incomplete bound");
                if report.incomplete() > bound {
                    violations.push(format!(
                        "{} incomplete cells exceed bound {bound}",
                        report.incomplete(),
                    ));
                }
            }
            ["max_unconverged", bound] => {
                let bound: u64 = bound.parse().expect("max_unconverged bound");
                if report.unconverged() > bound {
                    violations.push(format!(
                        "{} unconverged cells exceed bound {bound}",
                        report.unconverged(),
                    ));
                }
            }
            ["max_storm_state_exponent", bound] => {
                let bound: f64 = bound.parse().expect("max_storm_state_exponent bound");
                if report.storm_state_exponent() > bound {
                    violations.push(format!(
                        "interior-state growth exponent {:.3} above bound {bound} \
                         (must stay sublinear in receivers)",
                        report.storm_state_exponent(),
                    ));
                }
            }
            ["max_agg_control_ratio", bound] => {
                let bound: f64 = bound.parse().expect("max_agg_control_ratio bound");
                let ratio = report.agg_control_ratio();
                if ratio.is_nan() || ratio > bound {
                    violations.push(format!(
                        "HBH-AGG/HBH flash-crowd control ratio {ratio:.3} above bound {bound}"
                    ));
                }
            }
            other => panic!("unrecognised tolerance rule: {other:?}"),
        }
    }
    violations
}

fn render_json(
    report: &MembershipReport,
    cfg: &MembershipConfig,
    base_seed: u64,
    peak_kb: u64,
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"topology\": {{\"ases\": {}, \"pops_per_as\": {}, \"access_per_pop\": {}, \
         \"routers\": {}, \"hosts\": {}}},\n",
        cfg.spec.ases, cfg.spec.pops_per_as, cfg.spec.access_per_pop, report.routers, report.hosts,
    ));
    json.push_str(&format!(
        "  \"sweep\": {{\"group_size\": {}, \"channels\": {}, \"zipf_exponent\": {}, \
         \"zaps\": {}, \"base_seed\": {base_seed}}},\n",
        report.group_size, report.channels, cfg.zipf_exponent, cfg.zaps,
    ));
    json.push_str("  \"comparison\": [\n");
    for (i, arm) in report.comparison.iter().enumerate() {
        let o = &arm.outcome;
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"protocol\": \"{}\", \"expected\": {}, \
             \"served\": {}, \"converged\": {}, \"settle_latency\": {}, \
             \"control_copies\": {}, \"control_per_receiver\": {:.2}, \
             \"interior_state_max\": {}, \"interior_state_mean\": {:.1}, \
             \"access_state_max\": {}}}{}\n",
            arm.workload,
            arm.kind.name(),
            o.expected,
            o.served,
            o.converged,
            o.settle_latency.map_or(-1i64, |l| l as i64),
            o.control_copies,
            o.control_per_receiver(),
            o.interior_state_max,
            o.interior_state_mean,
            o.access_state_max,
            if i + 1 < report.comparison.len() {
                ","
            } else {
                ""
            },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"storm\": [\n");
    for (i, p) in report.storm.iter().enumerate() {
        let o = &p.outcome;
        json.push_str(&format!(
            "    {{\"receivers\": {}, \"served\": {}, \"converged\": {}, \
             \"settle_latency\": {}, \"control_copies\": {}, \"control_per_receiver\": {:.2}, \
             \"interior_state_max\": {}, \"interior_state_mean\": {:.1}, \
             \"access_state_max\": {}}}{}\n",
            p.receivers,
            o.served,
            o.converged,
            o.settle_latency.map_or(-1i64, |l| l as i64),
            o.control_copies,
            o.control_per_receiver(),
            o.interior_state_max,
            o.interior_state_mean,
            o.access_state_max,
            if i + 1 < report.storm.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"acceptance\": {{\"incomplete\": {}, \"unconverged\": {}, \
         \"storm_state_exponent\": {:.4}, \"agg_control_ratio\": {:.4}}},\n",
        report.incomplete(),
        report.unconverged(),
        report.storm_state_exponent(),
        report.agg_control_ratio(),
    ));
    json.push_str(&format!(
        "  \"throughput\": {{\"wall_ms\": {:.1}, \"events\": {}, \"peak_rss_kb\": {peak_kb}}}\n",
        report.wall_secs * 1e3,
        report.events,
    ));
    json.push_str("}\n");
    json
}

fn main() -> ExitCode {
    let args = Args::parse(&[
        "ases", "pops", "access", "hosts", "group", "channels", "zaps", "seed", "cache", "out",
        "smoke", "check",
    ]);
    let smoke: usize = args.get_parse("smoke", 0);
    let mut cfg = if smoke != 0 {
        MembershipConfig::smoke()
    } else {
        MembershipConfig::full()
    };
    cfg.spec = TierSpec {
        ases: args.get_parse("ases", cfg.spec.ases),
        pops_per_as: args.get_parse("pops", cfg.spec.pops_per_as),
        access_per_pop: args.get_parse("access", cfg.spec.access_per_pop),
    };
    cfg.hosts = args.get_parse("hosts", cfg.hosts);
    cfg.group_size = args.get_parse("group", cfg.group_size);
    cfg.channels = args.get_parse("channels", cfg.channels);
    cfg.zaps = args.get_parse("zaps", cfg.zaps);
    cfg.base_seed = args.get_parse("seed", cfg.base_seed);
    cfg.cache_rows = args.get_parse("cache", cfg.cache_rows);
    let out_path = args
        .get("out")
        .unwrap_or("BENCH_membership.json")
        .to_string();

    eprintln!(
        "membership sweep: {} routers, {} hosts, {} workloads x {} arms, storm to {} receivers",
        cfg.router_count(),
        cfg.hosts,
        cfg.workloads().len(),
        cfg.protocols.len(),
        cfg.storm_sizes.last().copied().unwrap_or(0),
    );
    let start = Instant::now();
    let report = run_membership(&cfg);
    let peak_kb = peak_rss_kb();
    eprintln!(
        "done in {:.1}s: {} events, {} incomplete, {} unconverged, \
         storm exponent {:.3}, agg/plain control ratio {:.3}, peak RSS {} kB",
        start.elapsed().as_secs_f64(),
        report.events,
        report.incomplete(),
        report.unconverged(),
        report.storm_state_exponent(),
        report.agg_control_ratio(),
        peak_kb,
    );

    let json = render_json(&report, &cfg, cfg.base_seed, peak_kb);
    std::fs::write(&out_path, &json).expect("writing benchmark report");
    print!("{json}");

    if let Some(sheet_path) = args.get("check") {
        let sheet = std::fs::read_to_string(sheet_path).expect("reading tolerance sheet");
        let violations = check_tolerances(&sheet, &report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("TOLERANCE VIOLATION: {v}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("tolerances OK ({sheet_path})");
    }
    ExitCode::SUCCESS
}
