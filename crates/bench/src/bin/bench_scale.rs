//! Internet-scale sweep benchmark: hierarchical AS/POP/access topologies
//! driven through the on-demand routing service, reporting route-cache
//! behaviour (rows computed, hit rate, resident bytes) against the
//! hypothetical all-pairs footprint, plus simulator throughput and peak
//! RSS.
//!
//! ```text
//! # the acceptance-scale sweep: 5,020 routers, 100k hosts
//! cargo run --release -p hbh-bench --bin bench_scale -- --out BENCH_scale.json
//!
//! # CI smoke: tiny hierarchy, same code path, gated on a tolerance sheet
//! cargo run --release -p hbh-bench --bin bench_scale -- \
//!     --smoke 1 --out /tmp/bench_scale_ci.json --check ci/scale_tolerance.txt
//! ```
//!
//! The tolerance sheet is plain text, `#` comments, one rule per line:
//!
//! ```text
//! min_memory_ratio 4.0    # cache must beat all-pairs by this factor
//! min_hit_rate 0.5        # paired arms share warm rows
//! max_incomplete 0        # every receiver served, every arm, every run
//! max_unconverged 0
//! ```

use std::process::ExitCode;
use std::time::Instant;

use hbh_experiments::report::Args;
use hbh_experiments::scale::{run_scale, ScaleConfig, ScaleReport};
use hbh_topo::hier::TierSpec;

/// Peak resident set of this process in kB, from `/proc/self/status`
/// (`VmHWM`). Linux-only; 0 where the file or field is missing.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// Checks `report` against the rules of a tolerance sheet. Returns the
/// violated rules, empty when everything passes.
fn check_tolerances(sheet: &str, report: &ScaleReport) -> Vec<String> {
    let mut violations = Vec::new();
    for line in sheet.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["min_memory_ratio", bound] => {
                let bound: f64 = bound.parse().expect("min_memory_ratio bound");
                if report.memory_ratio() < bound {
                    violations.push(format!(
                        "memory ratio {:.2} below bound {bound} \
                         (route cache {} B vs all-pairs {} B)",
                        report.memory_ratio(),
                        report.route_bytes,
                        report.all_pairs_bytes,
                    ));
                }
            }
            ["min_hit_rate", bound] => {
                let bound: f64 = bound.parse().expect("min_hit_rate bound");
                if report.hit_rate() < bound {
                    violations.push(format!(
                        "cache hit rate {:.3} below bound {bound} ({} hits / {} misses)",
                        report.hit_rate(),
                        report.route_stats.hits,
                        report.route_stats.misses,
                    ));
                }
            }
            ["max_incomplete", bound] => {
                let bound: u64 = bound.parse().expect("max_incomplete bound");
                if report.incomplete() > bound {
                    violations.push(format!(
                        "{} incomplete runs exceed bound {bound}",
                        report.incomplete(),
                    ));
                }
            }
            ["max_unconverged", bound] => {
                let bound: u64 = bound.parse().expect("max_unconverged bound");
                let unconverged: u64 = report.per_protocol.iter().map(|a| a.unconverged).sum();
                if unconverged > bound {
                    violations.push(format!(
                        "{unconverged} unconverged runs exceed bound {bound}"
                    ));
                }
            }
            other => panic!("unrecognised tolerance rule: {other:?}"),
        }
    }
    violations
}

fn render_json(report: &ScaleReport, cfg: &ScaleConfig, base_seed: u64, peak_kb: u64) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"topology\": {{\"ases\": {}, \"pops_per_as\": {}, \"access_per_pop\": {}, \
         \"routers\": {}, \"hosts\": {}, \"directed_edges\": {}}},\n",
        cfg.spec.ases,
        cfg.spec.pops_per_as,
        cfg.spec.access_per_pop,
        report.routers,
        report.hosts,
        report.directed_edges,
    ));
    json.push_str(&format!(
        "  \"sweep\": {{\"runs\": {}, \"group_size\": {}, \"base_seed\": {base_seed}}},\n",
        report.runs, report.group_size,
    ));
    json.push_str("  \"protocols\": [\n");
    for (i, arm) in report.per_protocol.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cost_mean\": {:.3}, \"delay_mean\": {:.3}, \
             \"incomplete\": {}, \"unconverged\": {}, \"events\": {}}}{}\n",
            arm.kind.name(),
            arm.cost_mean,
            arm.delay_mean,
            arm.incomplete,
            arm.unconverged,
            arm.events,
            if i + 1 < report.per_protocol.len() {
                ","
            } else {
                ""
            },
        ));
    }
    json.push_str("  ],\n");
    let s = &report.route_stats;
    json.push_str(&format!(
        "  \"routes\": {{\"cache_rows\": {}, \"computed\": {}, \"hits\": {}, \"misses\": {}, \
         \"evicted\": {}, \"invalidated\": {}, \"peak_cached_rows\": {}, \
         \"cache_hit_rate\": {:.4}}},\n",
        report.cache_rows,
        s.computed,
        s.hits,
        s.misses,
        s.evicted,
        s.invalidated,
        s.cached_rows,
        report.hit_rate(),
    ));
    json.push_str(&format!(
        "  \"memory\": {{\"route_bytes\": {}, \"bytes_per_router\": {:.1}, \
         \"all_pairs_bytes\": {}, \"memory_ratio\": {:.2}, \"csr_bytes\": {}, \
         \"peak_rss_kb\": {peak_kb}}},\n",
        report.route_bytes,
        report.route_bytes as f64 / report.routers as f64,
        report.all_pairs_bytes,
        report.memory_ratio(),
        report.csr_bytes,
    ));
    json.push_str(&format!(
        "  \"throughput\": {{\"wall_ms\": {:.1}, \"events\": {}, \"events_per_sec\": {:.1}}}\n",
        report.wall_secs * 1e3,
        report.events,
        report.events_per_sec,
    ));
    json.push_str("}\n");
    json
}

fn main() -> ExitCode {
    let args = Args::parse(&[
        "ases", "pops", "access", "hosts", "group", "runs", "seed", "cache", "out", "smoke",
        "check",
    ]);
    let smoke: usize = args.get_parse("smoke", 0);
    let mut cfg = if smoke != 0 {
        ScaleConfig::smoke()
    } else {
        ScaleConfig::full()
    };
    cfg.spec = TierSpec {
        ases: args.get_parse("ases", cfg.spec.ases),
        pops_per_as: args.get_parse("pops", cfg.spec.pops_per_as),
        access_per_pop: args.get_parse("access", cfg.spec.access_per_pop),
    };
    cfg.hosts = args.get_parse("hosts", cfg.hosts);
    cfg.group_size = args.get_parse("group", cfg.group_size);
    cfg.runs = args.get_parse("runs", cfg.runs);
    cfg.base_seed = args.get_parse("seed", cfg.base_seed);
    cfg.cache_rows = args.get_parse("cache", cfg.cache_rows);
    let out_path = args.get("out").unwrap_or("BENCH_scale.json").to_string();

    eprintln!(
        "scale sweep: {} routers, {} hosts, {} runs x {} protocols, cache {} rows",
        cfg.router_count(),
        cfg.hosts,
        cfg.runs,
        cfg.protocols.len(),
        cfg.cache_rows,
    );
    let start = Instant::now();
    let report = run_scale(&cfg);
    let peak_kb = peak_rss_kb();
    eprintln!(
        "done in {:.1}s: {} events ({:.0}/s), {} SPF rows computed, hit rate {:.1}%, \
         route cache {} B vs all-pairs {} B ({:.1}x), peak RSS {} kB",
        start.elapsed().as_secs_f64(),
        report.events,
        report.events_per_sec,
        report.route_stats.computed,
        report.hit_rate() * 100.0,
        report.route_bytes,
        report.all_pairs_bytes,
        report.memory_ratio(),
        peak_kb,
    );

    let json = render_json(&report, &cfg, cfg.base_seed, peak_kb);
    std::fs::write(&out_path, &json).expect("writing benchmark report");
    print!("{json}");

    if let Some(sheet_path) = args.get("check") {
        let sheet = std::fs::read_to_string(sheet_path).expect("reading tolerance sheet");
        let violations = check_tolerances(&sheet, &report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("TOLERANCE VIOLATION: {v}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("tolerances OK ({sheet_path})");
    }
    ExitCode::SUCCESS
}
