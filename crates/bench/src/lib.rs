//! Benchmark host crate. The Criterion benches live in `benches/`:
//!
//! * `figures` — one bench per paper figure (7a, 7b, 8a, 8b at reduced
//!   run counts; the full-scale tables come from the `fig7`/`fig8`
//!   binaries of `hbh-experiments`);
//! * `ablations` — stability, asymmetry sweep, unicast clouds, timers,
//!   overhead;
//! * `microbench` — the hot paths under everything: Dijkstra/all-pairs
//!   routing, the event kernel, one full converge-and-probe run per
//!   protocol.
