//! Criterion benches for the ablation studies (DESIGN.md A1–A4 and the
//! Figure-4 stability experiment), each at reduced run counts with the
//! study's headline invariant asserted.

use criterion::{criterion_group, criterion_main, Criterion};
use hbh_experiments::figures::{asymmetry, clouds, overhead, stability, timers};
use hbh_experiments::protocols::ProtocolKind;
use std::hint::black_box;

fn stability_departures(c: &mut Criterion) {
    c.bench_function("stability_departure_churn", |b| {
        b.iter(|| {
            let cfg = stability::StabilityConfig::from_run(
                &hbh_experiments::runner::RunConfig::new().runs(2),
            );
            let points = stability::evaluate(black_box(&cfg));
            let hbh = cfg
                .protocols
                .iter()
                .position(|&p| p == ProtocolKind::Hbh)
                .unwrap();
            assert_eq!(
                points[hbh].route_changes.mean(),
                0.0,
                "HBH must never reroute survivors"
            );
            black_box(points)
        })
    });
}

fn asymmetry_sweep(c: &mut Criterion) {
    c.bench_function("asymmetry_sweep", |b| {
        b.iter(|| {
            let mut cfg = asymmetry::AsymmetryConfig::default_with_runs(2);
            cfg.steps = vec![0.0, 1.0];
            black_box(asymmetry::evaluate_sweep(black_box(&cfg)))
        })
    });
}

fn unicast_clouds(c: &mut Criterion) {
    c.bench_function("unicast_clouds_sweep", |b| {
        b.iter(|| {
            let mut cfg = clouds::CloudsConfig::default_with_runs(2);
            cfg.fractions = vec![0.0, 0.5];
            let pts = clouds::evaluate_sweep(black_box(&cfg));
            for p in &pts {
                for pp in &p.point.per_protocol {
                    assert_eq!(pp.incomplete, 0, "lost receivers behind clouds");
                }
            }
            black_box(pts)
        })
    });
}

fn timer_sensitivity(c: &mut Criterion) {
    c.bench_function("timer_sensitivity", |b| {
        b.iter(|| {
            let mut cfg = timers::TimersConfig::default_with_runs(2);
            cfg.scales = vec![1.0, 2.0];
            black_box(timers::evaluate(black_box(&cfg)))
        })
    });
}

fn control_overhead(c: &mut Criterion) {
    c.bench_function("control_overhead", |b| {
        b.iter(|| {
            let mut cfg = overhead::OverheadConfig::default_with_runs(2);
            cfg.sizes = vec![4, 12];
            black_box(overhead::evaluate(black_box(&cfg)))
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = stability_departures, asymmetry_sweep, unicast_clouds,
              timer_sensitivity, control_overhead
}
criterion_main!(ablations);
