//! One Criterion bench per paper figure: each iteration regenerates the
//! figure's data at a reduced run count (the statistical tables themselves
//! come from the `fig7`/`fig8` binaries; these benches time the
//! regeneration pipeline and pin its results with assertions, so `cargo
//! bench` doubles as an end-to-end regression check of every figure).

use criterion::{criterion_group, criterion_main, Criterion};
use hbh_experiments::figures::eval::{
    evaluate, hbh_advantage_over_reunite, health_violations, EvalConfig, Metric,
};
use hbh_experiments::runner::RunConfig;
use hbh_experiments::scenario::TopologyKind;
use std::hint::black_box;

/// Reduced-scale figure config: full group-size sweep, few runs per point.
fn cfg(topo: TopologyKind, runs: usize) -> EvalConfig {
    EvalConfig::from_run(&RunConfig::new().topo(topo).runs(runs))
}

fn bench_figure(c: &mut Criterion, name: &str, topo: TopologyKind, runs: usize, metric: Metric) {
    c.bench_function(name, |b| {
        b.iter(|| {
            let cfg = cfg(topo, runs);
            let points = evaluate(black_box(&cfg));
            assert!(health_violations(&cfg, &points).is_none(), "unhealthy run");
            let adv = hbh_advantage_over_reunite(&cfg, &points, metric).unwrap();
            // The qualitative result must hold at any sample size worth
            // benchmarking: HBH does not lose to REUNITE on either metric.
            assert!(adv > -2.0, "HBH lost to REUNITE by {adv}%");
            black_box(points)
        })
    });
}

fn fig7_isp(c: &mut Criterion) {
    bench_figure(c, "fig7_isp_tree_cost", TopologyKind::Isp, 3, Metric::Cost);
}

fn fig7_rand50(c: &mut Criterion) {
    bench_figure(
        c,
        "fig7_rand50_tree_cost",
        TopologyKind::Rand50,
        2,
        Metric::Cost,
    );
}

fn fig8_isp(c: &mut Criterion) {
    bench_figure(c, "fig8_isp_delay", TopologyKind::Isp, 3, Metric::Delay);
}

fn fig8_rand50(c: &mut Criterion) {
    bench_figure(
        c,
        "fig8_rand50_delay",
        TopologyKind::Rand50,
        2,
        Metric::Delay,
    );
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig7_isp, fig7_rand50, fig8_isp, fig8_rand50
}
criterion_main!(figures);
