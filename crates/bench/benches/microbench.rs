//! Microbenchmarks of the hot paths under every experiment: unicast
//! routing computation, one full protocol converge-and-probe run per
//! protocol, and the raw event kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use hbh_experiments::protocols::{run_protocol, ProtocolKind};
use hbh_experiments::scenario::{build, ScenarioOptions, TopologyKind};
use hbh_proto_base::Timing;
use hbh_topo::{costs, isp, random};
use std::hint::black_box;

fn routing_tables(c: &mut Criterion) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let mut small = isp::isp_topology();
    costs::assign_paper_costs(&mut small, &mut rng);
    let mut large = random::rand50(&mut rng);
    costs::assign_paper_costs(&mut large, &mut rng);

    c.bench_function("routing_all_pairs_isp36", |b| {
        b.iter(|| black_box(hbh_routing::RoutingTables::compute(black_box(&small))))
    });
    c.bench_function("routing_all_pairs_rand100", |b| {
        b.iter(|| black_box(hbh_routing::RoutingTables::compute(black_box(&large))))
    });
}

/// Adjacency-list vs CSR neighbor iteration: the inner loop of every
/// Dijkstra relaxation. Both walk the full rand50 edge set (every node's
/// out-edges) and fold destination + cost, the exact access pattern of
/// `shortest_paths_*_csr_into`.
fn neighbor_iteration(c: &mut Criterion) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    let mut g = random::rand50(&mut rng);
    costs::assign_paper_costs(&mut g, &mut rng);
    let csr = hbh_topo::Csr::from_graph(&g);

    c.bench_function("neighbors_adjacency_rand100", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for n in g.nodes() {
                for e in g.neighbors(black_box(n)) {
                    acc += e.to.0 as u64 + e.cost as u64;
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("neighbors_csr_rand100", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for n in 0..csr.node_count() {
                let (to, cost, _) = csr.out_slices(black_box(hbh_topo::graph::NodeId(n as u32)));
                for i in 0..to.len() {
                    acc += to[i] as u64 + cost[i] as u64;
                }
            }
            black_box(acc)
        })
    });
}

fn protocol_runs(c: &mut Criterion) {
    let timing = Timing::default();
    let sc = build(
        TopologyKind::Isp,
        10,
        5,
        &timing,
        &ScenarioOptions::default(),
    );
    for kind in ProtocolKind::ALL {
        c.bench_function(&format!("converge_and_probe_{}", kind.name()), |b| {
            b.iter(|| {
                let o = run_protocol(black_box(kind), black_box(&sc), &timing);
                assert!(o.complete());
                black_box(o)
            })
        });
    }
}

fn scenario_build(c: &mut Criterion) {
    let timing = Timing::default();
    c.bench_function("scenario_build_isp", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(build(
                TopologyKind::Isp,
                10,
                black_box(seed),
                &timing,
                &ScenarioOptions::default(),
            ))
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = routing_tables, neighbor_iteration, protocol_runs, scenario_build
}
criterion_main!(micro);
