//! Microbenchmarks of the hot paths under every experiment: unicast
//! routing computation, one full protocol converge-and-probe run per
//! protocol, and the raw event kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use hbh_experiments::protocols::{run_protocol, ProtocolKind};
use hbh_experiments::scenario::{build, ScenarioOptions, TopologyKind};
use hbh_proto_base::Timing;
use hbh_topo::{costs, isp, random};
use std::hint::black_box;

fn routing_tables(c: &mut Criterion) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let mut small = isp::isp_topology();
    costs::assign_paper_costs(&mut small, &mut rng);
    let mut large = random::rand50(&mut rng);
    costs::assign_paper_costs(&mut large, &mut rng);

    c.bench_function("routing_all_pairs_isp36", |b| {
        b.iter(|| black_box(hbh_routing::RoutingTables::compute(black_box(&small))))
    });
    c.bench_function("routing_all_pairs_rand100", |b| {
        b.iter(|| black_box(hbh_routing::RoutingTables::compute(black_box(&large))))
    });
}

fn protocol_runs(c: &mut Criterion) {
    let timing = Timing::default();
    let sc = build(
        TopologyKind::Isp,
        10,
        5,
        &timing,
        &ScenarioOptions::default(),
    );
    for kind in ProtocolKind::ALL {
        c.bench_function(&format!("converge_and_probe_{}", kind.name()), |b| {
            b.iter(|| {
                let o = run_protocol(black_box(kind), black_box(&sc), &timing);
                assert!(o.complete());
                black_box(o)
            })
        });
    }
}

fn scenario_build(c: &mut Criterion) {
    let timing = Timing::default();
    c.bench_function("scenario_build_isp", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(build(
                TopologyKind::Isp,
                10,
                black_box(seed),
                &timing,
                &ScenarioOptions::default(),
            ))
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = routing_tables, protocol_runs, scenario_build
}
criterion_main!(micro);
