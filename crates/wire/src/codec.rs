//! Message-level encode/decode over the formats of [`crate::format`].

use crate::format::{flags, MsgType, Reader, Writer, HEADER_LEN, MAGIC, MAX_BODY, VERSION};
use hbh_pim::PimMsg;
use hbh_proto::{HardCtl, HardMsg, HbhMsg};
use hbh_reunite::ReuniteMsg;

/// Any control/data message of the protocol families.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMsg {
    /// An HBH control/data message.
    Hbh(HbhMsg),
    /// A hard-state HBH message (sequenced control, ACK or data).
    HbhHard(HardMsg),
    /// A REUNITE control/data message.
    Reunite(ReuniteMsg),
    /// A PIM control/data message.
    Pim(PimMsg),
}

/// Decode failure. Decoding arbitrary bytes returns one of these — never
/// panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than a header or than the advertised body.
    Truncated,
    /// First byte is not [`MAGIC`].
    BadMagic(u8),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown message type byte.
    BadType(u8),
    /// Flag bits outside [`flags::KNOWN`], or a flag on a message that
    /// cannot carry it.
    BadFlags(u8),
    /// Nonzero reserved field.
    BadReserved,
    /// Body length exceeds [`MAX_BODY`].
    OversizedBody(usize),
    /// Body bytes left over after the message was parsed.
    TrailingBytes(usize),
    /// A list length field is inconsistent with the body size.
    BadListLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadMagic(b) => write!(f, "bad magic byte {b:#04x}"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::BadType(t) => write!(f, "unknown message type {t:#04x}"),
            WireError::BadFlags(x) => write!(f, "invalid flags {x:#010b}"),
            WireError::BadReserved => write!(f, "nonzero reserved field"),
            WireError::OversizedBody(n) => write!(f, "body of {n} bytes exceeds cap"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after body"),
            WireError::BadListLength => write!(f, "list length inconsistent with body"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a message into a self-framed byte vector.
///
/// ```
/// use hbh_wire::{encode, decode, WireMsg};
/// use hbh_proto::HbhMsg;
/// use hbh_proto_base::Channel;
/// use hbh_topo::graph::NodeId;
///
/// let msg = WireMsg::Hbh(HbhMsg::Tree {
///     ch: Channel::primary(NodeId(18)),
///     target: NodeId(3),
/// });
/// let bytes = encode(&msg);
/// assert_eq!(decode(&bytes).unwrap(), msg);
/// ```
pub fn encode(msg: &WireMsg) -> Vec<u8> {
    let (ty, flag_bits, body) = encode_body(msg);
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.push(MAGIC);
    out.push(VERSION);
    out.push(ty as u8);
    out.push(flag_bits);
    out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    out.extend_from_slice(&[0, 0]); // reserved
    out.extend_from_slice(&body);
    out
}

fn encode_body(msg: &WireMsg) -> (MsgType, u8, Vec<u8>) {
    let mut w = Writer::new();
    match msg {
        WireMsg::Hbh(m) => match m {
            HbhMsg::Join { ch, who, initial } => {
                w.channel(*ch);
                w.node(*who);
                (
                    MsgType::HbhJoin,
                    if *initial { flags::INITIAL } else { 0 },
                    w.into_bytes(),
                )
            }
            HbhMsg::Tree { ch, target } => {
                w.channel(*ch);
                w.node(*target);
                (MsgType::HbhTree, 0, w.into_bytes())
            }
            HbhMsg::Fusion { ch, from, nodes } => {
                w.channel(*ch);
                w.node(*from);
                w.u16(nodes.len() as u16);
                for n in nodes {
                    w.node(*n);
                }
                (MsgType::HbhFusion, 0, w.into_bytes())
            }
            HbhMsg::Data { ch } => {
                w.channel(*ch);
                (MsgType::HbhData, 0, w.into_bytes())
            }
        },
        WireMsg::HbhHard(m) => match m {
            HardMsg::Ctl { origin, seq, ctl } => {
                // Common reliability header, then the per-kind body.
                w.node(*origin);
                w.u64(*seq);
                w.channel(ctl.channel());
                match ctl {
                    HardCtl::Join { who, failed, .. } => {
                        w.node(*who);
                        if let Some(dead) = failed {
                            w.node(*dead);
                        }
                        (
                            MsgType::HbhHardJoin,
                            if failed.is_some() { flags::FAILED } else { 0 },
                            w.into_bytes(),
                        )
                    }
                    HardCtl::Leave { who, .. } => {
                        w.node(*who);
                        (MsgType::HbhHardLeave, 0, w.into_bytes())
                    }
                    HardCtl::Prune { who, .. } => {
                        w.node(*who);
                        (MsgType::HbhHardPrune, 0, w.into_bytes())
                    }
                    HardCtl::Tree { target, .. } => {
                        w.node(*target);
                        (MsgType::HbhHardTree, 0, w.into_bytes())
                    }
                    HardCtl::Fusion { from, nodes, .. } => {
                        w.node(*from);
                        w.u16(nodes.len() as u16);
                        for n in nodes {
                            w.node(*n);
                        }
                        (MsgType::HbhHardFusion, 0, w.into_bytes())
                    }
                    HardCtl::Probe { who, .. } => {
                        w.node(*who);
                        (MsgType::HbhHardProbe, 0, w.into_bytes())
                    }
                }
            }
            HardMsg::Ack {
                origin,
                seq,
                by,
                known,
                server,
            } => {
                w.node(*origin);
                w.u64(*seq);
                w.node(*by);
                let mut bits = if *known { flags::SERVES } else { 0 };
                if let Some(srv) = server {
                    w.node(*srv);
                    bits |= flags::REDIRECT;
                }
                (MsgType::HbhHardAck, bits, w.into_bytes())
            }
            HardMsg::Data { ch } => {
                w.channel(*ch);
                (MsgType::HbhHardData, 0, w.into_bytes())
            }
        },
        WireMsg::Reunite(m) => match m {
            ReuniteMsg::Join {
                ch,
                receiver,
                fresh,
            } => {
                w.channel(*ch);
                w.node(*receiver);
                (
                    MsgType::ReuniteJoin,
                    if *fresh { flags::INITIAL } else { 0 },
                    w.into_bytes(),
                )
            }
            ReuniteMsg::Tree {
                ch,
                receiver,
                marked,
            } => {
                w.channel(*ch);
                w.node(*receiver);
                (
                    MsgType::ReuniteTree,
                    if *marked { flags::MARKED } else { 0 },
                    w.into_bytes(),
                )
            }
            ReuniteMsg::Data { ch } => {
                w.channel(*ch);
                (MsgType::ReuniteData, 0, w.into_bytes())
            }
        },
        WireMsg::Pim(m) => match m {
            PimMsg::Join { ch, downstream } => {
                w.channel(*ch);
                w.node(*downstream);
                (MsgType::PimJoin, 0, w.into_bytes())
            }
            PimMsg::Data { ch } => {
                w.channel(*ch);
                (MsgType::PimData, 0, w.into_bytes())
            }
        },
    }
}

/// Decodes one message from `bytes` (which must contain exactly one).
pub fn decode(bytes: &[u8]) -> Result<WireMsg, WireError> {
    let (msg, used) = decode_prefix(bytes)?;
    if used != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - used));
    }
    Ok(msg)
}

/// Decodes one message from the front of `bytes`, returning it and the
/// number of bytes consumed (self-framing).
pub fn decode_prefix(bytes: &[u8]) -> Result<(WireMsg, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if bytes[0] != MAGIC {
        return Err(WireError::BadMagic(bytes[0]));
    }
    if bytes[1] != VERSION {
        return Err(WireError::BadVersion(bytes[1]));
    }
    let ty = MsgType::from_byte(bytes[2]).ok_or(WireError::BadType(bytes[2]))?;
    let flag_bits = bytes[3];
    if flag_bits & !flags::KNOWN != 0 {
        return Err(WireError::BadFlags(flag_bits));
    }
    let body_len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
    if body_len > MAX_BODY {
        return Err(WireError::OversizedBody(body_len));
    }
    if bytes[6] != 0 || bytes[7] != 0 {
        return Err(WireError::BadReserved);
    }
    let total = HEADER_LEN + body_len;
    if bytes.len() < total {
        return Err(WireError::Truncated);
    }
    let mut r = Reader::new(&bytes[HEADER_LEN..total]);
    let msg = decode_typed(ty, flag_bits, &mut r)?;
    r.finish()?;
    Ok((msg, total))
}

fn decode_typed(ty: MsgType, flag_bits: u8, r: &mut Reader<'_>) -> Result<WireMsg, WireError> {
    let flag_ok = |allowed: u8| {
        if flag_bits & !allowed != 0 {
            Err(WireError::BadFlags(flag_bits))
        } else {
            Ok(())
        }
    };
    Ok(match ty {
        MsgType::HbhJoin => {
            flag_ok(flags::INITIAL)?;
            let ch = r.channel()?;
            let who = r.node()?;
            WireMsg::Hbh(HbhMsg::Join {
                ch,
                who,
                initial: flag_bits & flags::INITIAL != 0,
            })
        }
        MsgType::HbhTree => {
            flag_ok(0)?;
            let ch = r.channel()?;
            let target = r.node()?;
            WireMsg::Hbh(HbhMsg::Tree { ch, target })
        }
        MsgType::HbhFusion => {
            flag_ok(0)?;
            let ch = r.channel()?;
            let from = r.node()?;
            let count = r.u16()? as usize;
            // Each node is 4 bytes; validate before allocating.
            if r.remaining() != count * 4 {
                return Err(WireError::BadListLength);
            }
            let mut nodes = Vec::with_capacity(count);
            for _ in 0..count {
                nodes.push(r.node()?);
            }
            WireMsg::Hbh(HbhMsg::Fusion { ch, from, nodes })
        }
        MsgType::HbhData => {
            flag_ok(0)?;
            WireMsg::Hbh(HbhMsg::Data { ch: r.channel()? })
        }
        MsgType::HbhHardJoin => {
            flag_ok(flags::FAILED)?;
            let origin = r.node()?;
            let seq = r.u64()?;
            let ch = r.channel()?;
            let who = r.node()?;
            let failed = if flag_bits & flags::FAILED != 0 {
                Some(r.node()?)
            } else {
                None
            };
            WireMsg::HbhHard(HardMsg::Ctl {
                origin,
                seq,
                ctl: HardCtl::Join { ch, who, failed },
            })
        }
        MsgType::HbhHardLeave | MsgType::HbhHardPrune | MsgType::HbhHardProbe => {
            flag_ok(0)?;
            let origin = r.node()?;
            let seq = r.u64()?;
            let ch = r.channel()?;
            let who = r.node()?;
            let ctl = match ty {
                MsgType::HbhHardLeave => HardCtl::Leave { ch, who },
                MsgType::HbhHardPrune => HardCtl::Prune { ch, who },
                _ => HardCtl::Probe { ch, who },
            };
            WireMsg::HbhHard(HardMsg::Ctl { origin, seq, ctl })
        }
        MsgType::HbhHardTree => {
            flag_ok(0)?;
            let origin = r.node()?;
            let seq = r.u64()?;
            let ch = r.channel()?;
            let target = r.node()?;
            WireMsg::HbhHard(HardMsg::Ctl {
                origin,
                seq,
                ctl: HardCtl::Tree { ch, target },
            })
        }
        MsgType::HbhHardFusion => {
            flag_ok(0)?;
            let origin = r.node()?;
            let seq = r.u64()?;
            let ch = r.channel()?;
            let from = r.node()?;
            let count = r.u16()? as usize;
            if r.remaining() != count * 4 {
                return Err(WireError::BadListLength);
            }
            let mut nodes = Vec::with_capacity(count);
            for _ in 0..count {
                nodes.push(r.node()?);
            }
            WireMsg::HbhHard(HardMsg::Ctl {
                origin,
                seq,
                ctl: HardCtl::Fusion { ch, from, nodes },
            })
        }
        MsgType::HbhHardAck => {
            flag_ok(flags::SERVES | flags::REDIRECT)?;
            let origin = r.node()?;
            let seq = r.u64()?;
            let by = r.node()?;
            let server = if flag_bits & flags::REDIRECT != 0 {
                Some(r.node()?)
            } else {
                None
            };
            WireMsg::HbhHard(HardMsg::Ack {
                origin,
                seq,
                by,
                known: flag_bits & flags::SERVES != 0,
                server,
            })
        }
        MsgType::HbhHardData => {
            flag_ok(0)?;
            WireMsg::HbhHard(HardMsg::Data { ch: r.channel()? })
        }
        MsgType::ReuniteJoin => {
            flag_ok(flags::INITIAL)?;
            let ch = r.channel()?;
            let receiver = r.node()?;
            WireMsg::Reunite(ReuniteMsg::Join {
                ch,
                receiver,
                fresh: flag_bits & flags::INITIAL != 0,
            })
        }
        MsgType::ReuniteTree => {
            flag_ok(flags::MARKED)?;
            let ch = r.channel()?;
            let receiver = r.node()?;
            WireMsg::Reunite(ReuniteMsg::Tree {
                ch,
                receiver,
                marked: flag_bits & flags::MARKED != 0,
            })
        }
        MsgType::ReuniteData => {
            flag_ok(0)?;
            WireMsg::Reunite(ReuniteMsg::Data { ch: r.channel()? })
        }
        MsgType::PimJoin => {
            flag_ok(0)?;
            let ch = r.channel()?;
            let downstream = r.node()?;
            WireMsg::Pim(PimMsg::Join { ch, downstream })
        }
        MsgType::PimData => {
            flag_ok(0)?;
            WireMsg::Pim(PimMsg::Data { ch: r.channel()? })
        }
    })
}

/// Decodes a back-to-back stream of messages (self-framing).
pub fn decode_stream(mut bytes: &[u8]) -> Result<Vec<WireMsg>, WireError> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let (msg, used) = decode_prefix(bytes)?;
        out.push(msg);
        bytes = &bytes[used..];
    }
    Ok(out)
}

/// Encoded size of a message in bytes (header included) — used to ground
/// the control-overhead ablation in bytes.
pub fn encoded_len(msg: &WireMsg) -> usize {
    encode(msg).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbh_proto_base::{Channel, GroupAddr};
    use hbh_topo::graph::NodeId;

    fn ch() -> Channel {
        Channel::new(NodeId(18), GroupAddr(7))
    }

    fn samples() -> Vec<WireMsg> {
        vec![
            WireMsg::Hbh(HbhMsg::Join {
                ch: ch(),
                who: NodeId(3),
                initial: true,
            }),
            WireMsg::Hbh(HbhMsg::Join {
                ch: ch(),
                who: NodeId(3),
                initial: false,
            }),
            WireMsg::Hbh(HbhMsg::Tree {
                ch: ch(),
                target: NodeId(9),
            }),
            WireMsg::Hbh(HbhMsg::Fusion {
                ch: ch(),
                from: NodeId(5),
                nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
            }),
            WireMsg::Hbh(HbhMsg::Fusion {
                ch: ch(),
                from: NodeId(5),
                nodes: vec![],
            }),
            WireMsg::Hbh(HbhMsg::Data { ch: ch() }),
            WireMsg::HbhHard(HardMsg::Ctl {
                origin: NodeId(3),
                seq: 0x0102_0304_0506_0708,
                ctl: HardCtl::Join {
                    ch: ch(),
                    who: NodeId(3),
                    failed: Some(NodeId(12)),
                },
            }),
            WireMsg::HbhHard(HardMsg::Ctl {
                origin: NodeId(3),
                seq: 1,
                ctl: HardCtl::Join {
                    ch: ch(),
                    who: NodeId(3),
                    failed: None,
                },
            }),
            WireMsg::HbhHard(HardMsg::Ctl {
                origin: NodeId(4),
                seq: 2,
                ctl: HardCtl::Leave {
                    ch: ch(),
                    who: NodeId(4),
                },
            }),
            WireMsg::HbhHard(HardMsg::Ctl {
                origin: NodeId(18),
                seq: 3,
                ctl: HardCtl::Prune {
                    ch: ch(),
                    who: NodeId(9),
                },
            }),
            WireMsg::HbhHard(HardMsg::Ctl {
                origin: NodeId(18),
                seq: 4,
                ctl: HardCtl::Tree {
                    ch: ch(),
                    target: NodeId(9),
                },
            }),
            WireMsg::HbhHard(HardMsg::Ctl {
                origin: NodeId(5),
                seq: 5,
                ctl: HardCtl::Fusion {
                    ch: ch(),
                    from: NodeId(5),
                    nodes: vec![NodeId(1), NodeId(2)],
                },
            }),
            WireMsg::HbhHard(HardMsg::Ctl {
                origin: NodeId(9),
                seq: 6,
                ctl: HardCtl::Probe {
                    ch: ch(),
                    who: NodeId(9),
                },
            }),
            WireMsg::HbhHard(HardMsg::Ack {
                origin: NodeId(9),
                seq: 6,
                by: NodeId(5),
                known: true,
                server: None,
            }),
            WireMsg::HbhHard(HardMsg::Ack {
                origin: NodeId(9),
                seq: 7,
                by: NodeId(5),
                known: false,
                server: None,
            }),
            WireMsg::HbhHard(HardMsg::Ack {
                origin: NodeId(9),
                seq: 8,
                by: NodeId(5),
                known: false,
                server: Some(NodeId(3)),
            }),
            WireMsg::HbhHard(HardMsg::Data { ch: ch() }),
            WireMsg::Reunite(ReuniteMsg::Join {
                ch: ch(),
                receiver: NodeId(4),
                fresh: true,
            }),
            WireMsg::Reunite(ReuniteMsg::Tree {
                ch: ch(),
                receiver: NodeId(4),
                marked: true,
            }),
            WireMsg::Reunite(ReuniteMsg::Tree {
                ch: ch(),
                receiver: NodeId(4),
                marked: false,
            }),
            WireMsg::Reunite(ReuniteMsg::Data { ch: ch() }),
            WireMsg::Pim(PimMsg::Join {
                ch: ch(),
                downstream: NodeId(2),
            }),
            WireMsg::Pim(PimMsg::Data { ch: ch() }),
        ]
    }

    #[test]
    fn roundtrip_every_message_kind() {
        for m in samples() {
            let bytes = encode(&m);
            assert_eq!(decode(&bytes).unwrap(), m, "roundtrip failed for {m:?}");
        }
    }

    #[test]
    fn stream_roundtrip() {
        let msgs = samples();
        let mut bytes = Vec::new();
        for m in &msgs {
            bytes.extend_from_slice(&encode(m));
        }
        assert_eq!(decode_stream(&bytes).unwrap(), msgs);
    }

    #[test]
    fn header_fields_are_validated() {
        let good = encode(&samples()[0]);
        let mut bad = good.clone();
        bad[0] = 0x00;
        assert_eq!(decode(&bad), Err(WireError::BadMagic(0)));
        let mut bad = good.clone();
        bad[1] = 9;
        assert_eq!(decode(&bad), Err(WireError::BadVersion(9)));
        let mut bad = good.clone();
        bad[2] = 0x77;
        assert_eq!(decode(&bad), Err(WireError::BadType(0x77)));
        let mut bad = good.clone();
        bad[3] = 0xF0;
        assert!(matches!(decode(&bad), Err(WireError::BadFlags(_))));
        let mut bad = good.clone();
        bad[6] = 1;
        assert_eq!(decode(&bad), Err(WireError::BadReserved));
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        for m in samples() {
            let bytes = encode(&m);
            for cut in 0..bytes.len() {
                let r = decode(&bytes[..cut]);
                assert!(r.is_err(), "{m:?} decoded from a {cut}-byte prefix");
            }
        }
    }

    #[test]
    fn flag_on_wrong_message_rejected() {
        // A tree message with the INITIAL bit set is malformed.
        let mut bytes = encode(&WireMsg::Hbh(HbhMsg::Tree {
            ch: ch(),
            target: NodeId(1),
        }));
        bytes[3] = flags::INITIAL;
        assert!(matches!(decode(&bytes), Err(WireError::BadFlags(_))));
    }

    #[test]
    fn fusion_list_length_is_validated() {
        let m = WireMsg::Hbh(HbhMsg::Fusion {
            ch: ch(),
            from: NodeId(5),
            nodes: vec![NodeId(1)],
        });
        let mut bytes = encode(&m);
        // Claim two nodes but carry one (count field sits after ch+from =
        // 12 body bytes, at offset HEADER_LEN + 12).
        let off = HEADER_LEN + 12;
        bytes[off..off + 2].copy_from_slice(&2u16.to_be_bytes());
        assert_eq!(decode(&bytes), Err(WireError::BadListLength));
    }

    #[test]
    fn encoded_len_matches_encode() {
        for m in samples() {
            assert_eq!(encoded_len(&m), encode(&m).len());
        }
    }

    #[test]
    fn message_sizes_are_sane() {
        // join/tree/data: 8 header + 8 channel + 4 node (+0) = 20 bytes.
        assert_eq!(
            encoded_len(&WireMsg::Hbh(HbhMsg::Tree {
                ch: ch(),
                target: NodeId(1)
            })),
            20
        );
        // data: 8 + 8 = 16 bytes.
        assert_eq!(encoded_len(&WireMsg::Hbh(HbhMsg::Data { ch: ch() })), 16);
    }
}
