#![warn(missing_docs)]

//! # hbh-wire — wire formats for the protocol messages
//!
//! The simulator exchanges typed Rust enums; a deployment exchanges bytes.
//! This crate defines a concrete wire encoding for every control message of
//! the three protocol families (HBH, REUNITE, PIM) so the engines in this
//! workspace describe a protocol that could actually go on the wire — and
//! so the message sizes used by the control-overhead ablation can be
//! grounded in bytes rather than message counts.
//!
//! ## Format
//!
//! Every message is a fixed 8-byte header followed by a message-specific
//! body, all integers big-endian (network order):
//!
//! ```text
//!  0               1               2               3
//!  +---------------+---------------+---------------+---------------+
//!  | magic (0xB4)  | version (1)   | msg type      | flags         |
//!  +---------------+---------------+---------------+---------------+
//!  | body length (u16)             | reserved (u16, zero)          |
//!  +---------------+---------------+---------------+---------------+
//!  | body ...                                                      |
//! ```
//!
//! Node addresses travel as `u32` (the simulator's dense node ids stand in
//! for IPv4 unicast addresses 1:1); group addresses as `u32` in the SSM
//! `232/8` convention of `hbh-proto-base::channel`.
//!
//! ## Guarantees
//!
//! * **Round-trip:** `decode(encode(m)) == m` for every valid message
//!   (unit + property tests).
//! * **Zero panic:** `decode` of *arbitrary* bytes never panics and never
//!   allocates unboundedly — it returns a typed [`WireError`]
//!   (property-tested against random and truncated inputs).
//! * **Self-framing:** the header carries the body length, so messages can
//!   be streamed back-to-back ([`decode_stream`]).

pub mod codec;
pub mod format;

pub use codec::{decode, decode_stream, encode, WireError, WireMsg};

#[cfg(test)]
mod proptests;
