//! Low-level field encoding: the common header and primitive readers and
//! writers with explicit bounds checking (no slicing panics anywhere).

use crate::codec::WireError;
use hbh_proto_base::{Channel, GroupAddr};
use hbh_topo::graph::NodeId;

/// First header byte, chosen to be visibly not-ASCII in dumps.
pub const MAGIC: u8 = 0xB4;
/// Wire protocol version.
pub const VERSION: u8 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 8;
/// Hard cap on body length: bounds allocation during decode. The largest
/// real message is an HBH fusion listing an MFT; 64 KiB of node list is
/// three orders of magnitude beyond any tree in this workspace.
pub const MAX_BODY: usize = 64 * 1024;

/// Message type codes (byte 2 of the header).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
#[allow(missing_docs)] // names mirror the message enums 1:1
pub enum MsgType {
    HbhJoin = 0x01,
    HbhTree = 0x02,
    HbhFusion = 0x03,
    HbhData = 0x04,
    ReuniteJoin = 0x11,
    ReuniteTree = 0x12,
    ReuniteData = 0x14,
    PimJoin = 0x21,
    PimData = 0x24,
    // 0x3x — hard-state HBH: sequenced control (each carrying the
    // origin's (node, seq) reliability header), the ACK, and plain data.
    HbhHardJoin = 0x31,
    HbhHardLeave = 0x32,
    HbhHardPrune = 0x33,
    HbhHardTree = 0x34,
    HbhHardFusion = 0x35,
    HbhHardProbe = 0x36,
    HbhHardAck = 0x37,
    HbhHardData = 0x38,
}

impl MsgType {
    /// Parses a header type byte.
    pub fn from_byte(b: u8) -> Option<MsgType> {
        Some(match b {
            0x01 => MsgType::HbhJoin,
            0x02 => MsgType::HbhTree,
            0x03 => MsgType::HbhFusion,
            0x04 => MsgType::HbhData,
            0x11 => MsgType::ReuniteJoin,
            0x12 => MsgType::ReuniteTree,
            0x14 => MsgType::ReuniteData,
            0x21 => MsgType::PimJoin,
            0x24 => MsgType::PimData,
            0x31 => MsgType::HbhHardJoin,
            0x32 => MsgType::HbhHardLeave,
            0x33 => MsgType::HbhHardPrune,
            0x34 => MsgType::HbhHardTree,
            0x35 => MsgType::HbhHardFusion,
            0x36 => MsgType::HbhHardProbe,
            0x37 => MsgType::HbhHardAck,
            0x38 => MsgType::HbhHardData,
            _ => return None,
        })
    }
}

/// Flag bits (byte 3 of the header).
pub mod flags {
    /// HBH join: the receiver's first join (never intercepted);
    /// REUNITE join: fresh join (may be captured / promote).
    pub const INITIAL: u8 = 0b0000_0001;
    /// REUNITE tree: marked (stale-propagation).
    pub const MARKED: u8 = 0b0000_0010;
    /// Hard-HBH join: a failed-node hint rides in the body.
    pub const FAILED: u8 = 0b0000_0100;
    /// Hard-HBH ACK: the acker still serves the probing origin.
    pub const SERVES: u8 = 0b0000_1000;
    /// Hard-HBH ACK: a probe-redirect server node rides in the body.
    pub const REDIRECT: u8 = 0b0001_0000;
    /// All bits a valid encoder may set.
    pub const KNOWN: u8 = INITIAL | MARKED | FAILED | SERVES | REDIRECT;
}

/// Bounds-checked big-endian writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64` (reliable-layer sequence numbers).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a node address (`u32`).
    pub fn node(&mut self, n: NodeId) {
        self.u32(n.0);
    }

    /// Appends a channel: source address then group address.
    pub fn channel(&mut self, ch: Channel) {
        self.node(ch.source);
        self.u32(ch.group.0);
    }

    /// Finishes writing and yields the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked big-endian reader over a body slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over one message body.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64` (reliable-layer sequence numbers).
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a node address.
    pub fn node(&mut self) -> Result<NodeId, WireError> {
        Ok(NodeId(self.u32()?))
    }

    /// Reads a channel (source address then group address).
    pub fn channel(&mut self) -> Result<Channel, WireError> {
        let source = self.node()?;
        let group = GroupAddr(self.u32()?);
        Ok(Channel { source, group })
    }

    /// All body bytes must be consumed; trailing garbage is an error (it
    /// would hide framing bugs).
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len() - self.pos))
        }
    }

    /// Unread bytes left in the body.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip_primitives() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0xCDEF);
        w.u32(0xDEAD_BEEF);
        w.node(NodeId(42));
        w.channel(Channel::primary(NodeId(7)));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xCDEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.node().unwrap(), NodeId(42));
        assert_eq!(r.channel().unwrap(), Channel::primary(NodeId(7)));
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_truncation() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.u32().is_err());
    }

    #[test]
    fn reader_rejects_trailing_bytes() {
        let mut r = Reader::new(&[1, 2]);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(WireError::TrailingBytes(1))));
    }

    #[test]
    fn msg_type_codes_roundtrip() {
        for t in [
            MsgType::HbhJoin,
            MsgType::HbhTree,
            MsgType::HbhFusion,
            MsgType::HbhData,
            MsgType::ReuniteJoin,
            MsgType::ReuniteTree,
            MsgType::ReuniteData,
            MsgType::PimJoin,
            MsgType::PimData,
            MsgType::HbhHardJoin,
            MsgType::HbhHardLeave,
            MsgType::HbhHardPrune,
            MsgType::HbhHardTree,
            MsgType::HbhHardFusion,
            MsgType::HbhHardProbe,
            MsgType::HbhHardAck,
            MsgType::HbhHardData,
        ] {
            assert_eq!(MsgType::from_byte(t as u8), Some(t));
        }
        assert_eq!(MsgType::from_byte(0xFF), None);
    }
}
