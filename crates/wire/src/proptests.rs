//! Property tests: round-trip for arbitrary valid messages, and zero-panic
//! decoding of arbitrary and mutated byte soup.

use crate::codec::{decode, decode_prefix, encode, WireMsg};
use hbh_pim::PimMsg;
use hbh_proto::{HardCtl, HardMsg, HbhMsg};
use hbh_proto_base::{Channel, GroupAddr};
use hbh_reunite::ReuniteMsg;
use hbh_topo::graph::NodeId;
use proptest::prelude::*;

fn arb_channel() -> impl Strategy<Value = Channel> {
    (any::<u32>(), any::<u32>()).prop_map(|(s, g)| Channel::new(NodeId(s), GroupAddr(g)))
}

fn arb_hard_ctl() -> impl Strategy<Value = HardCtl> {
    let node = any::<u32>().prop_map(NodeId);
    prop_oneof![
        (
            arb_channel(),
            node.clone(),
            proptest::option::of(node.clone())
        )
            .prop_map(|(ch, who, failed)| HardCtl::Join { ch, who, failed }),
        (arb_channel(), node.clone()).prop_map(|(ch, who)| HardCtl::Leave { ch, who }),
        (arb_channel(), node.clone()).prop_map(|(ch, who)| HardCtl::Prune { ch, who }),
        (arb_channel(), node.clone()).prop_map(|(ch, target)| HardCtl::Tree { ch, target }),
        (
            arb_channel(),
            node.clone(),
            proptest::collection::vec(any::<u32>().prop_map(NodeId), 0..32)
        )
            .prop_map(|(ch, from, nodes)| HardCtl::Fusion { ch, from, nodes }),
        (arb_channel(), node).prop_map(|(ch, who)| HardCtl::Probe { ch, who }),
    ]
}

fn arb_hard_msg() -> impl Strategy<Value = HardMsg> {
    let node = any::<u32>().prop_map(NodeId);
    prop_oneof![
        (node.clone(), any::<u64>(), arb_hard_ctl()).prop_map(|(origin, seq, ctl)| HardMsg::Ctl {
            origin,
            seq,
            ctl
        }),
        (
            node.clone(),
            any::<u64>(),
            node,
            any::<bool>(),
            any::<bool>(),
            any::<u32>()
        )
            .prop_map(|(origin, seq, by, known, redirect, srv)| HardMsg::Ack {
                origin,
                seq,
                by,
                known,
                server: redirect.then_some(NodeId(srv)),
            }),
        arb_channel().prop_map(|ch| HardMsg::Data { ch }),
    ]
}

fn arb_msg() -> impl Strategy<Value = WireMsg> {
    let node = any::<u32>().prop_map(NodeId);
    prop_oneof![
        (arb_channel(), node.clone(), any::<bool>())
            .prop_map(|(ch, who, initial)| WireMsg::Hbh(HbhMsg::Join { ch, who, initial })),
        (arb_channel(), node.clone())
            .prop_map(|(ch, target)| WireMsg::Hbh(HbhMsg::Tree { ch, target })),
        (
            arb_channel(),
            node.clone(),
            proptest::collection::vec(any::<u32>().prop_map(NodeId), 0..32)
        )
            .prop_map(|(ch, from, nodes)| WireMsg::Hbh(HbhMsg::Fusion { ch, from, nodes })),
        arb_channel().prop_map(|ch| WireMsg::Hbh(HbhMsg::Data { ch })),
        arb_hard_msg().prop_map(WireMsg::HbhHard),
        (arb_channel(), node.clone(), any::<bool>()).prop_map(|(ch, receiver, fresh)| {
            WireMsg::Reunite(ReuniteMsg::Join {
                ch,
                receiver,
                fresh,
            })
        }),
        (arb_channel(), node.clone(), any::<bool>()).prop_map(|(ch, receiver, marked)| {
            WireMsg::Reunite(ReuniteMsg::Tree {
                ch,
                receiver,
                marked,
            })
        }),
        arb_channel().prop_map(|ch| WireMsg::Reunite(ReuniteMsg::Data { ch })),
        (arb_channel(), node)
            .prop_map(|(ch, downstream)| WireMsg::Pim(PimMsg::Join { ch, downstream })),
        arb_channel().prop_map(|ch| WireMsg::Pim(PimMsg::Data { ch })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn roundtrip(msg in arb_msg()) {
        let bytes = encode(&msg);
        prop_assert_eq!(decode(&bytes), Ok(msg));
    }

    /// Decoding arbitrary bytes never panics (it may succeed if the fuzz
    /// happens to be well-formed, which is fine).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
        let _ = decode_prefix(&bytes);
    }

    /// Single-byte corruption of a valid message either still decodes (the
    /// flipped byte was payload) or fails cleanly — never panics, never
    /// reads out of bounds.
    #[test]
    fn mutation_is_handled(msg in arb_msg(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bytes = encode(&msg);
        let i = pos.index(bytes.len());
        bytes[i] ^= 1 << bit;
        let _ = decode(&bytes);
    }

    /// Concatenated messages stream-decode back to the same sequence.
    #[test]
    fn stream_roundtrip(msgs in proptest::collection::vec(arb_msg(), 0..8)) {
        let mut bytes = Vec::new();
        for m in &msgs {
            bytes.extend_from_slice(&encode(m));
        }
        prop_assert_eq!(crate::codec::decode_stream(&bytes), Ok(msgs));
    }
}
