//! Simulation accounting: per-link copy counters, application deliveries,
//! drops, and structural-change bookkeeping.
//!
//! The paper's two headline metrics map onto this directly:
//!
//! * **tree cost** = number of copies of one data packet transmitted across
//!   links ⇒ [`Stats::data_copies_tagged`] after injecting a tagged probe;
//! * **receiver delay** = probe arrival time at each receiver minus
//!   injection time ⇒ [`Delivery::delay`] of the recorded deliveries.

use crate::packet::PacketClass;
use crate::time::Time;
use hbh_topo::graph::{EdgeId, Graph, LinkId, NodeId};
use std::collections::BTreeMap;

/// One application-level delivery (a data packet consumed by a receiver
/// agent, or a control message consumed for protocol purposes is *not*
/// recorded — only what the protocol explicitly hands to the application).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Node the packet was delivered at.
    pub node: NodeId,
    /// Simulated arrival time.
    pub at: Time,
    /// Tag of the injected probe this delivery descends from.
    pub tag: u64,
    /// When the probe was injected.
    pub injected_at: Time,
}

impl Delivery {
    /// End-to-end delay in time units.
    pub fn delay(&self) -> u64 {
        self.at.since(self.injected_at)
    }
}

/// Counters for one simulation run.
///
/// Per-link counters are flat arrays indexed by the graph's dense
/// [`EdgeId`] — a packet hop is one array increment. The ordered-map views
/// the analysis code consumes ([`Stats::data_copies_per_link`]) are
/// reconstructed on demand; they are off the per-event hot path.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Endpoints of each directed edge, copied from the graph at kernel
    /// construction so map views can be rebuilt without a graph reference.
    edge_ends: Vec<LinkId>,
    /// `control[e]` = control transmissions on edge `e`.
    control: Vec<u64>,
    /// Probe tags seen so far, in first-transit order. Runs inject a
    /// handful of probes, so a linear scan beats any map.
    data_tags: Vec<u64>,
    /// `data_rows[i][e]` = copies of probe `data_tags[i]` on edge `e`.
    data_rows: Vec<Vec<u64>>,
    /// Application deliveries, in arrival order.
    pub deliveries: Vec<Delivery>,
    /// Events dispatched by the kernel (scheduler throughput metric).
    pub events: u64,
    /// Packets dropped (TTL exhausted, no route, or misdelivered to a
    /// non-addressee host). Nonzero values in converged scenarios indicate
    /// protocol bugs; transient-phase drops are legitimate.
    pub drops: u64,
    /// Count of structural protocol-state changes (table entry added or
    /// removed, flag flipped) — the Figure 4 churn metric.
    pub structural_changes: u64,
    /// Time of the most recent structural change, for quiescence detection.
    pub last_structural_change: Time,
}

impl Stats {
    /// Counters sized for the edges of `g`. Kernels construct their stats
    /// through this so every per-edge array is pre-sized once.
    pub(crate) fn for_graph(g: &Graph) -> Self {
        Stats {
            edge_ends: g.edge_ends_all().to_vec(),
            control: vec![0; g.directed_edge_count()],
            ..Stats::default()
        }
    }

    /// Records one link transit.
    pub(crate) fn count_transit(&mut self, edge: EdgeId, class: PacketClass, tag: u64) {
        match class {
            PacketClass::Data => {
                let row = match self.data_tags.iter().position(|&t| t == tag) {
                    Some(i) => &mut self.data_rows[i],
                    None => {
                        self.data_tags.push(tag);
                        self.data_rows.push(vec![0; self.edge_ends.len()]);
                        self.data_rows.last_mut().expect("just pushed")
                    }
                };
                row[edge.index()] += 1;
            }
            PacketClass::Control => {
                self.control[edge.index()] += 1;
            }
        }
    }

    /// Total data copies transmitted for probe `tag` — the paper's tree
    /// cost for that probe.
    pub fn data_copies_tagged(&self, tag: u64) -> u64 {
        self.data_copies_by_edge(tag)
            .map_or(0, |row| row.iter().sum())
    }

    /// Per-edge data copies for probe `tag`, indexed by [`EdgeId`], if the
    /// probe transited any link. The zero-allocation view behind
    /// [`Stats::data_copies_per_link`]; pair with the graph's
    /// `edge_cost`/`edge_ends` for weighted sums.
    pub fn data_copies_by_edge(&self, tag: u64) -> Option<&[u64]> {
        let i = self.data_tags.iter().position(|&t| t == tag)?;
        Some(&self.data_rows[i])
    }

    /// Per-link data copies for probe `tag` (for duplicate-copy assertions:
    /// Figure 3 shows REUNITE putting 2 copies on `R1→R6`).
    pub fn data_copies_per_link(&self, tag: u64) -> BTreeMap<(NodeId, NodeId), u64> {
        self.data_copies_by_edge(tag)
            .into_iter()
            .flat_map(|row| {
                self.edge_ends
                    .iter()
                    .zip(row)
                    .filter(|(_, &c)| c > 0)
                    .map(|(l, &c)| ((l.from, l.to), c))
            })
            .collect()
    }

    /// Total control transmissions (protocol overhead ablation).
    pub fn control_copies(&self) -> u64 {
        self.control.iter().sum()
    }

    /// Deliveries attributed to probe `tag`.
    pub fn deliveries_tagged(&self, tag: u64) -> impl Iterator<Item = &Delivery> {
        self.deliveries.iter().filter(move |d| d.tag == tag)
    }

    /// Notes a structural protocol-state change at `now`.
    pub(crate) fn note_structural_change(&mut self, now: Time) {
        self.structural_changes += 1;
        self.last_structural_change = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 — 1 — 2 line of routers; stats sized for its four directed edges.
    fn stats_and_edges() -> (Stats, EdgeId, EdgeId, EdgeId) {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let c = g.add_router();
        g.add_link(a, b, 1, 1);
        g.add_link(b, c, 1, 1);
        let ab = g.edge_entry(a, b).unwrap().0;
        let ba = g.edge_entry(b, a).unwrap().0;
        let bc = g.edge_entry(b, c).unwrap().0;
        (Stats::for_graph(&g), ab, ba, bc)
    }

    #[test]
    fn data_copies_separate_by_tag() {
        let (mut s, ab, _, bc) = stats_and_edges();
        s.count_transit(ab, PacketClass::Data, 1);
        s.count_transit(ab, PacketClass::Data, 1);
        s.count_transit(bc, PacketClass::Data, 2);
        assert_eq!(s.data_copies_tagged(1), 2);
        assert_eq!(s.data_copies_tagged(2), 1);
        assert_eq!(s.data_copies_tagged(3), 0);
    }

    #[test]
    fn per_link_counts_expose_duplicates() {
        let (mut s, ab, _, _) = stats_and_edges();
        s.count_transit(ab, PacketClass::Data, 5);
        s.count_transit(ab, PacketClass::Data, 5);
        let per_link = s.data_copies_per_link(5);
        assert_eq!(per_link[&(NodeId(0), NodeId(1))], 2);
        assert_eq!(per_link.len(), 1, "untouched edges are not reported");
    }

    #[test]
    fn by_edge_view_matches_per_link_map() {
        let (mut s, ab, ba, bc) = stats_and_edges();
        for e in [ab, ba, bc, bc] {
            s.count_transit(e, PacketClass::Data, 9);
        }
        let row = s.data_copies_by_edge(9).unwrap();
        assert_eq!(row.iter().sum::<u64>(), 4);
        assert_eq!(row[bc.index()], 2);
        assert_eq!(s.data_copies_by_edge(8), None);
    }

    #[test]
    fn control_counts_are_classless() {
        let (mut s, ab, ba, _) = stats_and_edges();
        s.count_transit(ab, PacketClass::Control, 0);
        s.count_transit(ba, PacketClass::Control, 0);
        assert_eq!(s.control_copies(), 2);
        assert_eq!(s.data_copies_tagged(0), 0);
    }

    #[test]
    fn delivery_delay() {
        let d = Delivery {
            node: NodeId(3),
            at: Time(30),
            tag: 1,
            injected_at: Time(12),
        };
        assert_eq!(d.delay(), 18);
    }

    #[test]
    fn structural_changes_tracked() {
        let mut s = Stats::default();
        s.note_structural_change(Time(5));
        s.note_structural_change(Time(9));
        assert_eq!(s.structural_changes, 2);
        assert_eq!(s.last_structural_change, Time(9));
    }

    #[test]
    fn deliveries_filter_by_tag() {
        let mut s = Stats::default();
        s.deliveries.push(Delivery {
            node: NodeId(1),
            at: Time(1),
            tag: 1,
            injected_at: Time(0),
        });
        s.deliveries.push(Delivery {
            node: NodeId(2),
            at: Time(2),
            tag: 2,
            injected_at: Time(0),
        });
        assert_eq!(s.deliveries_tagged(1).count(), 1);
        assert_eq!(s.deliveries_tagged(2).next().unwrap().node, NodeId(2));
    }
}
