//! Simulation accounting: per-link copy counters, application deliveries,
//! drops, and structural-change bookkeeping.
//!
//! The paper's two headline metrics map onto this directly:
//!
//! * **tree cost** = number of copies of one data packet transmitted across
//!   links ⇒ [`Stats::data_copies_tagged`] after injecting a tagged probe;
//! * **receiver delay** = probe arrival time at each receiver minus
//!   injection time ⇒ [`Delivery::delay`] of the recorded deliveries.

use crate::packet::PacketClass;
use crate::time::Time;
use hbh_topo::graph::NodeId;
use std::collections::BTreeMap;

/// One application-level delivery (a data packet consumed by a receiver
/// agent, or a control message consumed for protocol purposes is *not*
/// recorded — only what the protocol explicitly hands to the application).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Node the packet was delivered at.
    pub node: NodeId,
    /// Simulated arrival time.
    pub at: Time,
    /// Tag of the injected probe this delivery descends from.
    pub tag: u64,
    /// When the probe was injected.
    pub injected_at: Time,
}

impl Delivery {
    /// End-to-end delay in time units.
    pub fn delay(&self) -> u64 {
        self.at.since(self.injected_at)
    }
}

/// Counters for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Copies transmitted per directed link, data class, keyed by probe tag.
    data_link_copies: BTreeMap<(u64, NodeId, NodeId), u64>,
    /// Total control transmissions per directed link.
    control_link_copies: BTreeMap<(NodeId, NodeId), u64>,
    /// Application deliveries, in arrival order.
    pub deliveries: Vec<Delivery>,
    /// Packets dropped (TTL exhausted, no route, or misdelivered to a
    /// non-addressee host). Nonzero values in converged scenarios indicate
    /// protocol bugs; transient-phase drops are legitimate.
    pub drops: u64,
    /// Count of structural protocol-state changes (table entry added or
    /// removed, flag flipped) — the Figure 4 churn metric.
    pub structural_changes: u64,
    /// Time of the most recent structural change, for quiescence detection.
    pub last_structural_change: Time,
}

impl Stats {
    /// Records one link transit.
    pub(crate) fn count_transit(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: PacketClass,
        tag: u64,
    ) {
        match class {
            PacketClass::Data => {
                *self.data_link_copies.entry((tag, from, to)).or_insert(0) += 1;
            }
            PacketClass::Control => {
                *self.control_link_copies.entry((from, to)).or_insert(0) += 1;
            }
        }
    }

    /// Total data copies transmitted for probe `tag` — the paper's tree
    /// cost for that probe.
    pub fn data_copies_tagged(&self, tag: u64) -> u64 {
        self.data_link_copies
            .range((tag, NodeId(0), NodeId(0))..=(tag, NodeId(u32::MAX), NodeId(u32::MAX)))
            .map(|(_, &c)| c)
            .sum()
    }

    /// Per-link data copies for probe `tag` (for duplicate-copy assertions:
    /// Figure 3 shows REUNITE putting 2 copies on `R1→R6`).
    pub fn data_copies_per_link(&self, tag: u64) -> BTreeMap<(NodeId, NodeId), u64> {
        self.data_link_copies
            .range((tag, NodeId(0), NodeId(0))..=(tag, NodeId(u32::MAX), NodeId(u32::MAX)))
            .map(|(&(_, f, t), &c)| ((f, t), c))
            .collect()
    }

    /// Total control transmissions (protocol overhead ablation).
    pub fn control_copies(&self) -> u64 {
        self.control_link_copies.values().sum()
    }

    /// Deliveries attributed to probe `tag`.
    pub fn deliveries_tagged(&self, tag: u64) -> impl Iterator<Item = &Delivery> {
        self.deliveries.iter().filter(move |d| d.tag == tag)
    }

    /// Notes a structural protocol-state change at `now`.
    pub(crate) fn note_structural_change(&mut self, now: Time) {
        self.structural_changes += 1;
        self.last_structural_change = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_copies_separate_by_tag() {
        let mut s = Stats::default();
        s.count_transit(NodeId(0), NodeId(1), PacketClass::Data, 1);
        s.count_transit(NodeId(0), NodeId(1), PacketClass::Data, 1);
        s.count_transit(NodeId(1), NodeId(2), PacketClass::Data, 2);
        assert_eq!(s.data_copies_tagged(1), 2);
        assert_eq!(s.data_copies_tagged(2), 1);
        assert_eq!(s.data_copies_tagged(3), 0);
    }

    #[test]
    fn per_link_counts_expose_duplicates() {
        let mut s = Stats::default();
        s.count_transit(NodeId(0), NodeId(1), PacketClass::Data, 5);
        s.count_transit(NodeId(0), NodeId(1), PacketClass::Data, 5);
        let per_link = s.data_copies_per_link(5);
        assert_eq!(per_link[&(NodeId(0), NodeId(1))], 2);
    }

    #[test]
    fn control_counts_are_classless() {
        let mut s = Stats::default();
        s.count_transit(NodeId(0), NodeId(1), PacketClass::Control, 0);
        s.count_transit(NodeId(1), NodeId(0), PacketClass::Control, 0);
        assert_eq!(s.control_copies(), 2);
        assert_eq!(s.data_copies_tagged(0), 0);
    }

    #[test]
    fn delivery_delay() {
        let d = Delivery { node: NodeId(3), at: Time(30), tag: 1, injected_at: Time(12) };
        assert_eq!(d.delay(), 18);
    }

    #[test]
    fn structural_changes_tracked() {
        let mut s = Stats::default();
        s.note_structural_change(Time(5));
        s.note_structural_change(Time(9));
        assert_eq!(s.structural_changes, 2);
        assert_eq!(s.last_structural_change, Time(9));
    }

    #[test]
    fn deliveries_filter_by_tag() {
        let mut s = Stats::default();
        s.deliveries.push(Delivery { node: NodeId(1), at: Time(1), tag: 1, injected_at: Time(0) });
        s.deliveries.push(Delivery { node: NodeId(2), at: Time(2), tag: 2, injected_at: Time(0) });
        assert_eq!(s.deliveries_tagged(1).count(), 1);
        assert_eq!(s.deliveries_tagged(2).next().unwrap().node, NodeId(2));
    }
}
