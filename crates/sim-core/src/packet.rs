//! Packets: the unit of everything that crosses a link.
//!
//! Both the control plane (join / tree / fusion messages) and the data
//! plane are ordinary unicast packets — that is the whole premise of the
//! recursive-unicast approach. The kernel only looks at the destination,
//! the class (for accounting) and the TTL; the payload is opaque
//! protocol-defined data.

use crate::time::Time;
use hbh_topo::graph::NodeId;

/// Traffic class, used for per-link accounting.
///
/// The paper's tree-cost metric counts **data** copies only; control
/// traffic is accounted separately (and reported by the protocol-overhead
/// ablation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PacketClass {
    /// Protocol signalling (joins, trees, fusions).
    Control,
    /// Channel payload.
    Data,
}

/// Default TTL. Large enough for any path in the experiment topologies
/// (diameter ≤ 10 hops) while still catching forwarding loops quickly.
pub const DEFAULT_TTL: u8 = 64;

/// A unicast packet in flight.
#[derive(Clone, Debug)]
pub struct Packet<M> {
    /// The node that *originated* the packet (not the previous hop).
    pub src: NodeId,
    /// Unicast destination. Forwarding consults the routing tables for
    /// `next_hop(here, dst)` at every hop — unicast-only routers can do
    /// this, which is what lets the multicast tree cross them.
    pub dst: NodeId,
    /// Remaining hops before the kernel drops the packet.
    pub ttl: u8,
    /// Accounting class.
    pub class: PacketClass,
    /// Experiment tag: data probes carry an id so deliveries and link
    /// copies can be attributed to one injected packet. Protocol code must
    /// preserve the tag when it creates modified copies (use
    /// [`Packet::copy_to`]).
    pub tag: u64,
    /// When the original packet (tag lineage) was injected; preserved by
    /// [`Packet::copy_to`] so receiver delay = arrival − `injected_at`.
    pub injected_at: Time,
    /// Protocol payload.
    pub payload: M,
}

impl<M> Packet<M> {
    /// A fresh control packet from `src` to `dst`.
    pub fn control(src: NodeId, dst: NodeId, payload: M) -> Self {
        Packet {
            src,
            dst,
            ttl: DEFAULT_TTL,
            class: PacketClass::Control,
            tag: 0,
            injected_at: Time::ZERO,
            payload,
        }
    }

    /// A fresh data packet from `src` to `dst`, tagged for accounting.
    pub fn data(src: NodeId, dst: NodeId, tag: u64, injected_at: Time, payload: M) -> Self {
        Packet {
            src,
            dst,
            ttl: DEFAULT_TTL,
            class: PacketClass::Data,
            tag,
            injected_at,
            payload,
        }
    }

    /// The recursive-unicast "modified copy": same origin, class, tag and
    /// lineage timestamp, fresh TTL, new unicast destination. This is the
    /// operation a branching node performs for each forwarding-table entry.
    pub fn copy_to(&self, dst: NodeId) -> Self
    where
        M: Clone,
    {
        Packet {
            src: self.src,
            dst,
            ttl: DEFAULT_TTL,
            class: self.class,
            tag: self.tag,
            injected_at: self.injected_at,
            payload: self.payload.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_packets_default_fields() {
        let p = Packet::control(NodeId(1), NodeId(2), "hello");
        assert_eq!(p.class, PacketClass::Control);
        assert_eq!(p.ttl, DEFAULT_TTL);
        assert_eq!(p.tag, 0);
    }

    #[test]
    fn data_packets_carry_tag_and_lineage() {
        let p = Packet::data(NodeId(1), NodeId(2), 7, Time(42), ());
        assert_eq!(p.class, PacketClass::Data);
        assert_eq!(p.tag, 7);
        assert_eq!(p.injected_at, Time(42));
    }

    #[test]
    fn copy_to_preserves_lineage_and_resets_ttl() {
        let mut p = Packet::data(NodeId(1), NodeId(2), 7, Time(42), "payload");
        p.ttl = 3;
        let c = p.copy_to(NodeId(9));
        assert_eq!(c.dst, NodeId(9));
        assert_eq!(c.src, NodeId(1));
        assert_eq!(c.tag, 7);
        assert_eq!(c.injected_at, Time(42));
        assert_eq!(c.ttl, DEFAULT_TTL);
        assert_eq!(c.payload, "payload");
    }
}
