//! Scheduled fault injection: link outages, node crashes, and per-link
//! packet loss, declared up front and replayed deterministically.
//!
//! A [`FaultPlan`] is the declarative side of the churn subsystem: it
//! lists *what* fails *when*. The kernel owns the imperative side —
//! [`crate::Kernel::install_faults`] turns the plan into scheduled fault
//! events and dense per-edge/per-node availability masks consulted at the
//! transmit and arrival points. When no plan is installed the kernel keeps
//! its historical behaviour bit-for-bit: no masks exist, no RNG draws
//! happen, and figure outputs stay byte-identical.
//!
//! Semantics (mirroring how real outages interact with the paper's model):
//!
//! * **Link down** removes *both* directions of a link: packets already
//!   committed to the link are unaffected (they left before the cut), new
//!   transmissions are dropped, and unicast routing instantly reconverges
//!   around the outage (the paper assumes a converged unicast substrate;
//!   we model its reconvergence as instantaneous, so every measured repair
//!   delay is attributable to the *multicast* protocol's soft state).
//! * **Node down** crashes a router or host: its protocol state and timers
//!   are wiped, arriving packets are dropped, and routing reconverges
//!   treating the node as absent. **Node up** restarts it with blank
//!   state — soft-state refreshes from the rest of the tree re-populate
//!   whatever role it still has.
//! * **Per-link loss** is an independent Bernoulli drop on each
//!   transmission over that link (both directions), layered on top of the
//!   class-wide [`crate::LossModel`], driven by the kernel's seeded RNG.

use crate::time::Time;
use hbh_topo::graph::NodeId;

/// One scheduled topology fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Both directions of the link `a — b` go down.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The link `a — b` is restored.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The node crashes: state wiped, timers cancelled, packets dropped.
    NodeDown(NodeId),
    /// The node restarts with blank protocol state.
    NodeUp(NodeId),
}

/// A declarative failure schedule for one simulation run.
///
/// Built with the chaining constructors and handed to
/// [`crate::Kernel::install_faults`]. The plan is independent of any
/// kernel, so the same plan can drive every protocol of a paired
/// comparison (and be embedded in a `Script` alongside protocol
/// commands).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Scheduled topology events, in schedule order (ties resolve in push
    /// order, like every other kernel event).
    pub events: Vec<(Time, FaultEvent)>,
    /// Per-link Bernoulli loss `(a, b, p)`: each transmission on either
    /// direction of `a — b` is independently dropped with probability `p`.
    pub link_loss: Vec<(NodeId, NodeId, f64)>,
}

impl FaultPlan {
    /// An empty plan (no faults; installing it still activates the
    /// fault-checking paths, unlike not installing a plan at all).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules both directions of `a — b` to fail at `at`.
    pub fn link_down(mut self, at: Time, a: NodeId, b: NodeId) -> Self {
        self.events.push((at, FaultEvent::LinkDown { a, b }));
        self
    }

    /// Schedules the link `a — b` to be restored at `at`.
    pub fn link_up(mut self, at: Time, a: NodeId, b: NodeId) -> Self {
        self.events.push((at, FaultEvent::LinkUp { a, b }));
        self
    }

    /// Schedules node `n` to crash at `at`.
    pub fn node_down(mut self, at: Time, n: NodeId) -> Self {
        self.events.push((at, FaultEvent::NodeDown(n)));
        self
    }

    /// Schedules node `n` to restart at `at`.
    pub fn node_up(mut self, at: Time, n: NodeId) -> Self {
        self.events.push((at, FaultEvent::NodeUp(n)));
        self
    }

    /// Adds an independent Bernoulli loss of probability `p` to every
    /// transmission over either direction of the link `a — b`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_link_loss(mut self, a: NodeId, b: NodeId, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.link_loss.push((a, b, p));
        self
    }

    /// True if the plan schedules nothing and overrides no loss.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.link_loss.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let plan = FaultPlan::new()
            .node_down(Time(10), NodeId(3))
            .link_down(Time(20), NodeId(1), NodeId(2))
            .node_up(Time(30), NodeId(3))
            .with_link_loss(NodeId(1), NodeId(2), 0.25);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.events[0], (Time(10), FaultEvent::NodeDown(NodeId(3))));
        assert_eq!(
            plan.events[1],
            (
                Time(20),
                FaultEvent::LinkDown {
                    a: NodeId(1),
                    b: NodeId(2)
                }
            )
        );
        assert_eq!(plan.link_loss, vec![(NodeId(1), NodeId(2), 0.25)]);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn loss_probability_validated() {
        let _ = FaultPlan::new().with_link_loss(NodeId(0), NodeId(1), 1.5);
    }
}
