//! Optional execution tracing.
//!
//! Disabled by default (zero cost beyond a branch); the examples and the
//! mechanism walk-through tests enable it to print what the protocols are
//! doing — the moral equivalent of reading an NS trace file.

use crate::kernel::DropReason;
use crate::packet::Packet;
use crate::time::Time;
use hbh_topo::graph::NodeId;
use std::fmt;

/// What happened.
#[derive(Clone, Debug)]
pub enum TraceKind<M> {
    /// Packet put on the wire toward neighbor `to`.
    Sent {
        /// Next hop the packet was transmitted to.
        to: NodeId,
        /// The packet as sent.
        pkt: Packet<M>,
    },
    /// Packet sent to self (no link traversed).
    Loopback {
        /// The looped-back packet.
        pkt: Packet<M>,
    },
    /// Packet dropped by the kernel.
    Dropped {
        /// The dropped packet.
        pkt: Packet<M>,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// Application-level delivery of probe `tag`.
    Delivered {
        /// The probe tag delivered.
        tag: u64,
    },
    /// Free-form protocol annotation.
    Note(String),
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord<M> {
    /// When it happened.
    pub at: Time,
    /// The node it happened at.
    pub node: NodeId,
    /// What happened.
    pub what: TraceKind<M>,
}

impl<M: fmt::Debug> fmt::Display for TraceRecord<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>6}] {:>4} ", self.at, self.node.to_string())?;
        match &self.what {
            TraceKind::Sent { to, pkt } => {
                write!(f, "send -> {to} dst={} {:?}", pkt.dst, pkt.payload)
            }
            TraceKind::Loopback { pkt } => write!(f, "loopback {:?}", pkt.payload),
            TraceKind::Dropped { pkt, reason } => {
                write!(f, "DROP ({reason:?}) dst={} {:?}", pkt.dst, pkt.payload)
            }
            TraceKind::Delivered { tag } => write!(f, "deliver tag={tag}"),
            TraceKind::Note(s) => write!(f, "note: {s}"),
        }
    }
}

/// Trace sink: either off (default) or collecting.
pub(crate) struct Trace<M> {
    sink: Option<Vec<TraceRecord<M>>>,
}

impl<M> Trace<M> {
    pub(crate) fn disabled() -> Self {
        Trace { sink: None }
    }

    /// Is a sink collecting? Callers check this before building records
    /// whose construction itself costs something (packet clones).
    #[inline]
    pub(crate) fn active(&self) -> bool {
        self.sink.is_some()
    }

    pub(crate) fn enabled() -> Self {
        Trace {
            sink: Some(Vec::new()),
        }
    }

    pub(crate) fn record(&mut self, at: Time, node: NodeId, what: TraceKind<M>) {
        if let Some(sink) = &mut self.sink {
            sink.push(TraceRecord { at, node, what });
        }
    }

    pub(crate) fn take(&mut self) -> Vec<TraceRecord<M>> {
        match &mut self.sink {
            Some(sink) => std::mem::take(sink),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t: Trace<()> = Trace::disabled();
        t.record(Time(1), NodeId(0), TraceKind::Delivered { tag: 1 });
        assert!(t.take().is_empty());
    }

    #[test]
    fn enabled_trace_collects_and_drains() {
        let mut t: Trace<()> = Trace::enabled();
        t.record(Time(1), NodeId(0), TraceKind::Delivered { tag: 1 });
        t.record(Time(2), NodeId(1), TraceKind::Note("x".into()));
        assert_eq!(t.take().len(), 2);
        assert!(t.take().is_empty(), "take drains");
    }

    #[test]
    fn display_formats_each_kind() {
        let recs = [
            TraceRecord {
                at: Time(3),
                node: NodeId(1),
                what: TraceKind::Sent {
                    to: NodeId(2),
                    pkt: Packet::control(NodeId(1), NodeId(2), "m"),
                },
            },
            TraceRecord {
                at: Time(4),
                node: NodeId(2),
                what: TraceKind::Delivered { tag: 7 },
            },
            TraceRecord {
                at: Time(5),
                node: NodeId(2),
                what: TraceKind::Note("hi".into()),
            },
        ];
        for r in &recs {
            assert!(!r.to_string().is_empty());
        }
        assert!(recs[0].to_string().contains("send"));
        assert!(recs[1].to_string().contains("tag=7"));
    }
}
