#![warn(missing_docs)]

//! # hbh-sim-core — the discrete-event simulation kernel
//!
//! A deterministic, single-threaded, packet-level network simulator — the
//! role NS-2 plays in the paper's evaluation. The design follows the ethos
//! of the session's Rust networking guides (smoltcp in particular): an
//! event-driven core with no async runtime, no interior mutability, no
//! global state, and protocol logic kept *pure* so it can be unit-tested
//! without the event loop.
//!
//! ## Model
//!
//! * **Time** is an integer count of the paper's "time units"
//!   ([`time::Time`]). Traversing a directed link takes exactly its routing
//!   cost — the convention the paper's delay figures use.
//! * **Packets** ([`packet::Packet`]) carry a unicast destination and a
//!   protocol-defined payload. They move **hop by hop**: every
//!   protocol-capable router on the path gets to observe (and possibly
//!   intercept, duplicate, or rewrite) a packet, which is precisely the
//!   mechanism HBH and REUNITE are built on. Unicast-only routers and
//!   non-addressee hosts are forwarded/dropped by the kernel itself.
//! * **Protocols** implement the [`kernel::Protocol`] trait: a per-node
//!   state type plus handlers for packet arrival and timer expiry. Handlers
//!   receive a [`kernel::Ctx`] with the current time, a seeded RNG, routing
//!   lookups, and actions (send, forward, deliver, set/cancel timer).
//! * **Accounting** ([`stats::Stats`]) counts per-link packet copies by
//!   traffic class and records application-level deliveries — the raw
//!   material for the paper's tree-cost and delay metrics.
//!
//! ## Determinism
//!
//! Events are ordered by `(time, sequence-number)`; the sequence number is
//! assigned at scheduling time, so simultaneous events fire in scheduling
//! order and a given (topology, seed, scenario) triple always replays the
//! exact same execution. All randomness flows through one explicitly-seeded
//! `StdRng` owned by the kernel.

pub mod fasthash;
pub mod fault;
pub mod kernel;
pub mod network;
pub mod packet;
pub mod stats;
pub mod time;
pub mod trace;

pub use fasthash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use fault::{FaultEvent, FaultPlan};
pub use kernel::{Ctx, DropReason, Kernel, KernelOps, LossModel, Protocol};
pub use network::Network;
pub use packet::{Packet, PacketClass};
pub use stats::{Delivery, Stats};
pub use time::Time;

#[cfg(test)]
mod proptests;
