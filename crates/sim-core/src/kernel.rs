//! The event kernel: a binary-heap scheduler dispatching packet arrivals,
//! timer expiries, and experiment commands to a [`Protocol`] implementation.
//!
//! ## Dispatch rules
//!
//! For a packet arriving at node `n`:
//!
//! * `n` runs the protocol (multicast-capable router, or any host): the
//!   protocol's [`Protocol::on_packet`] sees the packet — whether or not it
//!   is addressed to `n`. Observing transit packets is how join
//!   interception and data branching work in HBH/REUNITE. Exception: a
//!   *host* that is not the packet's destination never sees it (hosts do
//!   not transit; such an arrival is a misrouting and is counted as a
//!   drop).
//! * `n` is a unicast-only router: the kernel forwards the packet toward
//!   its destination itself — the transparent-unicast-cloud behaviour the
//!   protocols are designed around. A packet *addressed* to a unicast-only
//!   router is dropped (protocols must never do that; the drop counter
//!   makes such bugs visible).
//!
//! Timers are keyed per `(node, timer-value)`; re-arming replaces the
//! previous instance and cancellation is exact (ids are globally unique, so
//! a stale heap entry can never fire).

use crate::fasthash::{FastMap, FxBuildHasher};
use crate::fault::{FaultEvent, FaultPlan};
use crate::network::Network;
use crate::packet::Packet;
use crate::stats::{Delivery, Stats};
use crate::time::Time;
use crate::trace::{Trace, TraceKind};
use hbh_topo::graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::hash::Hash;

/// A multicast routing protocol (plus its host agents), as seen by the
/// kernel: per-node state and three event handlers.
///
/// Handlers receive `&self` (protocol-wide immutable configuration such as
/// refresh periods and timer durations), the node's own mutable state, and
/// a [`Ctx`] for actions. Keeping handlers free of access to *other*
/// nodes' state is what makes the simulation faithful: nodes can only
/// communicate through packets.
pub trait Protocol: Sized {
    /// Wire payload carried by packets.
    type Msg: Clone + Debug;
    /// Timer identity at a node (e.g. "refresh join for channel c").
    type Timer: Clone + Eq + Hash + Debug;
    /// Experiment-injected command (join/leave/send-data).
    type Command: Clone + Debug;
    /// Per-node protocol state (router tables and/or host agent state).
    type NodeState: Default;

    /// A packet arrived at `ctx.node`.
    fn on_packet(
        &self,
        state: &mut Self::NodeState,
        pkt: Packet<Self::Msg>,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
    );

    /// A previously armed timer fired at `ctx.node`.
    fn on_timer(
        &self,
        state: &mut Self::NodeState,
        timer: Self::Timer,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
    );

    /// An experiment command addressed to `ctx.node` (e.g. "join channel").
    fn on_command(
        &self,
        state: &mut Self::NodeState,
        cmd: Self::Command,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
    );
}

/// Why the kernel dropped a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // every variant is documented below or self-named
pub enum DropReason {
    /// TTL reached zero in transit (forwarding loop guard).
    TtlExpired,
    /// No unicast route to the destination.
    NoRoute,
    /// Arrived at a host that is not its destination.
    MisroutedToHost,
    /// Addressed to a unicast-only router.
    AddressedToUnicastRouter,
    /// Dropped by the configured loss model (failure injection).
    InjectedLoss,
    /// Transmitted onto a link that is currently down (fault injection).
    LinkDown,
    /// Arrived at a node that is currently crashed (fault injection).
    NodeDown,
}

/// Failure-injection model: every link transmission is independently
/// dropped with the per-class probability. Driven by the kernel's seeded
/// RNG, so lossy runs are exactly reproducible.
///
/// Soft-state protocols are designed to ride out control loss (the next
/// refresh repairs the state); the loss-injection tests verify that HBH,
/// REUNITE and PIM all converge and deliver under heavy control-plane
/// loss.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LossModel {
    /// Drop probability for control packets, in `[0, 1]`.
    pub control: f64,
    /// Drop probability for data packets, in `[0, 1]`.
    pub data: f64,
}

impl LossModel {
    /// Loss on control packets only (the soft-state robustness tests).
    pub fn control_only(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        LossModel {
            control: p,
            data: 0.0,
        }
    }

    fn prob_for(&self, class: crate::packet::PacketClass) -> f64 {
        match class {
            crate::packet::PacketClass::Control => self.control,
            crate::packet::PacketClass::Data => self.data,
        }
    }
}

enum EventKind<M, T, C> {
    Arrive { node: NodeId, pkt: Packet<M> },
    Timer { node: NodeId, timer: T, id: u64 },
    Command { node: NodeId, cmd: C },
    Fault(FaultEvent),
}

/// Live fault-injection state, present only once a [`FaultPlan`] is
/// installed (or a fault is scheduled directly). Keeping it behind an
/// `Option<Box<_>>` means a fault-free kernel pays one pointer-null check
/// on the transmit/arrival paths and draws no extra randomness — runs
/// without a plan are bit-identical to runs on a kernel that has never
/// heard of faults.
struct FaultState {
    /// `node_down[n]`: node `n` is crashed.
    node_down: Vec<bool>,
    /// `edge_down[e]`: directed edge `e` is down (links fail both
    /// directions at once, so both directed twins are flagged together).
    edge_down: Vec<bool>,
    /// Dense per-directed-edge Bernoulli loss, if any link loss was
    /// configured. Layered on top of the class-wide [`LossModel`].
    edge_loss: Option<Vec<f64>>,
    /// CSR packing + Dijkstra buffers reused across every reroute this
    /// kernel performs (one reroute per fault event in a churn run).
    reroute: crate::network::RerouteScratch,
}

/// Near/far split for the two-band scheduler. Per-hop packet delays are
/// single link costs (small integers), while every protocol timer is at
/// least one refresh period (≥ 100 time units by [`Timing` defaults]):
/// the workload is bimodal with nothing near the boundary. Banding is a
/// performance hint only — `pop` compares both band heads on the full
/// `(at, seq)` key, so dispatch order is exact no matter which band an
/// event landed in. Must be a power of two (slot index is `at % 64`).
const NEAR_HORIZON: u64 = 64;

/// One calendar-wheel slot: events due at a single time, in push (= seq)
/// order, with a read cursor instead of front removal.
struct WheelSlot {
    entries: Vec<(Time, u64, u32)>,
    read: usize,
}

/// Scheduling key: `(due time, global sequence, slab index)`. `seq` is
/// globally unique, so comparing keys totally orders events.
type EventKey = (Time, u64, u32);

/// Levels in the far band's hierarchical wheel. Level `k` has 64 slots of
/// span `64^(k+1)` ticks, so four levels cover deltas up to `64^5` ≈ 1.07e9
/// ticks — far beyond any convergence horizon. Longer-dated events (none in
/// practice) spill into a sorted overflow vector.
const FAR_LEVELS: usize = 4;

/// log2 of the slot count per level (64 slots, like the near wheel).
const SLOT_BITS: u32 = 6;

/// One level of the hierarchical far wheel: 64 unsorted slot buckets plus
/// an occupancy bitmask (bit `s` ⇔ slot `s` nonempty).
struct FarLevel {
    slots: Vec<Vec<EventKey>>,
    occ: u64,
}

impl FarLevel {
    fn new() -> Self {
        FarLevel {
            slots: (0..64).map(|_| Vec::new()).collect(),
            occ: 0,
        }
    }
}

/// The far band: a hierarchical timing wheel with a sorted "due run".
///
/// Structure:
///
/// * `run` — all far events due before `open_hi`, sorted ascending, with a
///   consumed-prefix cursor. The head of the run is always the earliest
///   far event (see the refill invariant below), so `peek`/`pop` read it
///   directly, exactly like the old single sorted vector.
/// * `levels` — [`FAR_LEVELS`] wheels of 64 unsorted slots each; level `k`
///   slots span `64^(k+1)` ticks. Insertion picks the smallest level whose
///   current 64-slot window covers the event's due time: an O(1) bucket
///   push, however far in the future the deadline lies.
/// * `overflow` — sorted spill for deltas beyond the top level's coverage.
///
/// When the run is exhausted, [`FarWheel::refill`] opens the next 64-tick
/// window: it finds the earliest occupied slot across all levels,
/// **cascades** higher-level slots downward (re-bucketing their events one
/// level finer — amortized O(levels) per event over its lifetime), and
/// when a level-0 slot surfaces, sorts it (by the full `(at, seq)` key)
/// and installs it as the new run. Refill runs eagerly after every
/// insert/pop that empties the run, so *the run is nonempty whenever any
/// far event exists* — which keeps `peek` a pure read and makes `pop`'s
/// two-band head comparison identical to the old sorted-vector band.
///
/// `floor` is a monotone lower bound on every contained event's due time
/// (≥ the kernel clock, advanced to each opened window's start). Slot
/// indexing is relative to `floor`, which keeps every level's occupied
/// slots inside one 64-slot window — the rotate-and-scan trick the near
/// wheel uses then visits slots in due-time order without ambiguity.
struct FarWheel {
    run: Vec<EventKey>,
    run_head: usize,
    /// Exclusive upper bound of the opened window: every event with
    /// `at < open_hi` lives in `run`; every event in `levels`/`overflow`
    /// has `at >= open_hi`. Starts at 0 (nothing opened), 64-aligned,
    /// monotone.
    open_hi: u64,
    /// Monotone lower bound on all contained due times; scan base.
    floor: u64,
    levels: Vec<FarLevel>,
    overflow: Vec<EventKey>,
    overflow_head: usize,
}

impl FarWheel {
    fn new() -> Self {
        FarWheel {
            run: Vec::new(),
            run_head: 0,
            open_hi: 0,
            floor: 0,
            levels: (0..FAR_LEVELS).map(|_| FarLevel::new()).collect(),
            overflow: Vec::new(),
            overflow_head: 0,
        }
    }

    /// The earliest far event, if any (the refill invariant makes this the
    /// run head).
    fn head(&self) -> Option<&EventKey> {
        self.run.get(self.run_head)
    }

    /// Inserts a far event. O(1) bucket push for events beyond the opened
    /// window; events inside it (`at < open_hi`) take a bounded sorted
    /// insert into the run — the window spans only 64 ticks, so the moved
    /// tail is small (unlike the old single far vector, whose tail was the
    /// entire future).
    fn insert(&mut self, now: Time, key: EventKey) {
        if self.floor < now.0 {
            self.floor = now.0;
        }
        let at = key.0 .0;
        if at < self.open_hi {
            let pos = self.run_head + self.run[self.run_head..].partition_point(|e| *e < key);
            self.run.insert(pos, key);
        } else if !self.level_insert(key) {
            let pos = self.overflow_head
                + self.overflow[self.overflow_head..].partition_point(|e| *e < key);
            self.overflow.insert(pos, key);
        }
        if self.run_head == self.run.len() {
            self.refill();
        }
    }

    /// Buckets `key` into the smallest level whose current window reaches
    /// its due time. Returns `false` if even the top level cannot (the
    /// overflow case).
    fn level_insert(&mut self, key: EventKey) -> bool {
        let at = key.0 .0;
        debug_assert!(at >= self.floor, "event below the wheel floor");
        for (k, level) in self.levels.iter_mut().enumerate() {
            let bits = SLOT_BITS * (k as u32 + 1);
            if (at >> bits) - (self.floor >> bits) <= 63 {
                let s = ((at >> bits) & 63) as usize;
                level.slots[s].push(key);
                level.occ |= 1 << s;
                return true;
            }
        }
        false
    }

    /// Advances the consumed cursor past the run head. The caller must
    /// have taken the head; refills eagerly when the run empties.
    fn consume_head(&mut self) {
        self.run_head += 1;
        if self.run_head == self.run.len() {
            self.refill();
        }
    }

    /// Opens the next 64-tick window into `run`. See the type docs.
    fn refill(&mut self) {
        debug_assert_eq!(self.run_head, self.run.len());
        loop {
            self.migrate_overflow();
            // Earliest occupied slot across all levels, by absolute window
            // start (recovered from any contained event: all events of a
            // slot share one absolute window — their deltas from `floor`
            // fit 63 slots, so slot index ↔ window is a bijection).
            let mut best: Option<(u64, usize, usize)> = None;
            for (k, level) in self.levels.iter().enumerate() {
                if level.occ == 0 {
                    continue;
                }
                let bits = SLOT_BITS * (k as u32 + 1);
                let base = ((self.floor >> bits) & 63) as u32;
                let off = level.occ.rotate_right(base).trailing_zeros();
                let s = ((u64::from(base) + u64::from(off)) & 63) as usize;
                let start = (level.slots[s][0].0 .0 >> bits) << bits;
                if best.map_or(true, |(b, _, _)| start < b) {
                    best = Some((start, k, s));
                }
            }
            let of_head = self.overflow.get(self.overflow_head).map(|e| e.0 .0);
            let (start, k, s) = match (best, of_head) {
                (None, None) => return, // wheel is empty
                (Some(b), of) if of.map_or(true, |o| b.0 <= o) => b,
                (_, Some(o)) => {
                    // The overflow head is the earliest remaining event:
                    // raise the floor to it (sound: nothing is due before
                    // it) so the migration pass can bucket it.
                    self.floor = self.floor.max(o);
                    continue;
                }
                (Some(_), None) => unreachable!("guarded arm covers this"),
            };
            self.floor = self.floor.max(start);
            if k == 0 {
                // Open this window: sort the slot by the full key and make
                // it the new run, recycling the spent run's allocation.
                let mut spent = std::mem::take(&mut self.run);
                spent.clear();
                let mut v = std::mem::replace(&mut self.levels[0].slots[s], spent);
                self.levels[0].occ &= !(1 << s);
                v.sort_unstable();
                self.run = v;
                self.run_head = 0;
                self.open_hi = start + (1 << SLOT_BITS);
                return;
            }
            // Cascade: re-bucket the slot one level finer. The parent slot
            // spans exactly 64 child slots, so children never alias.
            let v = std::mem::take(&mut self.levels[k].slots[s]);
            self.levels[k].occ &= !(1 << s);
            let bits = SLOT_BITS * k as u32;
            for e in v {
                let cs = ((e.0 .0 >> bits) & 63) as usize;
                self.levels[k - 1].slots[cs].push(e);
                self.levels[k - 1].occ |= 1 << cs;
            }
        }
    }

    /// Moves overflow-prefix events whose due times the levels now reach
    /// into the wheel proper.
    fn migrate_overflow(&mut self) {
        let top_bits = SLOT_BITS * FAR_LEVELS as u32;
        while let Some(&e) = self.overflow.get(self.overflow_head) {
            if (e.0 .0 >> top_bits) - (self.floor >> top_bits) > 63 {
                break;
            }
            let bucketed = self.level_insert(e);
            debug_assert!(bucketed, "migration candidate must fit a level");
            self.overflow_head += 1;
        }
        if self.overflow_head > 0 && self.overflow_head == self.overflow.len() {
            self.overflow.clear();
            self.overflow_head = 0;
        }
    }
}

/// The pending-event set: a two-band scheduler over `(at, seq, slab
/// index)` keys with the event bodies slab-allocated off to the side.
///
/// Event bodies (notably `Arrive`, which carries a whole `Packet<M>`) are
/// large; keeping them out of the key structures means scheduling moves
/// 24-byte tuples instead of full events. Bodies live in `kinds` until
/// popped; freed slots recycle through `free`, so steady-state scheduling
/// performs no allocation.
///
/// The two bands exploit the bimodal delay distribution:
///
/// * **Near band** — events due within [`NEAR_HORIZON`] of their push
///   time (in-flight packets): a 64-slot calendar wheel indexed by
///   `at % 64`. All pending events lie in `[now, now + 64)`, so a slot
///   holds exactly one distinct due time and O(1) appends keep it in seq
///   order; `occ` (bit `s` ⇔ slot `s` nonempty) turns earliest-slot
///   lookup into a rotate + trailing_zeros.
/// * **Far band** — longer-dated events (timer expiries): a hierarchical
///   timing wheel ([`FarWheel`]) giving O(1) inserts at any horizon while
///   presenting a sorted head, so `pop`'s exact two-band comparison is
///   unchanged.
struct EventQueue<M, T, C> {
    wheel: Vec<WheelSlot>, // NEAR_HORIZON slots
    /// Occupancy bitmask: bit `s` set iff `wheel[s]` has unread entries.
    occ: u64,
    far: FarWheel,
    kinds: Vec<Option<EventKind<M, T, C>>>,
    free: Vec<u32>,
    /// Scheduled-but-undispatched `Arrive` events carrying data-class
    /// packets. Data forwarding is strictly arrival-driven (no protocol
    /// re-emits a data packet from a timer), so when this hits zero every
    /// data packet in the simulation has fully propagated — the
    /// early-termination signal for probe windows.
    pending_data: u64,
}

impl<M, T, C> EventQueue<M, T, C> {
    fn with_capacity(cap: usize) -> Self {
        EventQueue {
            wheel: (0..NEAR_HORIZON)
                .map(|_| WheelSlot {
                    entries: Vec::new(),
                    read: 0,
                })
                .collect(),
            occ: 0,
            far: FarWheel::new(),
            kinds: Vec::with_capacity(cap),
            free: Vec::new(),
            pending_data: 0,
        }
    }

    fn push(&mut self, now: Time, at: Time, seq: u64, kind: EventKind<M, T, C>) {
        if let EventKind::Arrive { pkt, .. } = &kind {
            if pkt.class == crate::packet::PacketClass::Data {
                self.pending_data += 1;
            }
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.kinds[i as usize] = Some(kind);
                i
            }
            None => {
                let i = u32::try_from(self.kinds.len()).expect("event queue overflow");
                self.kinds.push(Some(kind));
                i
            }
        };
        let key = (at, seq, idx);
        if at.0.saturating_sub(now.0) < NEAR_HORIZON {
            let s = (at.0 % NEAR_HORIZON) as usize;
            let slot = &mut self.wheel[s];
            // Unread entries of a slot always share one due time: two
            // distinct times in [now, now + 64) cannot collide mod 64.
            debug_assert!(slot.entries[slot.read..].iter().all(|e| e.0 == at));
            slot.entries.push(key);
            self.occ |= 1 << s;
        } else {
            self.far.insert(now, key);
        }
    }

    /// The earliest-due wheel slot at `now`, if any. All pending wheel
    /// events lie in `[now, now + 64)`, so scanning the occupancy bits
    /// upward from `now`'s slot (wrapping) visits slots in due-time order.
    fn wheel_slot(&self, now: Time) -> Option<usize> {
        if self.occ == 0 {
            return None;
        }
        let base = (now.0 % NEAR_HORIZON) as u32;
        let off = self.occ.rotate_right(base).trailing_zeros();
        Some(((base + off) as u64 % NEAR_HORIZON) as usize)
    }

    fn wheel_head(&self, now: Time) -> Option<(Time, u64, u32)> {
        let s = self.wheel_slot(now)?;
        let slot = &self.wheel[s];
        Some(slot.entries[slot.read])
    }

    /// Time of the earliest pending event. `now` must not exceed any
    /// pending event's due time (the kernel clock guarantees this).
    fn peek_at(&self, now: Time) -> Option<Time> {
        match (self.wheel_head(now), self.far.head()) {
            (Some(n), Some(f)) => Some(n.0.min(f.0)),
            (Some(n), None) => Some(n.0),
            (None, f) => f.map(|k| k.0),
        }
    }

    /// Pops the earliest event in `(at, seq)` order.
    fn pop(&mut self, now: Time) -> Option<(Time, EventKind<M, T, C>)> {
        let (at, _seq, idx) = match (self.wheel_head(now), self.far.head()) {
            // seq is globally unique, so full-key comparison totally
            // orders the two heads; < vs <= is immaterial.
            (Some(n), Some(&f)) if n < f => self.pop_wheel(now),
            (Some(_), None) => self.pop_wheel(now),
            (_, Some(_)) => self.pop_far(),
            (None, None) => return None,
        };
        let kind = self.kinds[idx as usize]
            .take()
            .expect("slab slot vacated early");
        self.free.push(idx);
        if let EventKind::Arrive { pkt, .. } = &kind {
            if pkt.class == crate::packet::PacketClass::Data {
                self.pending_data -= 1;
            }
        }
        Some((at, kind))
    }

    fn pop_wheel(&mut self, now: Time) -> (Time, u64, u32) {
        let s = self.wheel_slot(now).expect("caller saw a wheel head");
        let slot = &mut self.wheel[s];
        let key = slot.entries[slot.read];
        slot.read += 1;
        if slot.read == slot.entries.len() {
            slot.entries.clear();
            slot.read = 0;
            self.occ &= !(1 << s);
        }
        key
    }

    fn pop_far(&mut self) -> (Time, u64, u32) {
        let key = *self.far.head().expect("caller saw a far head");
        self.far.consume_head();
        key
    }
}

/// Kernel internals shared with protocol handlers through [`Ctx`].
struct Core<M, T, C> {
    net: Network,
    queue: EventQueue<M, T, C>,
    now: Time,
    seq: u64,
    timer_ids: FastMap<(NodeId, T), u64>,
    stats: Stats,
    rng: StdRng,
    trace: Trace<M>,
    loss: LossModel,
    /// `None` until a fault plan is installed — the zero-cost default.
    faults: Option<Box<FaultState>>,
}

impl<M: Clone + Debug, T: Clone + Eq + Hash + Debug, C: Clone + Debug> Core<M, T, C> {
    fn push(&mut self, at: Time, kind: EventKind<M, T, C>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(self.now, at, seq, kind);
    }

    fn drop_packet(&mut self, node: NodeId, pkt: &Packet<M>, reason: DropReason) {
        self.stats.drops += 1;
        if self.trace.active() {
            self.trace.record(
                self.now,
                node,
                TraceKind::Dropped {
                    pkt: pkt.clone(),
                    reason,
                },
            );
        }
    }

    /// Puts `pkt` on the wire at `from`, headed for `pkt.dst` via the
    /// unicast next hop. Counts the link transit and schedules the arrival.
    fn transmit(&mut self, from: NodeId, pkt: Packet<M>) {
        if pkt.dst == from {
            // Local loopback: deliver to self without touching a link.
            if self.trace.active() {
                self.trace
                    .record(self.now, from, TraceKind::Loopback { pkt: pkt.clone() });
            }
            self.push(self.now, EventKind::Arrive { node: from, pkt });
            return;
        }
        let Some((next, eid, cost)) = self.net.hop(from, pkt.dst) else {
            self.drop_packet(from, &pkt, DropReason::NoRoute);
            return;
        };
        self.put_on_edge(from, next, eid, cost, pkt);
    }

    /// Link-local entry point: resolves the edge by one adjacency scan
    /// (per-oif forwarding addresses neighbors directly, so there is no
    /// routing row to read the edge from).
    fn put_on_link(&mut self, from: NodeId, next: NodeId, pkt: Packet<M>) {
        let (eid, cost) = self
            .net
            .graph()
            .edge_entry(from, next)
            .unwrap_or_else(|| panic!("no link {from}->{next}"));
        self.put_on_edge(from, next, eid, cost, pkt);
    }

    /// Common tail of routed and link-local transmission: loss injection,
    /// accounting, arrival scheduling.
    fn put_on_edge(
        &mut self,
        from: NodeId,
        next: NodeId,
        eid: hbh_topo::graph::EdgeId,
        cost: hbh_topo::graph::Cost,
        pkt: Packet<M>,
    ) {
        if let Some(f) = &self.faults {
            if f.edge_down[eid.index()] {
                // A down link carries nothing: the copy never occupies it,
                // so no transit is counted.
                self.drop_packet(from, &pkt, DropReason::LinkDown);
                return;
            }
        }
        if self.lose(pkt.class) || self.lose_on_edge(eid) {
            // The copy is counted as transmitted (it did occupy the link)
            // and then lost.
            self.stats.count_transit(eid, pkt.class, pkt.tag);
            self.drop_packet(from, &pkt, DropReason::InjectedLoss);
            return;
        }
        self.stats.count_transit(eid, pkt.class, pkt.tag);
        if self.trace.active() {
            self.trace.record(
                self.now,
                from,
                TraceKind::Sent {
                    to: next,
                    pkt: pkt.clone(),
                },
            );
        }
        self.push(
            self.now + u64::from(cost),
            EventKind::Arrive { node: next, pkt },
        );
    }

    fn lose(&mut self, class: crate::packet::PacketClass) -> bool {
        let p = self.loss.prob_for(class);
        p > 0.0 && rand::RngExt::random::<f64>(&mut self.rng) < p
    }

    /// Per-link Bernoulli loss from an installed fault plan. Draws from
    /// the RNG only when this edge actually has a positive loss
    /// probability, preserving the RNG stream of loss-free runs.
    fn lose_on_edge(&mut self, eid: hbh_topo::graph::EdgeId) -> bool {
        let Some(loss) = self.faults.as_ref().and_then(|f| f.edge_loss.as_ref()) else {
            return false;
        };
        let p = loss[eid.index()];
        p > 0.0 && rand::RngExt::random::<f64>(&mut self.rng) < p
    }

    /// Allocates the fault masks on first use (all-up, no extra loss).
    fn ensure_faults(&mut self) {
        if self.faults.is_none() {
            self.faults = Some(Box::new(FaultState {
                node_down: vec![false; self.net.node_count()],
                edge_down: vec![false; self.net.graph().directed_edge_count()],
                edge_loss: None,
                reroute: crate::network::RerouteScratch::default(),
            }));
        }
    }

    /// Marks both directions of the link `a — b` down or up.
    fn set_link(&mut self, a: NodeId, b: NodeId, down: bool) {
        let (e_ab, _) = self
            .net
            .graph()
            .edge_entry(a, b)
            .unwrap_or_else(|| panic!("no link {a}-{b} to fail"));
        let (e_ba, _) = self
            .net
            .graph()
            .edge_entry(b, a)
            .expect("links are bidirectional");
        let f = self.faults.as_mut().expect("faults installed");
        f.edge_down[e_ab.index()] = down;
        f.edge_down[e_ba.index()] = down;
    }

    /// Recomputes unicast routing over the surviving topology — the
    /// instantly-reconverged substrate the multicast protocols repair on.
    /// Eager networks rebuild their tables (reusing the CSR + scratch held
    /// in the fault state); on-demand networks invalidate only the cached
    /// rows the fault touches.
    fn reroute(&mut self) {
        let mut f = self.faults.take().expect("faults installed");
        self.net = self
            .net
            .rerouted(&f.node_down, &f.edge_down, &mut f.reroute);
        self.faults = Some(f);
    }

    fn forward(&mut self, at: NodeId, mut pkt: Packet<M>) {
        if pkt.ttl == 0 {
            self.drop_packet(at, &pkt, DropReason::TtlExpired);
            return;
        }
        pkt.ttl -= 1;
        self.transmit(at, pkt);
    }

    /// Link-local transmission: puts `pkt` directly on the link
    /// `from → via`, bypassing unicast routing. This models
    /// interface-directed forwarding (PIM's per-oif replication).
    ///
    /// Panics if no such link exists — per-oif state always points at a
    /// direct neighbor, so a violation is a protocol bug.
    fn transmit_link(&mut self, from: NodeId, via: NodeId, pkt: Packet<M>) {
        // put_on_link resolves the edge and panics if no such link exists.
        self.put_on_link(from, via, pkt);
    }
}

/// Handler-side view of the kernel: the current node, the clock, the RNG,
/// routing lookups, and the action API (send / forward / deliver / timers).
pub struct Ctx<'a, M, T> {
    /// The node the current event fired at.
    pub node: NodeId,
    core: &'a mut dyn KernelOps<M, T>,
}

impl<'a, M, T> Ctx<'a, M, T> {
    /// Builds a handler context over any [`KernelOps`] backend. The
    /// simulation kernel uses this internally; alternative runtimes (e.g.
    /// the UDP-backed `hbh-live`) use it to drive the same protocol code.
    pub fn from_ops(node: NodeId, core: &'a mut dyn KernelOps<M, T>) -> Self {
        Ctx { node, core }
    }
}

/// The capability surface protocol handlers run against, object-safe.
///
/// The simulation kernel's [`Core`] is the canonical implementation, but
/// the trait is public so the *same protocol engines* can run over other
/// backends — `hbh-live` implements it with real UDP sockets and
/// wall-clock timers. Implementors provide: a clock, a routing view, an
/// RNG, transmission (routed, link-local, and transit forwarding),
/// application delivery, keyed timers, and bookkeeping hooks.
pub trait KernelOps<M, T> {
    /// Current time (simulated or wall-clock-derived).
    fn now(&self) -> Time;
    /// The frozen topology + unicast routing view.
    fn net(&self) -> &Network;
    /// Seeded RNG for protocol-side randomness.
    fn rng(&mut self) -> &mut StdRng;
    /// Originates `pkt` at `from`, routed toward `pkt.dst`.
    fn send(&mut self, from: NodeId, pkt: Packet<M>);
    /// Transmits directly on the link `from → via` (no routing).
    fn send_link(&mut self, from: NodeId, via: NodeId, pkt: Packet<M>);
    /// Forwards a transit packet one hop (TTL-decrementing).
    fn forward(&mut self, from: NodeId, pkt: Packet<M>);
    /// Records an application-level delivery at `node`.
    fn deliver(&mut self, node: NodeId, pkt_tag: u64, injected_at: Time);
    /// Arms (or re-arms, superseding) a keyed timer at `node`.
    fn set_timer(&mut self, node: NodeId, timer: T, delay: u64);
    /// Cancels a pending timer (no-op if not armed).
    fn cancel_timer(&mut self, node: NodeId, timer: &T);
    /// Arms a batch of keyed timers at `node` — semantically identical to
    /// calling [`KernelOps::set_timer`] per entry, in iterator order, but
    /// one virtual dispatch for the whole batch (and backends may reserve
    /// capacity up front). Engines arming thousands of refresh timers per
    /// event use this instead of per-entry calls.
    fn set_timers(&mut self, node: NodeId, timers: &mut dyn Iterator<Item = (T, u64)>) {
        for (timer, delay) in timers {
            self.set_timer(node, timer, delay);
        }
    }
    /// Cancels a batch of pending timers (per-entry no-op if not armed),
    /// the batched counterpart of [`KernelOps::cancel_timer`].
    fn cancel_timers(&mut self, node: NodeId, timers: &mut dyn Iterator<Item = T>) {
        for timer in timers {
            self.cancel_timer(node, &timer);
        }
    }
    /// Notes a structural protocol-state change (churn accounting).
    fn structural_change(&mut self);
    /// Appends a free-form trace annotation.
    fn trace_note(&mut self, node: NodeId, note: String);
}

impl<M: Clone + Debug, T: Clone + Eq + Hash + Debug, C: Clone + Debug> KernelOps<M, T>
    for Core<M, T, C>
{
    fn now(&self) -> Time {
        self.now
    }
    fn net(&self) -> &Network {
        &self.net
    }
    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
    fn send(&mut self, from: NodeId, pkt: Packet<M>) {
        self.transmit(from, pkt);
    }
    fn send_link(&mut self, from: NodeId, via: NodeId, pkt: Packet<M>) {
        self.transmit_link(from, via, pkt);
    }
    fn forward(&mut self, from: NodeId, pkt: Packet<M>) {
        Core::forward(self, from, pkt);
    }
    fn deliver(&mut self, node: NodeId, tag: u64, injected_at: Time) {
        self.trace
            .record(self.now, node, TraceKind::Delivered { tag });
        self.stats.deliveries.push(Delivery {
            node,
            at: self.now,
            tag,
            injected_at,
        });
    }
    fn set_timer(&mut self, node: NodeId, timer: T, delay: u64) {
        let id = self.seq; // globally unique, monotonic
        self.timer_ids.insert((node, timer.clone()), id);
        self.push(self.now + delay, EventKind::Timer { node, timer, id });
    }
    fn cancel_timer(&mut self, node: NodeId, timer: &T) {
        self.timer_ids.remove(&(node, timer.clone()));
    }
    fn set_timers(&mut self, node: NodeId, timers: &mut dyn Iterator<Item = (T, u64)>) {
        // One dynamic dispatch for the batch; the per-entry arming below is
        // static. Pre-size the keyed-timer map from the iterator's hint so
        // a flash-crowd-sized batch doesn't rehash it several times over.
        let (lo, _) = timers.size_hint();
        self.timer_ids.reserve(lo);
        for (timer, delay) in timers {
            KernelOps::set_timer(self, node, timer, delay);
        }
    }
    fn cancel_timers(&mut self, node: NodeId, timers: &mut dyn Iterator<Item = T>) {
        for timer in timers {
            self.timer_ids.remove(&(node, timer));
        }
    }
    fn structural_change(&mut self) {
        let now = self.now;
        self.stats.note_structural_change(now);
    }
    fn trace_note(&mut self, node: NodeId, note: String) {
        self.trace.record(self.now, node, TraceKind::Note(note));
    }
}

impl<'a, M, T> Ctx<'a, M, T> {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.core.now()
    }

    /// The frozen network (topology + unicast routing).
    pub fn net(&self) -> &Network {
        self.core.net()
    }

    /// The kernel's seeded RNG (e.g. for timer jitter).
    pub fn rng(&mut self) -> &mut StdRng {
        self.core.rng()
    }

    /// Originates `pkt` at this node (fresh TTL assumed already set).
    pub fn send(&mut self, pkt: Packet<M>) {
        self.core.send(self.node, pkt);
    }

    /// Transmits `pkt` directly on the link to the neighbor `via`,
    /// bypassing unicast routing (interface-directed forwarding, used by
    /// PIM's per-oif replication). Panics if `via` is not a neighbor.
    pub fn send_link(&mut self, via: NodeId, pkt: Packet<M>) {
        self.core.send_link(self.node, via, pkt);
    }

    /// Forwards a transit packet one hop toward its destination,
    /// decrementing the TTL.
    pub fn forward(&mut self, pkt: Packet<M>) {
        self.core.forward(self.node, pkt);
    }

    /// Records an application-level delivery of (a copy of) probe
    /// `pkt.tag` at this node.
    pub fn deliver(&mut self, pkt: &Packet<M>) {
        self.core.deliver(self.node, pkt.tag, pkt.injected_at);
    }

    /// Arms (or re-arms) a timer at this node. An earlier pending instance
    /// of the same timer is superseded.
    pub fn set_timer(&mut self, timer: T, delay: u64) {
        self.core.set_timer(self.node, timer, delay);
    }

    /// Cancels a pending timer (no-op if not armed).
    pub fn cancel_timer(&mut self, timer: &T) {
        self.core.cancel_timer(self.node, timer);
    }

    /// Arms a batch of timers at this node in one kernel call (iterator
    /// order; each entry supersedes an earlier pending instance of the
    /// same timer, exactly like [`Ctx::set_timer`]). Use this when one
    /// event arms many timers — e.g. a membership storm arming thousands
    /// of refresh timers — to pay one dispatch instead of N.
    pub fn set_timers<I>(&mut self, timers: I)
    where
        I: IntoIterator<Item = (T, u64)>,
    {
        let mut it = timers.into_iter();
        self.core.set_timers(self.node, &mut it);
    }

    /// Cancels a batch of pending timers at this node in one kernel call
    /// (per-entry no-op if not armed).
    pub fn cancel_timers<I>(&mut self, timers: I)
    where
        I: IntoIterator<Item = T>,
    {
        let mut it = timers.into_iter();
        self.core.cancel_timers(self.node, &mut it);
    }

    /// Notes a structural state change (table entry added/removed, flag
    /// flipped) for churn accounting and quiescence detection.
    pub fn structural_change(&mut self) {
        self.core.structural_change();
    }

    /// Appends a free-form note to the trace (no-op unless tracing is on).
    pub fn trace(&mut self, note: impl FnOnce() -> String) {
        // Cheap check happens inside Trace; building the string is the
        // expensive part, so only do it when a sink exists.
        self.core.trace_note(self.node, note());
    }
}

/// The simulator: a [`Network`], one [`Protocol`], per-node states, and the
/// event queue.
pub struct Kernel<P: Protocol> {
    proto: P,
    states: Vec<P::NodeState>,
    core: Core<P::Msg, P::Timer, P::Command>,
}

impl<P: Protocol> Kernel<P> {
    /// Creates a kernel over `net` with every node's state defaulted and
    /// the RNG seeded from `seed`.
    pub fn new(net: Network, proto: P, seed: u64) -> Self {
        let n = net.node_count();
        // Pre-size the scheduler and keyed-timer map from the topology:
        // in-flight events scale with nodes (a few packets/timers each).
        // Generous guesses — the point is to skip the first few doubling
        // reallocations, not to be exact.
        let stats = Stats::for_graph(net.graph());
        Kernel {
            proto,
            states: (0..n).map(|_| P::NodeState::default()).collect(),
            core: Core {
                net,
                queue: EventQueue::with_capacity(64 + 4 * n),
                now: Time::ZERO,
                seq: 0,
                timer_ids: FastMap::with_capacity_and_hasher(2 * n, FxBuildHasher::default()),
                stats,
                rng: StdRng::seed_from_u64(seed),
                trace: Trace::disabled(),
                loss: LossModel::default(),
                faults: None,
            },
        }
    }

    /// Installs a [`FaultPlan`]: resolves its per-link loss to dense
    /// per-edge probabilities and schedules its topology events. May be
    /// called more than once (plans accumulate); without any call the
    /// kernel runs the historical fault-free fast path.
    ///
    /// # Panics
    /// Panics if the plan names a nonexistent link or schedules an event
    /// in the past.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.core.ensure_faults();
        if !plan.link_loss.is_empty() {
            let mut loss = self
                .core
                .faults
                .as_mut()
                .expect("just ensured")
                .edge_loss
                .take()
                .unwrap_or_else(|| vec![0.0; self.core.net.graph().directed_edge_count()]);
            for &(a, b, p) in &plan.link_loss {
                let g = self.core.net.graph();
                let (e_ab, _) = g
                    .edge_entry(a, b)
                    .unwrap_or_else(|| panic!("no link {a}-{b} for loss"));
                let (e_ba, _) = g.edge_entry(b, a).expect("links are bidirectional");
                loss[e_ab.index()] = p;
                loss[e_ba.index()] = p;
            }
            self.core.faults.as_mut().expect("just ensured").edge_loss = Some(loss);
        }
        for &(at, ev) in &plan.events {
            self.schedule_fault(at, ev);
        }
    }

    /// Schedules a single fault event at absolute time `at`. Fault events
    /// share the `(time, sequence)` order of every other kernel event, so
    /// interleavings with commands and packets are deterministic.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_fault(&mut self, at: Time, ev: FaultEvent) {
        assert!(at >= self.core.now, "fault scheduled in the past");
        self.core.ensure_faults();
        self.core.push(at, EventKind::Fault(ev));
    }

    /// Whether `n` is currently crashed by fault injection.
    pub fn node_is_down(&self, n: NodeId) -> bool {
        self.core
            .faults
            .as_ref()
            .is_some_and(|f| f.node_down[n.index()])
    }

    /// Applies a topology fault *now*: flips availability masks, wipes a
    /// crashed node's protocol state and timers, and reconverges unicast
    /// routing on the surviving topology.
    fn apply_fault(&mut self, ev: FaultEvent) {
        self.core.ensure_faults();
        match ev {
            FaultEvent::LinkDown { a, b } => self.core.set_link(a, b, true),
            FaultEvent::LinkUp { a, b } => self.core.set_link(a, b, false),
            FaultEvent::NodeDown(n) => {
                let f = self.core.faults.as_mut().expect("just ensured");
                f.node_down[n.index()] = true;
                // A crash loses all soft state and cancels every pending
                // timer — recovery must come entirely from the neighbors'
                // refresh traffic, exactly like a real router reboot.
                self.states[n.index()] = P::NodeState::default();
                self.core.timer_ids.retain(|(node, _), _| *node != n);
            }
            FaultEvent::NodeUp(n) => {
                let f = self.core.faults.as_mut().expect("just ensured");
                f.node_down[n.index()] = false;
            }
        }
        self.core.reroute();
        if self.core.trace.active() {
            let node = match ev {
                FaultEvent::LinkDown { a, .. } | FaultEvent::LinkUp { a, .. } => a,
                FaultEvent::NodeDown(n) | FaultEvent::NodeUp(n) => n,
            };
            let now = self.core.now;
            self.core
                .trace
                .record(now, node, TraceKind::Note(format!("fault: {ev:?}")));
        }
    }

    /// Configures failure injection (default: lossless).
    pub fn set_loss(&mut self, loss: LossModel) {
        assert!((0.0..=1.0).contains(&loss.control) && (0.0..=1.0).contains(&loss.data));
        self.core.loss = loss;
    }

    /// Turns on event tracing (drains via [`Kernel::take_trace`]).
    pub fn enable_trace(&mut self) {
        self.core.trace = Trace::enabled();
    }

    /// Drains collected trace records.
    pub fn take_trace(&mut self) -> Vec<crate::trace::TraceRecord<P::Msg>> {
        self.core.trace.take()
    }

    /// Schedules an experiment command at `node` for absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn command_at(&mut self, node: NodeId, cmd: P::Command, at: Time) {
        assert!(at >= self.core.now, "command scheduled in the past");
        self.core.push(at, EventKind::Command { node, cmd });
    }

    /// Processes every event up to and including `until`, then advances the
    /// clock to `until`.
    pub fn run_until(&mut self, until: Time) {
        while let Some(at) = self.core.queue.peek_at(self.core.now) {
            if at > until {
                break;
            }
            self.step();
        }
        self.core.now = self.core.now.max(until);
    }

    /// Time of the next pending event, if any.
    pub fn peek_next(&self) -> Option<Time> {
        self.core.queue.peek_at(self.core.now)
    }

    /// Number of scheduled-but-undispatched data-class packet arrivals.
    ///
    /// Data forwarding is strictly arrival-driven — no protocol re-emits a
    /// data packet from a timer or command it hasn't already received — so
    /// once this returns zero *after* a data injection, every copy of that
    /// packet has fully propagated: no further transmissions, deliveries,
    /// or drops attributable to it can occur. Experiment runners use this
    /// to end probe windows as soon as the wave dies out instead of
    /// simulating the full worst-case horizon.
    pub fn pending_data_arrivals(&self) -> u64 {
        self.core.queue.pending_data
    }

    /// Pops and dispatches one event. Returns `false` if the queue was
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some((at, kind)) = self.core.queue.pop(self.core.now) else {
            return false;
        };
        debug_assert!(at >= self.core.now, "event from the past");
        self.core.now = at;
        self.core.stats.events += 1;
        match kind {
            EventKind::Arrive { node, pkt } => self.dispatch_arrival(node, pkt),
            EventKind::Timer { node, timer, id } => {
                // Fire only the newest instance; stale heap entries are
                // ignored, cancelled ones find no map entry. Speculatively
                // remove (one hash lookup on the overwhelmingly common
                // current-instance path) and re-insert on a stale hit.
                match self.core.timer_ids.remove(&(node, timer.clone())) {
                    Some(stored) if stored == id => {
                        let mut ctx = Ctx {
                            node,
                            core: &mut self.core,
                        };
                        self.proto
                            .on_timer(&mut self.states[node.index()], timer, &mut ctx);
                    }
                    Some(newer) => {
                        // Stale instance popped before the re-armed one:
                        // put the live id back untouched.
                        self.core.timer_ids.insert((node, timer), newer);
                    }
                    None => {} // cancelled
                }
            }
            EventKind::Command { node, cmd } => {
                if self.node_is_down(node) {
                    // A crashed node can't take experiment commands; the
                    // schedule proceeds without it (matching a live
                    // cluster, where the process is simply gone).
                    if self.core.trace.active() {
                        let now = self.core.now;
                        self.core.trace.record(
                            now,
                            node,
                            TraceKind::Note(format!("cmd at down node: {cmd:?}")),
                        );
                    }
                } else {
                    let mut ctx = Ctx {
                        node,
                        core: &mut self.core,
                    };
                    self.proto
                        .on_command(&mut self.states[node.index()], cmd, &mut ctx);
                }
            }
            EventKind::Fault(ev) => self.apply_fault(ev),
        }
        true
    }

    fn dispatch_arrival(&mut self, node: NodeId, pkt: Packet<P::Msg>) {
        if self.node_is_down(node) {
            // The packet was already in flight when the node crashed (or
            // routing still pointed here): it lands on a dead interface.
            self.core.drop_packet(node, &pkt, DropReason::NodeDown);
            return;
        }
        let g = self.core.net.graph();
        if g.is_host(node) && pkt.dst != node {
            self.core
                .drop_packet(node, &pkt, DropReason::MisroutedToHost);
            return;
        }
        if self.core.net.runs_protocol(node) {
            let mut ctx = Ctx {
                node,
                core: &mut self.core,
            };
            self.proto
                .on_packet(&mut self.states[node.index()], pkt, &mut ctx);
        } else if pkt.dst == node {
            self.core
                .drop_packet(node, &pkt, DropReason::AddressedToUnicastRouter);
        } else {
            // Unicast-only router: plain IP forwarding, no protocol.
            self.core.forward(node, pkt);
        }
    }

    // --- accessors ----------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// The network this kernel runs over.
    pub fn network(&self) -> &Network {
        &self.core.net
    }

    /// Accounting: link copies, deliveries, drops, churn.
    pub fn stats(&self) -> &Stats {
        &self.core.stats
    }

    /// Mutable accounting access (e.g. to reset counters between probes).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.core.stats
    }

    /// A node's protocol state (read).
    pub fn state(&self, node: NodeId) -> &P::NodeState {
        &self.states[node.index()]
    }

    /// A node's protocol state (write; test setup only).
    pub fn state_mut(&mut self, node: NodeId) -> &mut P::NodeState {
        &mut self.states[node.index()]
    }

    /// All node states, indexed by node id.
    pub fn states(&self) -> &[P::NodeState] {
        &self.states
    }

    /// The protocol configuration this kernel was built with.
    pub fn protocol(&self) -> &P {
        &self.proto
    }

    /// Number of live (armed, not superseded, not cancelled) timers across
    /// all nodes. Robustness tests assert this returns to a small steady
    /// value after fault storms — a growing count is a timer leak.
    pub fn pending_timer_count(&self) -> usize {
        self.core.timer_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbh_topo::graph::Graph;

    /// Minimal test protocol: hosts deliver data addressed to them; routers
    /// forward everything; a `Ping` command originates a data packet; a
    /// `Tick` timer re-arms itself once and counts via a state counter.
    struct TestProto;

    #[derive(Default)]
    struct TestState {
        ticks: u32,
        seen: u32,
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum TestTimer {
        Tick,
    }

    #[derive(Clone, Debug)]
    enum TestCmd {
        Ping { to: NodeId, tag: u64 },
        Arm,
    }

    impl Protocol for TestProto {
        type Msg = ();
        type Timer = TestTimer;
        type Command = TestCmd;
        type NodeState = TestState;

        fn on_packet(
            &self,
            state: &mut TestState,
            pkt: Packet<()>,
            ctx: &mut Ctx<'_, (), TestTimer>,
        ) {
            state.seen += 1;
            if pkt.dst == ctx.node {
                ctx.deliver(&pkt);
            } else {
                ctx.forward(pkt);
            }
        }

        fn on_timer(
            &self,
            state: &mut TestState,
            _timer: TestTimer,
            ctx: &mut Ctx<'_, (), TestTimer>,
        ) {
            state.ticks += 1;
            if state.ticks < 2 {
                ctx.set_timer(TestTimer::Tick, 10);
            }
        }

        fn on_command(
            &self,
            _state: &mut TestState,
            cmd: TestCmd,
            ctx: &mut Ctx<'_, (), TestTimer>,
        ) {
            match cmd {
                TestCmd::Ping { to, tag } => {
                    let pkt = Packet::data(ctx.node, to, tag, ctx.now(), ());
                    ctx.send(pkt);
                }
                TestCmd::Arm => ctx.set_timer(TestTimer::Tick, 10),
            }
        }
    }

    /// h1 — a(2/2) — b(3/3) — h2, with a unicast-only router b variant.
    fn line_net(b_capable: bool) -> (Network, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 2, 2);
        if !b_capable {
            g.set_mcast_capable(b, false);
        }
        let h1 = g.add_host(a, 1, 1);
        let h2 = g.add_host(b, 3, 3);
        (Network::new(g), a, b, h1, h2)
    }

    fn kernel(b_capable: bool) -> (Kernel<TestProto>, NodeId, NodeId, NodeId, NodeId) {
        let (net, a, b, h1, h2) = line_net(b_capable);
        (Kernel::new(net, TestProto, 0), a, b, h1, h2)
    }

    #[test]
    fn packet_delay_is_sum_of_link_costs() {
        let (mut k, _, _, h1, h2) = kernel(true);
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 1 }, Time(5));
        k.run_until(Time(100));
        let d = &k.stats().deliveries;
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].node, h2);
        // h1→a = 1, a→b = 2, b→h2 = 3, injected at t=5 ⇒ arrival t=11.
        assert_eq!(d[0].at, Time(11));
        assert_eq!(d[0].delay(), 6);
    }

    #[test]
    fn transit_counting_per_link() {
        let (mut k, a, b, h1, h2) = kernel(true);
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 9 }, Time::ZERO);
        k.run_until(Time(100));
        assert_eq!(k.stats().data_copies_tagged(9), 3);
        let links = k.stats().data_copies_per_link(9);
        assert_eq!(links[&(h1, a)], 1);
        assert_eq!(links[&(a, b)], 1);
        assert_eq!(links[&(b, h2)], 1);
    }

    #[test]
    fn unicast_only_router_still_forwards() {
        let (mut k, _, _, h1, h2) = kernel(false);
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 1 }, Time::ZERO);
        k.run_until(Time(100));
        assert_eq!(k.stats().deliveries.len(), 1);
        // The protocol never saw the packet at b.
        let (_, b) = (h1, NodeId(1));
        assert_eq!(k.state(b).seen, 0);
    }

    #[test]
    fn packet_addressed_to_unicast_only_router_is_dropped() {
        let (mut k, _, b, h1, _) = kernel(false);
        k.command_at(h1, TestCmd::Ping { to: b, tag: 1 }, Time::ZERO);
        k.run_until(Time(100));
        assert_eq!(k.stats().deliveries.len(), 0);
        assert_eq!(k.stats().drops, 1);
    }

    #[test]
    fn timer_rearm_and_counting() {
        let (mut k, a, ..) = kernel(true);
        k.command_at(a, TestCmd::Arm, Time::ZERO);
        k.run_until(Time(100));
        assert_eq!(k.state(a).ticks, 2); // fired at 10 and 20, then stopped
        assert_eq!(k.now(), Time(100));
    }

    #[test]
    fn rearming_supersedes_previous_instance() {
        // Arm twice quickly: only the newest instance may fire.
        let (mut k, a, ..) = kernel(true);
        k.command_at(a, TestCmd::Arm, Time::ZERO);
        k.command_at(a, TestCmd::Arm, Time(1));
        k.run_until(Time(15));
        // First instance (due t=10) is stale; second fires at t=11.
        assert_eq!(k.state(a).ticks, 1);
    }

    #[test]
    fn run_until_is_exact() {
        let (mut k, a, ..) = kernel(true);
        k.command_at(a, TestCmd::Arm, Time::ZERO);
        k.run_until(Time(9));
        assert_eq!(k.state(a).ticks, 0);
        k.run_until(Time(10));
        assert_eq!(k.state(a).ticks, 1);
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let run = || {
            let (mut k, a, _, h1, h2) = kernel(true);
            k.command_at(h1, TestCmd::Ping { to: h2, tag: 1 }, Time::ZERO);
            k.command_at(a, TestCmd::Arm, Time::ZERO);
            k.command_at(h2, TestCmd::Ping { to: h1, tag: 2 }, Time(3));
            k.run_until(Time(200));
            (
                k.stats().deliveries.clone(),
                k.stats().data_copies_tagged(1),
                k.stats().data_copies_tagged(2),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn misrouted_to_host_is_dropped() {
        // Craft a packet whose dst is unreachable-by-routing from the host:
        // send to a host that is not the dst by targeting a disconnected id.
        // Simpler: h1 pings h1's own router a — fine; instead check NoRoute
        // by pinging a node with no path: build a disconnected net.
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router(); // no link to a
        let h1 = g.add_host(a, 1, 1);
        let net = Network::new(g);
        let mut k: Kernel<TestProto> = Kernel::new(net, TestProto, 0);
        k.command_at(h1, TestCmd::Ping { to: b, tag: 1 }, Time::ZERO);
        k.run_until(Time(10));
        assert_eq!(k.stats().drops, 1);
    }

    #[test]
    fn loopback_send_to_self_arrives_locally() {
        let (mut k, _, _, h1, _) = kernel(true);
        k.command_at(h1, TestCmd::Ping { to: h1, tag: 4 }, Time::ZERO);
        k.run_until(Time(10));
        assert_eq!(k.stats().deliveries.len(), 1);
        assert_eq!(k.stats().deliveries[0].at, Time(0));
        assert_eq!(
            k.stats().data_copies_tagged(4),
            0,
            "loopback touches no link"
        );
    }

    #[test]
    fn trace_records_sends_and_deliveries() {
        let (mut k, _, _, h1, h2) = kernel(true);
        k.enable_trace();
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 1 }, Time::ZERO);
        k.run_until(Time(100));
        let trace = k.take_trace();
        assert!(trace
            .iter()
            .any(|r| matches!(r.what, TraceKind::Sent { .. })));
        assert!(trace
            .iter()
            .any(|r| matches!(r.what, TraceKind::Delivered { tag: 1 })));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_commands_rejected() {
        let (mut k, a, ..) = kernel(true);
        k.run_until(Time(10));
        k.command_at(a, TestCmd::Arm, Time(5));
    }

    // --- fault injection ------------------------------------------------

    /// h1 — a — b — h2 plus a pricier detour a — c — b, so there is a
    /// path around both the a-b link and (for a↔b traffic) node c.
    fn diamond() -> (Kernel<TestProto>, [NodeId; 5]) {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let c = g.add_router();
        g.add_link(a, b, 2, 2);
        g.add_link(a, c, 5, 5);
        g.add_link(c, b, 5, 5);
        let h1 = g.add_host(a, 1, 1);
        let h2 = g.add_host(b, 1, 1);
        (
            Kernel::new(Network::new(g), TestProto, 0),
            [a, b, c, h1, h2],
        )
    }

    #[test]
    fn link_down_reroutes_and_link_up_restores() {
        let (mut k, [a, b, c, h1, h2]) = diamond();
        k.install_faults(
            &crate::fault::FaultPlan::new()
                .link_down(Time(10), a, b)
                .link_up(Time(100), a, b),
        );
        // Before the fault: direct path, delay 1 + 2 + 1 = 4.
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 1 }, Time::ZERO);
        // During the outage: detour via c, delay 1 + 5 + 5 + 1 = 12.
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 2 }, Time(20));
        // After restoration: direct again.
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 3 }, Time(200));
        k.run_until(Time(300));
        let d = &k.stats().deliveries;
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].delay(), 4);
        assert_eq!(d[1].delay(), 12);
        assert_eq!(d[2].delay(), 4);
        let links = k.stats().data_copies_per_link(2);
        assert_eq!(links[&(a, c)], 1, "outage traffic detours through c");
        assert_eq!(links.get(&(a, b)), None);
    }

    #[test]
    fn packet_in_flight_on_cut_link_still_arrives() {
        // The cut happens while a packet is mid-link: it left before the
        // failure and is not retroactively destroyed.
        let (mut k, [a, b, _, h1, h2]) = diamond();
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 1 }, Time::ZERO);
        // h1→a arrives at t=1; a→b transmission departs at t=1, lands t=3.
        k.schedule_fault(Time(2), FaultEvent::LinkDown { a, b });
        k.run_until(Time(50));
        assert_eq!(k.stats().deliveries.len(), 1);
    }

    #[test]
    fn node_crash_wipes_state_and_drops_arrivals() {
        let (mut k, [a, _, _, h1, h2]) = diamond();
        // Seed some state and a pending self-rearming timer at a.
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 1 }, Time::ZERO);
        k.command_at(a, TestCmd::Arm, Time::ZERO);
        k.run_until(Time(11)); // first tick fired, second armed for t=20
        assert_eq!(k.state(a).ticks, 1);
        assert_eq!(k.state(a).seen, 1);
        k.schedule_fault(Time(12), FaultEvent::NodeDown(a));
        // A ping sent while a is down dies at a's dead interface (unicast
        // reroutes around a for transit, but h1 is homed on a).
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 2 }, Time(20));
        k.run_until(Time(50));
        assert!(k.node_is_down(a));
        assert_eq!(k.state(a).ticks, 0, "crash wiped state");
        assert_eq!(k.state(a).seen, 0);
        assert_eq!(
            k.stats().deliveries.len(),
            1,
            "tag 2 died at the crashed access router"
        );
        // Restart: the node is blank but alive again.
        k.schedule_fault(Time(60), FaultEvent::NodeUp(a));
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 3 }, Time(70));
        k.run_until(Time(200));
        assert!(!k.node_is_down(a));
        assert_eq!(k.state(a).ticks, 0, "timers stay cancelled after restart");
        assert_eq!(k.stats().deliveries.len(), 2, "tag 3 delivered");
    }

    #[test]
    fn commands_at_down_nodes_are_ignored() {
        let (mut k, [a, ..]) = diamond();
        k.schedule_fault(Time(5), FaultEvent::NodeDown(a));
        k.command_at(a, TestCmd::Arm, Time(10));
        k.run_until(Time(100));
        assert_eq!(k.state(a).ticks, 0);
    }

    #[test]
    fn per_link_loss_draws_only_on_lossy_edges() {
        // With p = 1.0 on a-b every direct transmission dies; unicast
        // routing is unaware (the link is up), so nothing detours.
        let (mut k, [a, b, _, h1, h2]) = diamond();
        k.install_faults(&crate::fault::FaultPlan::new().with_link_loss(a, b, 1.0));
        k.command_at(h1, TestCmd::Ping { to: h2, tag: 1 }, Time::ZERO);
        k.run_until(Time(100));
        assert_eq!(k.stats().deliveries.len(), 0);
        assert_eq!(k.stats().drops, 1);
        assert_eq!(
            k.stats().data_copies_tagged(1),
            2,
            "h1→a and the lost a→b copy both occupied their links"
        );
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let run = |install: bool| {
            let (mut k, [_, _, _, h1, h2]) = diamond();
            if install {
                k.install_faults(&crate::fault::FaultPlan::new());
            }
            k.command_at(h1, TestCmd::Ping { to: h2, tag: 1 }, Time::ZERO);
            k.run_until(Time(100));
            (
                k.stats().deliveries.clone(),
                k.stats().data_copies_tagged(1),
            )
        };
        assert_eq!(run(false), run(true));
    }

    // --- far-band hierarchical wheel ------------------------------------

    /// Drains `q` from `now`, returning `(at, cmd)` in dispatch order.
    fn drain(q: &mut EventQueue<(), (), u64>, mut now: Time) -> Vec<(Time, u64)> {
        let mut out = Vec::new();
        while let Some((at, kind)) = q.pop(now) {
            now = at;
            match kind {
                EventKind::Command { cmd, .. } => out.push((at, cmd)),
                _ => unreachable!("tests only push commands"),
            }
        }
        out
    }

    fn push_cmd(q: &mut EventQueue<(), (), u64>, now: Time, at: Time, seq: u64) {
        q.push(
            now,
            at,
            seq,
            EventKind::Command {
                node: NodeId(0),
                cmd: seq,
            },
        );
    }

    #[test]
    fn far_wheel_spans_all_levels_in_order() {
        // One deadline per wheel level plus an overflow-range one; pushed
        // shuffled, they must come back in (at, seq) order.
        let mut q: EventQueue<(), (), u64> = EventQueue::with_capacity(0);
        let ats = [
            20_000_000u64,
            70,
            1_500_000_000,
            5_000,
            70_000_000_000, // beyond 64^5: overflow band
            300_000,
            70, // same time, later seq
        ];
        for (seq, &at) in ats.iter().enumerate() {
            push_cmd(&mut q, Time::ZERO, Time(at), seq as u64);
        }
        let mut expect: Vec<(Time, u64)> = ats
            .iter()
            .enumerate()
            .map(|(seq, &at)| (Time(at), seq as u64))
            .collect();
        expect.sort_unstable();
        assert_eq!(drain(&mut q, Time::ZERO), expect);
    }

    #[test]
    fn far_insert_behind_consumed_cursor_stays_ordered() {
        // Regression for the old far-band pathological case: a long sorted
        // backlog, a partially consumed prefix, then inserts due *earlier*
        // than everything still pending. The old single sorted Vec took an
        // O(backlog) memmove per such insert (and the insert landed behind
        // the consumed-prefix cursor's compaction assumptions); the wheel
        // buckets them in O(1) and the bounded 64-tick run keeps any
        // sorted insert small. Order must stay exact throughout.
        let mut q: EventQueue<(), (), u64> = EventQueue::with_capacity(0);
        let mut seq = 0u64;
        // Backlog: 500 far events at t = 10_000 .. 10_500.
        for i in 0..500u64 {
            push_cmd(&mut q, Time::ZERO, Time(10_000 + i), seq);
            seq += 1;
        }
        // Consume 100 of them.
        let mut now = Time::ZERO;
        let mut got = Vec::new();
        for _ in 0..100 {
            let (at, kind) = q.pop(now).unwrap();
            now = at;
            match kind {
                EventKind::Command { cmd, .. } => got.push((at, cmd)),
                _ => unreachable!(),
            }
        }
        assert_eq!(now, Time(10_099));
        // Now insert a burst due before the whole remaining backlog —
        // behind the cursor's position in the old representation.
        for i in 0..200u64 {
            push_cmd(&mut q, now, Time(10_100 + i % 7), seq);
            seq += 1;
        }
        got.extend(drain(&mut q, now));
        let mut expect = Vec::new();
        let mut s = 0u64;
        for i in 0..500u64 {
            expect.push((Time(10_000 + i), s));
            s += 1;
        }
        for i in 0..200u64 {
            expect.push((Time(10_100 + i % 7), s));
            s += 1;
        }
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn batch_set_timers_matches_per_entry_semantics() {
        // set_timers must behave exactly like N set_timer calls, including
        // the supersede rule when the same key appears twice.
        struct BatchProto;
        #[derive(Default)]
        struct BatchState {
            fired: Vec<(u64, u8)>,
        }
        impl Protocol for BatchProto {
            type Msg = ();
            type Timer = u8;
            type Command = bool; // true → batch API, false → singles
            type NodeState = BatchState;
            fn on_packet(&self, _: &mut BatchState, _: Packet<()>, _: &mut Ctx<'_, (), u8>) {}
            fn on_timer(&self, st: &mut BatchState, t: u8, ctx: &mut Ctx<'_, (), u8>) {
                st.fired.push((ctx.now().0, t));
            }
            fn on_command(&self, _: &mut BatchState, batch: bool, ctx: &mut Ctx<'_, (), u8>) {
                let timers = [(1u8, 100u64), (2, 70), (3, 250), (1, 90), (4, 70)];
                if batch {
                    ctx.set_timers(timers);
                    ctx.cancel_timers([3u8]);
                } else {
                    for (t, d) in timers {
                        ctx.set_timer(t, d);
                    }
                    ctx.cancel_timer(&3u8);
                }
            }
        }
        let run = |batch: bool| {
            let mut g = Graph::new();
            let a = g.add_router();
            let h = g.add_host(a, 1, 1);
            let mut k = Kernel::new(Network::new(g), BatchProto, 0);
            k.command_at(h, batch, Time::ZERO);
            k.run_until(Time(1_000));
            assert_eq!(k.pending_timer_count(), 0);
            std::mem::take(&mut k.state_mut(h).fired)
        };
        let batched = run(true);
        assert_eq!(batched, run(false));
        // Timer 1 superseded (fires once at its re-armed deadline), 3
        // cancelled, 2 and 4 share a deadline in arm order.
        assert_eq!(batched, vec![(70, 2), (70, 4), (90, 1)]);
    }

    mod queue_order_props {
        use super::*;
        use proptest::prelude::*;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// Deadline deltas covering the near band, every far level, and
        /// the overflow band beyond 64^5.
        fn delta() -> impl Strategy<Value = u64> {
            prop_oneof![
                0u64..64,
                64u64..4096,
                4096u64..262_144,
                262_144u64..16_777_216,
                16_777_216u64..1_073_741_824,
                1_073_741_824u64..100_000_000_000,
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
            /// The two-band queue (near wheel + hierarchical far wheel)
            /// dispatches in exactly the order a reference binary heap
            /// over `(at, seq)` does, under random interleaved push/pop.
            #[test]
            fn wheel_pops_in_reference_heap_order(
                ops in proptest::collection::vec((any::<bool>(), delta()), 1..300),
            ) {
                let mut q: EventQueue<(), (), u64> = EventQueue::with_capacity(0);
                let mut heap: BinaryHeap<Reverse<(Time, u64)>> = BinaryHeap::new();
                let mut now = Time::ZERO;
                let mut seq = 0u64;
                for &(is_pop, d) in &ops {
                    if is_pop {
                        match (q.pop(now), heap.pop()) {
                            (Some((at, EventKind::Command { cmd, .. })), Some(Reverse(want))) => {
                                prop_assert_eq!((at, cmd), want);
                                now = at;
                            }
                            (None, None) => {}
                            _ => prop_assert!(false, "queue and heap disagree"),
                        }
                    } else {
                        let at = Time(now.0 + d);
                        push_cmd(&mut q, now, at, seq);
                        heap.push(Reverse((at, seq)));
                        seq += 1;
                    }
                }
                while let Some((at, kind)) = q.pop(now) {
                    now = at;
                    let cmd = match kind {
                        EventKind::Command { cmd, .. } => cmd,
                        _ => unreachable!(),
                    };
                    let want = heap.pop();
                    prop_assert!(want.is_some(), "queue had more events than heap");
                    prop_assert_eq!(Some(Reverse((at, cmd))), want);
                }
                prop_assert!(heap.is_empty(), "heap had more events than queue");
            }
        }
    }

    #[test]
    fn fault_trace_notes_are_recorded() {
        let (mut k, [a, b, ..]) = diamond();
        k.enable_trace();
        k.schedule_fault(Time(5), FaultEvent::LinkDown { a, b });
        k.run_until(Time(10));
        let trace = k.take_trace();
        assert!(trace
            .iter()
            .any(|r| matches!(&r.what, TraceKind::Note(n) if n.starts_with("fault:"))));
    }
}
