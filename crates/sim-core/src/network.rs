//! The static network a simulation runs over: topology + precomputed
//! unicast routing.
//!
//! Mirrors the paper's setup: costs are drawn, NS computes static unicast
//! routes, and the multicast protocols then run on top of that fixed
//! unicast substrate. (Unicast route *dynamics* are out of scope here as
//! they are in the paper.)

use hbh_routing::RoutingTables;
use hbh_topo::graph::{Cost, Graph, NodeId, PathCost};

/// Immutable topology + routing bundle shared by a simulation run.
#[derive(Clone, Debug)]
pub struct Network {
    graph: Graph,
    tables: RoutingTables,
}

impl Network {
    /// Builds the routing tables for the graph's current costs and freezes
    /// both.
    pub fn new(graph: Graph) -> Self {
        let tables = RoutingTables::compute(&graph);
        Network { graph, tables }
    }

    /// Freezes the graph with externally computed tables (e.g.
    /// bandwidth-constrained routing from `hbh-routing::qos`).
    ///
    /// # Panics
    /// Panics if the tables were built for a different node count.
    pub fn with_tables(graph: Graph, tables: RoutingTables) -> Self {
        assert_eq!(graph.node_count(), tables.node_count(), "tables/graph mismatch");
        Network { graph, tables }
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The all-pairs unicast routing tables.
    pub fn tables(&self) -> &RoutingTables {
        &self.tables
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Next hop of a packet at `at` destined to `dst`.
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        self.tables.next_hop(at, dst)
    }

    /// Unicast distance (= minimal delay) `from → to`.
    pub fn dist(&self, from: NodeId, to: NodeId) -> Option<PathCost> {
        self.tables.dist(from, to)
    }

    /// Directed link cost, panicking on a nonexistent link (kernel-internal
    /// transits always follow real links).
    pub fn link_cost(&self, from: NodeId, to: NodeId) -> Cost {
        self.graph
            .cost(from, to)
            .unwrap_or_else(|| panic!("no link {from}->{to}"))
    }

    /// Whether `n` participates in the multicast protocol (multicast-capable
    /// router, or any host — hosts run the source/receiver agents).
    pub fn runs_protocol(&self, n: NodeId) -> bool {
        self.graph.is_host(n) || self.graph.is_mcast_capable(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> (Network, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 2, 3);
        let h = g.add_host(a, 1, 1);
        (Network::new(g), a, b, h)
    }

    #[test]
    fn routing_is_frozen_at_construction() {
        let (net, a, b, _) = net();
        assert_eq!(net.dist(a, b), Some(2));
        assert_eq!(net.dist(b, a), Some(3));
        assert_eq!(net.next_hop(a, b), Some(b));
    }

    #[test]
    fn link_cost_lookup() {
        let (net, a, b, _) = net();
        assert_eq!(net.link_cost(a, b), 2);
        assert_eq!(net.link_cost(b, a), 3);
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn missing_link_panics() {
        let (net, a, _, h) = net();
        let _ = (a, net.link_cost(h, NodeId(1)));
    }

    #[test]
    fn hosts_and_capable_routers_run_protocol() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 1, 1);
        g.set_mcast_capable(b, false);
        let h = g.add_host(a, 1, 1);
        let net = Network::new(g);
        assert!(net.runs_protocol(a));
        assert!(!net.runs_protocol(b), "unicast-only router");
        assert!(net.runs_protocol(h), "hosts run agents");
    }
}
