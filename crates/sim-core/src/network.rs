//! The static network a simulation runs over: topology + precomputed
//! unicast routing.
//!
//! Mirrors the paper's setup: costs are drawn, NS computes static unicast
//! routes, and the multicast protocols then run on top of that fixed
//! unicast substrate. (Unicast route *dynamics* are out of scope here as
//! they are in the paper.)

use hbh_routing::RoutingTables;
use hbh_topo::graph::{Cost, EdgeId, Graph, NodeId, PathCost};
use std::sync::Arc;

/// Immutable topology + routing bundle shared by a simulation run.
///
/// Internally reference-counted: [`Network::clone`] is an `Arc` bump, so
/// the paired-run experiment design — four protocol kernels over one
/// scenario draw — shares a single graph and a single all-pairs routing
/// computation instead of recomputing `n` Dijkstra runs per kernel.
#[derive(Clone, Debug)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

#[derive(Debug)]
struct NetworkInner {
    graph: Graph,
    tables: RoutingTables,
    /// `hops[u * n + v]`: the next-hop row with the out-edge pre-resolved
    /// against `graph`, so a per-packet forwarding step is one array read
    /// instead of a table lookup plus an adjacency scan. Resolved here —
    /// not in `RoutingTables` — because QoS tables are computed over a
    /// *shadow* graph whose edge ids need not match the real one.
    hops: Vec<HopEntry>,
}

/// One resolved forwarding step. `next == NO_HOP` means unreachable (or
/// `u == v`); `eid`/`cost` are then meaningless.
#[derive(Clone, Copy, Debug)]
struct HopEntry {
    next: u32,
    eid: EdgeId,
    cost: Cost,
}

const NO_HOP: u32 = u32::MAX;

fn resolve_hops(graph: &Graph, tables: &RoutingTables) -> Vec<HopEntry> {
    let n = graph.node_count();
    let mut hops = vec![
        HopEntry {
            next: NO_HOP,
            eid: EdgeId(0),
            cost: 0
        };
        n * n
    ];
    for u in graph.nodes() {
        for v in graph.nodes() {
            if let Some(h) = tables.next_hop(u, v) {
                let (eid, cost) = graph
                    .edge_entry(u, h)
                    .expect("next hop must follow a real link");
                hops[u.index() * n + v.index()] = HopEntry {
                    next: h.0,
                    eid,
                    cost,
                };
            }
        }
    }
    hops
}

impl Network {
    /// Builds the routing tables for the graph's current costs and freezes
    /// both.
    pub fn new(graph: Graph) -> Self {
        let tables = RoutingTables::compute(&graph);
        let hops = resolve_hops(&graph, &tables);
        Network {
            inner: Arc::new(NetworkInner {
                graph,
                tables,
                hops,
            }),
        }
    }

    /// Freezes the graph with externally computed tables (e.g.
    /// bandwidth-constrained routing from `hbh-routing::qos`).
    ///
    /// # Panics
    /// Panics if the tables were built for a different node count.
    pub fn with_tables(graph: Graph, tables: RoutingTables) -> Self {
        assert_eq!(
            graph.node_count(),
            tables.node_count(),
            "tables/graph mismatch"
        );
        let hops = resolve_hops(&graph, &tables);
        Network {
            inner: Arc::new(NetworkInner {
                graph,
                tables,
                hops,
            }),
        }
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        &self.inner.graph
    }

    /// The all-pairs unicast routing tables.
    pub fn tables(&self) -> &RoutingTables {
        &self.inner.tables
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inner.graph.node_count()
    }

    /// Next hop of a packet at `at` destined to `dst`.
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        self.inner.tables.next_hop(at, dst)
    }

    /// Resolved forwarding step at `at` toward `dst`: the next hop plus
    /// the out-edge's id and cost — the per-packet hot path, one array
    /// read instead of a table lookup and an adjacency scan.
    pub fn hop(&self, at: NodeId, dst: NodeId) -> Option<(NodeId, EdgeId, Cost)> {
        let n = self.inner.tables.node_count();
        let e = self.inner.hops[at.index() * n + dst.index()];
        (e.next != NO_HOP).then_some((NodeId(e.next), e.eid, e.cost))
    }

    /// Unicast distance (= minimal delay) `from → to`.
    pub fn dist(&self, from: NodeId, to: NodeId) -> Option<PathCost> {
        self.inner.tables.dist(from, to)
    }

    /// Directed link cost, panicking on a nonexistent link (kernel-internal
    /// transits always follow real links).
    pub fn link_cost(&self, from: NodeId, to: NodeId) -> Cost {
        self.inner
            .graph
            .cost(from, to)
            .unwrap_or_else(|| panic!("no link {from}->{to}"))
    }

    /// Whether `n` participates in the multicast protocol (multicast-capable
    /// router, or any host — hosts run the source/receiver agents).
    pub fn runs_protocol(&self, n: NodeId) -> bool {
        self.inner.graph.is_host(n) || self.inner.graph.is_mcast_capable(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> (Network, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 2, 3);
        let h = g.add_host(a, 1, 1);
        (Network::new(g), a, b, h)
    }

    #[test]
    fn routing_is_frozen_at_construction() {
        let (net, a, b, _) = net();
        assert_eq!(net.dist(a, b), Some(2));
        assert_eq!(net.dist(b, a), Some(3));
        assert_eq!(net.next_hop(a, b), Some(b));
    }

    #[test]
    fn link_cost_lookup() {
        let (net, a, b, _) = net();
        assert_eq!(net.link_cost(a, b), 2);
        assert_eq!(net.link_cost(b, a), 3);
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn missing_link_panics() {
        let (net, a, _, h) = net();
        let _ = (a, net.link_cost(h, NodeId(1)));
    }

    #[test]
    fn clone_shares_routing_state() {
        let (net, ..) = net();
        let cloned = net.clone();
        assert!(
            Arc::ptr_eq(&net.inner, &cloned.inner),
            "clone must not deep-copy"
        );
    }

    #[test]
    fn hosts_and_capable_routers_run_protocol() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 1, 1);
        g.set_mcast_capable(b, false);
        let h = g.add_host(a, 1, 1);
        let net = Network::new(g);
        assert!(net.runs_protocol(a));
        assert!(!net.runs_protocol(b), "unicast-only router");
        assert!(net.runs_protocol(h), "hosts run agents");
    }
}
