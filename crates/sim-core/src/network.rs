//! The static network a simulation runs over: topology + unicast routing.
//!
//! Mirrors the paper's setup: costs are drawn, NS computes static unicast
//! routes, and the multicast protocols then run on top of that fixed
//! unicast substrate. (Unicast route *dynamics* are out of scope here as
//! they are in the paper.)
//!
//! Routing is served through [`hbh_routing::RouteProvider`], in one of two
//! materializations chosen at construction:
//!
//! * [`Network::new`]/[`Network::with_tables`] — eager all-pairs
//!   [`RoutingTables`] plus a pre-resolved `n×n` hop array. Exact and the
//!   fastest per-packet path; memory is O(n²). The paper-scale default,
//!   byte-identical to the historical behaviour.
//! * [`Network::on_demand`] — lazy [`OnDemandRoutes`]: per-source SPF rows
//!   materialized on first consultation, LRU-bounded. Memory scales with
//!   the routers actually forwarding, which is what makes 5k+ router
//!   topologies fit.

use hbh_routing::{OnDemandRoutes, RouteProvider, RoutingTables};
use hbh_topo::csr::Csr;
use hbh_topo::graph::{Cost, EdgeId, Graph, NodeId, PathCost};
use std::sync::Arc;

/// Immutable topology + routing bundle shared by a simulation run.
///
/// Internally reference-counted: [`Network::clone`] is an `Arc` bump, so
/// the paired-run experiment design — four protocol kernels over one
/// scenario draw — shares a single graph and a single routing service
/// (including the on-demand row cache, which stays warm across the paired
/// kernels) instead of recomputing per kernel.
#[derive(Clone, Debug)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

#[derive(Debug)]
struct NetworkInner {
    /// `Arc` so fault reroutes derive a post-failure [`Network`] without
    /// deep-copying the topology.
    graph: Arc<Graph>,
    routes: RouteStore,
}

/// How unicast routes are materialized (see module docs).
#[derive(Debug)]
enum RouteStore {
    Exact {
        tables: RoutingTables,
        /// `hops[u * n + v]`: the next-hop row with the out-edge
        /// pre-resolved against `graph`, so a per-packet forwarding step is
        /// one array read instead of a table lookup plus an adjacency scan.
        /// Resolved here — not in `RoutingTables` — because QoS tables are
        /// computed over a *shadow* graph whose edge ids need not match the
        /// real one.
        hops: Vec<HopEntry>,
    },
    OnDemand(Box<OnDemandRoutes>),
}

/// One resolved forwarding step. `next == NO_HOP` means unreachable (or
/// `u == v`); `eid`/`cost` are then meaningless.
#[derive(Clone, Copy, Debug)]
struct HopEntry {
    next: u32,
    eid: EdgeId,
    cost: Cost,
}

const NO_HOP: u32 = u32::MAX;

/// Reusable state for repeated fault reroutes ([`Network::rerouted`]):
/// the CSR packing of the pristine topology (built once per kernel, every
/// fault event reuses it) and the Dijkstra working buffers.
#[derive(Default)]
pub struct RerouteScratch {
    csr: Option<Arc<Csr>>,
    dijkstra: hbh_routing::DijkstraScratch,
}

fn resolve_hops(graph: &Graph, tables: &RoutingTables) -> Vec<HopEntry> {
    let n = graph.node_count();
    let mut hops = vec![
        HopEntry {
            next: NO_HOP,
            eid: EdgeId(0),
            cost: 0
        };
        n * n
    ];
    for u in graph.nodes() {
        for v in graph.nodes() {
            if let Some(h) = tables.next_hop(u, v) {
                let (eid, cost) = graph
                    .edge_entry(u, h)
                    .expect("next hop must follow a real link");
                hops[u.index() * n + v.index()] = HopEntry {
                    next: h.0,
                    eid,
                    cost,
                };
            }
        }
    }
    hops
}

impl Network {
    /// Builds eager all-pairs routing tables for the graph's current costs
    /// and freezes both.
    pub fn new(graph: Graph) -> Self {
        let tables = RoutingTables::compute(&graph);
        Self::with_tables(graph, tables)
    }

    /// Freezes the graph with externally computed tables (e.g.
    /// bandwidth-constrained routing from `hbh-routing::qos`).
    ///
    /// # Panics
    /// Panics if the tables were built for a different node count.
    pub fn with_tables(graph: Graph, tables: RoutingTables) -> Self {
        assert_eq!(
            graph.node_count(),
            tables.node_count(),
            "tables/graph mismatch"
        );
        let hops = resolve_hops(&graph, &tables);
        Network {
            inner: Arc::new(NetworkInner {
                graph: Arc::new(graph),
                routes: RouteStore::Exact { tables, hops },
            }),
        }
    }

    /// Freezes the graph with demand-driven routing: SPF rows computed on
    /// first consultation, at most `cache_rows` resident (see
    /// [`OnDemandRoutes`]). Routes answered are identical to
    /// [`Network::new`]; only materialization and per-lookup cost differ.
    pub fn on_demand(graph: Graph, cache_rows: usize) -> Self {
        let csr = Arc::new(Csr::from_graph(&graph));
        Network {
            inner: Arc::new(NetworkInner {
                graph: Arc::new(graph),
                routes: RouteStore::OnDemand(Box::new(OnDemandRoutes::from_csr(csr, cache_rows))),
            }),
        }
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        &self.inner.graph
    }

    /// The unicast routing service (either materialization).
    pub fn routes(&self) -> &dyn RouteProvider {
        match &self.inner.routes {
            RouteStore::Exact { tables, .. } => tables,
            RouteStore::OnDemand(r) => r.as_ref(),
        }
    }

    /// Whether this network serves routes lazily (scale mode) rather than
    /// from eager all-pairs tables.
    pub fn is_on_demand(&self) -> bool {
        matches!(self.inner.routes, RouteStore::OnDemand(_))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inner.graph.node_count()
    }

    /// Next hop of a packet at `at` destined to `dst`.
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        match &self.inner.routes {
            RouteStore::Exact { tables, .. } => tables.next_hop(at, dst),
            RouteStore::OnDemand(r) => r.next_hop(at, dst),
        }
    }

    /// Resolved forwarding step at `at` toward `dst`: the next hop plus
    /// the out-edge's id and cost. With eager tables this is one array
    /// read (the per-packet hot path); on demand it is a cached-row lookup
    /// plus an adjacency probe for the edge.
    pub fn hop(&self, at: NodeId, dst: NodeId) -> Option<(NodeId, EdgeId, Cost)> {
        match &self.inner.routes {
            RouteStore::Exact { hops, .. } => {
                let n = self.inner.graph.node_count();
                let e = hops[at.index() * n + dst.index()];
                (e.next != NO_HOP).then_some((NodeId(e.next), e.eid, e.cost))
            }
            RouteStore::OnDemand(r) => {
                let h = r.next_hop(at, dst)?;
                let (eid, cost) = self
                    .inner
                    .graph
                    .edge_entry(at, h)
                    .expect("next hop must follow a real link");
                Some((h, eid, cost))
            }
        }
    }

    /// Unicast distance (= minimal delay) `from → to`.
    pub fn dist(&self, from: NodeId, to: NodeId) -> Option<PathCost> {
        match &self.inner.routes {
            RouteStore::Exact { tables, .. } => tables.dist(from, to),
            RouteStore::OnDemand(r) => r.dist(from, to),
        }
    }

    /// Derives the post-failure network: same topology, routes answered
    /// over the surviving elements (nodes/edges flagged in the masks are
    /// absent). This models instantaneous unicast reconvergence after a
    /// failure — the substrate the multicast protocols repair on top of.
    ///
    /// Eager networks recompute their all-pairs tables (over the CSR view
    /// cached in `scratch`); on-demand networks invalidate only the cached
    /// rows the fault actually touches and keep the rest warm.
    pub fn rerouted(
        &self,
        node_down: &[bool],
        edge_down: &[bool],
        scratch: &mut RerouteScratch,
    ) -> Network {
        let routes = match &self.inner.routes {
            RouteStore::Exact { .. } => {
                let csr = scratch
                    .csr
                    .get_or_insert_with(|| Arc::new(Csr::from_graph(&self.inner.graph)));
                let tables = RoutingTables::compute_avoiding_csr_with(
                    csr,
                    node_down,
                    edge_down,
                    &mut scratch.dijkstra,
                );
                let hops = resolve_hops(&self.inner.graph, &tables);
                RouteStore::Exact { tables, hops }
            }
            RouteStore::OnDemand(r) => {
                RouteStore::OnDemand(Box::new(r.rerouted(node_down.to_vec(), edge_down.to_vec())))
            }
        };
        Network {
            inner: Arc::new(NetworkInner {
                graph: Arc::clone(&self.inner.graph),
                routes,
            }),
        }
    }

    /// Directed link cost, panicking on a nonexistent link (kernel-internal
    /// transits always follow real links).
    pub fn link_cost(&self, from: NodeId, to: NodeId) -> Cost {
        self.inner
            .graph
            .cost(from, to)
            .unwrap_or_else(|| panic!("no link {from}->{to}"))
    }

    /// Whether `n` participates in the multicast protocol (multicast-capable
    /// router, or any host — hosts run the source/receiver agents).
    pub fn runs_protocol(&self, n: NodeId) -> bool {
        self.inner.graph.is_host(n) || self.inner.graph.is_mcast_capable(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> (Network, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 2, 3);
        let h = g.add_host(a, 1, 1);
        (Network::new(g), a, b, h)
    }

    #[test]
    fn routing_is_frozen_at_construction() {
        let (net, a, b, _) = net();
        assert_eq!(net.dist(a, b), Some(2));
        assert_eq!(net.dist(b, a), Some(3));
        assert_eq!(net.next_hop(a, b), Some(b));
    }

    #[test]
    fn link_cost_lookup() {
        let (net, a, b, _) = net();
        assert_eq!(net.link_cost(a, b), 2);
        assert_eq!(net.link_cost(b, a), 3);
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn missing_link_panics() {
        let (net, a, _, h) = net();
        let _ = (a, net.link_cost(h, NodeId(1)));
    }

    #[test]
    fn clone_shares_routing_state() {
        let (net, ..) = net();
        let cloned = net.clone();
        assert!(
            Arc::ptr_eq(&net.inner, &cloned.inner),
            "clone must not deep-copy"
        );
    }

    #[test]
    fn hosts_and_capable_routers_run_protocol() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 1, 1);
        g.set_mcast_capable(b, false);
        let h = g.add_host(a, 1, 1);
        let net = Network::new(g);
        assert!(net.runs_protocol(a));
        assert!(!net.runs_protocol(b), "unicast-only router");
        assert!(net.runs_protocol(h), "hosts run agents");
    }

    fn diamond() -> Graph {
        let mut g = Graph::new();
        let s = g.add_router();
        let a = g.add_router();
        let b = g.add_router();
        let t = g.add_router();
        g.add_link(s, a, 1, 1);
        g.add_link(a, t, 1, 1);
        g.add_link(s, b, 2, 2);
        g.add_link(b, t, 2, 2);
        g
    }

    #[test]
    fn on_demand_network_answers_like_eager() {
        let g = diamond();
        let eager = Network::new(g.clone());
        let lazy = Network::on_demand(g.clone(), 8);
        assert!(lazy.is_on_demand() && !eager.is_on_demand());
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(eager.dist(u, v), lazy.dist(u, v), "dist {u}->{v}");
                assert_eq!(eager.next_hop(u, v), lazy.next_hop(u, v), "hop {u}->{v}");
                assert_eq!(eager.hop(u, v), lazy.hop(u, v), "resolved hop {u}->{v}");
            }
        }
        assert!(lazy.routes().route_stats().computed > 0);
        // The O(n²) vs O(rows) separation only shows at scale; here just
        // check both report a live footprint.
        assert!(lazy.routes().state_bytes() > 0 && eager.routes().state_bytes() > 0);
    }

    #[test]
    fn rerouted_matches_fresh_masked_network_in_both_modes() {
        let g = diamond();
        let victim = NodeId(1); // the cheap transit router
        let mut node_down = vec![false; g.node_count()];
        node_down[victim.index()] = true;
        let edge_down = vec![false; g.directed_edge_count()];
        let fresh = Network::with_tables(
            g.clone(),
            RoutingTables::compute_avoiding(&g, &node_down, &edge_down),
        );
        let mut scratch = RerouteScratch::default();
        for base in [Network::new(g.clone()), Network::on_demand(g.clone(), 8)] {
            let re = base.rerouted(&node_down, &edge_down, &mut scratch);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(fresh.dist(u, v), re.dist(u, v), "dist {u}->{v}");
                    assert_eq!(fresh.hop(u, v), re.hop(u, v), "hop {u}->{v}");
                }
            }
            assert!(
                std::ptr::eq(base.graph(), re.graph()),
                "reroute must share the graph, not clone it"
            );
        }
    }
}
