//! Simulated time.
//!
//! One `Time` unit is one unit of link cost: the paper plots receiver delay
//! in "time units" that are exactly accumulated link costs, so the
//! simulator inherits that convention instead of inventing a second clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (monotonic, starts at zero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The start of simulated time.
    pub const ZERO: Time = Time(0);

    /// Saturating difference `self − earlier` in time units.
    pub fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Time {
    type Output = Time;
    fn add(self, rhs: u64) -> Time {
        Time(self.0.checked_add(rhs).expect("simulated time overflow"))
    }
}

impl AddAssign<u64> for Time {
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = u64;
    fn sub(self, rhs: Time) -> u64 {
        self.0.checked_sub(rhs.0).expect("time went backwards")
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time(10);
        assert_eq!(t + 5, Time(15));
        assert_eq!(Time(15) - Time(10), 5);
        assert_eq!(Time(15).since(Time(10)), 5);
        assert_eq!(Time(10).since(Time(15)), 0);
    }

    #[test]
    fn ordering() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time::ZERO, Time(0));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn backwards_subtraction_panics() {
        let _ = Time(1) - Time(2);
    }

    #[test]
    fn add_assign() {
        let mut t = Time(1);
        t += 2;
        assert_eq!(t, Time(3));
    }
}
