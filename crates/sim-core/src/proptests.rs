//! Property-based tests of the kernel's core guarantees: event ordering,
//! delay accounting, and determinism under arbitrary workloads.

use crate::kernel::{Ctx, Kernel, Protocol};
use crate::network::Network;
use crate::packet::Packet;
use crate::time::Time;
use hbh_topo::graph::{Graph, NodeId};
use hbh_topo::{costs, random};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A protocol that just bounces data to its destination and records
/// arrival order (used to observe kernel behaviour, not to route).
struct Echo;

#[derive(Default)]
struct EchoState;

#[derive(Clone, Debug)]
enum EchoCmd {
    Send { to: NodeId, tag: u64 },
}

impl Protocol for Echo {
    type Msg = ();
    type Timer = u8;
    type Command = EchoCmd;
    type NodeState = EchoState;

    fn on_packet(&self, _s: &mut EchoState, pkt: Packet<()>, ctx: &mut Ctx<'_, (), u8>) {
        if pkt.dst == ctx.node {
            ctx.deliver(&pkt);
        } else {
            ctx.forward(pkt);
        }
    }

    fn on_timer(&self, _s: &mut EchoState, _t: u8, _ctx: &mut Ctx<'_, (), u8>) {}

    fn on_command(&self, _s: &mut EchoState, cmd: EchoCmd, ctx: &mut Ctx<'_, (), u8>) {
        let EchoCmd::Send { to, tag } = cmd;
        let pkt = Packet::data(ctx.node, to, tag, ctx.now(), ());
        ctx.send(pkt);
    }
}

fn net(seed: u64, n: usize) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g: Graph = random::gnp_with_avg_degree(n, 3.0, &mut rng);
    costs::assign_paper_costs(&mut g, &mut rng);
    Network::new(g)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Every unicast send arrives exactly once, after exactly the unicast
    /// distance, regardless of how many are in flight.
    #[test]
    fn unicast_arrives_at_exact_distance(
        seed in 0u64..100_000,
        n in 4usize..12,
        sends in proptest::collection::vec((0usize..100, 0usize..100, 1u64..50), 1..20),
    ) {
        let network = net(seed, n);
        let count = network.node_count();
        let hosts: Vec<NodeId> = network.graph().hosts().collect();
        let mut k = Kernel::new(network, Echo, seed);
        let mut expected = Vec::new();
        for (i, (a, b, at)) in sends.into_iter().enumerate() {
            let from = hosts[a % hosts.len()];
            let to = hosts[b % hosts.len()];
            let tag = 1000 + i as u64;
            k.command_at(from, EchoCmd::Send { to, tag }, Time(at));
            expected.push((from, to, tag, at));
        }
        k.run_until(Time(100_000));
        let _ = count;
        for (from, to, tag, at) in expected {
            let arrivals: Vec<_> = k.stats().deliveries_tagged(tag).collect();
            prop_assert_eq!(arrivals.len(), 1, "tag {} arrived {} times", tag, arrivals.len());
            let d = arrivals[0];
            prop_assert_eq!(d.node, to);
            let dist = k.network().dist(from, to).unwrap();
            prop_assert_eq!(d.at, Time(at) + dist, "tag {}", tag);
        }
    }

    /// Identical (network, workload, seed) ⇒ identical execution, even
    /// with interleaved traffic.
    #[test]
    fn kernel_is_deterministic(
        seed in 0u64..100_000,
        n in 4usize..10,
        sends in proptest::collection::vec((0usize..100, 0usize..100, 1u64..40), 1..12),
    ) {
        let run = || {
            let network = net(seed, n);
            let hosts: Vec<NodeId> = network.graph().hosts().collect();
            let mut k = Kernel::new(network, Echo, seed);
            for (i, (a, b, at)) in sends.iter().enumerate() {
                k.command_at(
                    hosts[a % hosts.len()],
                    EchoCmd::Send { to: hosts[b % hosts.len()], tag: i as u64 },
                    Time(*at),
                );
            }
            k.run_until(Time(100_000));
            (k.stats().deliveries.clone(), k.stats().drops)
        };
        prop_assert_eq!(run(), run());
    }

    /// The kernel clock never goes backwards and `run_until` lands exactly
    /// on the requested time.
    #[test]
    fn clock_is_monotonic(
        seed in 0u64..100_000,
        checkpoints in proptest::collection::vec(1u64..500, 1..8),
    ) {
        let network = net(seed, 5);
        let hosts: Vec<NodeId> = network.graph().hosts().collect();
        let mut k = Kernel::new(network, Echo, seed);
        k.command_at(hosts[0], EchoCmd::Send { to: hosts[1 % hosts.len()], tag: 1 }, Time(1));
        let mut sorted = checkpoints;
        sorted.sort();
        let mut prev = Time::ZERO;
        for c in sorted {
            k.run_until(Time(c));
            prop_assert_eq!(k.now(), Time(c));
            prop_assert!(k.now() >= prev);
            prev = k.now();
        }
    }
}
