//! Fast non-cryptographic hashing for simulation-internal maps.
//!
//! The kernel's timer map and the protocols' per-node channel tables are
//! hit on nearly every event, and their keys are simulation-internal
//! (node ids, channels, timer enums) — never attacker-controlled — so
//! SipHash's DoS resistance buys nothing here. This is the Fx
//! multiply-xor hash (the scheme rustc uses for its interning tables):
//! one rotate, one xor, one multiply per 8-byte word.
//!
//! Determinism note: `BuildHasherDefault` gives every map the same (zero)
//! seed, so map iteration order is reproducible across runs of the same
//! binary — strictly more deterministic than `RandomState`. No observable
//! simulation behaviour depends on iteration order either way (the
//! determinism tests cover this), but reproducible order makes debugging
//! dumps stable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over 8-byte words.
#[derive(Default)]
pub struct FxHasher(u64);

/// `2^64 / φ`, the usual Fibonacci-hashing multiplier.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Zero-seeded builder: same hash across maps and runs.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` defaulted to the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` defaulted to the fast hasher.
pub type FastSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn same_key_same_hash() {
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one((3u32, 7u64)), b.hash_one((3u32, 7u64)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let b = FxBuildHasher::default();
        let hashes: std::collections::HashSet<u64> = (0u64..1000).map(|i| b.hash_one(i)).collect();
        assert_eq!(hashes.len(), 1000, "no collisions on a small dense range");
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let b = FxBuildHasher::default();
        assert_ne!(b.hash_one([1u8, 2, 3]), b.hash_one([1u8, 2, 4]));
        assert_ne!(b.hash_one("abcdefghi"), b.hash_one("abcdefghj"));
    }

    #[test]
    fn fast_map_works_as_a_map() {
        let mut m: FastMap<(u32, u32), u64> = FastMap::default();
        for i in 0..100 {
            m.insert((i, i * 2), u64::from(i));
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(40, 80)), Some(&40));
        assert_eq!(m.remove(&(40, 80)), Some(40));
        assert_eq!(m.get(&(40, 80)), None);
    }
}
