#![warn(missing_docs)]

//! # hbh-pim — the PIM baselines of the paper's evaluation
//!
//! The paper compares HBH against two "classical" protocols as simulated by
//! NS's centralized multicast (§4.2):
//!
//! * **PIM-SM** — *shared trees only*: receivers send `(*, G)` joins toward
//!   a rendez-vous point (RP); the joins install reverse-path forwarding
//!   state, so data flows from the RP to each receiver along the *reverse*
//!   of the receiver→RP unicast route. The source unicast-encapsulates its
//!   data to the RP (the register path), which is why the paper observes
//!   the source→RP half of every path to be delay-minimal. No shared→source
//!   switchover is performed (neither does the paper's version).
//! * **PIM-SS** — *source trees only*: the tree shape of PIM-SSM. `(S, G)`
//!   joins travel toward the source itself; data flows down the reverse
//!   SPT. RPF guarantees at most one copy of a packet per link, making
//!   PIM-SS the tree-cost yardstick of Figure 7.
//!
//! Both are implemented as genuine message-driven hop-by-hop join protocols
//! on the simulation kernel — not analytic shortcuts — so that they
//! converge, refresh, and decay exactly like the recursive-unicast
//! protocols they are compared against. The analytic reverse-SPT
//! construction in `hbh-routing::paths` is used by the tests to verify
//! that the converged engine produces exactly the expected tree.
//!
//! Simplifications relative to RFC 2362, mirroring the paper's own
//! simulated version: no prunes (leaves decay by soft-state timeout), no
//! assert elections (point-to-point links), no register-stop, and the RP
//! is supplied by configuration.

pub mod engine;
pub mod messages;
pub mod oif;

pub use engine::{Pim, PimMode};
pub use messages::PimMsg;
