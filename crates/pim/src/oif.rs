//! Per-channel outgoing-interface (oif) state: the `(root, G)` entry a PIM
//! router keeps, mapping downstream neighbors to soft-state entries.
//!
//! RPF loop-freedom note: an oif is always the neighbor a join arrived
//! from, and joins travel along unicast shortest paths toward the root, so
//! an oif can never coincide with the router's own upstream hop (that
//! would require a two-node routing loop, which shortest-path routing
//! cannot produce). Data forwarded per-oif therefore always makes
//! downstream progress.

use hbh_proto_base::{SoftEntry, Timing};
use hbh_sim_core::Time;
use hbh_topo::graph::NodeId;
use std::collections::BTreeMap;

/// Outgoing-interface table for one channel at one router.
#[derive(Clone, Debug, Default)]
pub struct OifTable {
    entries: BTreeMap<NodeId, SoftEntry>,
    /// Last time a join was propagated upstream (refresh suppression: one
    /// upstream join per half-period, like real PIM's aggregation).
    last_upstream: Option<Time>,
}

impl OifTable {
    /// Refreshes (or installs) the oif toward `downstream`.
    /// Returns `true` if the entry is new (a structural change).
    pub fn refresh(&mut self, downstream: NodeId, now: Time, timing: &Timing) -> bool {
        match self.entries.get_mut(&downstream) {
            Some(e) => {
                e.refresh(now, timing);
                false
            }
            None => {
                self.entries.insert(downstream, SoftEntry::new(now, timing));
                true
            }
        }
    }

    /// Live (not dead) oifs at `now` — the data fan-out set.
    pub fn live(&self, now: Time) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .iter()
            .filter(move |(_, e)| !e.is_dead(now))
            .map(|(&n, _)| n)
    }

    /// Removes dead entries; returns how many were reaped.
    pub fn reap(&mut self, now: Time) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| !e.is_dead(now));
        before - self.entries.len()
    }

    /// True if no oifs remain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Raw oif count (dead-but-unreaped included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if `n` has an oif entry (liveness not checked).
    pub fn contains(&self, n: NodeId) -> bool {
        self.entries.contains_key(&n)
    }

    /// Join-suppression: should a join be propagated upstream now?
    /// At most one per half join-period keeps refresh traffic linear in
    /// tree depth instead of receiver count (PIM's aggregation effect).
    pub fn upstream_due(&mut self, now: Time, timing: &Timing) -> bool {
        let due = match self.last_upstream {
            None => true,
            Some(t) => now.since(t) >= timing.join_period / 2,
        };
        if due {
            self.last_upstream = Some(now);
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> Timing {
        Timing::default()
    }

    #[test]
    fn refresh_reports_structural_change_once() {
        let mut t = OifTable::default();
        assert!(t.refresh(NodeId(1), Time(0), &timing()));
        assert!(!t.refresh(NodeId(1), Time(10), &timing()));
        assert!(t.refresh(NodeId(2), Time(10), &timing()));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn live_excludes_dead_entries() {
        let mut t = OifTable::default();
        let tm = timing();
        t.refresh(NodeId(1), Time(0), &tm);
        t.refresh(NodeId(2), Time(400), &tm);
        // At t=600, entry 1 (t2 = 520) is dead, entry 2 alive.
        let live: Vec<_> = t.live(Time(600)).collect();
        assert_eq!(live, vec![NodeId(2)]);
    }

    #[test]
    fn reap_removes_only_dead() {
        let mut t = OifTable::default();
        let tm = timing();
        t.refresh(NodeId(1), Time(0), &tm);
        t.refresh(NodeId(2), Time(400), &tm);
        assert_eq!(t.reap(Time(600)), 1);
        assert_eq!(t.len(), 1);
        assert!(t.contains(NodeId(2)));
    }

    #[test]
    fn stale_entries_still_forward_data() {
        // t1 < now < t2: the receiver has left but soft state has not
        // decayed — data keeps flowing, like real PIM without prunes.
        let mut t = OifTable::default();
        let tm = timing();
        t.refresh(NodeId(1), Time(0), &tm);
        let live: Vec<_> = t.live(Time(tm.t1 + 1)).collect();
        assert_eq!(live, vec![NodeId(1)]);
    }

    #[test]
    fn upstream_suppression_half_period() {
        let mut t = OifTable::default();
        let tm = timing();
        assert!(t.upstream_due(Time(0), &tm));
        assert!(
            !t.upstream_due(Time(10), &tm),
            "suppressed inside half-period"
        );
        assert!(t.upstream_due(Time(tm.join_period / 2), &tm));
    }
}
