//! The PIM protocol engine: join propagation, per-oif data replication,
//! and the two modes (shared tree / source tree).

use crate::messages::{PimMsg, PimTimer};
use crate::oif::OifTable;
use hbh_proto_base::{Channel, Cmd, Timing};
use hbh_sim_core::{Ctx, Packet, Protocol};
use hbh_sim_core::{FastMap, FastSet};
use hbh_topo::graph::NodeId;

/// Which tree PIM builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PimMode {
    /// PIM-SM as the paper simulates it: one shared tree rooted at the RP,
    /// source data unicast-encapsulated to the RP, no switchover.
    SparseShared {
        /// The rendez-vous point the shared tree is rooted at.
        rp: NodeId,
    },
    /// PIM-SS (the PIM-SSM tree shape): per-source reverse SPT.
    SourceSpecific,
}

/// The PIM protocol (configuration part; per-node state lives in
/// [`PimNodeState`]).
#[derive(Clone, Debug)]
pub struct Pim {
    /// Shared tree (with RP) or source-specific.
    pub mode: PimMode,
    /// Refresh periods and soft-state timers.
    pub timing: Timing,
}

impl Pim {
    /// PIM-SS: per-source reverse SPT.
    pub fn source_specific(timing: Timing) -> Self {
        timing.validate();
        Pim {
            mode: PimMode::SourceSpecific,
            timing,
        }
    }

    /// PIM-SM: one shared tree rooted at `rp`.
    pub fn sparse_shared(rp: NodeId, timing: Timing) -> Self {
        timing.validate();
        Pim {
            mode: PimMode::SparseShared { rp },
            timing,
        }
    }

    /// The node joins converge on: the source for SS, the RP for SM.
    pub fn root(&self, ch: Channel) -> NodeId {
        match self.mode {
            PimMode::SourceSpecific => ch.source,
            PimMode::SparseShared { rp } => rp,
        }
    }

    fn send_receiver_join(&self, ch: Channel, ctx: &mut Ctx<'_, PimMsg, PimTimer>) {
        let root = self.root(ch);
        if root == ctx.node {
            return; // degenerate: receiver co-located with the root
        }
        let pkt = Packet::control(
            ctx.node,
            root,
            PimMsg::Join {
                ch,
                downstream: ctx.node,
            },
        );
        ctx.send(pkt);
    }
}

/// Per-node PIM state: router oif tables plus host agent bookkeeping.
#[derive(Default)]
pub struct PimNodeState {
    /// `(root, G)` oif tables, keyed by channel.
    oifs: FastMap<Channel, OifTable>,
    /// Channels this node's receiver agent is subscribed to.
    member: FastSet<Channel>,
    /// Channels with an armed sweep timer (avoid duplicate arming).
    sweep_armed: FastSet<Channel>,
}

impl PimNodeState {
    /// Read access for tests/experiments: the oif table of `ch`.
    pub fn oif_table(&self, ch: Channel) -> Option<&OifTable> {
        self.oifs.get(&ch)
    }

    /// Is this node's receiver agent subscribed to `ch`?
    pub fn is_member(&self, ch: Channel) -> bool {
        self.member.contains(&ch)
    }

    fn refresh_oif(
        &mut self,
        ch: Channel,
        downstream: NodeId,
        timing: &Timing,
        ctx: &mut Ctx<'_, PimMsg, PimTimer>,
    ) {
        let table = self.oifs.entry(ch).or_default();
        if table.refresh(downstream, ctx.now(), timing) {
            ctx.structural_change();
        }
        if self.sweep_armed.insert(ch) {
            ctx.set_timer(PimTimer::Sweep(ch), timing.join_period);
        }
    }
}

impl hbh_proto_base::StateInventory for PimNodeState {
    fn forwarding_entries(&self, ch: Channel) -> usize {
        self.oifs.get(&ch).map_or(0, |t| t.len())
    }

    fn control_entries(&self, _ch: Channel) -> usize {
        0 // PIM's per-group state is all forwarding state
    }
}

impl Protocol for Pim {
    type Msg = PimMsg;
    type Timer = PimTimer;
    type Command = Cmd;
    type NodeState = PimNodeState;

    fn on_packet(
        &self,
        state: &mut PimNodeState,
        pkt: Packet<PimMsg>,
        ctx: &mut Ctx<'_, PimMsg, PimTimer>,
    ) {
        match pkt.payload {
            PimMsg::Join { ch, downstream } => {
                // Install/refresh the oif toward whoever forwarded the join.
                state.refresh_oif(ch, downstream, &self.timing, ctx);
                if pkt.dst == ctx.node {
                    return; // reached the root (source host or RP router)
                }
                // Re-originate upstream (suppressed to one per half-period).
                let due = state
                    .oifs
                    .get_mut(&ch)
                    .expect("just refreshed")
                    .upstream_due(ctx.now(), &self.timing);
                if due {
                    let next = Packet::control(
                        ctx.node,
                        pkt.dst,
                        PimMsg::Join {
                            ch,
                            downstream: ctx.node,
                        },
                    );
                    ctx.send(next);
                }
            }
            PimMsg::Data { ch } => {
                if pkt.dst != ctx.node {
                    // Register-path transit (SM's S→RP leg): plain unicast.
                    ctx.forward(pkt);
                    return;
                }
                if ctx.net().graph().is_host(ctx.node) {
                    if state.member.contains(&ch) {
                        ctx.deliver(&pkt);
                    }
                    return;
                }
                // Router on the tree (or the RP): replicate per live oif,
                // one copy per tree link — interface-directed, not routed.
                let now = ctx.now();
                if let Some(table) = state.oifs.get(&ch) {
                    for next in table.live(now) {
                        ctx.send_link(next, pkt.copy_to(next));
                    }
                }
            }
        }
    }

    fn on_timer(
        &self,
        state: &mut PimNodeState,
        timer: PimTimer,
        ctx: &mut Ctx<'_, PimMsg, PimTimer>,
    ) {
        match timer {
            PimTimer::JoinRefresh(ch) => {
                if state.member.contains(&ch) {
                    self.send_receiver_join(ch, ctx);
                    ctx.set_timer(PimTimer::JoinRefresh(ch), self.timing.join_period);
                }
            }
            PimTimer::Sweep(ch) => {
                let mut empty = false;
                if let Some(table) = state.oifs.get_mut(&ch) {
                    if table.reap(ctx.now()) > 0 {
                        ctx.structural_change();
                    }
                    empty = table.is_empty();
                }
                if empty {
                    state.oifs.remove(&ch);
                    state.sweep_armed.remove(&ch);
                    ctx.structural_change();
                } else if state.oifs.contains_key(&ch) {
                    ctx.set_timer(PimTimer::Sweep(ch), self.timing.join_period);
                } else {
                    state.sweep_armed.remove(&ch);
                }
            }
        }
    }

    fn on_command(&self, state: &mut PimNodeState, cmd: Cmd, ctx: &mut Ctx<'_, PimMsg, PimTimer>) {
        match cmd {
            Cmd::StartSource(_) => {
                // PIM sources are passive until data is injected: SS fan-out
                // state is built by incoming joins, SM registers on demand.
            }
            Cmd::Join(ch) => {
                if state.member.insert(ch) {
                    self.send_receiver_join(ch, ctx);
                    ctx.set_timer(PimTimer::JoinRefresh(ch), self.timing.join_period);
                }
            }
            Cmd::Leave(ch) => {
                // The paper's leave semantics: stop refreshing, let soft
                // state decay (the simulated PIM has no prunes either).
                if state.member.remove(&ch) {
                    ctx.cancel_timer(&PimTimer::JoinRefresh(ch));
                }
            }
            Cmd::SendData { ch, tag } => {
                assert_eq!(ctx.node, ch.source, "SendData must run at the source");
                match self.mode {
                    PimMode::SourceSpecific => {
                        // Replicate per local oif (in practice: the access
                        // router, installed by the receivers' joins).
                        let now = ctx.now();
                        if let Some(table) = state.oifs.get(&ch) {
                            for next in table.live(now) {
                                let pkt =
                                    Packet::data(ctx.node, next, tag, now, PimMsg::Data { ch });
                                ctx.send_link(next, pkt);
                            }
                        }
                    }
                    PimMode::SparseShared { rp } => {
                        // Register path: unicast-encapsulated to the RP.
                        let pkt = Packet::data(ctx.node, rp, tag, ctx.now(), PimMsg::Data { ch });
                        ctx.send(pkt);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbh_sim_core::{Kernel, Network, Time};
    use hbh_topo::graph::Graph;
    use std::collections::HashSet;

    /// Builds a Y-shaped network:
    ///
    /// ```text
    ///   s(host) - r0 - r1 - r2 - h2
    ///                    \
    ///                     r3 - h3
    /// ```
    /// with asymmetric costs on the r1–r2 leg so reverse paths differ.
    struct Net {
        net: Network,
        s: NodeId,
        r: Vec<NodeId>,
        h2: NodeId,
        h3: NodeId,
    }

    fn build() -> Net {
        let mut g = Graph::new();
        let r: Vec<NodeId> = (0..4).map(|_| g.add_router()).collect();
        g.add_link(r[0], r[1], 2, 2);
        g.add_link(r[1], r[2], 3, 5); // asymmetric
        g.add_link(r[1], r[3], 1, 1);
        let s = g.add_host(r[0], 1, 1);
        let h2 = g.add_host(r[2], 1, 1);
        let h3 = g.add_host(r[3], 1, 1);
        Net {
            net: Network::new(g),
            s,
            r,
            h2,
            h3,
        }
    }

    fn converge(k: &mut Kernel<Pim>, t: u64) {
        k.run_until(Time(t));
    }

    #[test]
    fn ss_join_installs_oifs_along_reverse_path() {
        let n = build();
        let ch = Channel::primary(n.s);
        let mut k = Kernel::new(n.net.clone(), Pim::source_specific(Timing::default()), 1);
        k.command_at(n.h2, Cmd::Join(ch), Time(0));
        converge(&mut k, 500);
        // Path h2→s: h2, r2, r1, r0, s. oifs: r2→h2, r1→r2, r0→r1, s→r0.
        assert!(k.state(n.r[2]).oif_table(ch).unwrap().contains(n.h2));
        assert!(k.state(n.r[1]).oif_table(ch).unwrap().contains(n.r[2]));
        assert!(k.state(n.r[0]).oif_table(ch).unwrap().contains(n.r[1]));
        assert!(k.state(n.s).oif_table(ch).unwrap().contains(n.r[0]));
    }

    #[test]
    fn ss_data_reaches_all_receivers_once() {
        let n = build();
        let ch = Channel::primary(n.s);
        let mut k = Kernel::new(n.net.clone(), Pim::source_specific(Timing::default()), 1);
        k.command_at(n.s, Cmd::StartSource(ch), Time(0));
        k.command_at(n.h2, Cmd::Join(ch), Time(0));
        k.command_at(n.h3, Cmd::Join(ch), Time(5));
        converge(&mut k, 1000);
        k.command_at(n.s, Cmd::SendData { ch, tag: 42 }, Time(1000));
        k.run_until(Time(1200));
        let deliveries: Vec<_> = k.stats().deliveries_tagged(42).collect();
        assert_eq!(deliveries.len(), 2);
        let nodes: HashSet<NodeId> = deliveries.iter().map(|d| d.node).collect();
        assert_eq!(nodes, HashSet::from([n.h2, n.h3]));
    }

    #[test]
    fn ss_cost_is_one_copy_per_tree_link() {
        let n = build();
        let ch = Channel::primary(n.s);
        let mut k = Kernel::new(n.net.clone(), Pim::source_specific(Timing::default()), 1);
        k.command_at(n.h2, Cmd::Join(ch), Time(0));
        k.command_at(n.h3, Cmd::Join(ch), Time(5));
        converge(&mut k, 1000);
        k.command_at(n.s, Cmd::SendData { ch, tag: 1 }, Time(1000));
        k.run_until(Time(1200));
        // Tree links: s→r0, r0→r1, r1→r2, r2→h2, r1→r3, r3→h3 = 6.
        assert_eq!(k.stats().data_copies_tagged(1), 6);
        for (_, copies) in k.stats().data_copies_per_link(1) {
            assert_eq!(copies, 1, "RPF guarantees one copy per link");
        }
    }

    #[test]
    fn ss_delay_is_reverse_path_delay() {
        // Data to h2 flows on the *reverse* of h2's route to s. Here the
        // h2→s route is h2,r2,r1,r0,s, so data takes r1→r2 at cost 3 and
        // total delay 1 (s→r0) + 2 + 3 + 1 = 7, which equals the forward
        // SPT delay in this topology; the asymmetric figure-2 scenario is
        // exercised in the integration tests.
        let n = build();
        let ch = Channel::primary(n.s);
        let mut k = Kernel::new(n.net.clone(), Pim::source_specific(Timing::default()), 1);
        k.command_at(n.h2, Cmd::Join(ch), Time(0));
        converge(&mut k, 1000);
        k.command_at(n.s, Cmd::SendData { ch, tag: 2 }, Time(1000));
        k.run_until(Time(1200));
        let d: Vec<_> = k.stats().deliveries_tagged(2).collect();
        assert_eq!(d[0].delay(), 7);
    }

    #[test]
    fn sm_data_detours_via_rp() {
        let n = build();
        let ch = Channel::primary(n.s);
        let rp = n.r[3];
        let mut k = Kernel::new(n.net.clone(), Pim::sparse_shared(rp, Timing::default()), 1);
        k.command_at(n.h2, Cmd::Join(ch), Time(0));
        converge(&mut k, 1000);
        k.command_at(n.s, Cmd::SendData { ch, tag: 3 }, Time(1000));
        k.run_until(Time(1300));
        let d: Vec<_> = k.stats().deliveries_tagged(3).collect();
        assert_eq!(d.len(), 1);
        // Register path s→r0→r1→r3 (1+2+1 = 4), then shared tree
        // r3→r1→r2→h2 (1+3+1 = 5): delay 9 > direct 7.
        assert_eq!(d[0].delay(), 9);
        // Cost: register 3 links + tree 3 links.
        assert_eq!(k.stats().data_copies_tagged(3), 6);
    }

    #[test]
    fn sm_register_leg_counts_copies_even_on_shared_links() {
        // h3 joins: shared tree is rp(r3)→h3. Register path s→r0→r1→r3.
        let n = build();
        let ch = Channel::primary(n.s);
        let rp = n.r[3];
        let mut k = Kernel::new(n.net.clone(), Pim::sparse_shared(rp, Timing::default()), 1);
        k.command_at(n.h3, Cmd::Join(ch), Time(0));
        converge(&mut k, 1000);
        k.command_at(n.s, Cmd::SendData { ch, tag: 4 }, Time(1000));
        k.run_until(Time(1300));
        assert_eq!(k.stats().data_copies_tagged(4), 4); // 3 register + 1 tree
    }

    #[test]
    fn leave_decays_and_stops_delivery() {
        let n = build();
        let ch = Channel::primary(n.s);
        let timing = Timing::default();
        let mut k = Kernel::new(n.net.clone(), Pim::source_specific(timing), 1);
        k.command_at(n.h2, Cmd::Join(ch), Time(0));
        k.command_at(n.h3, Cmd::Join(ch), Time(0));
        converge(&mut k, 1000);
        k.command_at(n.h2, Cmd::Leave(ch), Time(1000));
        // Wait out t2 plus slack so the oif chain toward h2 is reaped.
        converge(&mut k, 1000 + timing.t2 + 3 * timing.join_period);
        let probe_at = k.now();
        k.command_at(n.s, Cmd::SendData { ch, tag: 5 }, probe_at);
        k.run_until(probe_at + 200);
        let nodes: Vec<NodeId> = k.stats().deliveries_tagged(5).map(|d| d.node).collect();
        assert_eq!(nodes, vec![n.h3], "only the remaining member gets data");
        // h2's branch state is gone.
        assert!(!k
            .state(n.r[2])
            .oif_table(ch)
            .is_some_and(|t| t.contains(n.h2)));
    }

    #[test]
    fn leave_all_tears_down_everything() {
        let n = build();
        let ch = Channel::primary(n.s);
        let timing = Timing::default();
        let mut k = Kernel::new(n.net.clone(), Pim::source_specific(timing), 1);
        k.command_at(n.h2, Cmd::Join(ch), Time(0));
        converge(&mut k, 800);
        k.command_at(n.h2, Cmd::Leave(ch), Time(800));
        converge(&mut k, 800 + timing.t2 + 5 * timing.join_period);
        for node in [n.s, n.r[0], n.r[1], n.r[2]] {
            assert!(
                k.state(node).oif_table(ch).is_none(),
                "stale state left at {node}"
            );
        }
    }

    #[test]
    fn rejoin_after_leave_works() {
        let n = build();
        let ch = Channel::primary(n.s);
        let timing = Timing::default();
        let mut k = Kernel::new(n.net.clone(), Pim::source_specific(timing), 1);
        k.command_at(n.h2, Cmd::Join(ch), Time(0));
        k.command_at(n.h2, Cmd::Leave(ch), Time(300));
        k.command_at(n.h2, Cmd::Join(ch), Time(2000));
        converge(&mut k, 3000);
        k.command_at(n.s, Cmd::SendData { ch, tag: 6 }, Time(3000));
        k.run_until(Time(3200));
        assert_eq!(k.stats().deliveries_tagged(6).count(), 1);
    }

    #[test]
    fn data_with_no_receivers_goes_nowhere() {
        let n = build();
        let ch = Channel::primary(n.s);
        let mut k = Kernel::new(n.net.clone(), Pim::source_specific(Timing::default()), 1);
        k.command_at(n.s, Cmd::SendData { ch, tag: 7 }, Time(0));
        k.run_until(Time(100));
        assert_eq!(k.stats().data_copies_tagged(7), 0);
        assert_eq!(k.stats().deliveries_tagged(7).count(), 0);
    }

    #[test]
    fn sm_data_with_no_receivers_dies_at_rp() {
        let n = build();
        let ch = Channel::primary(n.s);
        let rp = n.r[1];
        let mut k = Kernel::new(n.net.clone(), Pim::sparse_shared(rp, Timing::default()), 1);
        k.command_at(n.s, Cmd::SendData { ch, tag: 8 }, Time(0));
        k.run_until(Time(100));
        // Register path s→r0→r1 = 2 copies, then nothing.
        assert_eq!(k.stats().data_copies_tagged(8), 2);
        assert_eq!(k.stats().deliveries_tagged(8).count(), 0);
    }

    #[test]
    fn duplicate_join_command_is_idempotent() {
        let n = build();
        let ch = Channel::primary(n.s);
        let mut k = Kernel::new(n.net.clone(), Pim::source_specific(Timing::default()), 1);
        k.command_at(n.h2, Cmd::Join(ch), Time(0));
        k.command_at(n.h2, Cmd::Join(ch), Time(1));
        converge(&mut k, 600);
        k.command_at(n.s, Cmd::SendData { ch, tag: 9 }, Time(600));
        k.run_until(Time(800));
        assert_eq!(
            k.stats().deliveries_tagged(9).count(),
            1,
            "no duplicate delivery"
        );
    }
}
