//! PIM wire messages.

use hbh_proto_base::Channel;
use hbh_topo::graph::NodeId;

/// Payloads carried by PIM packets.
///
/// `Join` travels hop-by-hop toward the tree root (the source for PIM-SS,
/// the RP for PIM-SM; the root is the packet's unicast destination).
/// `downstream` is the node that most recently processed the join — the
/// neighbor the current hop must install as an outgoing interface. Each
/// PIM router rewrites it before forwarding, which is exactly how real PIM
/// joins are re-originated hop by hop.
///
/// `Data` packets are forwarded link-by-link along installed oif state:
/// each copy is unicast-addressed to the *next tree hop* (and, on the
/// PIM-SM register path, to the RP).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PimMsg {
    /// `(root, G)` join toward the tree root (source or RP).
    Join {
        /// The `(root, G)` state being joined.
        ch: Channel,
        /// The neighbor to install as outgoing interface.
        downstream: NodeId,
    },
    /// Channel data, replicated per oif.
    Data {
        /// The channel the payload belongs to.
        ch: Channel,
    },
}

impl PimMsg {
    /// The channel this message belongs to.
    pub fn channel(&self) -> Channel {
        match *self {
            PimMsg::Join { ch, .. } | PimMsg::Data { ch } => ch,
        }
    }
}

/// Node-local timers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[allow(clippy::enum_variant_names)]
pub enum PimTimer {
    /// Receiver agent: re-send the periodic join for a channel.
    JoinRefresh(Channel),
    /// Router: reap dead oif entries for a channel.
    Sweep(Channel),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_accessor() {
        let ch = Channel::primary(NodeId(1));
        assert_eq!(PimMsg::Data { ch }.channel(), ch);
        assert_eq!(
            PimMsg::Join {
                ch,
                downstream: NodeId(2)
            }
            .channel(),
            ch
        );
    }
}
