//! Link-cost assignment policies.
//!
//! The paper (§4.1): *"We associate two costs, c(n1, n2) and c(n2, n1), to
//! link n1-n2. Each cost is an integer randomly chosen in the interval
//! [1, 10]."* — i.e. the two directions of every link are drawn
//! independently, which makes unicast shortest paths asymmetric with high
//! probability. [`assign_uniform`] reproduces exactly that.
//!
//! [`assign_uniform_with_asymmetry`] adds the knob used by the asymmetry
//! ablation (`DESIGN.md` A1): each link is symmetric (`c(v,u) = c(u,v)`)
//! with probability `1 − a` and independently drawn with probability `a`,
//! so `a = 0` gives a fully symmetric network and `a = 1` the paper's
//! setting.

use crate::graph::{Bandwidth, Cost, Graph};
use rand::rngs::StdRng;
use rand::RngExt;

/// The paper's cost interval `[1, 10]`.
pub const PAPER_COST_RANGE: (Cost, Cost) = (1, 10);

/// Draws every directed half-link cost independently and uniformly from
/// `[lo, hi]` (inclusive). This is the paper's assignment with
/// `(lo, hi) = (1, 10)`.
///
/// Host access links are included: the paper's figures draw receivers as
/// ordinary leaf nodes of the cost-annotated topology, and assigning them
/// the same way affects all protocols identically.
pub fn assign_uniform(g: &mut Graph, lo: Cost, hi: Cost, rng: &mut StdRng) {
    assign_uniform_with_asymmetry(g, lo, hi, 1.0, rng);
}

/// Paper defaults: independent per-direction costs in `[1, 10]`.
pub fn assign_paper_costs(g: &mut Graph, rng: &mut StdRng) {
    assign_uniform(g, PAPER_COST_RANGE.0, PAPER_COST_RANGE.1, rng);
}

/// Cost assignment with an asymmetry-probability knob.
///
/// For every undirected link, `c(a→b)` is drawn from `U[lo, hi]`; then with
/// probability `asymmetry` the reverse direction is drawn independently,
/// otherwise it is set equal to the forward cost.
///
/// # Panics
/// Panics unless `1 ≤ lo ≤ hi` and `0 ≤ asymmetry ≤ 1`.
pub fn assign_uniform_with_asymmetry(
    g: &mut Graph,
    lo: Cost,
    hi: Cost,
    asymmetry: f64,
    rng: &mut StdRng,
) {
    assert!(lo >= 1 && lo <= hi, "invalid cost range [{lo}, {hi}]");
    assert!(
        (0.0..=1.0).contains(&asymmetry),
        "asymmetry must be a probability"
    );
    for (a, b, _, _) in g.undirected_links() {
        let forward = rng.random_range(lo..=hi);
        let backward = if rng.random::<f64>() < asymmetry {
            rng.random_range(lo..=hi)
        } else {
            forward
        };
        g.set_cost(a, b, forward);
        g.set_cost(b, a, backward);
    }
}

/// Draws every directed half-link's *bandwidth* independently and
/// uniformly from `[lo, hi]` (the QoS-routing extension; the paper's own
/// evaluation leaves bandwidths unconstrained).
pub fn assign_bandwidths(g: &mut Graph, lo: Bandwidth, hi: Bandwidth, rng: &mut StdRng) {
    assert!(lo >= 1 && lo <= hi, "invalid bandwidth range [{lo}, {hi}]");
    for (a, b, _, _) in g.undirected_links() {
        let fwd = rng.random_range(lo..=hi);
        let bwd = rng.random_range(lo..=hi);
        g.set_bandwidth(a, b, fwd);
        g.set_bandwidth(b, a, bwd);
    }
}

/// Like [`assign_bandwidths`] but only for router–router links: host
/// access links keep unlimited bandwidth (last-mile capacity is a
/// provisioning question, not a routing one — and constraining it would
/// make most channels inadmissible rather than interestingly constrained).
pub fn assign_backbone_bandwidths(g: &mut Graph, lo: Bandwidth, hi: Bandwidth, rng: &mut StdRng) {
    assert!(lo >= 1 && lo <= hi, "invalid bandwidth range [{lo}, {hi}]");
    for (a, b, _, _) in g.undirected_links() {
        if !(g.is_router(a) && g.is_router(b)) {
            continue;
        }
        let fwd = rng.random_range(lo..=hi);
        let bwd = rng.random_range(lo..=hi);
        g.set_bandwidth(a, b, fwd);
        g.set_bandwidth(b, a, bwd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isp::isp_topology;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn costs_fall_in_range() {
        let mut g = isp_topology();
        assign_paper_costs(&mut g, &mut rng(1));
        for (_, c) in g.directed_links() {
            assert!((1..=10).contains(&c), "cost {c} out of [1,10]");
        }
    }

    #[test]
    fn assignment_is_deterministic_per_seed() {
        let mut a = isp_topology();
        let mut b = isp_topology();
        assign_paper_costs(&mut a, &mut rng(5));
        assign_paper_costs(&mut b, &mut rng(5));
        assert_eq!(a.undirected_links(), b.undirected_links());
    }

    #[test]
    fn independent_directions_produce_asymmetric_links() {
        let mut g = isp_topology();
        assign_paper_costs(&mut g, &mut rng(2));
        let asym = g
            .undirected_links()
            .iter()
            .filter(|(_, _, ab, ba)| ab != ba)
            .count();
        // With independent U[1,10] draws, P[equal] = 1/10, so on 48 links we
        // expect ≈ 43 asymmetric ones; even a loose bound catches regressions.
        assert!(asym > 30, "only {asym} of 48 links asymmetric");
    }

    #[test]
    fn zero_asymmetry_gives_symmetric_costs() {
        let mut g = isp_topology();
        assign_uniform_with_asymmetry(&mut g, 1, 10, 0.0, &mut rng(3));
        for (_, _, ab, ba) in g.undirected_links() {
            assert_eq!(ab, ba);
        }
    }

    #[test]
    fn asymmetry_fraction_tracks_knob() {
        let mut g = isp_topology();
        assign_uniform_with_asymmetry(&mut g, 1, 10, 0.5, &mut rng(4));
        let links = g.undirected_links();
        let asym = links.iter().filter(|(_, _, ab, ba)| ab != ba).count();
        // Expected asymmetric fraction = 0.5 · 0.9 = 0.45 of 48 links ≈ 22.
        assert!((10..=35).contains(&asym), "{asym} asymmetric links");
    }

    #[test]
    fn degenerate_unit_range_is_allowed() {
        let mut g = isp_topology();
        assign_uniform(&mut g, 1, 1, &mut rng(6));
        for (_, c) in g.directed_links() {
            assert_eq!(c, 1);
        }
    }

    #[test]
    #[should_panic(expected = "invalid cost range")]
    fn inverted_range_rejected() {
        let mut g = isp_topology();
        assign_uniform(&mut g, 5, 2, &mut rng(0));
    }

    #[test]
    fn bandwidths_default_to_unlimited_and_assign_in_range() {
        let mut g = isp_topology();
        for (l, _) in g.directed_links() {
            assert_eq!(g.bandwidth(l.from, l.to), Some(u32::MAX));
        }
        assign_bandwidths(&mut g, 1, 10, &mut rng(8));
        for (l, _) in g.directed_links() {
            let bw = g.bandwidth(l.from, l.to).unwrap();
            assert!((1..=10).contains(&bw));
        }
    }
}
