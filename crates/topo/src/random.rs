//! Seeded random-topology generators.
//!
//! The paper's second scenario is "a random-generated topology with 50 nodes
//! and higher connectivity (8.6 versus 3.3)". Only the node count and the
//! average degree are disclosed, so [`gnp_with_avg_degree`] generates an
//! Erdős–Rényi G(n, p) graph with `p = d̄ / (n − 1)`, rejection-sampled until
//! connected (and, like the paper, with one potential-receiver host per
//! router). A Waxman generator is provided for the topology-sensitivity
//! ablation.

use crate::analysis;
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::RngExt;

/// How many rejection-sampling attempts to make before giving up.
///
/// For the parameters used in the paper's evaluation (n = 50, d̄ = 8.6)
/// disconnection is already rare; 1000 attempts gives failure probability
/// far below anything observable.
const MAX_ATTEMPTS: usize = 1000;

/// Generates a connected G(n, p) router backbone with expected average
/// degree `avg_degree`, plus one host per router.
///
/// Links get placeholder unit costs; draw real costs afterwards with
/// [`crate::costs::assign_uniform`].
///
/// # Panics
/// Panics if `n < 2`, if `avg_degree` is not achievable (`≤ 0` or
/// `> n − 1`), or if no connected sample is found in [`MAX_ATTEMPTS`]
/// attempts (practically impossible for sensible parameters: for the
/// paper's n = 50, d̄ = 8.6 a disconnected sample is already rare).
pub fn gnp_with_avg_degree(n: usize, avg_degree: f64, rng: &mut StdRng) -> Graph {
    assert!(n >= 2, "need at least two routers");
    assert!(
        avg_degree > 0.0 && avg_degree <= (n - 1) as f64,
        "average degree {avg_degree} not achievable with {n} nodes"
    );
    let p = avg_degree / (n - 1) as f64;
    for _ in 0..MAX_ATTEMPTS {
        let g = sample_gnp(n, p, rng);
        if analysis::is_connected(&g) {
            return with_hosts(g);
        }
    }
    panic!("no connected G({n}, {p}) sample in {MAX_ATTEMPTS} attempts");
}

/// The paper's 50-node random topology: G(50, p) with average degree 8.6.
pub fn rand50(rng: &mut StdRng) -> Graph {
    gnp_with_avg_degree(50, 8.6, rng)
}

fn sample_gnp(n: usize, p: f64, rng: &mut StdRng) -> Graph {
    let mut g = Graph::new();
    let routers: Vec<NodeId> = (0..n).map(|_| g.add_router()).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random::<f64>() < p {
                g.add_link(routers[i], routers[j], 1, 1);
            }
        }
    }
    g
}

/// Waxman random graph: routers are placed uniformly in the unit square and
/// each pair is linked with probability `alpha * exp(-dist / (beta * L))`
/// where `L = sqrt(2)` is the maximum distance. Used by the
/// topology-sensitivity ablation; rejection-sampled for connectivity like
/// [`gnp_with_avg_degree`].
pub fn waxman(n: usize, alpha: f64, beta: f64, rng: &mut StdRng) -> Graph {
    assert!(n >= 2);
    assert!(alpha > 0.0 && beta > 0.0);
    let l = std::f64::consts::SQRT_2;
    for _ in 0..MAX_ATTEMPTS {
        let pos: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        let mut g = Graph::new();
        let routers: Vec<NodeId> = (0..n).map(|_| g.add_router()).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let (xi, yi) = pos[i];
                let (xj, yj) = pos[j];
                let dist = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                let p = alpha * (-dist / (beta * l)).exp();
                if rng.random::<f64>() < p {
                    g.add_link(routers[i], routers[j], 1, 1);
                }
            }
        }
        if analysis::is_connected(&g) {
            return with_hosts(g);
        }
    }
    panic!("no connected Waxman({n}, {alpha}, {beta}) sample in {MAX_ATTEMPTS} attempts");
}

/// Attaches one host to every router (the paper's "one receiver connected to
/// each node"), numbered after all routers, host `n + i` on router `i`.
fn with_hosts(mut g: Graph) -> Graph {
    let routers: Vec<NodeId> = g.routers().collect();
    for r in routers {
        g.add_host(r, 1, 1);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rand50_has_50_routers_and_50_hosts() {
        let g = rand50(&mut rng(1));
        assert_eq!(g.routers().count(), 50);
        assert_eq!(g.hosts().count(), 50);
        assert_eq!(g.node_count(), 100);
    }

    #[test]
    fn rand50_is_connected() {
        for seed in 0..5 {
            assert!(analysis::is_connected(&rand50(&mut rng(seed))));
        }
    }

    #[test]
    fn rand50_average_degree_near_8_6() {
        // Average over a few seeds: expected backbone degree is 8.6.
        let mut total = 0.0;
        let samples = 20;
        for seed in 0..samples {
            let g = rand50(&mut rng(seed));
            let deg_sum: usize = g
                .routers()
                .map(|r| g.neighbors(r).iter().filter(|e| g.is_router(e.to)).count())
                .sum();
            total += deg_sum as f64 / 50.0;
        }
        let avg = total / samples as f64;
        assert!(
            (avg - 8.6).abs() < 0.6,
            "mean backbone degree {avg}, want ≈ 8.6"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = rand50(&mut rng(42));
        let b = rand50(&mut rng(42));
        assert_eq!(a.undirected_links(), b.undirected_links());
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = rand50(&mut rng(1));
        let b = rand50(&mut rng(2));
        assert_ne!(a.undirected_links(), b.undirected_links());
    }

    #[test]
    fn hosts_attach_in_order_after_routers() {
        let g = rand50(&mut rng(3));
        for i in 0..50u32 {
            assert_eq!(g.host_router(NodeId(50 + i)), NodeId(i));
        }
    }

    #[test]
    fn waxman_generates_connected_graph_with_hosts() {
        let g = waxman(30, 0.9, 0.3, &mut rng(7));
        assert!(analysis::is_connected(&g));
        assert_eq!(g.routers().count(), 30);
        assert_eq!(g.hosts().count(), 30);
    }

    #[test]
    fn small_gnp_works() {
        let g = gnp_with_avg_degree(2, 1.0, &mut rng(9));
        assert!(analysis::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "not achievable")]
    fn overdense_request_rejected() {
        gnp_with_avg_degree(5, 10.0, &mut rng(0));
    }
}
